"""Interval metrics sampler: Stats deltas every N cycles.

Once per sampling period (in *simulated* cycles, checked on the
kernel step hook) the sampler snapshots a fixed set of Stats counters
and records the delta since the previous sample, plus derived rates:

- ``ipc`` — chip-aggregate ops per cycle over the interval;
- ``noc_util`` — flit-hops / (links x interval cycles);
- ``l3_mpki`` — L3 misses per thousand core ops in the interval;
- ``streams_alive`` — floated streams alive at the sample instant
  (gauge, from the telemetry bus's float/sink/end bookkeeping);
- ``flits.<class>`` — flits injected per traffic class.

Samples are plain dicts (JSONL/CSV-ready; see
:func:`repro.obs.export.write_intervals`). Everything here is
simulated-time arithmetic — deterministic across hosts and runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.noc.message import TRAFFIC_CLASSES

# Counters snapshotted each interval (deltas reported with dots
# replaced per-schema below).
TRACKED = (
    "core.ops", "core.loads", "core.stores",
    "l1.misses", "l2.misses", "l3.hits", "l3.misses",
    "dram.reads", "dram.writes",
    "se_l3.elements_issued",
) + tuple(f"noc.flits.{c}" for c in TRAFFIC_CLASSES) + tuple(
    f"noc.flit_hops.{c}" for c in TRAFFIC_CLASSES
)


class IntervalSampler:
    """Samples bound Stats every ``period`` simulated cycles."""

    def __init__(self, period: int,
                 alive: Optional[Callable[[], int]] = None) -> None:
        if period <= 0:
            raise ValueError(f"interval period must be positive, got {period}")
        self.period = period
        self._alive = alive or (lambda: 0)
        self.samples: List[Dict[str, float]] = []
        self._stats = None
        self._links = 1
        self._cores = 1
        self._next = period
        self._last_cycle = 0
        self._last: Dict[str, float] = {name: 0.0 for name in TRACKED}

    def bind(self, stats, links: int, cores: int) -> None:
        """Attach the chip's Stats tree and mesh geometry."""
        self._stats = stats
        self._links = max(1, links)
        self._cores = max(1, cores)

    def on_step(self, now: int) -> None:
        """Kernel heartbeat; samples when the period boundary passes."""
        if now >= self._next and self._stats is not None:
            self._sample(now)
            # Skip ahead past idle gaps rather than emitting a backlog
            # of empty samples.
            while self._next <= now:
                self._next += self.period

    def flush(self, now: int) -> None:
        """Final (possibly partial) sample at end of run."""
        if self._stats is not None and now > self._last_cycle:
            self._sample(now)

    def _sample(self, now: int) -> None:
        stats = self._stats
        cur = {name: stats.get(name) for name in TRACKED}
        delta = {name: cur[name] - self._last[name] for name in TRACKED}
        dcycles = now - self._last_cycle
        ops = delta["core.ops"]
        flit_hops = sum(delta[f"noc.flit_hops.{c}"] for c in TRAFFIC_CLASSES)
        sample: Dict[str, float] = {
            "cycle": now,
            "dcycles": dcycles,
            "ipc": round(ops / dcycles, 6) if dcycles else 0.0,
            "noc_util": (
                round(flit_hops / (self._links * dcycles), 6)
                if dcycles else 0.0
            ),
            "l3_mpki": (
                round(delta["l3.misses"] / (ops / 1000.0), 6) if ops else 0.0
            ),
            "streams_alive": self._alive(),
        }
        for name in TRACKED:
            sample[name.replace(".", "_")] = delta[name]
        self.samples.append(sample)
        self._last = cur
        self._last_cycle = now

    @staticmethod
    def columns() -> List[str]:
        """Stable column order for CSV export."""
        return [
            "cycle", "dcycles", "ipc", "noc_util", "l3_mpki",
            "streams_alive",
        ] + [name.replace(".", "_") for name in TRACKED]
