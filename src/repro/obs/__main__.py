"""The run observatory CLI: ``python -m repro.obs`` (DESIGN.md §11).

Four subcommands:

- ``run`` — simulate one point with telemetry on and capture a
  self-contained *run directory* (``record.json`` + trace/interval/
  profile/provenance artifacts) suitable as a ``diff`` input;
- ``diff`` — align two run directories (or bare RunRecord JSON
  files) and render the differential report (Markdown, optional
  HTML);
- ``attribute`` — simulate one point with the attribution (+spans)
  pillars and render the cycle-accounting report: the CPI stack and
  the critical-path bottleneck table (DESIGN.md §15);
- ``localize`` — replay one figure point under two kernel backends
  and report the first divergent ``(cycle, event, handler)``, or
  confirm the backends agree.

Quick start::

    python -m repro.obs run --workload mv --config base --out runs/base
    python -m repro.obs run --workload mv --config sf   --out runs/sf
    python -m repro.obs diff runs/base runs/sf --out report.md
    python -m repro.obs attribute --workload mv --config sf
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional


def _add_point_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", required=True)
    parser.add_argument("--config", required=True)
    parser.add_argument("--core", default="ooo8")
    parser.add_argument("--cols", type=int, default=4)
    parser.add_argument("--rows", type=int, default=4)
    parser.add_argument("--scale", type=int, default=16)
    parser.add_argument("--link-bits", type=int, default=256)
    parser.add_argument("--l3-interleave", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run observatory: capture, diff and localize runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="simulate one point and capture a run directory")
    _add_point_args(run)
    run.add_argument("--out", required=True,
                     help="run directory to create/fill")
    run.add_argument(
        "--telemetry", default="all",
        help="pillars to enable (comma list or 'all'; default all)")
    run.add_argument("--interval", type=int, default=None,
                     help="interval sampler period in cycles")

    diff = sub.add_parser(
        "diff", help="differential report between two captured runs")
    diff.add_argument("run_a", help="run directory or RunRecord JSON")
    diff.add_argument("run_b", help="run directory or RunRecord JSON")
    diff.add_argument("--out", default=None,
                      help="Markdown output path (default: stdout)")
    diff.add_argument("--html", default=None,
                      help="also write an HTML report here")
    diff.add_argument("--top", type=int, default=5,
                      help="top-k streams by lifetime (default 5)")
    diff.add_argument("--label-a", default=None)
    diff.add_argument("--label-b", default=None)

    att = sub.add_parser(
        "attribute",
        help="cycle-accounting CPI stack + critical-path bottlenecks")
    _add_point_args(att)
    att.add_argument("--out", default=None,
                     help="Markdown output path (default: stdout)")
    att.add_argument("--json", dest="json_out", default=None,
                     help="also write the raw cpi.*/crit.* counters")
    att.add_argument("--top", type=int, default=10,
                     help="bottleneck edges to list (default 10)")

    loc = sub.add_parser(
        "localize",
        help="first divergent event between two kernel backends")
    _add_point_args(loc)
    loc.add_argument("--backend-a", default="heap")
    loc.add_argument("--backend-b", default="calendar")
    loc.add_argument("--checkpoint-every", type=int, default=1024)
    loc.add_argument("--json", dest="json_out", default=None,
                     help="also write the divergence record as JSON")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.runner import run_once
    from repro.obs.telemetry import (
        ENV_INTERVAL,
        ENV_TELEMETRY,
        ENV_TELEMETRY_DIR,
    )

    os.makedirs(args.out, exist_ok=True)
    saved = {name: os.environ.get(name)
             for name in (ENV_TELEMETRY, ENV_TELEMETRY_DIR, ENV_INTERVAL)}
    os.environ[ENV_TELEMETRY] = args.telemetry
    os.environ[ENV_TELEMETRY_DIR] = args.out
    if args.interval is not None:
        os.environ[ENV_INTERVAL] = str(args.interval)
    try:
        record = run_once(
            workload=args.workload, config=args.config, core=args.core,
            cols=args.cols, rows=args.rows, scale=args.scale,
            link_bits=args.link_bits, l3_interleave=args.l3_interleave,
            seed=args.seed, use_cache=False,
        )
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    record_path = os.path.join(args.out, "record.json")
    with open(record_path, "w", encoding="utf-8") as fh:
        json.dump(record.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"[obs] captured {args.workload}/{args.config} "
          f"({record.cycles} cycles) -> {args.out}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import RunArtifacts, diff_runs
    from repro.obs.report import render_html, render_markdown

    a = RunArtifacts.load(args.run_a, label=args.label_a)
    b = RunArtifacts.load(args.run_b, label=args.label_b)
    diff = diff_runs(a, b, k=args.top)
    markdown = render_markdown(diff)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(markdown)
        print(f"[obs] wrote {args.out}")
    else:
        sys.stdout.write(markdown)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(diff))
        print(f"[obs] wrote {args.html}")
    return 0


def _cmd_attribute(args: argparse.Namespace) -> int:
    from repro.harness.runner import run_once
    from repro.obs.report import render_attribution

    record = run_once(
        workload=args.workload, config=args.config, core=args.core,
        cols=args.cols, rows=args.rows, scale=args.scale,
        link_bits=args.link_bits, l3_interleave=args.l3_interleave,
        seed=args.seed, obs="attribution,spans", use_cache=False,
    )
    markdown = render_attribution(record, top=args.top)
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(markdown)
        print(f"[obs] wrote {args.out}")
    else:
        sys.stdout.write(markdown)
    if args.json_out:
        tel = record.telemetry or {}
        payload = {
            "point": record.params,
            "cycles": record.cycles,
            "attribution": {
                name: value for name, value in sorted(tel.items())
                if name.startswith(("cpi.", "crit.", "critdom."))
            },
        }
        out_dir = os.path.dirname(args.json_out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"[obs] wrote {args.json_out}")
    return 0


def _cmd_localize(args: argparse.Namespace) -> int:
    from repro.obs.divergence import localize_backends

    divergence = localize_backends(
        args.workload, args.config,
        backend_a=args.backend_a, backend_b=args.backend_b,
        checkpoint_every=args.checkpoint_every,
        core=args.core, cols=args.cols, rows=args.rows,
        scale=args.scale, link_bits=args.link_bits,
        l3_interleave=args.l3_interleave, seed=args.seed,
    )
    if divergence is None:
        print(f"[obs] backends {args.backend_a}/{args.backend_b} agree "
              f"on {args.workload}/{args.config}")
        return 0
    print(f"[obs] {divergence.describe()}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(divergence.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"[obs] wrote {args.json_out}")
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "attribute":
        return _cmd_attribute(args)
    return _cmd_localize(args)


if __name__ == "__main__":
    raise SystemExit(main())
