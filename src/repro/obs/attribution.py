"""Cycle accounting: every committed core cycle lands in one bucket.

The accountant (telemetry pillar ``attribution``, DESIGN.md §15)
replays each core's in-order commit front. An iteration's *commit
segment* is the interval between the previous commit point and its
own finish cycle; the segment is attributed to whatever the finishing
iteration was bound on:

- finished by the scheduled compute-completion event → ``compute``;
- finished by a load completion → the load's *journey* (assembled
  from the ``l1_miss``/``l2_miss``/``l3_demand``/``dram``/``l1_fill``
  bus events for its line) splits the segment across
  ``wait_l2`` / ``wait_noc_req`` / ``wait_l3`` / ``wait_dram`` /
  ``wait_noc_resp``; floated-stream elements split into
  ``credit_starve`` (the SE_L3 had not issued the element's GetU
  yet) and ``wait_noc_resp`` (data in flight);
- a load completion with no journey (the L1 had the line) →
  ``l1_hit``;
- the ``stream_cfg`` front-end stall at a phase start →
  ``config_install``; inter-phase barrier waits and teardown →
  ``drain``.

Segments are attributed exactly once and cover ``[0, finish_time)``
per core by construction, so the **conservation invariant** — bucket
sums equal total core cycles — holds exactly; :meth:`check` asserts
it sanitizer-style at the end of every run. Everything here is
simulated-cycle arithmetic: deterministic, cache- and ``--jobs``-safe.

The pillar piggybacks on the fusion veto (``sim.fastpath`` is False
whenever telemetry is attached, DESIGN.md §12): fill events always
precede their zero-delay waiter callbacks in queue order, which is
what lets a finishing load correlate to the latest completion.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

BUCKETS = (
    "compute", "l1_hit", "wait_l2", "wait_noc_req", "wait_l3",
    "wait_dram", "wait_noc_resp", "credit_starve", "config_install",
    "drain",
)

# A finishing load correlates to the latest line/element completion no
# older than the L1 hit latency (the fill's zero-delay waiter callback
# runs in the same cycle; an L1 hit pays 2 cycles and leaves no event).
HIT_WINDOW = 2

MAX_JOURNEYS = 65_536  # open line journeys (drops counted, never raised)
MAX_GETU_MARKS = 65_536  # remembered GetU issue cycles for credit split


class _Journey:
    """One line fetch as seen on the bus: waypoints, not hops."""

    __slots__ = ("start", "floating", "l2_done", "l3_seen", "l3_lat",
                 "l3_outcome", "dram_at", "dram_done")

    def __init__(self, start: int, floating: bool) -> None:
        self.start = start
        self.floating = floating
        self.l2_done: Optional[int] = None
        self.l3_seen: Optional[int] = None
        self.l3_lat = 0
        self.l3_outcome = ""
        self.dram_at: Optional[int] = None
        self.dram_done: Optional[int] = None


class _TileState:
    """Per-core commit-front replica."""

    __slots__ = ("front", "config_end", "next_seq", "pending",
                 "load_ctx", "last_comp", "buckets", "saw_phase")

    def __init__(self) -> None:
        self.front = 0
        self.config_end = 0
        self.next_seq = 0
        # seq -> (finish cycle, cause); drained in commit order.
        self.pending: Dict[int, Tuple[int, Any]] = {}
        self.load_ctx = 0
        # (cycle, legs) of the tile's latest line/element completion.
        self.last_comp: Optional[Tuple[int, List[tuple]]] = None
        self.buckets: Dict[str, int] = {b: 0 for b in BUCKETS}
        self.saw_phase = False


class CycleAccountant:
    """Assembles the per-core CPI stack from bus events + core hooks."""

    def __init__(self, telemetry) -> None:
        self.telemetry = telemetry
        self._tiles: Dict[int, _TileState] = {}
        self._cores: Dict[int, Any] = {}
        # (tile, line) -> open journey; line -> journey keys (for DRAM
        # events, which carry only the address).
        self._journeys: Dict[Tuple[int, int], _Journey] = {}
        self._line_index: Dict[int, List[Tuple[int, int]]] = {}
        # (requester, line) -> GetU issue cycle (credit-starve split).
        self._getu: Dict[Tuple[int, int], int] = {}
        self.journeys_dropped = 0
        for kind in ("l1_miss", "l1_fill", "l2_miss", "l3_demand",
                     "dram", "getu"):
            telemetry.subscribe(kind, getattr(self, f"_on_{kind}"))

    # ------------------------------------------------------------------
    # core hooks (installed by Telemetry.watch_core)
    # ------------------------------------------------------------------
    def watch_core(self, core) -> None:
        tile = core.tile
        ts = self._tiles.setdefault(tile, _TileState())
        self._cores[tile] = core
        acct = self
        sim = core.sim
        inner_run = core.run_phase

        def run_phase(phase, on_done):
            nspecs = (
                len(phase.stream_specs)
                if core.se is not None and phase.stream_specs else 0
            )
            acct.phase_begin(ts, sim.now, nspecs)

            def done() -> None:
                acct.phase_end(ts, sim.now)
                on_done()

            inner_run(phase, done)

        run_phase.__qualname__ = getattr(
            inner_run, "__qualname__", "Core.run_phase")
        core.run_phase = run_phase
        inner_load_done = core._load_done

        def load_done(state) -> None:
            ts.load_ctx += 1
            try:
                inner_load_done(state)
            finally:
                ts.load_ctx -= 1

        load_done.__qualname__ = getattr(
            inner_load_done, "__qualname__", "Core._load_done")
        core._load_done = load_done
        inner_check = core._check_done

        def check_done(state) -> None:
            # Replicates _check_done's finish condition *before* the
            # inner call: afterwards, a nested _phase_complete may
            # already have advanced the front past this cycle.
            if (
                not state.finished
                and state.loads_pending == 0
                and sim.now >= state.compute_done_at
            ):
                acct.iter_finish(ts, state.seq, sim.now)
            inner_check(state)

        check_done.__qualname__ = getattr(
            inner_check, "__qualname__", "Core._check_done")
        core._check_done = check_done

    # ------------------------------------------------------------------
    # commit-front replication
    # ------------------------------------------------------------------
    def phase_begin(self, ts: _TileState, now: int, nspecs: int) -> None:
        ts.saw_phase = True
        self._flush_pending(ts)
        if now > ts.front:
            # Inter-phase barrier wait (and post-commit teardown).
            ts.buckets["drain"] += now - ts.front
            ts.front = now
        ts.next_seq = 0
        ts.config_end = now + nspecs  # mirrors _front_free_at += nspecs

    def phase_end(self, ts: _TileState, now: int) -> None:
        self._flush_pending(ts)
        if ts.front < ts.config_end:
            # Degenerate phase: configured streams, no iteration ran.
            edge = min(now, ts.config_end)
            ts.buckets["config_install"] += edge - ts.front
            ts.front = edge
        if now > ts.front:
            ts.buckets["drain"] += now - ts.front
            ts.front = now

    def iter_finish(self, ts: _TileState, seq: int, cycle: int) -> None:
        if ts.load_ctx:
            comp = ts.last_comp
            if comp is not None and cycle - comp[0] <= HIT_WINDOW:
                cause: Any = comp[1]
            else:
                cause = "l1_hit"
        else:
            cause = "compute"
        ts.pending[seq] = (cycle, cause)
        pending = ts.pending
        while ts.next_seq in pending:
            fc, cz = pending.pop(ts.next_seq)
            ts.next_seq += 1
            if fc > ts.front:
                self._attribute(ts, ts.front, fc, cz)
                ts.front = fc

    def _flush_pending(self, ts: _TileState) -> None:
        # Defensive: every iteration should have drained in seq order
        # before the phase barrier fires.
        for seq in sorted(ts.pending):
            fc, cz = ts.pending[seq]
            if fc > ts.front:
                self._attribute(ts, ts.front, fc, cz)
                ts.front = fc
        ts.pending.clear()

    def _attribute(self, ts: _TileState, t0: int, t1: int, cause) -> None:
        buckets = ts.buckets
        if t0 < ts.config_end:
            # stream_cfg install window is a prefix of the first
            # segment (the front is monotonic).
            edge = min(t1, ts.config_end)
            buckets["config_install"] += edge - t0
            t0 = edge
            if t0 >= t1:
                return
        if isinstance(cause, str):
            buckets[cause] += t1 - t0
            return
        legs = cause
        total = t1 - t0
        acc = 0
        for a, b, bucket in legs:
            lo = a if a > t0 else t0
            hi = b if b < t1 else t1
            if hi > lo:
                buckets[bucket] += hi - lo
                acc += hi - lo
        # Residue before the journey began: the core front was still
        # dispatching/computing up to the access.
        pre = min(legs[0][0], t1) - t0
        if pre > 0:
            buckets["compute"] += pre
            acc += pre
        rest = total - acc
        if rest > 0:
            # After the journey completed (fill-to-delivery skew).
            buckets[legs[-1][2]] += rest

    # ------------------------------------------------------------------
    # journey assembly from bus events
    # ------------------------------------------------------------------
    def _on_l1_miss(self, ev) -> None:
        key = (ev.tile, ev.data["addr"])
        journey = self._journeys.get(key)
        if journey is None:
            if len(self._journeys) >= MAX_JOURNEYS:
                self.journeys_dropped += 1
                return
            journey = _Journey(ev.cycle, bool(ev.data.get("floating")))
            self._journeys[key] = journey
            self._line_index.setdefault(key[1], []).append(key)
        elif ev.data.get("floating"):
            journey.floating = True

    def _on_l2_miss(self, ev) -> None:
        journey = self._journeys.get((ev.tile, ev.data["addr"]))
        if journey is None or journey.l2_done is not None:
            return
        if ev.data.get("via") in ("overflow", "prefetch_drop"):
            return  # parked at the L2: still wait_l2, nothing sent yet
        journey.l2_done = ev.cycle

    def _on_l3_demand(self, ev) -> None:
        if ev.data.get("op") not in ("GetS", "GetX"):
            return
        journey = self._journeys.get(
            (ev.data.get("requester"), ev.data["addr"]))
        if journey is None or journey.dram_at is not None:
            return
        journey.l3_seen = ev.cycle
        journey.l3_lat = int(ev.data.get("lat", 0))
        journey.l3_outcome = ev.data.get("outcome", "")

    def _on_dram(self, ev) -> None:
        if ev.data.get("op") != "MemRead":
            return
        for key in self._line_index.get(ev.data["addr"], ()):
            journey = self._journeys.get(key)
            if journey is not None and journey.dram_at is None:
                journey.dram_at = ev.cycle
                journey.dram_done = ev.data.get("done")

    def _on_getu(self, ev) -> None:
        if len(self._getu) >= MAX_GETU_MARKS:
            self._getu.clear()  # precision loss only, never growth
        self._getu[(ev.data.get("requester"), ev.data["addr"])] = ev.cycle

    def _on_l1_fill(self, ev) -> None:
        key = (ev.tile, ev.data["addr"])
        if ev.data.get("reason") == "drop":
            return  # L2 rejected the prefetch; demand waiters re-issue
        journey = self._journeys.pop(key, None)
        keys = self._line_index.get(key[1])
        if keys is not None:
            try:
                keys.remove(key)
            except ValueError:
                pass
            if not keys:
                del self._line_index[key[1]]
        if journey is None:
            return
        ts = self._tiles.get(ev.tile)
        if ts is not None:
            ts.last_comp = (ev.cycle, self._legs(journey, ev.cycle, key))

    def _legs(self, j: _Journey, cf: int,
              key: Tuple[int, int]) -> List[tuple]:
        """Clip the journey's waypoints into contiguous bucket legs
        covering ``[j.start, cf)``."""
        c0 = j.start
        if j.floating:
            # Floated element: the private hierarchy is out of the
            # path. Any wait before the SE_L3 even issued the GetU is
            # credit starvation; the rest is the data push in flight.
            g = self._getu.pop(key, None)
            if g is not None and c0 < g < cf:
                return [(c0, g, "credit_starve"),
                        (g, cf, "wait_noc_resp")]
            return [(c0, cf, "wait_noc_resp")]
        c1 = j.l2_done
        if c1 is None or c1 >= cf:
            return [(c0, cf, "wait_l2")]  # served by the L2 itself
        legs = [(c0, c1, "wait_l2")]
        c2 = j.l3_seen
        if c2 is None or c2 <= c1 or c2 >= cf:
            legs.append((c1, cf, "wait_noc_req"))
            return legs
        bank_at = max(c1, c2 - j.l3_lat)
        legs.append((c1, bank_at, "wait_noc_req"))
        legs.append((bank_at, c2, "wait_l3"))
        c3 = j.dram_at
        if c3 is not None and c2 <= c3 < cf:
            legs.append((c2, c3, "wait_noc_req"))
            done = j.dram_done
            if done is None or done < c3:
                done = c3
            if done > cf:
                done = cf
            legs.append((c3, done, "wait_dram"))
            legs.append((done, cf, "wait_noc_resp"))
        elif j.l3_outcome in ("queued", "mshr_wait"):
            # Serialized behind another transaction at the bank.
            legs.append((c2, cf, "wait_l3"))
        else:
            legs.append((c2, cf, "wait_noc_resp"))
        return legs

    # ------------------------------------------------------------------
    # run completion
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Sanitizer-style conservation assertion: per core, bucket
        sums equal the core's total cycles, exactly."""
        for tile in sorted(self._cores):
            ts = self._tiles[tile]
            if not ts.saw_phase:
                continue  # accounting attached but this core never ran
            total = sum(ts.buckets.values())
            finish = self._cores[tile].finish_time
            if total != finish:
                raise AssertionError(
                    f"cpi conservation violated on tile {tile}: buckets "
                    f"sum to {total}, core ran {finish} cycles "
                    f"(front={ts.front}, pending={len(ts.pending)})"
                )

    def summary(self) -> Dict[str, float]:
        agg = {b: 0 for b in BUCKETS}
        total = 0
        for tile, core in self._cores.items():
            ts = self._tiles[tile]
            if not ts.saw_phase:
                continue
            for b in BUCKETS:
                agg[b] += ts.buckets[b]
            total += core.finish_time
        out: Dict[str, float] = {f"cpi.{b}": agg[b] for b in BUCKETS}
        out["cpi.total_cycles"] = total
        out["cpi.journeys_dropped"] = self.journeys_dropped
        return out
