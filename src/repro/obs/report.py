"""Render a :class:`~repro.obs.diff.RunDiff` as Markdown or HTML.

Pure formatting — every number comes precomputed from
:mod:`repro.obs.diff`, and the renderers are deterministic (stable
ordering, fixed float formats), so reports are golden-testable.

Heatmaps render as per-tile shade grids (`` .:-=+*#%@`` ramp,
row-major mesh layout) with the numeric matrix alongside; interval
series render as Unicode sparklines (``▁▂▃▄▅▆▇█``).
"""

from __future__ import annotations

import html as _html
from typing import List, Optional, Sequence

from repro.obs.diff import RunDiff, StatDelta

SPARK_RAMP = "▁▂▃▄▅▆▇█"
SHADE_RAMP = " .:-=+*#%@"


def _fmt(value: float) -> str:
    """Compact deterministic number format."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def sparkline(values: Sequence[float]) -> str:
    """One character per value, scaled to the series' own min/max.
    A flat (or empty/singleton) series renders at the lowest level."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return SPARK_RAMP[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(SPARK_RAMP) - 1))
        out.append(SPARK_RAMP[idx])
    return "".join(out)


def shade_grid(matrix: List[List[float]],
               lo: Optional[float] = None,
               hi: Optional[float] = None) -> List[str]:
    """Render a matrix as shade-character rows. ``lo``/``hi`` pin the
    scale (so A, B and delta grids can share one) and default to the
    matrix's own range."""
    flat = [v for row in matrix for v in row]
    if not flat:
        return []
    lo = min(flat) if lo is None else lo
    hi = max(flat) if hi is None else hi
    span = hi - lo
    lines = []
    for row in matrix:
        chars = []
        for v in row:
            if span == 0:
                chars.append(SHADE_RAMP[0])
            else:
                idx = int((v - lo) / span * (len(SHADE_RAMP) - 1))
                chars.append(SHADE_RAMP[max(0, min(idx,
                                                   len(SHADE_RAMP) - 1))])
        lines.append("".join(chars))
    return lines


def _matrix_rows(matrix: List[List[float]]) -> List[str]:
    width = max((len(_fmt(v)) for row in matrix for v in row), default=1)
    return [" ".join(f"{_fmt(v):>{width}}" for v in row) for row in matrix]


def _md_table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _delta_cells(delta: StatDelta) -> List[str]:
    pct = delta.pct
    return [
        delta.name, _fmt(delta.a), _fmt(delta.b), _fmt(delta.delta),
        f"{pct:+.2f}%" if pct is not None else "n/a",
    ]


def render_markdown(diff: RunDiff) -> str:
    a, b = diff.a, diff.b
    lines: List[str] = []
    lines.append(f"# Run diff: {a.label} vs {b.label}")
    lines.append("")
    lines.append(f"- **A** = `{a.label}`: "
                 f"{_point_line(a.record)}")
    lines.append(f"- **B** = `{b.label}`: "
                 f"{_point_line(b.record)}")
    lines.append("")

    lines.append("## Headline deltas")
    lines.append("")
    lines.extend(_md_table(
        ["stat", "A", "B", "delta", "%"],
        [_delta_cells(d) for d in diff.headline]))
    lines.append("")

    if diff.cpi and any(ca or cb for _, ca, cb in diff.cpi):
        # The bottleneck diff: which buckets floating emptied.
        total_a = sum(ca for _, ca, _ in diff.cpi) or 1.0
        total_b = sum(cb for _, _, cb in diff.cpi) or 1.0
        lines.append("## CPI stack (cycle accounting)")
        lines.append("")
        lines.extend(_md_table(
            ["bucket", "A", "A%", "B", "B%", "delta"],
            [[bucket, _fmt(ca), f"{100.0 * ca / total_a:.1f}%",
              _fmt(cb), f"{100.0 * cb / total_b:.1f}%", _fmt(cb - ca)]
             for bucket, ca, cb in diff.cpi]))
        lines.append("")

    if diff.bottlenecks:
        lines.append("## Critical-path bottleneck edges")
        lines.append("")
        lines.extend(_md_table(
            ["edge (kind.from>to)", "A cycles", "B cycles", "delta"],
            [[f"`{edge}`", _fmt(ea), _fmt(eb), _fmt(eb - ea)]
             for edge, ea, eb in diff.bottlenecks]))
        lines.append("")

    if diff.verdicts:
        lines.append("## Decision provenance")
        lines.append("")
        lines.extend(_md_table(
            ["verdict", "A", "B", "delta"],
            [[v, _fmt(ca), _fmt(cb), _fmt(cb - ca)]
             for v, ca, cb in diff.verdicts]))
        lines.append("")

    for kind in sorted(diff.tile_heatmaps):
        grids = diff.tile_heatmaps[kind]
        lines.append(f"## Tile heatmap: {kind}")
        lines.append("")
        flat = [v for key in ("a", "b") for row in grids[key] for v in row]
        lo, hi = (min(flat), max(flat)) if flat else (0.0, 0.0)
        lines.append("```")
        lines.extend(_grid_pair(
            ("A", shade_grid(grids["a"], lo, hi), _matrix_rows(grids["a"])),
            ("B", shade_grid(grids["b"], lo, hi), _matrix_rows(grids["b"])),
        ))
        lines.append("delta (B - A):")
        lines.extend("  " + row for row in _matrix_rows(grids["delta"]))
        lines.append("```")
        lines.append("")

    if diff.links:
        lines.append("## NoC link flits")
        lines.append("")
        lines.extend(_md_table(
            ["link", "A", "B", "delta"],
            [[link, _fmt(fa), _fmt(fb), _fmt(fb - fa)]
             for link, fa, fb in diff.links]))
        lines.append("")

    if diff.interval_columns and (a.intervals or b.intervals):
        lines.append("## Interval series")
        lines.append("")
        lines.append("```")
        for column in diff.interval_columns:
            sa = sparkline([float(s.get(column, 0.0))
                            for s in a.intervals])
            sb = sparkline([float(s.get(column, 0.0))
                            for s in b.intervals])
            lines.append(f"{column:<24} A {sa}")
            lines.append(f"{'':<24} B {sb}")
        lines.append("```")
        lines.append("")

    for label, streams in (("A", diff.top_streams_a),
                           ("B", diff.top_streams_b)):
        if not streams:
            continue
        lines.append(f"## Top {diff.top_k} streams by lifetime ({label})")
        lines.append("")
        lines.extend(_md_table(
            ["sid", "tile", "start", "duration", "key"],
            [[_fmt(float(s["sid"])) if s["sid"] is not None else "?",
              str(s["tile"]), _fmt(float(s["start"])),
              _fmt(float(s["duration"])), f"`{s['key']}`"]
             for s in streams]))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_attribution(record, top: int = 10) -> str:
    """Single-run attribution report: the CPI stack (with ASCII
    shares) plus the aggregate critical-path bottleneck table, from a
    RunRecord simulated with the ``attribution`` (+``spans``)
    pillars. Deterministic — golden-testable."""
    from repro.obs.attribution import BUCKETS
    from repro.obs.diff import cpi_stack, crit_edges

    tel = record.telemetry or {}
    stack = cpi_stack(record)
    total = tel.get("cpi.total_cycles", sum(stack.values())) or 1.0
    lines: List[str] = []
    lines.append(f"# Cycle attribution: {_point_line(record)}")
    lines.append("")
    lines.append(f"- total core cycles: {_fmt(float(total))} "
                 f"(chip cycles: {_fmt(float(record.cycles))})")
    lines.append("- conservation: buckets sum exactly to total core "
                 "cycles (asserted at run end)")
    dropped = tel.get("cpi.journeys_dropped", 0)
    if dropped:
        lines.append(f"- **WARNING**: {_fmt(float(dropped))} journeys "
                     f"dropped at the cap; wait buckets are "
                     f"under-attributed")
    lines.append("")
    lines.append("## CPI stack")
    lines.append("")
    bar_width = 40
    rows = []
    for bucket in BUCKETS:  # taxonomy order, not alphabetical
        cycles = stack.get(bucket, 0.0)
        share = cycles / total
        bar = "#" * int(round(share * bar_width))
        rows.append([bucket, _fmt(cycles), f"{100.0 * share:.1f}%",
                     f"`{bar}`" if bar else ""])
    lines.extend(_md_table(["bucket", "cycles", "share", ""], rows))
    lines.append("")
    edges = crit_edges(record)
    if edges:
        lines.append(f"## Critical-path bottleneck edges (top {top})")
        lines.append("")
        ranked = sorted(edges.items(), key=lambda kv: (-kv[1], kv[0]))
        dom = {key[len("critdom."):]: value for key, value in tel.items()
               if key.startswith("critdom.")}
        lines.extend(_md_table(
            ["edge (kind.from>to)", "cycles", "spans dominated"],
            [[f"`{edge}`", _fmt(cycles), _fmt(dom.get(edge, 0.0))]
             for edge, cycles in ranked[:top]]))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _point_line(record) -> str:
    return (f"{record.workload}/{record.config} core={record.core} "
            f"{record.cols}x{record.rows} scale={record.scale} "
            f"seed={record.seed}")


def _grid_pair(*sides) -> List[str]:
    """Lay out labelled (shade, numbers) blocks vertically."""
    lines: List[str] = []
    for label, shades, numbers in sides:
        lines.append(f"{label}:")
        for shade, nums in zip(shades, numbers):
            lines.append(f"  {shade}   {nums}")
    return lines


def render_html(diff: RunDiff) -> str:
    """Minimal self-contained HTML wrapper: the Markdown report in a
    ``<pre>`` (monospace keeps the grids/sparklines aligned) plus a
    real table for the headline deltas."""
    md = render_markdown(diff)
    rows = "".join(
        "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>"
        .format(*(_html.escape(c) for c in _delta_cells(d)))
        for d in diff.headline
    )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>Run diff: {_html.escape(diff.a.label)} vs "
        f"{_html.escape(diff.b.label)}</title>"
        "<style>body{font-family:monospace;margin:2em}"
        "table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:2px 8px;text-align:right}"
        "th:first-child,td:first-child{text-align:left}</style>"
        "</head><body>"
        f"<h1>Run diff: {_html.escape(diff.a.label)} vs "
        f"{_html.escape(diff.b.label)}</h1>"
        "<table><tr><th>stat</th><th>A</th><th>B</th>"
        f"<th>delta</th><th>%</th></tr>{rows}</table>"
        f"<pre>{_html.escape(md)}</pre>"
        "</body></html>\n"
    )
