"""Decision provenance ledger: every float/no-float/sink/revoke/
migrate/confluence/config verdict with its complete input snapshot.

The telemetry layer (PR 5) records *what* happened; this pillar
records *why* (DESIGN.md §11). Each policy decision made anywhere in
the three-level stream engine — SE_core float/sink, SE_L2 follower
registration, SE_L3 configure/migrate/confluence — is published on
the bus as a ``decision`` event (or enriched ``migrate``/
``confluence`` events) carrying the exact state the policy saw:
per-stream history (Table II), pattern class, bank locality, epoch,
credits. The ledger collects them into an ordered, bounded record
list exportable as queryable JSONL and as Chrome-trace instant
events on the PR-5 stream tracks.

The ledger also keeps the per-tile and per-link activity counters the
differential observatory's heatmaps need (L3-bank demand/GetU/DRAM
traffic per tile; flits per directed mesh link), surfaced through
``Telemetry.summary()`` so they ride the ``telemetry.*`` stats into
every :class:`~repro.harness.runner.RunRecord`.

Zero-cost-when-off contract: nothing here is imported, subscribed or
wrapped unless the ``provenance`` pillar is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple


@dataclass
class ProvenanceRecord:
    """One decision with its evidence."""

    cycle: int
    tile: int
    verdict: str  # float | no_float | sink | revoke | follow |
    #               migrate | confluence | config_installed |
    #               config_stale | config_rejected | config_replaced
    # ("revoke": the smart policy undid a float it judged bad mid-run;
    #  the reason names the trigger, e.g. revoke_reuse_burst.)
    sid: Optional[int] = None
    requester: Optional[int] = None
    reason: str = ""
    inputs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "cycle": self.cycle, "tile": self.tile,
            "verdict": self.verdict, "sid": self.sid,
            "reason": self.reason, "inputs": dict(self.inputs),
        }
        if self.requester is not None:
            out["requester"] = self.requester
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ProvenanceRecord":
        return cls(
            cycle=payload["cycle"], tile=payload["tile"],
            verdict=payload["verdict"], sid=payload.get("sid"),
            requester=payload.get("requester"),
            reason=payload.get("reason", ""),
            inputs=dict(payload.get("inputs", {})),
        )


class ProvenanceLedger:
    """Bus subscriber assembling the decision ledger + heatmap data."""

    # Bus kinds whose per-tile counts feed the L3-bank activity heatmap.
    TILE_KINDS = ("l3_demand", "getu", "dram")

    def __init__(self, telemetry, config) -> None:
        self.max_records = config.max_decisions
        self.records: List[ProvenanceRecord] = []
        self.dropped = 0
        # tile -> {kind: count} (L3-bank occupancy heatmap input).
        self.tile_activity: Dict[int, Dict[str, int]] = {}
        # (src, dst) directed mesh link -> flits (NoC-link heatmap).
        self.link_flits: Dict[Tuple[int, int], int] = {}
        if telemetry is not None:
            telemetry.subscribe("decision", self._on_decision)
            telemetry.subscribe("migrate", self._on_migrate)
            telemetry.subscribe("confluence", self._on_confluence)
            for kind in self.TILE_KINDS:
                telemetry.subscribe(kind, self._on_tile_activity)

    # ------------------------------------------------------------------
    # bus handlers
    # ------------------------------------------------------------------
    def _append(self, record: ProvenanceRecord) -> None:
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)

    def _on_decision(self, ev) -> None:
        self._append(ProvenanceRecord(
            cycle=ev.cycle, tile=ev.tile,
            verdict=ev.data.get("verdict", "?"),
            sid=ev.data.get("sid"),
            requester=ev.data.get("requester"),
            reason=ev.data.get("reason", ""),
            inputs=dict(ev.data.get("inputs", {})),
        ))

    def _on_migrate(self, ev) -> None:
        self._append(ProvenanceRecord(
            cycle=ev.cycle, tile=ev.tile, verdict="migrate",
            sid=ev.data.get("sid"), requester=ev.data.get("requester"),
            reason="next_elem_remote",
            inputs={
                "elem": ev.data.get("elem"),
                "to_bank": ev.data.get("to_bank"),
                "epoch": ev.data.get("epoch"),
                "credits": ev.data.get("credits"),
            },
        ))

    def _on_confluence(self, ev) -> None:
        self._append(ProvenanceRecord(
            cycle=ev.cycle, tile=ev.tile, verdict="confluence",
            sid=ev.data.get("sid"), requester=ev.data.get("requester"),
            reason="same_shape_same_block",
            inputs={"group_size": ev.data.get("size")},
        ))

    def _on_tile_activity(self, ev) -> None:
        per_tile = self.tile_activity.setdefault(ev.tile, {})
        per_tile[ev.kind] = per_tile.get(ev.kind, 0) + 1

    # ------------------------------------------------------------------
    # link accounting (called from the provenance-gated network wrap)
    # ------------------------------------------------------------------
    def record_links(self, route: Iterable[Tuple[int, int]],
                     flits: int) -> None:
        for link in route:
            self.link_flits[link] = self.link_flits.get(link, 0) + flits

    # ------------------------------------------------------------------
    # queries / export feeds
    # ------------------------------------------------------------------
    def verdict_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rec in self.records:
            counts[rec.verdict] = counts.get(rec.verdict, 0) + 1
        return counts

    def by_verdict(self, verdict: str) -> List[ProvenanceRecord]:
        return [r for r in self.records if r.verdict == verdict]

    def summary(self) -> Dict[str, float]:
        """Flat deterministic counters for ``Telemetry.summary()``
        (and therefore ``telemetry.*`` stats + RunRecord.telemetry)."""
        out: Dict[str, float] = {
            "decisions": len(self.records),
            "decisions_dropped": self.dropped,
        }
        for verdict, count in sorted(self.verdict_counts().items()):
            out[f"decisions.{verdict}"] = count
        for tile in sorted(self.tile_activity):
            for kind, count in sorted(self.tile_activity[tile].items()):
                out[f"tile.{tile}.{kind}"] = count
        for (src, dst) in sorted(self.link_flits):
            out[f"link.{src}>{dst}.flits"] = self.link_flits[(src, dst)]
        return out

    def to_rows(self, slug: Optional[str] = None) -> List[Dict[str, Any]]:
        """JSONL-ready row per record (insertion = cycle order)."""
        rows = []
        for rec in self.records:
            row = rec.to_dict()
            if slug is not None:
                row["point"] = slug
            rows.append(row)
        return rows
