"""Observability layer: telemetry bus, spans, interval metrics,
kernel profiler and artifact export (DESIGN.md §8).

Only :mod:`repro.obs.telemetry` (stdlib-only) is imported eagerly —
``sim.kernel`` imports this package at module level, and the heavier
submodules (spans/interval/export) import simulator packages, which
would cycle back into ``sim.kernel``. Everything else resolves
lazily via PEP 562.
"""

from repro.obs.telemetry import (
    ENV_INTERVAL,
    ENV_TELEMETRY,
    ENV_TELEMETRY_DIR,
    BusEvent,
    Telemetry,
    TelemetryConfig,
    config_from_env,
    enabled_by_env,
    maybe_attach,
)

_LAZY = {
    "Hop": "repro.obs.spans",
    "Span": "repro.obs.spans",
    "SpanCollector": "repro.obs.spans",
    "IntervalSampler": "repro.obs.interval",
    "KernelProfiler": "repro.obs.profiler",
    "TelemetrySink": "repro.obs.export",
    "chrome_trace_events": "repro.obs.export",
    "export_point_artifacts": "repro.obs.export",
    "point_slug": "repro.obs.export",
    "provenance_instant_events": "repro.obs.export",
    "write_chrome_trace": "repro.obs.export",
    "write_intervals": "repro.obs.export",
    "write_profile": "repro.obs.export",
    "write_provenance": "repro.obs.export",
    "ProvenanceLedger": "repro.obs.provenance",
    "ProvenanceRecord": "repro.obs.provenance",
    "Divergence": "repro.obs.divergence",
    "TraceRecorder": "repro.obs.divergence",
    "localize": "repro.obs.divergence",
    "localize_backends": "repro.obs.divergence",
    "RunArtifacts": "repro.obs.diff",
    "RunDiff": "repro.obs.diff",
    "diff_runs": "repro.obs.diff",
    "render_html": "repro.obs.report",
    "render_markdown": "repro.obs.report",
}

__all__ = [
    "BusEvent",
    "ENV_INTERVAL",
    "ENV_TELEMETRY",
    "ENV_TELEMETRY_DIR",
    "Telemetry",
    "TelemetryConfig",
    "config_from_env",
    "enabled_by_env",
    "maybe_attach",
] + sorted(_LAZY)


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
