"""Differential run observatory: align two runs and compute what
changed (DESIGN.md §11).

Inputs are the artifacts the rest of the observability stack already
produces — a :class:`~repro.harness.runner.RunRecord` (JSON) per run,
optionally accompanied by the per-point telemetry artifacts that
``python -m repro.obs run`` / ``REPRO_TELEMETRY_DIR`` export
(``*.intervals.jsonl``, ``*.trace.json``, ``*.provenance.jsonl``).
This module only *computes*: headline stat deltas, per-tile heatmap
matrices (L3-bank activity from ``telemetry.tile.*`` counters,
NoC-link flits from ``telemetry.link.*``), aligned interval series,
top-k streams by lifetime, and provenance verdict tables. Rendering
lives in :mod:`repro.obs.report`; the CLI in ``repro.obs.__main__``.

Every number here is recomputed from the raw records — the report is
a *view*, never a second source of truth (the golden test pins this:
report deltas must equal deltas recomputed from the RunRecords).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.runner import RunRecord

# Headline rows: (label, extractor). Extractors only touch RunRecord
# fields/stats so a record without telemetry still diffs cleanly.
_HEADLINE: List[Tuple[str, Any]] = [
    ("cycles", lambda r: float(r.cycles)),
    ("core.ops", lambda r: r.stats.get("core.ops")),
    ("l1.misses", lambda r: r.stats.get("l1.misses")),
    ("l2.hit_rate", lambda r: r.l2_hit_rate()),
    ("l3.hit_rate", lambda r: r.l3_hit_rate()),
    ("noc.flit_hops", lambda r: r.flit_hops),
    ("dram.reads", lambda r: r.stats.get("dram.reads")),
    ("dram.writes", lambda r: r.stats.get("dram.writes")),
    ("se_core.floats", lambda r: r.stats.get("se_core.floats")),
    ("se_core.sinks", lambda r: r.stats.get("se_core.sinks")),
    ("se_l3.elements_issued",
     lambda r: r.stats.get("se_l3.elements_issued")),
    ("energy.total_pj", lambda r: r.energy.total),
]


@dataclass
class StatDelta:
    name: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def pct(self) -> Optional[float]:
        """Relative change in percent; None when A is zero."""
        if self.a == 0:
            return None
        return 100.0 * (self.b - self.a) / self.a


@dataclass
class RunArtifacts:
    """One run's record plus whatever optional artifacts exist."""

    record: RunRecord
    label: str
    intervals: List[Dict[str, Any]] = field(default_factory=list)
    provenance: List[Dict[str, Any]] = field(default_factory=list)
    trace_events: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def load(cls, path: str, label: Optional[str] = None) -> "RunArtifacts":
        """Load from a ``python -m repro.obs run`` output directory
        (``record.json`` + artifacts) or a bare RunRecord JSON file."""
        if os.path.isdir(path):
            record_path = os.path.join(path, "record.json")
            if not os.path.exists(record_path):
                raise FileNotFoundError(
                    f"{path} has no record.json — not an observatory "
                    f"run directory (create one with "
                    f"`python -m repro.obs run`)")
            record = _load_record_file(record_path)
            out = cls(record=record, label=label or os.path.basename(
                os.path.normpath(path)))
            for fname in sorted(os.listdir(path)):
                fpath = os.path.join(path, fname)
                if fname.endswith(".intervals.jsonl"):
                    out.intervals.extend(_read_jsonl(fpath))
                elif fname.endswith(".provenance.jsonl"):
                    out.provenance.extend(_read_jsonl(fpath))
                elif fname.endswith(".trace.json"):
                    with open(fpath, "r", encoding="utf-8") as fh:
                        out.trace_events.extend(
                            json.load(fh)["traceEvents"])
            return out
        record = _load_record_file(path)
        return cls(record=record, label=label or os.path.splitext(
            os.path.basename(path))[0])


def _load_record_file(path: str) -> RunRecord:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    # Accept both a bare record dict and the disk-cache envelope.
    if "record" in payload and "workload" not in payload:
        payload = payload["record"]
    return RunRecord.from_dict(payload)


def _read_jsonl(path: str) -> List[Dict[str, Any]]:
    rows = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                rows.append(json.loads(line))
    return rows


# ----------------------------------------------------------------------
# headline deltas
# ----------------------------------------------------------------------
def headline_deltas(a: RunRecord, b: RunRecord) -> List[StatDelta]:
    return [StatDelta(name, float(fn(a)), float(fn(b)))
            for name, fn in _HEADLINE]


# ----------------------------------------------------------------------
# heatmaps (from the provenance summary counters on RunRecord.telemetry)
# ----------------------------------------------------------------------
def tile_matrix(record: RunRecord, kind: str) -> List[List[float]]:
    """``rows x cols`` matrix of one per-tile activity counter
    (``telemetry.tile.<t>.<kind>``); zeros where absent."""
    tel = record.telemetry or {}
    matrix = [[0.0] * record.cols for _ in range(record.rows)]
    for tile in range(record.rows * record.cols):
        value = tel.get(f"tile.{tile}.{kind}", 0.0)
        matrix[tile // record.cols][tile % record.cols] = float(value)
    return matrix


def matrix_delta(a: List[List[float]],
                 b: List[List[float]]) -> List[List[float]]:
    return [[vb - va for va, vb in zip(row_a, row_b)]
            for row_a, row_b in zip(a, b)]


def link_flits(record: RunRecord) -> Dict[str, float]:
    """Directed link -> flits, from ``telemetry.link.<s>><d>.flits``."""
    tel = record.telemetry or {}
    out: Dict[str, float] = {}
    for key, value in tel.items():
        if key.startswith("link.") and key.endswith(".flits"):
            out[key[len("link."):-len(".flits")]] = float(value)
    return out


def link_delta_table(
    a: RunRecord, b: RunRecord,
) -> List[Tuple[str, float, float]]:
    """Sorted ``(link, flits_a, flits_b)`` rows over the union of
    links either run used."""
    fa, fb = link_flits(a), link_flits(b)
    links = sorted(set(fa) | set(fb),
                   key=lambda s: tuple(int(x) for x in s.split(">")))
    return [(link, fa.get(link, 0.0), fb.get(link, 0.0))
            for link in links]


def tile_kinds(a: RunRecord, b: RunRecord) -> List[str]:
    """The tile-activity kinds present in either run's telemetry."""
    kinds = set()
    for record in (a, b):
        for key in (record.telemetry or {}):
            if key.startswith("tile."):
                kinds.add(key.split(".", 2)[2])
    return sorted(kinds)


# ----------------------------------------------------------------------
# interval series
# ----------------------------------------------------------------------
def interval_series(
    samples: List[Dict[str, Any]], column: str,
) -> List[float]:
    return [float(s.get(column, 0.0)) for s in samples]


def aligned_series(
    a: List[Dict[str, Any]], b: List[Dict[str, Any]], column: str,
) -> Tuple[List[float], List[float]]:
    """Both runs' per-interval series for one column (sparkline
    input); the caller decides how to render unequal lengths."""
    return interval_series(a, column), interval_series(b, column)


# ----------------------------------------------------------------------
# top-k streams by lifetime (from trace stream spans)
# ----------------------------------------------------------------------
def top_streams(
    trace_events: List[Dict[str, Any]], k: int = 5,
) -> List[Dict[str, Any]]:
    """Top-k stream lifecycle spans by duration from a Chrome trace
    (``cat == "stream"`` complete events). Sorted by duration desc,
    then start cycle asc for determinism."""
    spans = [e for e in trace_events
             if e.get("cat") == "stream" and e.get("ph") == "X"]
    spans.sort(key=lambda e: (-e.get("dur", 0), e.get("ts", 0),
                              e.get("name", "")))
    out = []
    for event in spans[:k]:
        args = event.get("args", {})
        out.append({
            "sid": args.get("sid"),
            "tile": event.get("tid", 0) // 4,
            "start": event.get("ts", 0),
            "duration": event.get("dur", 0),
            "key": args.get("key", ""),
        })
    return out


# ----------------------------------------------------------------------
# cycle-accounting (CPI stack) + critical-path bottlenecks
# ----------------------------------------------------------------------
def cpi_stack(record: RunRecord) -> Dict[str, float]:
    """Bucket -> cycles from the ``cpi.*`` attribution counters
    (empty when the run lacked the attribution pillar)."""
    tel = record.telemetry or {}
    return {
        key[len("cpi."):]: float(value)
        for key, value in tel.items()
        if key.startswith("cpi.") and key != "cpi.total_cycles"
        and key != "cpi.journeys_dropped"
    }


def cpi_table(
    a: RunRecord, b: RunRecord,
) -> List[Tuple[str, float, float]]:
    """``(bucket, cycles_a, cycles_b)`` over the union of buckets —
    the *bottleneck diff*: which buckets floating emptied."""
    ca, cb = cpi_stack(a), cpi_stack(b)
    return [(bucket, ca.get(bucket, 0.0), cb.get(bucket, 0.0))
            for bucket in sorted(set(ca) | set(cb))]


def crit_edges(record: RunRecord) -> Dict[str, float]:
    """``<kind>.<edge>`` -> total cycles from the ``crit.*`` summary
    counters (the span assembler's critical-path profile)."""
    tel = record.telemetry or {}
    return {key[len("crit."):]: float(value)
            for key, value in tel.items() if key.startswith("crit.")}


def bottleneck_table(
    a: RunRecord, b: RunRecord, top: int = 10,
) -> List[Tuple[str, float, float]]:
    """Top edges by max(cycles) across both runs, descending — where
    each system's request latency actually lived."""
    ea, eb = crit_edges(a), crit_edges(b)
    edges = sorted(
        set(ea) | set(eb),
        key=lambda e: (-max(ea.get(e, 0.0), eb.get(e, 0.0)), e),
    )
    return [(edge, ea.get(edge, 0.0), eb.get(edge, 0.0))
            for edge in edges[:top]]


# ----------------------------------------------------------------------
# provenance verdict summary
# ----------------------------------------------------------------------
def verdict_table(
    a: RunRecord, b: RunRecord,
) -> List[Tuple[str, float, float]]:
    """``(verdict, count_a, count_b)`` rows from the ``decisions.*``
    telemetry counters (union of verdicts, sorted)."""

    def counts(record: RunRecord) -> Dict[str, float]:
        tel = record.telemetry or {}
        return {key[len("decisions."):]: float(value)
                for key, value in tel.items()
                if key.startswith("decisions.")}

    ca, cb = counts(a), counts(b)
    return [(verdict, ca.get(verdict, 0.0), cb.get(verdict, 0.0))
            for verdict in sorted(set(ca) | set(cb))]


# ----------------------------------------------------------------------
# the full diff
# ----------------------------------------------------------------------
@dataclass
class RunDiff:
    """Everything the report renders, precomputed."""

    a: RunArtifacts
    b: RunArtifacts
    headline: List[StatDelta]
    tile_heatmaps: Dict[str, Dict[str, List[List[float]]]]
    links: List[Tuple[str, float, float]]
    verdicts: List[Tuple[str, float, float]]
    interval_columns: List[str]
    top_k: int
    top_streams_a: List[Dict[str, Any]]
    top_streams_b: List[Dict[str, Any]]
    # Attribution (empty unless a run carried the attribution pillar /
    # span critical-path counters).
    cpi: List[Tuple[str, float, float]] = field(default_factory=list)
    bottlenecks: List[Tuple[str, float, float]] = field(
        default_factory=list)


_INTERVAL_COLUMNS = (
    "ipc", "noc_util", "l3_mpki", "streams_alive",
    "core_ops", "l2_misses", "se_l3_elements_issued",
)


def diff_runs(a: RunArtifacts, b: RunArtifacts, k: int = 5) -> RunDiff:
    heatmaps: Dict[str, Dict[str, List[List[float]]]] = {}
    if a.record.cols == b.record.cols and a.record.rows == b.record.rows:
        for kind in tile_kinds(a.record, b.record):
            ma = tile_matrix(a.record, kind)
            mb = tile_matrix(b.record, kind)
            heatmaps[kind] = {
                "a": ma, "b": mb, "delta": matrix_delta(ma, mb),
            }
    columns = [c for c in _INTERVAL_COLUMNS
               if any(c in s for s in a.intervals)
               or any(c in s for s in b.intervals)]
    return RunDiff(
        a=a, b=b,
        headline=headline_deltas(a.record, b.record),
        tile_heatmaps=heatmaps,
        links=link_delta_table(a.record, b.record),
        verdicts=verdict_table(a.record, b.record),
        interval_columns=columns,
        top_k=k,
        top_streams_a=top_streams(a.trace_events, k),
        top_streams_b=top_streams(b.trace_events, k),
        cpi=cpi_table(a.record, b.record),
        bottlenecks=bottleneck_table(a.record, b.record),
    )
