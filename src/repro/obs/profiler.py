"""Kernel hot-path profiler: wall-clock per event-callback owner.

The telemetry step hook peeks the queue head before dispatch and
times the dispatch with ``perf_counter``; this module aggregates
``(count, seconds)`` per callback *owner* — the ``__qualname__`` of
the scheduled function, which for bound methods reads
``L3Bank._process`` etc. Sanitizer/telemetry wrappers preserve the
inner ``__qualname__``, so attribution stays on the component even
when checking or tracing layers wrap the callable.

Wall-clock numbers are host-dependent by nature; they are reported in
the ``--profile`` artifact but deliberately kept out of Stats and the
run cache so cached records stay byte-identical across hosts.

Two sample sources feed the accumulator. The step hook times each
queue dispatch (:meth:`KernelProfiler.record`). Deliveries the
network batches inside ``Network._drain_cycle`` — including every
lane-cached packet — would all land on that one dispatch qualname, so
the telemetry layer additionally wraps ``Network.register`` with
per-endpoint timers that credit the *real* handler's ``__qualname__``
(:meth:`KernelProfiler.record_inner`). The dispatch sample then
subtracts the nested handler time it contains, so host seconds are
counted exactly once.
"""

from __future__ import annotations

from typing import Any, Dict, List


class KernelProfiler:
    """Aggregates host time and event counts per callback qualname."""

    def __init__(self) -> None:
        self._acc: Dict[str, List[float]] = {}  # name -> [count, seconds]
        self.events = 0
        # Handler time recorded inside the current dispatch, to be
        # subtracted from the enclosing dispatch sample.
        self._nested_pending = 0.0

    def record(self, fn: Any, seconds: float) -> None:
        nested = self._nested_pending
        if nested:
            self._nested_pending = 0.0
            seconds = seconds - nested if seconds > nested else 0.0
        name = getattr(fn, "__qualname__", repr(fn))
        slot = self._acc.get(name)
        if slot is None:
            slot = self._acc[name] = [0, 0.0]
        slot[0] += 1
        slot[1] += seconds
        self.events += 1

    def record_inner(self, name: str, seconds: float) -> None:
        """Credit a network-delivered handler under its own qualname
        (lane-cached deliveries never surface as queue dispatches)."""
        slot = self._acc.get(name)
        if slot is None:
            slot = self._acc[name] = [0, 0.0]
        slot[0] += 1
        slot[1] += seconds
        self._nested_pending += seconds

    @property
    def total_seconds(self) -> float:
        return sum(slot[1] for slot in self._acc.values())

    def top(self, n: int = 20) -> List[Dict[str, float]]:
        """Top-``n`` callbacks by cumulative host seconds."""
        rows = [
            {
                "callback": name,
                "events": slot[0],
                "seconds": round(slot[1], 6),
                "us_per_event": round(slot[1] / slot[0] * 1e6, 3),
            }
            for name, slot in self._acc.items()
        ]
        rows.sort(key=lambda r: (-r["seconds"], r["callback"]))
        return rows[:n]

    def payload(self, n: int = 20) -> Dict[str, Any]:
        """JSON-ready artifact body (schema in DESIGN.md §8)."""
        return {
            "events": self.events,
            "callbacks": len(self._acc),
            "total_seconds": round(self.total_seconds, 6),
            "top": self.top(n),
        }

    def report(self, n: int = 20) -> str:
        """Human-readable top-N table."""
        lines = [
            f"kernel profile: {self.events} events over "
            f"{self.total_seconds:.3f}s host time",
            f"{'callback':<40} {'events':>10} {'seconds':>10} "
            f"{'us/event':>10}",
        ]
        for row in self.top(n):
            lines.append(
                f"{row['callback']:<40} {row['events']:>10} "
                f"{row['seconds']:>10.3f} {row['us_per_event']:>10.3f}"
            )
        return "\n".join(lines)
