"""Request-lifecycle spans built from telemetry bus events.

Three span families (DESIGN.md §8):

- **mem** — one span per demand/prefetch line fetch, keyed
  ``(tile, line)``: opens at the L1 miss that allocates the MSHR,
  accumulates hops as the request crosses L2 → L3 bank → DRAM →
  data return, closes at the L1 fill.
- **elem** — one span per floated-stream element, keyed
  ``(requester, sid, element)``: opens when the SE_L3 issues the GetU
  at the L3 bank, closes when the DataU lands in the requester's
  SE_L2 buffer. For a confluence multicast the span is attributed to
  the group leader (the ``requester`` stamped on the GetU).
- **stream** — one span per floated-stream *incarnation*, keyed
  ``(tile, sid)`` plus an incarnation ordinal: opens at the SE_core
  float decision, accumulates a hop per bank-to-bank migration and
  per confluence join, closes at sink (core side) or EndStream
  retirement (L3 side), whichever the bus sees first.

Spans record simulated cycles only — they are deterministic and cheap
(no wall clock, no system calls). The collector enforces a global
span cap; opens beyond the cap are counted in ``dropped`` rather than
silently ignored. NoC events are kept in a separate bounded list used
by the exporter for Chrome-trace flow arrows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

Key = Tuple[Any, ...]


@dataclass
class Hop:
    """One timestamped waypoint inside a span."""

    name: str
    cycle: int
    tile: int
    detail: str = ""


@dataclass
class Span:
    """One request lifecycle: open cycle, ordered hops, close cycle."""

    kind: str  # "mem" | "elem" | "stream"
    key: Key
    tile: int  # owning track: the tile that initiated the request
    start: int
    hops: List[Hop] = field(default_factory=list)
    end: Optional[int] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    def duration(self) -> int:
        """Closed duration, or span-so-far for still-open spans."""
        last = self.end
        if last is None:
            last = self.hops[-1].cycle if self.hops else self.start
        return max(1, last - self.start)

    def edges(self) -> List[Tuple[str, int]]:
        """Consecutive waypoint-pair latencies: ``open`` → first hop,
        hop → hop, last hop → ``close``. Edge names join the endpoint
        names with ``>`` (the ``link.<s>><d>`` convention)."""
        pts: List[Tuple[str, int]] = [("open", self.start)]
        for h in self.hops:
            pts.append((h.name, h.cycle))
        if self.end is not None:
            pts.append(("close", self.end))
        return [
            (f"{a}>{b}", bc - ac if bc > ac else 0)
            for (a, ac), (b, bc) in zip(pts, pts[1:])
        ]

    def dominant_edge(self) -> Optional[Tuple[str, int]]:
        """The span's bottleneck: its longest edge (first wins ties)."""
        edges = self.edges()
        if not edges:
            return None
        return max(edges, key=lambda e: e[1])


class SpanCollector:
    """Subscribes to the bus and assembles spans; exporter input."""

    def __init__(self, telemetry, config) -> None:
        self.max_spans = config.max_spans
        self.max_noc_events = config.max_noc_events
        self.spans: List[Span] = []
        self._open: Dict[Key, Span] = {}
        # line address -> open mem-span keys, for hops (L3/DRAM) that
        # only know the address, not the requesting tile.
        self._by_line: Dict[int, List[Key]] = {}
        # (tile, sid) -> incarnation ordinal (sids can re-float).
        self._incarnation: Dict[Tuple[int, Any], int] = {}
        self.opened = 0
        self.closed = 0
        self.dropped = 0
        self.noc_events: List[Dict[str, Any]] = []
        self.noc_dropped = 0
        if telemetry is not None:
            for kind in ("l1_miss", "l1_fill", "l2_miss", "l2_data",
                         "l3_demand", "dram", "getu", "datau",
                         "float", "migrate", "confluence", "sink", "end",
                         "noc"):
                telemetry.subscribe(kind, getattr(self, f"_on_{kind}"))

    # ------------------------------------------------------------------
    # span plumbing (also the public API for synthetic/golden tests)
    # ------------------------------------------------------------------
    def open(self, kind: str, key: Key, tile: int, start: int,
             **meta: Any) -> Optional[Span]:
        if key in self._open:
            return self._open[key]
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return None
        span = Span(kind=kind, key=key, tile=tile, start=start, meta=meta)
        self._open[key] = span
        self.spans.append(span)
        self.opened += 1
        return span

    def hop(self, key: Key, name: str, cycle: int, tile: int,
            detail: str = "") -> None:
        span = self._open.get(key)
        if span is not None:
            span.hops.append(Hop(name=name, cycle=cycle, tile=tile,
                                 detail=detail))

    def close(self, key: Key, cycle: int) -> None:
        span = self._open.pop(key, None)
        if span is not None:
            span.end = cycle
            self.closed += 1

    # ------------------------------------------------------------------
    # mem spans
    # ------------------------------------------------------------------
    def _on_l1_miss(self, ev) -> None:
        if not ev.data.get("fresh", True):
            return  # merged into an in-flight MSHR: same span
        key = ("mem", ev.tile, ev.data["addr"])
        span = self.open(
            "mem", key, ev.tile, ev.cycle,
            addr=ev.data["addr"], write=ev.data.get("write", False),
            prefetch=ev.data.get("prefetch", False),
        )
        if span is not None:
            self._by_line.setdefault(ev.data["addr"], []).append(key)

    def _on_l2_miss(self, ev) -> None:
        self.hop(("mem", ev.tile, ev.data["addr"]), "l2_miss",
                 ev.cycle, ev.tile, detail=ev.data.get("via", ""))

    def _on_l3_demand(self, ev) -> None:
        requester = ev.data.get("requester")
        op = ev.data.get("op", "")
        outcome = ev.data.get("outcome", "")
        self.hop(("mem", requester, ev.data["addr"]), "l3", ev.cycle,
                 ev.tile, detail=f"{op}:{outcome}" if outcome else op)

    def _on_dram(self, ev) -> None:
        # DRAM messages carry the home bank as requester, so attribute
        # the hop to every open mem span for the line.
        detail = ev.data.get("op", "")
        done = ev.data.get("done")
        if done is not None:
            detail = f"{detail} done@{done}"
        for key in self._by_line.get(ev.data["addr"], ()):  # usually 1
            self.hop(key, "dram", ev.cycle, ev.tile, detail=detail)

    def _on_l2_data(self, ev) -> None:
        self.hop(("mem", ev.tile, ev.data["addr"]), "l2_data",
                 ev.cycle, ev.tile)

    def _on_l1_fill(self, ev) -> None:
        key = ("mem", ev.tile, ev.data["addr"])
        self.close(key, ev.cycle)
        keys = self._by_line.get(ev.data["addr"])
        if keys is not None:
            try:
                keys.remove(key)
            except ValueError:
                pass
            if not keys:
                del self._by_line[ev.data["addr"]]

    # ------------------------------------------------------------------
    # elem spans
    # ------------------------------------------------------------------
    @staticmethod
    def _elem_keys(requester, sid, element) -> List[Key]:
        # Coalesced sublines arrive as an (start, end) range covering
        # several elements — the GetU and DataU both carry the range,
        # so a single span keyed on the range start is enough.
        first = element[0] if isinstance(element, tuple) else element
        return [("elem", requester, sid, first)]

    def _on_getu(self, ev) -> None:
        requester = ev.data.get("requester")
        sid = ev.data.get("sid")
        for key in self._elem_keys(requester, sid, ev.data.get("element")):
            span = self.open(
                "elem", key, requester, ev.cycle,
                sid=sid, element=key[3], bank=ev.tile,
                category=ev.data.get("category", ""),
            )
            if span is not None:
                span.hops.append(Hop("getu", ev.cycle, ev.tile))

    def _on_datau(self, ev) -> None:
        for key in self._elem_keys(ev.tile, ev.data.get("sid"),
                                   ev.data.get("element")):
            self.hop(key, "datau", ev.cycle, ev.tile)
            self.close(key, ev.cycle)

    # ------------------------------------------------------------------
    # stream lifecycle spans
    # ------------------------------------------------------------------
    def _stream_key(self, tile, sid) -> Key:
        n = self._incarnation.get((tile, sid), 0)
        return ("stream", tile, sid, n)

    def _on_float(self, ev) -> None:
        sid = ev.data.get("sid")
        key = self._stream_key(ev.tile, sid)
        span = self.open(
            "stream", key, ev.tile, ev.cycle,
            sid=sid, float_elem=ev.data.get("elem"),
        )
        if span is not None:
            span.hops.append(Hop("float", ev.cycle, ev.tile, ev.detail))

    def _on_migrate(self, ev) -> None:
        key = self._stream_key(ev.data.get("requester"), ev.data.get("sid"))
        self.hop(key, "migrate", ev.cycle, ev.tile,
                 detail=f"-> bank {ev.data.get('to_bank')}")

    def _on_confluence(self, ev) -> None:
        key = self._stream_key(ev.data.get("requester"), ev.data.get("sid"))
        self.hop(key, "confluence", ev.cycle, ev.tile,
                 detail=f"group of {ev.data.get('size')}")

    def _close_stream(self, tile, sid, name: str, ev) -> None:
        key = self._stream_key(tile, sid)
        span = self._open.get(key)
        if span is None:
            return  # already closed by the other side (sink vs end)
        span.hops.append(Hop(name, ev.cycle, ev.tile))
        self.close(key, ev.cycle)
        self._incarnation[(tile, sid)] = key[3] + 1

    def _on_sink(self, ev) -> None:
        self._close_stream(ev.tile, ev.data.get("sid"), "sink", ev)

    def _on_end(self, ev) -> None:
        self._close_stream(ev.data.get("requester"), ev.data.get("sid"),
                           "end", ev)

    # ------------------------------------------------------------------
    # NoC events (flow arrows)
    # ------------------------------------------------------------------
    def _on_noc(self, ev) -> None:
        if len(self.noc_events) >= self.max_noc_events:
            self.noc_dropped += 1
            return
        self.noc_events.append({
            "src": ev.tile, "dst": ev.data.get("dst"),
            "port": ev.data.get("port"), "kind": ev.data.get("cls"),
            "pid": ev.data.get("pid"), "depart": ev.cycle,
            "arrive": ev.data.get("arrive", ev.cycle),
        })

    # ------------------------------------------------------------------
    def by_kind(self, kind: str) -> List[Span]:
        return [s for s in self.spans if s.kind == kind]

    def critical_profile(self) -> Dict[Tuple[str, str], List[int]]:
        """Aggregate critical-path profile across all spans.

        Maps ``(span kind, edge name)`` to ``[traversals, total
        cycles, dominated]`` where *dominated* counts the spans whose
        single longest edge this was — the per-run bottleneck census
        the attribution report ranks.
        """
        profile: Dict[Tuple[str, str], List[int]] = {}
        for span in self.spans:
            best: Optional[Tuple[str, int]] = None
            for edge, lat in span.edges():
                slot = profile.setdefault((span.kind, edge), [0, 0, 0])
                slot[0] += 1
                slot[1] += lat
                if best is None or lat > best[1]:
                    best = (edge, lat)
            if best is not None:
                profile[(span.kind, best[0])][2] += 1
        return profile
