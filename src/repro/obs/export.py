"""Telemetry artifact writers: Chrome trace JSON, interval series,
profiler reports.

The trace exporter emits Chrome trace-event format (the JSON object
form: ``{"traceEvents": [...]}``) openable in Perfetto or
``chrome://tracing``. Mapping (DESIGN.md §8):

- one *process* (pid) per simulation point, named with the point slug;
- four *threads* (tracks) per tile: ``tile T mem`` (demand/prefetch
  line fetches), ``tile T stream-data`` (floated element spans),
  ``tile T streams`` (float→migrate→sink lifecycle spans) and
  ``tile T noc`` (packet departures/arrivals);
- spans are ``ph: "X"`` complete events with ``ts``/``dur`` in
  simulated cycles and their hop list in ``args.hops`` as
  ``[name, cycle, tile, detail]`` rows;
- NoC hops are ``ph: "s"``/``"f"`` flow arrows anchored on dur-1
  slices at the departure and arrival tracks, ``id``-ed by packet.

Everything emitted is simulated-time data — export is deterministic
for a deterministic run.
"""

from __future__ import annotations

import csv
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.obs.interval import IntervalSampler
from repro.obs.spans import Span, SpanCollector

_TRACKS = ("mem", "stream-data", "streams", "noc")
_TRACK_OF_KIND = {"mem": 0, "elem": 1, "stream": 2}
_PH_ORDER = {"M": 0, "X": 1, "s": 2, "f": 3}


def point_slug(params: Dict[str, Any]) -> str:
    """Deterministic human-readable label for one simulation point."""
    parts = [
        str(params.get("workload", "?")),
        str(params.get("config", "?")),
        str(params.get("core", "?")),
        f"{params.get('cols', '?')}x{params.get('rows', '?')}",
        f"s{params.get('scale', '?')}",
    ]
    seed = params.get("seed", 0)
    if seed:
        parts.append(f"seed{seed}")
    obs = params.get("obs")
    if obs:
        parts.append("obs-" + str(obs).replace(",", "+"))
    return "-".join(parts)


def _span_name(span: Span) -> str:
    if span.kind == "mem":
        tag = "pf" if span.meta.get("prefetch") else (
            "st" if span.meta.get("write") else "ld")
        return f"{tag} {span.meta.get('addr', 0):#x}"
    if span.kind == "elem":
        return f"sid {span.meta.get('sid')} elem {span.meta.get('element')}"
    if span.kind == "stream":
        return f"stream sid {span.meta.get('sid')} #{span.key[3]}"
    return span.kind


def chrome_trace_events(
    spans: SpanCollector, pid: int = 1, point: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Flatten one point's spans + NoC events into trace events."""
    events: List[Dict[str, Any]] = []
    tids_used: Dict[int, str] = {}

    def tid_for(tile: int, track: int) -> int:
        tid = int(tile) * len(_TRACKS) + track
        tids_used.setdefault(tid, f"tile {tile} {_TRACKS[track]}")
        return tid

    for span in spans.spans:
        args: Dict[str, Any] = {
            "key": "/".join(str(k) for k in span.key),
            "hops": [[h.name, h.cycle, h.tile, h.detail]
                     for h in span.hops],
        }
        for name, value in sorted(span.meta.items()):
            args[name] = str(value) if isinstance(value, tuple) else value
        if not span.closed:
            args["open"] = True
        events.append({
            "ph": "X", "pid": pid,
            "tid": tid_for(span.tile, _TRACK_OF_KIND[span.kind]),
            "ts": span.start, "dur": span.duration(),
            "name": _span_name(span), "cat": span.kind, "args": args,
        })
    for noc in spans.noc_events:
        flow_id = f"{pid}.{noc['pid']}"
        src_tid = tid_for(noc["src"], 3)
        dst_tid = tid_for(noc["dst"], 3)
        name = f"{noc['kind']} -> {noc['dst']}:{noc['port']}"
        events.append({
            "ph": "X", "pid": pid, "tid": src_tid, "ts": noc["depart"],
            "dur": 1, "name": name, "cat": "noc",
        })
        events.append({
            "ph": "s", "pid": pid, "tid": src_tid, "ts": noc["depart"],
            "id": flow_id, "name": "noc", "cat": "noc",
        })
        events.append({
            "ph": "X", "pid": pid, "tid": dst_tid, "ts": noc["arrive"],
            "dur": 1, "name": f"{noc['kind']} from {noc['src']}",
            "cat": "noc",
        })
        events.append({
            "ph": "f", "bp": "e", "pid": pid, "tid": dst_tid,
            "ts": noc["arrive"], "id": flow_id, "name": "noc",
            "cat": "noc",
        })
    # Track naming metadata (Perfetto reads process_name/thread_name).
    events.append({
        "ph": "M", "pid": pid, "ts": 0, "name": "process_name",
        "args": {"name": point or f"point {pid}"},
    })
    for tid in sorted(tids_used):
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "ts": 0,
            "name": "thread_name", "args": {"name": tids_used[tid]},
        })
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "ts": 0,
            "name": "thread_sort_index", "args": {"sort_index": tid},
        })
    # Stable, deterministic order: metadata first, then by timestamp.
    events.sort(key=lambda e: (
        0 if e["ph"] == "M" else 1,
        e["ts"], e["pid"], e.get("tid", -1),
        _PH_ORDER.get(e["ph"], 9), e.get("name", ""),
    ))
    return events


def write_chrome_trace(path: str, events: List[Dict[str, Any]]) -> str:
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def write_intervals(path: str, samples: List[Dict[str, Any]]) -> str:
    """JSONL by default; CSV when ``path`` ends in ``.csv``."""
    columns = ["point"] + IntervalSampler.columns()
    if path.endswith(".csv"):
        with open(path, "w", encoding="utf-8", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=columns,
                                    extrasaction="ignore")
            writer.writeheader()
            for sample in samples:
                writer.writerow(sample)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            for sample in samples:
                fh.write(json.dumps(sample, sort_keys=True) + "\n")
    return path


def write_profile(path: str, points: List[Dict[str, Any]]) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"points": points}, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def provenance_instant_events(
    ledger, pid: int = 1, point: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Decision-ledger records as Chrome-trace ``ph: "i"`` instant
    events on the per-tile *streams* track (same tid scheme as
    :func:`chrome_trace_events`), so verdicts line up visually with
    the stream lifecycle spans they decided.

    Kept separate from :func:`chrome_trace_events` so span-only
    exports (and their goldens) are unaffected by the provenance
    pillar.
    """
    events: List[Dict[str, Any]] = []
    streams_track = _TRACKS.index("streams")
    for rec in ledger.records:
        args: Dict[str, Any] = {"verdict": rec.verdict}
        if rec.sid is not None:
            args["sid"] = rec.sid
        if rec.requester is not None:
            args["requester"] = rec.requester
        if rec.reason:
            args["reason"] = rec.reason
        for name, value in sorted(rec.inputs.items()):
            args[name] = str(value) if isinstance(value, tuple) else value
        if point is not None:
            args["point"] = point
        events.append({
            "ph": "i", "s": "t", "pid": pid,
            "tid": int(rec.tile) * len(_TRACKS) + streams_track,
            "ts": rec.cycle, "name": rec.verdict, "cat": "decision",
            "args": args,
        })
    return events


def write_provenance(path: str, rows: List[Dict[str, Any]]) -> str:
    """Queryable JSONL: one decision record per line, ledger order."""
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return path


class TelemetrySink:
    """Aggregates per-point telemetry for the harness CLI.

    The runner calls :meth:`collect` after each fresh simulation (see
    ``repro.harness.runner.configure_telemetry``); the CLI calls
    :meth:`write` once the figure completes. Cache hits skip
    simulation entirely and therefore contribute no telemetry — the
    CLI warns when that leaves a requested artifact empty.
    """

    def __init__(
        self,
        trace_out: Optional[str] = None,
        interval_out: Optional[str] = None,
        profile_out: Optional[str] = None,
        provenance_out: Optional[str] = None,
        top_n: int = 20,
    ) -> None:
        self.trace_out = trace_out
        self.interval_out = interval_out
        self.profile_out = profile_out
        self.provenance_out = provenance_out
        self.top_n = top_n
        self.points = 0
        self._trace_events: List[Dict[str, Any]] = []
        self._samples: List[Dict[str, Any]] = []
        self._profiles: List[Dict[str, Any]] = []
        self._provenance_rows: List[Dict[str, Any]] = []
        # Nonzero drop counters seen per point: bounded buffers
        # truncating silently would corrupt attribution totals, so the
        # sink surfaces every truncation loudly.
        self.drop_warnings: List[str] = []

    def _check_drops(self, telemetry, slug: str) -> None:
        dropped = {
            name: value
            for name, value in telemetry.summary().items()
            if "dropped" in name and value
        }
        if dropped:
            detail = ", ".join(
                f"{name}={int(value)}" for name, value in sorted(dropped.items())
            )
            message = (
                f"[obs] WARNING {slug}: telemetry buffers overflowed "
                f"and dropped data ({detail}); raise the caps or "
                f"shrink the point — derived totals are incomplete"
            )
            self.drop_warnings.append(message)
            print(message, file=sys.stderr)

    def collect(self, telemetry, params: Dict[str, Any]) -> None:
        self.points += 1
        slug = point_slug(params)
        self._check_drops(telemetry, slug)
        if telemetry.spans is not None and self.trace_out:
            self._trace_events.extend(chrome_trace_events(
                telemetry.spans, pid=self.points, point=slug))
        if telemetry.sampler is not None and self.interval_out:
            for sample in telemetry.sampler.samples:
                self._samples.append({"point": slug, **sample})
        if telemetry.profiler is not None and self.profile_out:
            self._profiles.append(
                {"point": slug, **telemetry.profiler.payload(self.top_n)})
        ledger = getattr(telemetry, "provenance", None)
        if ledger is not None:
            if self.provenance_out:
                self._provenance_rows.extend(ledger.to_rows(slug))
            if self.trace_out:
                self._trace_events.extend(provenance_instant_events(
                    ledger, pid=self.points, point=slug))

    def ingest_dir(self, artifact_dir: str) -> int:
        """Merge per-point artifacts written by worker processes (via
        ``REPRO_TELEMETRY_DIR``) into this sink, remapping each
        point's pid (workers always export with pid 1) so merged
        traces keep one process per point. Returns the number of
        points ingested. Files are read in sorted order, so the merge
        is deterministic regardless of worker scheduling."""
        slugs = set()
        for fname in sorted(os.listdir(artifact_dir)):
            path = os.path.join(artifact_dir, fname)
            for suffix in (".trace.json", ".intervals.jsonl",
                           ".profile.json", ".provenance.jsonl"):
                if fname.endswith(suffix):
                    slugs.add(fname[: -len(suffix)])
            if fname.endswith(".trace.json"):
                with open(path, "r", encoding="utf-8") as fh:
                    events = json.load(fh)["traceEvents"]
                self.points += 1
                for event in events:
                    event["pid"] = self.points
                    if "id" in event:
                        # Flow-arrow ids are "<pid>.<packet>"; keep
                        # them unique across merged points.
                        suffix = str(event["id"]).split(".", 1)[-1]
                        event["id"] = f"{self.points}.{suffix}"
                self._trace_events.extend(events)
            elif fname.endswith(".intervals.jsonl"):
                with open(path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        if line.strip():
                            self._samples.append(json.loads(line))
            elif fname.endswith(".profile.json"):
                with open(path, "r", encoding="utf-8") as fh:
                    self._profiles.extend(json.load(fh)["points"])
            elif fname.endswith(".provenance.jsonl"):
                with open(path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        if line.strip():
                            self._provenance_rows.append(json.loads(line))
        return len(slugs)

    def profile_report(self) -> str:
        lines = []
        for entry in self._profiles:
            lines.append(f"== {entry['point']} ==")
            lines.append(
                f"{'callback':<40} {'events':>10} {'seconds':>10} "
                f"{'us/event':>10}"
            )
            for row in entry["top"]:
                lines.append(
                    f"{row['callback']:<40} {row['events']:>10} "
                    f"{row['seconds']:>10.3f} {row['us_per_event']:>10.3f}"
                )
        return "\n".join(lines)

    def write(self) -> List[str]:
        written: List[str] = []
        if self.trace_out:
            written.append(
                write_chrome_trace(self.trace_out, self._trace_events))
        if self.interval_out:
            written.append(write_intervals(self.interval_out, self._samples))
        if self.profile_out:
            written.append(write_profile(self.profile_out, self._profiles))
        if self.provenance_out:
            written.append(write_provenance(
                self.provenance_out, self._provenance_rows))
        return written


def export_point_artifacts(telemetry, out_dir: str, slug: str) -> List[str]:
    """Standalone per-point export for ``REPRO_TELEMETRY_DIR`` use
    (no CLI sink, e.g. library callers or worker processes)."""
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    ledger = getattr(telemetry, "provenance", None)
    if telemetry.spans is not None:
        events = chrome_trace_events(telemetry.spans, pid=1, point=slug)
        if ledger is not None:
            events.extend(provenance_instant_events(ledger, pid=1,
                                                    point=slug))
        written.append(write_chrome_trace(
            os.path.join(out_dir, f"{slug}.trace.json"), events))
    if telemetry.sampler is not None:
        written.append(write_intervals(
            os.path.join(out_dir, f"{slug}.intervals.jsonl"),
            [{"point": slug, **s} for s in telemetry.sampler.samples]))
    if telemetry.profiler is not None:
        written.append(write_profile(
            os.path.join(out_dir, f"{slug}.profile.json"),
            [{"point": slug, **telemetry.profiler.payload()}]))
    if ledger is not None:
        written.append(write_provenance(
            os.path.join(out_dir, f"{slug}.provenance.jsonl"),
            ledger.to_rows(slug)))
    return written
