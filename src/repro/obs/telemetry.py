"""Unified telemetry layer: the event bus and component hooks.

``Telemetry`` is the observability counterpart of
:class:`~repro.sim.sanitizer.Sanitizer` and follows the same
attachment contract: when enabled (``REPRO_TELEMETRY`` environment
variable, the harness's ``--trace-out`` / ``--interval-stats`` /
``--profile`` flags, or an explicit ``Telemetry(sim, config)`` call)
it hangs off the shared :class:`~repro.sim.kernel.Simulator` and
components self-register at construction::

    tel = getattr(sim, "telemetry", None)
    if tel is not None:
        tel.watch_l1(self)

When disabled the hooks cost nothing: ``sim.telemetry`` is ``None``,
no method is wrapped, and no per-event guard exists anywhere.

The layer's pillars are each independently enabled by
:class:`TelemetryConfig` (DESIGN.md §8):

- **spans** (:mod:`repro.obs.spans`): request-lifecycle spans for
  core loads/stores, floated-stream elements, and floated-stream
  lifetimes, exportable as Chrome trace-event JSON;
- **interval** (:mod:`repro.obs.interval`): a time-series sampler
  snapshotting Stats deltas every N cycles;
- **profile** (:mod:`repro.obs.profiler`): a host-side profiler
  attributing wall-clock and event counts per event callback;
- **provenance** (:mod:`repro.obs.provenance`): the decision ledger
  plus tile/link activity matrices (DESIGN.md §11);
- **attribution** (:mod:`repro.obs.attribution`): per-core cycle
  accounting into CPI-stack buckets with an exact conservation
  assertion (DESIGN.md §15).

Underneath the pillars sits a typed publish/subscribe **event bus**:
the wrapped component methods ``publish`` :class:`BusEvent` records
(kind, cycle, tile, human detail, structured data) and any number of
consumers ``subscribe`` per kind — the span collector, the interval
sampler's gauges and :class:`~repro.sim.trace.Tracer` are all plain
subscribers. Publishing with no subscriber for the kind is a
dictionary miss and an integer increment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

ENV_TELEMETRY = "REPRO_TELEMETRY"
ENV_INTERVAL = "REPRO_TELEMETRY_INTERVAL"
ENV_TELEMETRY_DIR = "REPRO_TELEMETRY_DIR"

_OFF_VALUES = ("", "0", "off", "false", "no")
_ALL_VALUES = ("1", "on", "true", "yes", "all")

PILLARS = ("spans", "interval", "profile", "provenance", "attribution")

DEFAULT_INTERVAL = 10_000

# Every kind the instrumented components publish. The first six match
# the Tracer's historical vocabulary exactly (sim/trace.py).
# ``decision`` carries float/no-float/sink/config/follow verdicts with
# their full policy-input snapshot (provenance pillar, DESIGN.md §11).
KINDS = (
    "float", "sink", "migrate", "confluence", "credit", "end",
    "l1_miss", "l1_fill", "l2_miss", "l2_data", "l3_demand",
    "getu", "datau", "dram", "noc", "decision",
)


@dataclass
class TelemetryConfig:
    """Which pillars are active, and their bounds.

    A config with every pillar off is still useful: the event bus and
    component hooks run, which is what the Tracer needs.
    """

    spans: bool = False
    interval: int = 0  # sampling period in cycles; 0 disables
    profile: bool = False
    provenance: bool = False  # decision ledger + tile/link activity
    attribution: bool = False  # per-core CPI-stack cycle accounting
    max_spans: int = 200_000  # open+closed span cap (drops counted)
    max_noc_events: int = 20_000  # exported NoC flow arrows cap
    max_decisions: int = 100_000  # provenance ledger cap (drops counted)


def enabled_by_env() -> bool:
    """Is ``REPRO_TELEMETRY`` set to a truthy value?"""
    return os.environ.get(ENV_TELEMETRY, "").strip().lower() not in _OFF_VALUES


def config_from_env() -> Optional[TelemetryConfig]:
    """Parse ``REPRO_TELEMETRY`` (``1``/``all`` or a comma list of
    pillars) plus ``REPRO_TELEMETRY_INTERVAL`` into a config."""
    raw = os.environ.get(ENV_TELEMETRY, "").strip().lower()
    if raw in _OFF_VALUES:
        return None
    if raw in _ALL_VALUES:
        enabled = set(PILLARS)
    else:
        enabled = {p.strip() for p in raw.split(",") if p.strip()}
        unknown = enabled - set(PILLARS)
        if unknown:
            raise ValueError(
                f"{ENV_TELEMETRY} names unknown pillars {sorted(unknown)}; "
                f"valid: {PILLARS} (or 1/all)"
            )
    interval = 0
    if "interval" in enabled:
        interval = int(os.environ.get(ENV_INTERVAL, str(DEFAULT_INTERVAL)))
    return TelemetryConfig(
        spans="spans" in enabled,
        interval=interval,
        profile="profile" in enabled,
        provenance="provenance" in enabled,
        attribution="attribution" in enabled,
    )


def maybe_attach(sim) -> Optional["Telemetry"]:
    """Attach a telemetry layer to ``sim`` iff the environment asks."""
    config = config_from_env()
    if config is not None:
        return Telemetry(sim, config)
    return None


@dataclass(frozen=True)
class BusEvent:
    """One published telemetry event."""

    kind: str
    cycle: int
    tile: int
    detail: str = ""
    data: Dict[str, Any] = field(default_factory=dict)


class Telemetry:
    """The per-simulator telemetry hub (bus + pillars + hooks)."""

    _WATCH_FLAG = "_obs_watched"

    def __init__(self, sim, config: Optional[TelemetryConfig] = None) -> None:
        from repro.obs.interval import IntervalSampler
        from repro.obs.profiler import KernelProfiler
        from repro.obs.spans import SpanCollector

        self.sim = sim
        sim.telemetry = self
        self.config = config or TelemetryConfig()
        self._subs: Dict[str, List[Callable[[BusEvent], None]]] = {}
        self.bus_events = 0
        # Gauge: floated streams currently alive, as (tile, sid) pairs
        # (maintained on the bus path so every pillar can read it).
        self._alive: Set[Tuple[int, Optional[int]]] = set()
        self.spans: Optional[SpanCollector] = (
            SpanCollector(self, self.config) if self.config.spans else None
        )
        self.sampler: Optional[IntervalSampler] = (
            IntervalSampler(self.config.interval, alive=lambda: len(self._alive))
            if self.config.interval > 0 else None
        )
        self.profiler: Optional[KernelProfiler] = (
            KernelProfiler() if self.config.profile else None
        )
        self.provenance = None
        if self.config.provenance:
            from repro.obs.provenance import ProvenanceLedger

            self.provenance = ProvenanceLedger(self, self.config)
        self.attribution = None
        if self.config.attribution:
            from repro.obs.attribution import CycleAccountant

            self.attribution = CycleAccountant(self)
        if self.sampler is not None or self.profiler is not None:
            self._install_step_hook()

    # ------------------------------------------------------------------
    # event bus
    # ------------------------------------------------------------------
    def subscribe(self, kind: str, handler: Callable[[BusEvent], None]) -> None:
        """Register ``handler`` for every published event of ``kind``."""
        if kind not in KINDS:
            raise ValueError(f"unknown telemetry kind {kind!r}")
        self._subs.setdefault(kind, []).append(handler)

    def publish(self, kind: str, tile: int, detail: str = "", **data: Any) -> None:
        """Publish one event to every subscriber of ``kind``."""
        self.bus_events += 1
        # Floated-stream gauge bookkeeping (set ops are idempotent, so
        # sink-then-end double closes are harmless).
        if kind == "float":
            self._alive.add((tile, data.get("sid")))
        elif kind == "sink":
            self._alive.discard((tile, data.get("sid")))
        elif kind == "end":
            self._alive.discard((data.get("requester", tile), data.get("sid")))
        subs = self._subs.get(kind)
        if not subs:
            return
        event = BusEvent(
            kind=kind, cycle=self.sim.now, tile=tile, detail=detail, data=data,
        )
        for handler in subs:
            handler(event)

    @property
    def streams_alive(self) -> int:
        return len(self._alive)

    # ------------------------------------------------------------------
    # kernel heartbeat (profiler attribution + interval cadence)
    # ------------------------------------------------------------------
    def _install_step_hook(self) -> None:
        from time import perf_counter

        sim = self.sim
        inner_step = sim.step
        profiler = self.profiler
        sampler = self.sampler

        def step() -> bool:
            if profiler is not None:
                nxt = sim.peek_event()
                fn = nxt[1] if nxt is not None else None
                t0 = perf_counter()
                ran = inner_step()
                if fn is not None:
                    profiler.record(fn, perf_counter() - t0)
            else:
                ran = inner_step()
            if sampler is not None:
                sampler.on_step(sim.now)
            return ran

        step.__qualname__ = getattr(inner_step, "__qualname__", "Simulator.step")
        sim.step = step

    # ------------------------------------------------------------------
    # component hooks (sanitizer-style constructor registration)
    # ------------------------------------------------------------------
    def _claim(self, obj: Any) -> bool:
        """True exactly once per object — guards double wrapping when a
        component registered at construction is later adopt()-ed."""
        if getattr(obj, self._WATCH_FLAG, None) is self:
            return False
        setattr(obj, self._WATCH_FLAG, self)
        return True

    @staticmethod
    def _line(addr: int) -> int:
        from repro.mem.addr import line_addr

        return line_addr(addr)

    def watch_network(self, net) -> None:
        """Publish a ``noc`` event per delivery scheduling: carries the
        injection cycle (now) and the arrival cycle, which is exactly
        the pair a Chrome-trace flow arrow needs."""
        if not self._claim(net):
            return
        tel = self
        inner = net._deliver_at

        def deliver_at(when: int, packet) -> None:
            tel.publish(
                "noc", tile=packet.src,
                detail=f"{packet.kind} -> {packet.dst}:{packet.dst_port}",
                dst=packet.dst, port=packet.dst_port, cls=packet.kind,
                pid=packet.pid, arrive=when,
            )
            inner(when, packet)

        deliver_at.__qualname__ = getattr(inner, "__qualname__", "Network._deliver_at")
        net._deliver_at = deliver_at
        if self.profiler is not None:
            # Per-endpoint host-time attribution: the lane cache and
            # the batched _drain_cycle dispatch make the step hook see
            # a shared wrapper, so wrap each registration with a timer
            # that credits the real handler's __qualname__. The step
            # hook's dispatch sample subtracts this nested time
            # (KernelProfiler.record_inner) to avoid double counting.
            from time import perf_counter

            profiler = self.profiler
            inner_register = net.register

            def register(tile: int, port: str, handler) -> None:
                name = getattr(handler, "__qualname__", repr(handler))

                def timed(pkt) -> None:
                    t0 = perf_counter()
                    handler(pkt)
                    profiler.record_inner(name, perf_counter() - t0)

                timed.__qualname__ = name
                inner_register(tile, port, timed)

            register.__qualname__ = getattr(
                inner_register, "__qualname__", "Network.register"
            )
            net.register = register
        if self.provenance is None:
            return
        # Per-link flit accounting for the differential observatory's
        # NoC heatmap: recompute each packet's route (the mesh routing
        # is deterministic) and charge its flits to every hop.
        ledger = self.provenance
        inner_send = net.send

        def send(packet, extra_delay: int = 0):
            route = net._route_cache.get((packet.src, packet.dst))
            if route is None:
                route = net.mesh.route(packet.src, packet.dst)
            ledger.record_links(route, packet.flits(net.link_bits))
            return inner_send(packet, extra_delay)

        send.__qualname__ = getattr(inner_send, "__qualname__", "Network.send")
        net.send = send
        inner_multicast = net.multicast

        def multicast(src, dsts, kind, payload_bits, dst_port, body=None):
            from repro.noc.topology import Mesh
            from repro.noc.message import Packet

            uniq = list(dict.fromkeys(dsts))
            if uniq:
                template = Packet(
                    src=src, dst=uniq[0], kind=kind,
                    payload_bits=payload_bits, dst_port=dst_port,
                )
                links = Mesh.unique_links(net.mesh.multicast_tree(src, uniq))
                ledger.record_links(sorted(links),
                                    template.flits(net.link_bits))
            return inner_multicast(src, dsts, kind, payload_bits,
                                   dst_port, body)

        multicast.__qualname__ = getattr(
            inner_multicast, "__qualname__", "Network.multicast"
        )
        net.multicast = multicast

    def watch_core(self, core) -> None:
        """Install the cycle accountant's commit-front hooks. A no-op
        unless the attribution pillar is on — every other pillar keeps
        the core entirely unhooked."""
        if self.attribution is None:
            return
        if not self._claim(core):
            return
        self.attribution.watch_core(core)

    def watch_l1(self, l1) -> None:
        if not self._claim(l1):
            return
        tel = self
        inner_miss = l1._miss

        def miss(req) -> None:
            base = tel._line(req.addr)
            fresh = l1.mshr.lookup(base) is None
            inner_miss(req)
            tel.publish(
                "l1_miss", tile=l1.tile, detail=f"{base:#x}",
                addr=base, write=req.is_write, prefetch=req.prefetch,
                fresh=fresh, sid=req.stream_id, floating=req.floating,
            )

        miss.__qualname__ = getattr(inner_miss, "__qualname__", "L1Cache._miss")
        l1._miss = miss
        inner_fill = l1._fill

        def fill(base: int, result) -> None:
            inner_fill(base, result)
            tel.publish(
                "l1_fill", tile=l1.tile, detail=f"{base:#x}", addr=base,
                reason=l1.last_fill_reason,
            )

        fill.__qualname__ = getattr(inner_fill, "__qualname__", "L1Cache._fill")
        l1._fill = fill

    def watch_l2(self, l2) -> None:
        if not self._claim(l2):
            return
        tel = self
        inner_miss = l2._miss

        def miss(req, line) -> None:
            base = tel._line(req.addr)
            fresh = l2.mshr.lookup(base) is None
            inner_miss(req, line)
            tel.publish(
                "l2_miss", tile=l2.tile, detail=f"{base:#x}",
                addr=base, write=req.is_write, prefetch=req.prefetch,
                fresh=fresh, via=l2.last_miss_kind,
            )

        miss.__qualname__ = getattr(inner_miss, "__qualname__", "L2Cache._miss")
        l2._miss = miss
        inner_data = l2._data

        def data(pkt, msg) -> None:
            inner_data(pkt, msg)
            base = tel._line(msg.addr)
            tel.publish(
                "l2_data", tile=l2.tile, detail=f"{base:#x}",
                addr=base, src=pkt.src,
            )

        data.__qualname__ = getattr(inner_data, "__qualname__", "L2Cache._data")
        l2._data = data

    def watch_l3(self, bank) -> None:
        if not self._claim(bank):
            return
        tel = self
        inner_demand = bank._demand

        def demand(src: int, msg) -> None:
            inner_demand(src, msg)
            tel.publish(
                "l3_demand", tile=bank.tile,
                detail=f"{msg.op} {tel._line(msg.addr):#x} "
                       f"{bank.last_outcome}",
                addr=tel._line(msg.addr), op=msg.op,
                requester=msg.requester, lat=bank.latency,
                outcome=bank.last_outcome,
            )

        demand.__qualname__ = getattr(inner_demand, "__qualname__", "L3Bank._demand")
        bank._demand = demand
        inner_read = bank.stream_read

        def stream_read(addr: int, requester: int, **kwargs) -> None:
            tel.publish(
                "getu", tile=bank.tile,
                detail=f"sid {kwargs.get('stream_id')} "
                       f"elem {kwargs.get('element')}",
                addr=tel._line(addr), requester=requester,
                sid=kwargs.get("stream_id"), element=kwargs.get("element"),
                category=kwargs.get("category", "float_affine"),
            )
            inner_read(addr, requester, **kwargs)

        stream_read.__qualname__ = getattr(
            inner_read, "__qualname__", "L3Bank.stream_read"
        )
        bank.stream_read = stream_read

    @staticmethod
    def _wrap_port(net, tile: int, port: str, make) -> None:
        """Wrap the handler the network holds for ``(tile, port)``.

        ``handle`` methods reached *through the network* must be
        wrapped in the registration table — the network dispatches the
        callable it stored, so patching the instance attribute after
        ``net.register`` ran would never fire. Wrapping the stored
        entry also composes with the sanitizer's own handler wrapper.
        """
        key = (tile, port)
        inner = net._handlers.get(key)
        if inner is None:
            return
        wrapped = make(inner)
        wrapped.__qualname__ = getattr(
            inner, "__qualname__", f"handler[{tile},{port}]"
        )
        net._handlers[key] = wrapped

    def watch_dram(self, ctrl) -> None:
        if not self._claim(ctrl):
            return
        tel = self

        def make(inner):
            def handle(pkt) -> None:
                body = pkt.body
                inner(pkt)
                tel.publish(
                    "dram", tile=ctrl.tile,
                    detail=f"{body.op} {body.addr:#x}",
                    addr=tel._line(body.addr), op=body.op,
                    done=ctrl.last_done,
                )
            return handle

        self._wrap_port(ctrl.net, ctrl.tile, "dram", make)

    @staticmethod
    def _policy_snapshot(se, stream) -> Dict[str, Any]:
        """The float/sink policy's complete input state for one stream
        (Table II history + pattern class + bank locality + progress)
        — what a provenance record stores as the decision's evidence."""
        ent = se.history.entry(stream.sid)
        pattern = stream.spec.pattern
        snap: Dict[str, Any] = {
            "requests": ent.requests, "reuses": ent.reuses,
            "misses": ent.misses, "aliased": ent.aliased,
            "miss_ratio": round(ent.miss_ratio, 4),
            "pattern": type(pattern).__name__,
            "length": stream.spec.length,
            "next_issue": stream.next_issue,
            "consecutive_hits": stream.consecutive_hits,
            # Windowed shadow counters + revocation state (the smart
            # policy's extra decision inputs; zero under static).
            "w_requests": ent.w_requests, "w_reuses": ent.w_reuses,
            "w_misses": ent.w_misses, "w_stores": ent.w_stores,
            "cooldown": ent.cooldown, "revokes": ent.revokes,
            "policy": getattr(se, "float_policy", "static"),
        }
        if stream.plan is not None:
            snap["plan"] = stream.plan.describe()
        footprint = getattr(pattern, "footprint_bytes", None)
        if footprint is not None:
            snap["footprint"] = footprint()
        if se.se_l2 is not None and stream.spec.length > 0:
            idx = min(stream.next_issue, stream.spec.length - 1)
            snap["home_bank"] = se.se_l2.nuca.bank_of(pattern.address(idx))
        return snap

    def watch_se_core(self, se) -> None:
        if not self._claim(se):
            return
        tel = self
        ledger = self.provenance is not None
        inner_float = se._float

        def float_(stream, reason="history", plan=None) -> None:
            was = stream.floating
            if ledger and not was:
                inputs = tel._policy_snapshot(se, stream)
                if plan is not None:
                    inputs["plan"] = plan.describe()
                tel.publish(
                    "decision", tile=se.tile,
                    detail=f"float sid {stream.sid} ({reason})",
                    verdict="float", sid=stream.sid, reason=reason,
                    inputs=inputs,
                )
            inner_float(stream, reason, plan)
            if not was and stream.floating:
                tel.publish(
                    "float", tile=se.tile,
                    detail=f"sid {stream.sid} @elem {stream.float_start}",
                    sid=stream.sid, elem=stream.float_start,
                )

        float_.__qualname__ = getattr(inner_float, "__qualname__", "SECore._float")
        se._float = float_
        inner_sink = se._sink

        def sink(stream, reason="policy") -> None:
            was = stream.floating
            if ledger and was and stream.parent is None:
                # A smart-policy revocation is its own verdict: the
                # policy actively undid a float it now judges bad
                # (the reason names the trigger).
                verdict = "revoke" if reason.startswith("revoke") else "sink"
                tel.publish(
                    "decision", tile=se.tile,
                    detail=f"{verdict} sid {stream.sid} ({reason})",
                    verdict=verdict, sid=stream.sid, reason=reason,
                    inputs=tel._policy_snapshot(se, stream),
                )
            inner_sink(stream, reason)
            if was and not stream.floating:
                tel.publish(
                    "sink", tile=se.tile, detail=f"sid {stream.sid}",
                    sid=stream.sid,
                )

        sink.__qualname__ = getattr(inner_sink, "__qualname__", "SECore._sink")
        se._sink = sink
        if not ledger:
            return
        # Terminal no-float verdicts: a load stream that retires without
        # ever floating records why the policy never fired (its final
        # history snapshot is ROADMAP item 3's training signal).
        inner_end = se.end

        def end(sids) -> None:
            for sid in sids:
                stream = se.streams.get(sid)
                if (
                    stream is not None and not stream.floating
                    and stream.spec.kind == "load" and stream.parent is None
                ):
                    tel.publish(
                        "decision", tile=se.tile,
                        detail=f"no_float sid {sid} (end)",
                        verdict="no_float", sid=sid, reason="never_qualified",
                        inputs=tel._policy_snapshot(se, stream),
                    )
            inner_end(sids)

        end.__qualname__ = getattr(inner_end, "__qualname__", "SECore.end")
        se.end = end

    def watch_se_l2(self, se) -> None:
        if not self._claim(se):
            return
        tel = self

        def make(inner):
            def handle(pkt) -> None:
                body = pkt.body
                inner(pkt)
                # DataU arrivals only (EndAck/StreamInv have no element).
                element = getattr(body, "element", None)
                if element is None:
                    return
                sid = body.stream_id
                if isinstance(body.se_info, list):
                    for tile, member_sid in body.se_info:
                        if tile == se.tile:
                            sid = member_sid
                            break
                tel.publish(
                    "datau", tile=se.tile,
                    detail=f"sid {sid} elem {element}",
                    sid=sid, element=element, src=pkt.src,
                )
            return handle

        self._wrap_port(se.net, se.tile, "se_l2", make)
        if self.provenance is None:
            return
        inner_follow = se._try_follow

        def try_follow(spec) -> bool:
            followed = inner_follow(spec)
            if followed:
                leader, _role = se._sid_index[spec.sid]
                tel.publish(
                    "decision", tile=se.tile,
                    detail=f"follow sid {spec.sid} -> leader "
                           f"{leader.sid}",
                    verdict="follow", sid=spec.sid, reason="constant_offset",
                    inputs={
                        "leader_sid": leader.sid,
                        "delta": leader.followers[spec.sid].delta,
                        "pattern": type(spec.pattern).__name__,
                        "length": spec.length,
                        "epoch": leader.epoch,
                    },
                )
            return followed

        try_follow.__qualname__ = getattr(
            inner_follow, "__qualname__", "SEL2._try_follow"
        )
        se._try_follow = try_follow

    def watch_se_l3(self, se3) -> None:
        if not self._claim(se3):
            return
        tel = self
        inner_migrate = se3._migrate

        def migrate(stream, addr) -> None:
            to_bank = se3.nuca.bank_of(addr)
            tel.publish(
                "migrate", tile=se3.tile,
                detail=f"{stream.key} elem {stream.next_idx} -> bank {to_bank}",
                requester=stream.requester, sid=stream.spec.sid,
                elem=stream.next_idx, to_bank=to_bank, epoch=stream.epoch,
                credits=stream.credits,
            )
            inner_migrate(stream, addr)

        migrate.__qualname__ = getattr(inner_migrate, "__qualname__", "SEL3._migrate")
        se3._migrate = migrate
        inner_merge = se3._try_merge

        def try_merge(stream) -> None:
            inner_merge(stream)
            if stream.group is not None:
                tel.publish(
                    "confluence", tile=se3.tile,
                    detail=f"{stream.key} joined group of "
                           f"{len(stream.group.members)}",
                    requester=stream.requester, sid=stream.spec.sid,
                    size=len(stream.group.members),
                )

        try_merge.__qualname__ = getattr(inner_merge, "__qualname__", "SEL3._try_merge")
        se3._try_merge = try_merge
        inner_credit = se3._credit

        def credit(body) -> None:
            tel.publish(
                "credit", tile=se3.tile,
                detail=f"({body.requester},{body.sid}) +{body.count}",
                requester=body.requester, sid=body.sid, count=body.count,
            )
            inner_credit(body)

        credit.__qualname__ = getattr(inner_credit, "__qualname__", "SEL3._credit")
        se3._credit = credit
        inner_end = se3._end

        def end(body) -> None:
            tel.publish(
                "end", tile=se3.tile,
                detail=f"({body.requester},{body.sid})",
                requester=body.requester, sid=body.sid,
            )
            inner_end(body)

        end.__qualname__ = getattr(inner_end, "__qualname__", "SEL3._end")
        se3._end = end
        if self.provenance is None:
            return
        inner_configure = se3._configure

        def configure(spec, children, requester, start_idx, credits,
                      epoch=0, migrated=False, plan=None):
            verdict = inner_configure(spec, children, requester, start_idx,
                                      credits, epoch, migrated, plan)
            inputs = {
                "start_idx": start_idx, "credits": credits,
                "epoch": epoch, "migrated": migrated,
                "pattern": type(spec.pattern).__name__,
                "length": spec.length,
                "resident_streams": len(se3.streams),
            }
            if plan is not None:
                inputs["plan"] = plan.describe()
            tel.publish(
                "decision", tile=se3.tile,
                detail=f"config_{verdict} ({requester},{spec.sid})",
                verdict=f"config_{verdict}", sid=spec.sid,
                requester=requester,
                reason="migrate" if migrated else "float_config",
                inputs=inputs,
            )
            return verdict

        configure.__qualname__ = getattr(
            inner_configure, "__qualname__", "SEL3._configure"
        )
        se3._configure = configure

    def watch_chip(self, chip) -> None:
        """Bind chip-level context (stats tree, mesh geometry) — what
        the interval sampler needs to derive IPC / utilization."""
        if self.sampler is not None:
            self.sampler.bind(
                chip.stats,
                links=chip.mesh.num_links,
                cores=chip.mesh.num_tiles,
            )

    # ------------------------------------------------------------------
    # post-hoc adoption (Tracer, tests, bare rigs)
    # ------------------------------------------------------------------
    def adopt(self, chip) -> None:
        """Install every hook on an already-built chip. Idempotent:
        components that registered at construction are skipped."""
        self.watch_network(chip.net)
        for ctrl in chip.dram.controllers:
            self.watch_dram(ctrl)
        for tile in chip.tiles:
            self.watch_core(tile.core)
            self.watch_l1(tile.l1)
            self.watch_l2(tile.l2)
            self.watch_l3(tile.l3)
            if tile.se_core is not None:
                self.watch_se_core(tile.se_core)
            if tile.se_l2 is not None:
                self.watch_se_l2(tile.se_l2)
            if tile.se_l3 is not None:
                self.watch_se_l3(tile.se_l3)
        self.watch_chip(chip)

    # ------------------------------------------------------------------
    # run completion
    # ------------------------------------------------------------------
    def finalize(self, stats=None) -> None:
        """Flush pillar state at the end of a run; publish summary
        counters into ``stats`` (all deterministic — no wall clock)."""
        if self.sampler is not None:
            self.sampler.flush(self.sim.now)
        if self.attribution is not None:
            self.attribution.check()
        if stats is not None:
            for name, value in self.summary().items():
                stats.set(f"telemetry.{name}", value)

    def summary(self) -> Dict[str, float]:
        """Deterministic run-level counters (recorded alongside the
        run cache in :class:`~repro.harness.runner.RunRecord`)."""
        out: Dict[str, float] = {"bus_events": self.bus_events}
        if self.spans is not None:
            out["spans_opened"] = self.spans.opened
            out["spans_closed"] = self.spans.closed
            out["spans_dropped"] = self.spans.dropped
            out["noc_events"] = len(self.spans.noc_events)
            out["noc_dropped"] = self.spans.noc_dropped
            # Aggregate critical-path profile: per (span kind, edge)
            # the total cycles spent on that edge plus how many spans
            # it dominated. The ">" separator follows link.<s>><d>.
            for (kind, edge), slot in sorted(
                self.spans.critical_profile().items()
            ):
                out[f"crit.{kind}.{edge}"] = slot[1]
                if slot[2]:
                    out[f"critdom.{kind}.{edge}"] = slot[2]
        if self.sampler is not None:
            out["interval_samples"] = len(self.sampler.samples)
        if self.profiler is not None:
            out["profiled_events"] = self.profiler.events
        if self.provenance is not None:
            out.update(self.provenance.summary())
        if self.attribution is not None:
            out.update(self.attribution.summary())
        return out
