"""S5 divergence localization: from "hash mismatch" to the exact
first divergent ``(cycle, event, handler)``.

The sanitizer's S5 determinism trace (PR 4) reduces an entire run to
one CRC32 over every ``(cycle, handler-qualname)`` pair the kernel
dispatches; PR 6 turned it into a CI gate. A bare mismatch is the
least actionable failure in the repo — this module makes it
localizable with a two-pass replay (DESIGN.md §11):

1. **Checkpoint pass**: run both variants (kernel backend A/B, commit
   N vs N-1, policy on/off) with a :class:`TraceRecorder` attached.
   The recorder mirrors the S5 formula *exactly* (same
   ``zlib.crc32(b"%d|%s" % (when, name))`` incremental hash — see
   ``Sanitizer._install_step_hook``) and snapshots the prefix hash
   every ``checkpoint_every`` events.
2. **Window pass**: a prefix-hash mismatch is monotone (once the
   streams diverge the hashes stay different), so binary-search the
   checkpoint arrays for the first disagreeing checkpoint, then
   replay both runs capturing the ``(index, cycle, handler)`` tuples
   of just that window and zip-compare for the first differing event.

The result names the exact event where the two schedules first part
ways — which handler ran, at which cycle, at which dispatch index —
instead of two giant opaque hashes.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

# Window capture guard: the second pass captures at most this many
# events (only relevant when two runs share every checkpoint but one
# has a much longer tail).
MAX_WINDOW_EVENTS = 1_000_000

DEFAULT_CHECKPOINT_EVERY = 1024


class TraceRecorder:
    """Step-hook recorder of the S5 event stream.

    Attach to a fresh :class:`~repro.sim.kernel.Simulator` *before*
    running it. Works identically on both kernel backends: ``run()``
    dispatches through the wrapped ``step`` whenever a step hook is
    installed, and ``peek_event()`` is part of the backend contract.
    Composes with the sanitizer's own step hook (wrapping preserves
    the event stream and hashes the same ``(cycle, qualname)`` pairs).
    """

    def __init__(
        self,
        sim,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        window: Optional[Tuple[int, float]] = None,
    ) -> None:
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.sim = sim
        self.checkpoint_every = checkpoint_every
        self.window = window
        self.crc = 0
        self.events = 0
        self.checkpoints: List[int] = []
        self.window_events: List[Tuple[int, int, str]] = []
        self.window_dropped = 0
        self._install(sim)

    def _install(self, sim) -> None:
        recorder = self
        inner_step = sim.step
        checkpoint_every = self.checkpoint_every
        window = self.window

        def step() -> bool:
            nxt = sim.peek_event()
            if nxt is not None:
                when, fn = nxt
                name = getattr(fn, "__qualname__", None) or type(fn).__name__
                # Incremental prefix hash — the S5 formula verbatim
                # (sim/sanitizer.py), so recorder hashes and sanitizer
                # hashes describe the same stream.
                recorder.crc = zlib.crc32(
                    b"%d|%s" % (when, name.encode()), recorder.crc
                )
                index = recorder.events
                recorder.events = index + 1
                if recorder.events % checkpoint_every == 0:
                    recorder.checkpoints.append(recorder.crc)
                if window is not None and window[0] <= index < window[1]:
                    if len(recorder.window_events) < MAX_WINDOW_EVENTS:
                        recorder.window_events.append((index, when, name))
                    else:
                        recorder.window_dropped += 1
            return inner_step()

        step.__qualname__ = getattr(inner_step, "__qualname__",
                                    "Simulator.step")
        sim.step = step


# A run variant: builds a fresh simulation, calls the supplied attach
# callback on its Simulator before running, runs to completion, and
# returns whatever attach returned (the TraceRecorder).
RunVariant = Callable[[Callable[[Any], TraceRecorder]], TraceRecorder]


@dataclass
class Divergence:
    """Where two event streams first part ways."""

    index: int  # dispatch index of the first divergent event
    a: Optional[Tuple[int, str]]  # (cycle, handler) in run A, None if
    b: Optional[Tuple[int, str]]  # the run ended before the index
    events_a: int
    events_b: int
    crc_a: int
    crc_b: int
    checkpoint_every: int

    @staticmethod
    def _leg(leg: Optional[Tuple[int, str]]) -> str:
        if leg is None:
            return "<run ended>"
        return f"cycle {leg[0]}, handler {leg[1]}"

    def describe(self) -> str:
        return (
            f"first divergent event at dispatch index {self.index}: "
            f"A ran {self._leg(self.a)}; B ran {self._leg(self.b)} "
            f"(A: {self.events_a} events, crc {self.crc_a:#010x}; "
            f"B: {self.events_b} events, crc {self.crc_b:#010x})"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "a": list(self.a) if self.a is not None else None,
            "b": list(self.b) if self.b is not None else None,
            "events_a": self.events_a, "events_b": self.events_b,
            "crc_a": self.crc_a, "crc_b": self.crc_b,
            "checkpoint_every": self.checkpoint_every,
        }


def _first_mismatch(a: List[int], b: List[int]) -> int:
    """Binary search for the first index where the checkpoint arrays
    disagree (valid because a prefix-hash mismatch is monotone);
    returns ``min(len(a), len(b))`` when every shared entry agrees."""
    lo, hi = 0, min(len(a), len(b))
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] != b[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def localize(
    run_a: RunVariant,
    run_b: RunVariant,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
) -> Optional[Divergence]:
    """Two-pass divergence localization between two run variants.

    Each variant is a callable taking an ``attach`` callback: it must
    build a fresh simulation, call ``attach(sim)`` before running,
    run to completion, and return the recorder ``attach`` produced.
    Returns ``None`` when the streams are identical.
    """
    rec_a = run_a(lambda sim: TraceRecorder(sim, checkpoint_every))
    rec_b = run_b(lambda sim: TraceRecorder(sim, checkpoint_every))
    if rec_a.crc == rec_b.crc and rec_a.events == rec_b.events:
        return None
    first = _first_mismatch(rec_a.checkpoints, rec_b.checkpoints)
    start = first * checkpoint_every
    if first < min(len(rec_a.checkpoints), len(rec_b.checkpoints)):
        end: float = start + checkpoint_every
    else:
        # Every shared checkpoint agrees: the divergence is in the
        # tail past the last common checkpoint.
        end = float("inf")
    window = (start, end)
    win_a = run_a(lambda sim: TraceRecorder(sim, checkpoint_every, window))
    win_b = run_b(lambda sim: TraceRecorder(sim, checkpoint_every, window))

    def done(rec: TraceRecorder) -> Divergence:
        return Divergence(
            index=0, a=None, b=None,
            events_a=win_a.events, events_b=win_b.events,
            crc_a=win_a.crc, crc_b=win_b.crc,
            checkpoint_every=checkpoint_every,
        )

    for ev_a, ev_b in zip(win_a.window_events, win_b.window_events):
        if ev_a != ev_b:
            result = done(win_a)
            result.index = ev_a[0]
            result.a = (ev_a[1], ev_a[2])
            result.b = (ev_b[1], ev_b[2])
            return result
    # One stream is a strict prefix of the other inside the window:
    # the first event past the shorter run is the divergence.
    short, long_, a_short = (
        (win_a, win_b, True)
        if len(win_a.window_events) < len(win_b.window_events)
        else (win_b, win_a, False)
    )
    if len(short.window_events) < len(long_.window_events):
        extra = long_.window_events[len(short.window_events)]
        result = done(win_a)
        result.index = extra[0]
        leg = (extra[1], extra[2])
        result.a, result.b = (None, leg) if a_short else (leg, None)
        return result
    # Window capture saw no difference (hash collision or a divergence
    # past MAX_WINDOW_EVENTS): report the window boundary.
    result = done(win_a)
    result.index = start
    return result


# ----------------------------------------------------------------------
# figure-point variants (bench-smoke / kernel-equivalence wiring)
# ----------------------------------------------------------------------
def figure_point_variant(
    workload: str,
    config: str,
    backend: str,
    core: str = "ooo8",
    cols: int = 4,
    rows: int = 4,
    scale: int = 16,
    link_bits: int = 256,
    l3_interleave: Optional[int] = None,
    seed: int = 0,
) -> RunVariant:
    """A :data:`RunVariant` that runs one figure point under the named
    kernel backend (mirrors ``benchmarks/bench_kernel.py``'s direct
    Chip construction — no caches, no harness)."""

    def run(attach: Callable[[Any], TraceRecorder]) -> TraceRecorder:
        from repro.sim.kernel import ENV_KERNEL
        from repro.system.chip import Chip
        from repro.system.configs import make_config
        from repro.workloads.base import build_programs

        prev = os.environ.get(ENV_KERNEL)
        os.environ[ENV_KERNEL] = backend
        try:
            system = make_config(
                config, core=core, cols=cols, rows=rows, scale=scale,
                link_bits=link_bits, l3_interleave=l3_interleave,
            )
            chip = Chip(system)
            recorder = attach(chip.sim)
            programs = build_programs(
                workload, chip.num_cores, scale=scale, seed=seed,
            )
            chip.run(programs)
            return recorder
        finally:
            if prev is None:
                os.environ.pop(ENV_KERNEL, None)
            else:
                os.environ[ENV_KERNEL] = prev

    return run


def localize_backends(
    workload: str,
    config: str,
    backend_a: str = "heap",
    backend_b: str = "calendar",
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    **point_kwargs: Any,
) -> Optional[Divergence]:
    """Localize a kernel-backend divergence on one figure point.
    Returns ``None`` when the backends agree (then a baseline hash
    mismatch is semantic — a handler or model change — not a
    scheduling bug)."""
    return localize(
        figure_point_variant(workload, config, backend_a, **point_kwargs),
        figure_point_variant(workload, config, backend_b, **point_kwargs),
        checkpoint_every=checkpoint_every,
    )
