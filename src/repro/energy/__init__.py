"""Event-energy model (McPAT-substitute)."""

from repro.energy.model import (
    DEFAULT_ENERGY,
    EnergyBreakdown,
    EnergyModel,
    EnergyParams,
)

__all__ = ["EnergyModel", "EnergyParams", "EnergyBreakdown", "DEFAULT_ENERGY"]
