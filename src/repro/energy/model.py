"""Event-energy model (the paper's McPAT/CACTI-at-22nm substitute).

Energy is accumulated from the event counts the simulator already
collects: core ops (with out-of-order cores paying a per-op premium
for rename/IQ/ROB), cache and TLB accesses, NoC flit-hops, DRAM
accesses, stream-engine operations, and per-core static leakage
integrated over the run.

The constants are McPAT-class 22 nm ballparks (pJ); the experiments
only use energy *ratios* between configurations, which depend on the
relative event counts rather than the absolute picojoules — see
DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Mapping

from repro.noc.message import TRAFFIC_CLASSES
from repro.sim.stats import Stats
from repro.system.params import SystemParams


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies in picojoules, plus static power."""

    # Core dynamic energy per committed op.
    op_inorder: float = 8.0
    op_ooo4: float = 20.0
    op_ooo8: float = 28.0
    # Cache/TLB access energies.
    l1_access: float = 15.0
    l2_access: float = 45.0
    l3_access: float = 90.0
    tlb_access: float = 2.0
    # Interconnect and memory.
    noc_flit_hop: float = 12.0
    dram_access: float = 2200.0
    # Stream engines (small SRAM/CAM structures).
    se_op: float = 4.0
    # Static power per core-cycle (pW-scale folded to pJ/cycle),
    # including the tile's share of caches and NoC.
    static_inorder: float = 25.0
    static_ooo4: float = 60.0
    static_ooo8: float = 95.0


DEFAULT_ENERGY = EnergyParams()


@dataclass
class EnergyBreakdown:
    """Per-component energy (picojoules)."""

    core_dynamic: float = 0.0
    core_static: float = 0.0
    l1: float = 0.0
    l2: float = 0.0
    l3: float = 0.0
    noc: float = 0.0
    dram: float = 0.0
    stream_engines: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.core_dynamic + self.core_static + self.l1 + self.l2
            + self.l3 + self.noc + self.dram + self.stream_engines
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "core_dynamic": self.core_dynamic,
            "core_static": self.core_static,
            "l1": self.l1,
            "l2": self.l2,
            "l3": self.l3,
            "noc": self.noc,
            "dram": self.dram,
            "stream_engines": self.stream_engines,
            "total": self.total,
        }

    # Serialization (the disk run-cache stores breakdowns as JSON).
    def to_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, values: Mapping[str, float]) -> "EnergyBreakdown":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in values.items() if k in names})


class EnergyModel:
    """Turns a run's stats into an :class:`EnergyBreakdown`."""

    def __init__(self, params: EnergyParams = DEFAULT_ENERGY) -> None:
        self.params = params

    def _core_constants(self, system: SystemParams) -> tuple:
        name = system.core.name
        if name == "io4":
            return self.params.op_inorder, self.params.static_inorder
        if name == "ooo4":
            return self.params.op_ooo4, self.params.static_ooo4
        return self.params.op_ooo8, self.params.static_ooo8

    def evaluate(
        self, stats: Stats, cycles: int, system: SystemParams,
    ) -> EnergyBreakdown:
        p = self.params
        op_energy, static = self._core_constants(system)
        bd = EnergyBreakdown()
        bd.core_dynamic = stats["core.ops"] * op_energy
        bd.core_static = cycles * static * system.num_tiles
        l1_accesses = stats["l1.hits"] + stats["l1.misses"]
        bd.l1 = l1_accesses * p.l1_access
        l2_accesses = stats["l2.hits"] + stats["l2.misses"]
        bd.l2 = l2_accesses * p.l2_access
        l3_accesses = (
            stats["l3.hits"] + stats["l3.misses"]
            + stats["l3.requests.stream_float"]
        )
        bd.l3 = l3_accesses * p.l3_access
        flit_hops = sum(
            stats.get(f"noc.flit_hops.{kind}") for kind in TRAFFIC_CLASSES
        )
        # Local (0-hop) deliveries still traverse one router.
        flits = sum(
            stats.get(f"noc.flits.{kind}") for kind in TRAFFIC_CLASSES
        )
        bd.noc = (flit_hops + flits) * p.noc_flit_hop
        bd.dram = (stats["dram.reads"] + stats["dram.writes"]) * p.dram_access
        se_events = (
            stats["se_core.requests"] + stats["se_l2.data_arrivals"]
            + stats["se_l3.elements_issued"] + stats["se_l3.tlb_lookups"]
        )
        bd.stream_engines = se_events * p.se_op
        return bd

    def efficiency(
        self, stats: Stats, cycles: int, system: SystemParams,
    ) -> float:
        """Inverse energy (1/pJ) — higher is better; used for the
        paper's "energy efficiency" ratios (Figures 13 and 19)."""
        total = self.evaluate(stats, cycles, system).total
        return 1.0 / total if total > 0 else 0.0
