"""L3-bank-side stream engine (SE_L3, Figure 10).

Each L3 bank hosts an SE_L3 with the units the paper describes:

- **configure unit**: accepts FloatConfig/Migrate packets and sets up
  stream state;
- **issue unit**: round-robin over ready streams, generating GetU
  requests to the colocated bank on behalf of the requesting tile;
- **migrate unit**: when the next element maps to another bank,
  hands the stream off with its current iteration and remaining
  credits;
- **merge unit** (stream confluence, SS IV-C): affine streams from
  different cores in the same 2x2 tile block with identical
  parameters form a confluence group of up to 4; the issue unit
  services the group's common element once and multicasts the
  response, delaying members that are ahead so laggards catch up;
- **translate unit**: a local TLB queried once per page for affine
  streams and once per element for indirect streams;
- **operands table** (indirect floating, SS IV-B): when an affine
  parent element's data is ready, chained indirect addresses are
  computed here and fetched at their home bank — only the requested
  subline returns to the core.

Credits and End packets for streams that have migrated away are
forwarded along the recorded migration path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.mem.addr import LINE_SIZE, NucaMap, line_addr, page_index
from repro.mem.coherence import CohMsg
from repro.mem.l3 import L3Bank
from repro.mem.tlb import Tlb
from repro.noc.message import CTRL, DATA, STREAM, Packet, data_payload_bits
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.streams.pattern import AffinePattern
from repro.streams.plan import FloatPlan
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats
from repro.streams.isa import StreamSpec
from repro.streams.messages import (
    Credit,
    EndAck,
    EndStream,
    FloatConfig,
    IndFetch,
    Migrate,
    StreamInv,
)

StreamKey = Tuple[int, int]  # (requester tile, sid)


@dataclass
class L3Stream:
    """One floated stream resident at this bank."""

    spec: StreamSpec
    children: List[StreamSpec]
    requester: int
    next_idx: int
    credits: int
    group: Optional["ConfluenceGroup"] = None
    # Incarnation counter from the SE_L2 (a sid can sink and re-float);
    # stale credits/ends from an earlier incarnation are dropped.
    epoch: int = 0
    # Per-range float plan; the resident stream covers only the plan's
    # L3 range (``length`` is truncated to its end at configure).
    plan: Optional["FloatPlan"] = None
    # Hot-path caches (DESIGN.md §12). ``length`` snapshots the
    # immutable spec length; ``key`` the immutable routing key. The
    # ``cached_*`` trio memoizes address/bank for ``next_idx`` so the
    # issue unit computes each element's address once, not once per
    # actionability probe. ``prev_page`` is the page of element
    # ``next_idx - 1`` (-1: none / recompute), maintained so the TLB
    # page-boundary test avoids a second address computation.
    length: int = field(init=False, default=0)
    key: StreamKey = field(init=False, default=(0, 0))
    cached_idx: int = field(init=False, default=-1)
    cached_addr: int = field(init=False, default=0)
    cached_bank: int = field(init=False, default=-1)
    prev_page: int = field(init=False, default=-1)

    def __post_init__(self) -> None:
        self.length = self.spec.length
        self.key = (self.requester, self.spec.sid)

    @property
    def done(self) -> bool:
        return self.next_idx >= self.length

    @property
    def issuable(self) -> bool:
        return not self.done and self.credits > 0


@dataclass
class ConfluenceGroup:
    """Up to 4 same-pattern streams from one 2x2 tile block."""

    members: List[L3Stream] = field(default_factory=list)

    def remove(self, stream: L3Stream) -> None:
        if stream in self.members:
            self.members.remove(stream)
        stream.group = None

    def frontier(self) -> Optional[int]:
        """The minimum next element over issuable members — the index
        the group services next (delaying members that are ahead)."""
        idxs = [m.next_idx for m in self.members if m.issuable]
        return min(idxs) if idxs else None


class SEL3:
    """Stream engine at an L3 bank."""

    MAX_GROUP = 4
    BLOCK = 2  # confluence restricted to 2x2 tile blocks
    PUMP_BATCH = 4  # elements issued per pump activation
    PUMP_INTERVAL = 4  # cycles between activations (1 element/cycle avg)

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        stats: Stats,
        tile: int,
        bank: L3Bank,
        nuca: NucaMap,
        mesh: Mesh,
        max_streams: int = 768,
        confluence_enabled: bool = True,
        indirect_enabled: bool = True,
        stream_grain_coherence: bool = False,
        tlb: Optional[Tlb] = None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.stats = stats
        self.tile = tile
        self.bank = bank
        self.nuca = nuca
        self.mesh = mesh
        self.max_streams = max_streams
        self.confluence_enabled = confluence_enabled
        self.indirect_enabled = indirect_enabled
        self.stream_grain_coherence = stream_grain_coherence
        # SS V-B: base/bound registers of ranges each resident stream
        # has fetched (conservative: false positives invalidate).
        self.ranges: Dict[StreamKey, Tuple[int, int]] = {}
        self.tlb = tlb or Tlb(entries=1024, hit_latency=2)
        self.streams: Dict[StreamKey, L3Stream] = {}
        self.groups: List[ConfluenceGroup] = []
        # Streams that migrated away: key -> (next bank, epoch), for
        # forwarding late credits / end packets of that incarnation.
        self.forwarding: Dict[StreamKey, Tuple[int, int]] = {}
        # Credits that raced ahead of their stream's migration here:
        # key -> (epoch, count).
        self.pending_credits: Dict[StreamKey, Tuple[int, int]] = {}
        self._rr: Deque[StreamKey] = deque()  # round-robin order
        self._pump_armed = False
        # Interned counter cells for the per-element hot path.
        self._c_tlb = stats.counter("se_l3.tlb_lookups")
        self._c_elements = stats.counter("se_l3.elements_issued")
        bank.se_l3 = self
        net.register(tile, "se_l3", self.handle)
        san = getattr(sim, "sanitizer", None)
        if san is not None:
            san.watch_se_l3(self)
        tel = getattr(sim, "telemetry", None)
        if tel is not None:
            tel.watch_se_l3(self)

    # ------------------------------------------------------------------
    # network ingress
    # ------------------------------------------------------------------
    def handle(self, pkt: Packet) -> None:
        body = pkt.body
        if isinstance(body, FloatConfig):
            self._configure(body.spec, body.children, body.requester,
                            body.start_idx, body.credits, body.epoch,
                            plan=body.plan)
        elif isinstance(body, Migrate):
            self.stats.add("se_l3.migrations_in")
            self._configure(body.spec, body.children, body.requester,
                            body.next_idx, body.credits, body.epoch,
                            migrated=True, plan=body.plan)
        elif isinstance(body, Credit):
            self._credit(body)
        elif isinstance(body, EndStream):
            self._end(body)
        elif isinstance(body, IndFetch):
            self._indirect_fetch(body)
        else:
            raise ValueError(f"SE_L3 got unexpected body {type(body)!r}")

    # ------------------------------------------------------------------
    # configure / merge units
    # ------------------------------------------------------------------
    def _configure(
        self,
        spec: StreamSpec,
        children: List[StreamSpec],
        requester: int,
        start_idx: int,
        credits: int,
        epoch: int = 0,
        migrated: bool = False,
        plan: Optional[FloatPlan] = None,
    ) -> str:
        """Install (or reject) an incoming stream configuration.

        Returns the verdict — ``"installed"``, ``"replaced"`` (an
        older resident incarnation was evicted), ``"stale"`` (the
        arrival lost to a newer incarnation) or ``"rejected"``
        (admission control) — consumed only by observability wrappers.
        """
        key = (requester, spec.sid)
        existing = self.streams.get(key)
        if existing is not None and existing.epoch >= epoch:
            # A Migrate from a superseded incarnation arrived after the
            # sid was re-floated here: the old incarnation dies here.
            self.stats.add("se_l3.stale_migrates")
            return "stale"
        fwd = self.forwarding.get(key)
        if fwd is not None and fwd[1] > epoch:
            # Likewise stale relative to a newer incarnation that
            # already migrated through this bank.
            self.stats.add("se_l3.stale_migrates")
            return "stale"
        if not migrated and len(self.streams) >= self.max_streams:
            # Reject only fresh floats. A migrating stream already owns
            # buffer and credit state at its requester; bouncing it
            # would strand that state and deadlock the core.
            self.stats.add("se_l3.config_rejected")
            return "rejected"
        if existing is not None:
            # Older incarnation still resident (its EndStream is still
            # chasing it): replace it, keeping group/rotation clean.
            self._drop(existing)
        stream = L3Stream(
            spec=spec, children=list(children), requester=requester,
            next_idx=start_idx, credits=credits, epoch=epoch, plan=plan,
        )
        if plan is not None:
            # This bank serves only the plan's L3 range: the stream
            # completes (silently, SS IV-A) at the range's end.
            stream.length = min(
                stream.length, plan.run_end(start_idx, stream.length)
            )
        self.streams[key] = stream
        if fwd is not None and fwd[1] == epoch:
            # The stream returned to a bank it had left this epoch.
            del self.forwarding[key]
        pending = self.pending_credits.get(key)
        if pending is not None and pending[0] <= epoch:
            del self.pending_credits[key]
            if pending[0] == epoch:
                stream.credits += pending[1]
        self._rr.append(key)
        self.stats.add("se_l3.streams_configured")
        if self.confluence_enabled and not spec.is_indirect:
            self._try_merge(stream)
        self._arm_pump()
        return "replaced" if existing is not None else "installed"

    def _try_merge(self, stream: L3Stream) -> None:
        """Merge unit: one parameter comparison per existing stream
        (the paper does one per cycle; the cost is negligible here)."""
        my_block = self.mesh.block_of(stream.requester, self.BLOCK)
        for other in self.streams.values():
            if other is stream or other.spec.is_indirect:
                continue
            if other.requester == stream.requester:
                continue
            if self.mesh.block_of(other.requester, self.BLOCK) != my_block:
                continue
            if not stream.spec.pattern.same_shape(other.spec.pattern):
                continue
            group = other.group
            if group is None:
                group = ConfluenceGroup(members=[other])
                other.group = group
                self.groups.append(group)
            if len(group.members) >= self.MAX_GROUP:
                continue
            # The requester check above only compared against the
            # matched stream; an existing group may already hold a
            # *different* stream from our tile, and joining it would
            # put duplicate requester tiles in the confluence
            # multicast (caught by sanitizer check S4).
            if any(m.requester == stream.requester for m in group.members):
                continue
            group.members.append(stream)
            stream.group = group
            self.stats.add("se_l3.confluences")
            return

    # ------------------------------------------------------------------
    # issue unit
    # ------------------------------------------------------------------
    def _arm_pump(self) -> None:
        if not self._pump_armed:
            self._pump_armed = True
            self.sim.schedule(1, self._pump)

    def _pump(self) -> None:
        self._pump_armed = False
        issued = 0
        scanned = 0
        rr = self._rr
        streams = self.streams
        while issued < self.PUMP_BATCH and scanned < len(rr):
            if not rr:
                break
            key = rr.popleft()
            if key not in streams:
                continue  # ended/migrated; drop from rotation
            stream = streams[key]
            rr.append(key)
            scanned += 1
            if self._issue_one(stream):
                issued += 1
                scanned = 0  # progress resets the idle scan
        for k in rr:
            if k in streams and self._actionable(streams[k]):
                self._pump_armed = True
                self.sim.schedule(self.PUMP_INTERVAL, self._pump)
                break

    def _stream_addr_bank(self, stream: L3Stream) -> Tuple[int, int]:
        """(address, home bank) of ``stream.next_idx``, memoized on
        the stream so repeated actionability probes at the same index
        don't recompute the affine address (DESIGN.md §12)."""
        idx = stream.next_idx
        if stream.cached_idx == idx:
            return stream.cached_addr, stream.cached_bank
        addr = stream.spec.pattern.address(idx)
        bank = self.nuca.bank_of(addr)
        stream.cached_idx = idx
        stream.cached_addr = addr
        stream.cached_bank = bank
        return addr, bank

    def _actionable(self, stream: L3Stream) -> bool:
        """Does the issue unit have anything to do for this stream?"""
        if stream.next_idx >= stream.length:
            return True  # silent completion cleanup
        _addr, bank = self._stream_addr_bank(stream)
        if bank != self.tile:
            return True  # must migrate (with or without credits)
        return stream.credits > 0 and self._group_ready(stream)

    def _group_ready(self, stream: L3Stream) -> bool:
        """Confluence delay: members ahead of the group's frontier
        wait for laggards (SS IV-C)."""
        if stream.group is None:
            return True
        frontier = stream.group.frontier()
        return frontier is not None and stream.next_idx == frontier

    def _issue_one(self, stream: L3Stream) -> bool:
        idx = stream.next_idx
        if idx >= stream.length:
            # Known-length streams terminate silently (SS IV-A).
            self._drop(stream)
            self.stats.add("se_l3.completed")
            return False
        addr, bank = self._stream_addr_bank(stream)
        if bank != self.tile:
            # Migrate even when out of credits — the credits will be
            # routed to (or are already waiting at) the next bank.
            self._migrate(stream, addr)
            return False
        if stream.credits <= 0 or not self._group_ready(stream):
            return False
        # Translate unit: affine streams only touch the TLB at page
        # boundaries (SS IV-E). ``prev_page`` carries the page of
        # element idx-1 between issues; a coalesced batch never leaves
        # its cache line, so the batch's last element shares the first
        # element's page.
        page = page_index(addr)
        if idx == 0:
            self.tlb.translate(addr)
            self._c_tlb[0] += 1
        else:
            prev_page = stream.prev_page
            if prev_page < 0:
                prev_page = page_index(stream.spec.pattern.address(idx - 1))
            if page != prev_page:
                self.tlb.translate(addr)
                self._c_tlb[0] += 1
        pattern = stream.spec.pattern
        group = stream.group
        if group is None:
            participants = None
            category = "float_affine"
            max_batch = stream.credits
        else:
            participants = [
                m for m in group.members
                if m.issuable and m.next_idx == idx
            ]
            if stream not in participants:
                participants.append(stream)
            category = "float_conf" if len(participants) > 1 else "float_affine"
            max_batch = min(m.credits for m in participants)
        # Coalesce consecutive same-line elements (subline affine
        # streams, e.g. a 4-byte index stream): one GetU and one DataU
        # serve the whole line's worth of elements.
        if max_batch > stream.length - idx:
            max_batch = stream.length - idx
        if type(pattern) is AffinePattern:
            count = pattern.line_run_length(idx, max_batch)
        else:
            line = line_addr(addr)
            count = 1
            while (
                count < max_batch
                and line_addr(pattern.address(idx + count)) == line
            ):
                count += 1
        if participants is None:
            stream.next_idx = idx + count
            stream.credits -= count
            stream.prev_page = page
            self._c_elements[0] += count
        else:
            for member in participants:
                member.next_idx += count
                member.credits -= count
                # Members advance without computing their own addresses
                # (their bases differ); recompute lazily when they lead.
                member.prev_page = -1
            stream.prev_page = page
            self._c_elements[0] += len(participants) * count
        if self.stream_grain_coherence:
            span = pattern.elem_size * count
            for member in (participants if participants is not None else (stream,)):
                self._track_range(member.key, addr, span)
        element = idx if count == 1 else (idx, idx + count)
        p = participants if participants is not None else [stream]
        self.bank.stream_read(
            addr,
            requester=stream.requester,
            data_bytes=LINE_SIZE,
            stream_id=stream.spec.sid,
            element=element,
            category=category,
            on_ready=lambda msg, p=p, e=element: self._data_ready(p, e, msg),
        )
        return True

    def _data_ready(self, participants: List[L3Stream], element, msg: CohMsg) -> None:
        """GetU data is at the bank: respond (possibly multicast) and
        chain any indirect children. ``element`` is an index or a
        coalesced ``(start, end)`` range."""
        if len(participants) == 1:
            # Common case: no confluence — skip the members-list build.
            sole = participants[0]
            requester = sole.requester
            self.bank.send_data_u(requester, CohMsg(
                op="GetU", addr=msg.addr, requester=requester,
                data_bytes=LINE_SIZE, stream_id=sole.spec.sid, element=element,
            ))
            if self.indirect_enabled and sole.children:
                elems = (
                    range(element[0], element[1])
                    if isinstance(element, tuple) else (element,)
                )
                for child in sole.children:
                    for idx in elems:
                        self._chain_indirect(sole, child, idx)
            return
        members = [(m.requester, m.spec.sid) for m in participants]
        if isinstance(element, tuple):
            elems = range(element[0], element[1])
        else:
            elems = (element,)
        body = CohMsg(
            op="DataU", addr=line_addr(msg.addr), requester=members[0][0],
            data_bytes=LINE_SIZE, stream_id=members[0][1], element=element,
            se_info=members,
        )
        self.net.multicast(
            src=self.tile, dsts=[tile for tile, _ in members],
            kind=DATA, payload_bits=data_payload_bits(LINE_SIZE),
            dst_port="se_l2", body=body,
        )
        self.stats.add("se_l3.multicasts")
        if self.indirect_enabled:
            for member in participants:
                for child in member.children:
                    for idx in elems:
                        self._chain_indirect(member, child, idx)

    # ------------------------------------------------------------------
    # indirect floating (operands table)
    # ------------------------------------------------------------------
    def _chain_indirect(self, stream: L3Stream, child: StreamSpec, idx: int) -> None:
        if idx >= child.length:
            return
        addr = child.pattern.address(idx)
        data_bytes = child.pattern.elem_size
        # Indirect accesses translate per element (SS IV-E).
        self.tlb.translate(addr)
        self.stats.add("se_l3.tlb_lookups")
        target = self.nuca.bank_of(addr)
        if target == self.tile:
            self._local_indirect(stream.requester, child.sid, idx, addr, data_bytes)
        else:
            body = IndFetch(
                requester=stream.requester, sid=child.sid, element=idx,
                addr=addr, data_bytes=data_bytes,
            )
            self.stats.add("se_l3.indirect_forwards")
            self.net.send_new(
                self.tile, target, CTRL, body.bits(), "se_l3", body=body,
            )

    def _local_indirect(
        self, requester: int, sid: int, idx: int, addr: int, data_bytes: int,
    ) -> None:
        self.bank.stream_read(
            addr, requester=requester, data_bytes=data_bytes,
            stream_id=sid, element=idx, category="float_ind",
            on_ready=lambda msg: self.bank.send_data_u(requester, msg),
        )

    def _indirect_fetch(self, body: IndFetch) -> None:
        self._local_indirect(
            body.requester, body.sid, body.element, body.addr, body.data_bytes,
        )

    # ------------------------------------------------------------------
    # migrate unit
    # ------------------------------------------------------------------
    def _migrate(self, stream: L3Stream, next_addr: int) -> None:
        target = self.nuca.bank_of(next_addr)
        self._drop(stream)
        self.forwarding[stream.key] = (target, stream.epoch)
        body = Migrate(
            spec=stream.spec, children=stream.children,
            next_idx=stream.next_idx, credits=stream.credits,
            requester=stream.requester, epoch=stream.epoch,
            plan=stream.plan,
        )
        self.stats.add("se_l3.migrations_out")
        self.net.send_new(
            self.tile, target, STREAM, body.bits(), "se_l3", body=body,
        )

    def _drop(self, stream: L3Stream) -> None:
        self.streams.pop(stream.key, None)
        if stream.group is not None:
            group = stream.group
            group.remove(stream)
            if len(group.members) <= 1:
                for member in group.members:
                    member.group = None
                if group in self.groups:
                    self.groups.remove(group)

    # ------------------------------------------------------------------
    # flow unit / termination
    # ------------------------------------------------------------------
    def _credit(self, body: Credit) -> None:
        key = (body.requester, body.sid)
        stream = self.streams.get(key)
        if stream is not None and stream.epoch == body.epoch:
            stream.credits += body.count
            self.stats.add("se_l3.credits_received")
            self._arm_pump()
            return
        if stream is not None and stream.epoch > body.epoch:
            # Credit from a superseded incarnation: its stream is gone,
            # the credit must not inflate the new one.
            self.stats.add("se_l3.stale_credits")
            return
        fwd = self.forwarding.get(key)
        if fwd is not None and fwd[1] == body.epoch:
            self.net.send_new(
                self.tile, fwd[0], STREAM, body.bits(), "se_l3", body=body,
            )
        elif fwd is not None and fwd[1] > body.epoch:
            self.stats.add("se_l3.stale_credits")
        else:
            # The credit raced ahead of the stream's migration to this
            # bank: hold it until the stream arrives.
            pending = self.pending_credits.get(key)
            if pending is not None and pending[0] == body.epoch:
                self.pending_credits[key] = (body.epoch,
                                             pending[1] + body.count)
            elif pending is None or pending[0] < body.epoch:
                self.pending_credits[key] = (body.epoch, body.count)
            else:
                self.stats.add("se_l3.stale_credits")
                return
            self.stats.add("se_l3.credits_held")

    def _end(self, body: EndStream) -> None:
        key = (body.requester, body.sid)
        pending = self.pending_credits.get(key)
        if pending is not None and pending[0] <= body.epoch:
            del self.pending_credits[key]
        stream = self.streams.get(key)
        if stream is None:
            # Child-sid ends don't resolve as resident streams: the
            # child rides its parent. Detach it so the issue unit
            # stops chaining indirect fetches for an ended sid.
            self._detach_child(body)
        if stream is None or stream.epoch <= body.epoch:
            # Range data of a newer incarnation must survive an old end.
            self.ranges.pop(key, None)
        if stream is not None and stream.epoch == body.epoch:
            self._drop(stream)
            self.stats.add("se_l3.ends")
            ack = EndAck(sid=body.sid)
            self.net.send(Packet(
                src=self.tile, dst=body.requester, kind=STREAM,
                payload_bits=ack.bits(), dst_port="se_l2", body=ack,
            ))
            return
        fwd = self.forwarding.get(key)
        if fwd is not None and fwd[1] == body.epoch:
            # Chase the migrated stream, reclaiming the breadcrumb as
            # we pass (hop-by-hop cleanup of the forwarding chain).
            del self.forwarding[key]
            self.net.send(Packet(
                src=self.tile, dst=fwd[0], kind=STREAM,
                payload_bits=body.bits(), dst_port="se_l3", body=body,
            ))
        else:
            # Unknown here (already finished, or this EndStream is from
            # a superseded incarnation whose stream a newer float
            # replaced): ack so the SE_L2 moves on. Crucially a stale
            # end must NOT kill the resident newer incarnation.
            if stream is not None and stream.epoch > body.epoch:
                self.stats.add("se_l3.stale_ends")
            ack = EndAck(sid=body.sid)
            self.net.send(Packet(
                src=self.tile, dst=body.requester, kind=STREAM,
                payload_bits=ack.bits(), dst_port="se_l2", body=ack,
            ))

    def _detach_child(self, body: EndStream) -> None:
        """Remove an ended indirect child from its resident parent
        float (matched by requester + epoch)."""
        for parent in self.streams.values():
            if (
                parent.requester != body.requester
                or parent.epoch != body.epoch
            ):
                continue
            for child in parent.children:
                if child.sid == body.sid:
                    parent.children.remove(child)
                    self.stats.add("se_l3.child_detached")
                    return

    # ------------------------------------------------------------------
    # stream-grain coherence (SS V-B, optional mode)
    # ------------------------------------------------------------------
    def _track_range(self, key: StreamKey, addr: int, span: int) -> None:
        """Extend the base/bound registers of a stream's fetched range."""
        lo, hi = self.ranges.get(key, (addr, addr + span))
        self.ranges[key] = (min(lo, addr), max(hi, addr + span))

    def check_write(self, addr: int, writer: int) -> None:
        """Directory hook: a write-ownership request for ``addr`` at
        this bank conservatively invalidates any stream whose fetched
        range covers it (false positives allowed — SS V-B), telling
        the requesting core to re-execute (sink) the stream."""
        if not self.stream_grain_coherence:
            return
        for key, (lo, hi) in list(self.ranges.items()):
            if not (lo <= addr < hi):
                continue
            requester, sid = key
            if requester == writer:
                continue
            self.stats.add("se_l3.stream_invalidations")
            stream = self.streams.get(key)
            if stream is not None:
                self._drop(stream)
            self.ranges.pop(key, None)
            self.pending_credits.pop(key, None)
            body = StreamInv(sid=sid, addr=addr)
            self.net.send(Packet(
                src=self.tile, dst=requester, kind=CTRL,
                payload_bits=body.bits(), dst_port="se_l2", body=body,
            ))

    def dealloc_range(self, key: StreamKey) -> None:
        """Stream committed its stream_end: forget its range data."""
        self.ranges.pop(key, None)

    def flush_floating(self) -> None:
        """Context switch (SS IV-E): discard all floating streams."""
        for stream in list(self.streams.values()):
            self._drop(stream)
        self.forwarding.clear()
        self.ranges.clear()
        self.pending_credits.clear()
