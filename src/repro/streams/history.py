"""Stream history table (Table II) and the float/sink policies.

The SE_core records each stream's runtime behaviour: requests sent,
private-cache reuses (reported by the L2 when a stream-tagged line is
hit again), private-cache misses, and whether an aliasing store was
observed. After enough requests accumulate, a stream floats if it
shows no reuse, a high miss ratio and no aliasing (SS IV-D).

Two refinements over the paper's static Table II live here:

- **Windowed counters.** The original ``reuses == 0`` test was
  evaluated over the stream's whole life, so a single early reuse
  permanently disqualified a stream even after thousands of
  reuse-free requests. Counters now also accumulate per *window*
  (reset every :attr:`~StreamHistoryTable.window` line requests): a
  stream (re-)qualifies when either its lifetime or its current
  window shows the float signature.

- **Sink backoff.** A sunk stream's history restarts, so a stream
  whose disqualifying behaviour is only visible part of the time
  used to re-qualify and thrash float/sink for its whole life. The
  first sink is free (a quick re-float is often right when the sink
  caught a transient hit burst), but every repeat sink starts a
  cooldown that quadruples each time (four windows, capped at 32).

- **The smart policy** (:class:`SmartFloatPolicy`, config
  ``float_policy="smart"``) extends the decision inputs with the
  observed stream length, bank locality and the windowed counters,
  decides a float *level per element range* (a
  :class:`~repro.streams.plan.FloatPlan`), and revokes a
  demonstrably bad float mid-run — on an L2 reuse burst or alias
  density — instead of waiting for the coarse sink triggers. A
  revocation starts a cooldown so the same stream does not thrash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.streams.plan import CORE, L2, L3, FloatPlan  # noqa: F401


@dataclass
class HistoryEntry:
    """Table II: sid, #requests, #reuses, #misses, aliased — plus the
    windowed shadow counters (``w_*``) and revocation bookkeeping."""

    sid: int
    requests: int = 0
    reuses: int = 0
    misses: int = 0
    aliased: bool = False
    # Current-window shadow counters (reset every `window` requests).
    w_requests: int = 0
    w_reuses: int = 0
    w_misses: int = 0
    w_stores: int = 0  # in-range (non-aliasing) stores this window
    # Revocation state: a revoked stream may not re-float until
    # `cooldown` further line requests have passed.
    cooldown: int = 0
    revokes: int = 0
    # Times this stream has been sunk after floating. Each sink starts
    # an exponentially growing cooldown (see `carryover_reset`) so a
    # stream whose behaviour keeps re-qualifying between sinks cannot
    # thrash float/sink indefinitely.
    sinks: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.requests if self.requests else 0.0

    @property
    def w_miss_ratio(self) -> float:
        return self.w_misses / self.w_requests if self.w_requests else 0.0


class StreamHistoryTable:
    """Per-core table of :class:`HistoryEntry`, keyed by stream id."""

    def __init__(
        self,
        min_requests: int = 32,
        miss_ratio_threshold: float = 0.7,
        window: int = 128,
    ) -> None:
        self.min_requests = min_requests
        self.miss_ratio_threshold = miss_ratio_threshold
        self.window = window
        self._entries: Dict[int, HistoryEntry] = {}

    def entry(self, sid: int) -> HistoryEntry:
        entries = self._entries
        if sid in entries:
            return entries[sid]
        ent = entries[sid] = HistoryEntry(sid=sid)
        return ent

    def record_request(self, sid: int) -> None:
        ent = self.entry(sid)
        ent.requests += 1
        if ent.cooldown > 0:
            ent.cooldown -= 1
        if ent.w_requests >= self.window:
            ent.w_requests = ent.w_reuses = ent.w_misses = 0
            ent.w_stores = 0
        ent.w_requests += 1

    def record_miss(self, sid: int) -> None:
        ent = self.entry(sid)
        ent.misses += 1
        ent.w_misses += 1

    def record_reuse(self, sid: int) -> None:
        ent = self.entry(sid)
        ent.reuses += 1
        ent.w_reuses += 1

    def record_alias(self, sid: int) -> None:
        self.entry(sid).aliased = True

    def record_range_store(self, sid: int) -> None:
        """A store landed inside the stream's address range without
        hitting the in-flight window (near-alias). Dense bursts are
        the smart policy's alias-density revocation trigger."""
        self.entry(sid).w_stores += 1

    def _window_qualifies(self, ent: HistoryEntry) -> bool:
        return (
            ent.w_requests >= self.min_requests
            and ent.w_reuses == 0
            and ent.w_miss_ratio >= self.miss_ratio_threshold
        )

    def should_float(self, sid: int) -> bool:
        """SS IV-D: float once enough requests accumulate with no
        reuse, a high miss ratio, and no aliasing stores — over the
        stream's lifetime *or* its current window (so one early reuse
        does not disqualify the stream forever)."""
        ent = self._entries.get(sid)
        if ent is None or ent.aliased or ent.cooldown > 0:
            return False
        lifetime = (
            ent.requests >= self.min_requests
            and ent.reuses == 0
            and ent.miss_ratio >= self.miss_ratio_threshold
        )
        return lifetime or self._window_qualifies(ent)

    def should_float_windowed(self, sid: int) -> bool:
        """The smart policy's purely windowed variant: only the
        current window's behaviour counts (faster requalification,
        no stale lifetime bias)."""
        ent = self._entries.get(sid)
        if ent is None or ent.aliased or ent.cooldown > 0:
            return False
        return self._window_qualifies(ent)

    def reset(self, sid: int) -> None:
        self._entries.pop(sid, None)

    def carryover_reset(self, sid: int) -> None:
        """Sink-time reset: start the counters over so a
        still-qualifying entry does not re-float next cycle, but keep
        the sticky bits — ``aliased`` (an aliased stream must never
        re-float, Table II), the revocation cooldown, and the sink
        count. The first sink is free — a quick re-float is often the
        right call when the sink trigger caught a transient hit burst
        — but from the second sink on, each starts a cooldown that
        quadruples with every repeat (four windows, capped at 32): a
        stream that keeps re-qualifying between sinks would otherwise
        thrash float/sink for its whole life."""
        ent = self._entries.pop(sid, None)
        if ent is None:
            return
        fresh = self.entry(sid)
        fresh.aliased = ent.aliased
        fresh.revokes = ent.revokes
        fresh.sinks = ent.sinks + 1
        backoff = self.window << min(2 * ent.sinks, 5) if ent.sinks else 0
        fresh.cooldown = max(ent.cooldown, backoff)

    def __len__(self) -> int:
        return len(self._entries)


class SmartFloatPolicy:
    """Adaptive float policy (config ``float_policy="smart"``).

    Decision inputs beyond Table II: observed stream length (too-short
    streams never amortize a config round-trip), bank locality (a
    stream resident on the local bank gains nothing from floating),
    the L2 footprint (streams that fit comfortably keep their cache),
    and the windowed history counters. With ``plan_enabled`` the
    policy emits per-range :class:`~repro.streams.plan.FloatPlan`\\ s:
    an L2-prefetch probation prefix before committing the tail to a
    remote SE_L3, or a pure-L2 plan for mid-size footprints.

    Revocation: a float is undone mid-run on a reuse burst at the L2
    (:attr:`REVOKE_REUSE_BURST` window reuses), a private-cache hit
    burst (:attr:`REVOKE_HIT_BURST` consecutive hits — tighter than
    the static sink trigger), or alias density
    (:attr:`REVOKE_ALIAS_DENSITY` in-range stores in one window).
    Each revocation starts a :attr:`COOLDOWN`-request cooldown.
    """

    MIN_LENGTH = 64  # elements: shorter streams never float
    MIN_TAIL = 32  # remaining elements needed to amortize a config
    PROBATION = 32  # L2-prefetch prefix length before the L3 range
    REVOKE_REUSE_BURST = 4  # window reuses that revoke a float
    REVOKE_HIT_BURST = 4  # consecutive private hits that revoke
    REVOKE_ALIAS_DENSITY = 4  # window in-range stores that revoke
    COOLDOWN = 256  # line requests before a revoked stream re-floats
    LOCALITY_SAMPLES = 8  # addresses probed for the bank-locality test

    def __init__(
        self,
        history: StreamHistoryTable,
        l2_capacity: int,
        plan_enabled: bool = False,
    ) -> None:
        self.history = history
        self.l2_capacity = l2_capacity
        self.plan_enabled = plan_enabled
        self.bank_of = None  # wired via bind() once the NUCA map exists
        self.tile = -1
        self.last_reject: Dict[int, str] = {}  # sid -> last gate reason

    def bind(self, bank_of, tile: int) -> None:
        self.bank_of = bank_of
        self.tile = tile

    # ------------------------------------------------------------------
    # decision inputs
    # ------------------------------------------------------------------
    def _local(self, stream) -> bool:
        """Does the stream's data live (almost) entirely on the local
        bank? Sampled, not exact: hardware would use the page table."""
        if self.bank_of is None or self.tile < 0:
            return False
        pattern = stream.spec.pattern
        length = stream.length
        if length <= 0:
            return False
        samples = min(self.LOCALITY_SAMPLES, length)
        step = max(1, length // samples)
        if step % 2 == 0:
            # An even element step over power-of-two strides can alias
            # with the power-of-two bank interleave and sample one
            # bank forever; an odd step walks all residues.
            step += 1
        for idx in range(0, length, step):
            if self.bank_of(pattern.address(idx)) != self.tile:
                return False
        return True

    def _plan_for(
        self, stream, start_idx: int, footprint: Optional[int],
    ) -> Optional[FloatPlan]:
        """Pick a per-range plan for a float starting at ``start_idx``
        (None: the classic all-L3 float)."""
        if not self.plan_enabled or stream.children:
            # Indirect children chained at an SE_L3 have no data
            # source in an L2-level range: plans are affine-only.
            return None
        tail = stream.length - start_idx
        if footprint is not None and footprint <= self.l2_capacity:
            if footprint > self.l2_capacity // 2:
                # Mid-size footprint: keep the data's home-bank traffic
                # but spare the remote config — serve it from the L2.
                return FloatPlan([(start_idx, L2)])
            return None  # genuinely small: no float of any kind
        if tail >= 4 * self.PROBATION:
            # Probation prefix: stream the first elements through the
            # local L2 (cacheable, cheap to revoke) before committing
            # the tail to a remote SE_L3.
            return FloatPlan([
                (start_idx, L2),
                (start_idx + self.PROBATION, L3),
            ])
        return None

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def config_decision(
        self, stream, footprint: int,
    ) -> Tuple[bool, Optional[FloatPlan], str]:
        """Configure-time decision (the static policy's footprint
        test, plus the smart gates). Returns (float?, plan, reason)."""
        sid = stream.sid
        if stream.length < self.MIN_LENGTH:
            self.last_reject[sid] = "short_stream"
            return False, None, "short_stream"
        if self.history.entry(sid).aliased:
            self.last_reject[sid] = "aliased"
            return False, None, "aliased"
        if footprint <= self.l2_capacity:
            # Mid-size footprints (half..full L2) still benefit from a
            # pure-L2 plan — stream-buffer prefetching without evicting
            # the rest of the cache; smaller ones stay put.
            plan = self._plan_for(stream, 0, footprint)
            if plan is not None:
                return True, plan, "footprint_l2"
            self.last_reject[sid] = "fits_l2"
            return False, None, "fits_l2"
        if self._local(stream):
            self.last_reject[sid] = "local_bank"
            return False, None, "local_bank"
        return True, self._plan_for(stream, 0, footprint), "footprint"

    def history_decision(
        self, stream,
    ) -> Tuple[bool, Optional[FloatPlan], str]:
        """Mid-run decision from the windowed history counters."""
        sid = stream.sid
        qualifies = self.history.should_float_windowed(sid) or any(
            self.history.should_float_windowed(c.sid)
            for c in stream.children
        )
        if not qualifies:
            return False, None, "never_qualified"
        if stream.length < self.MIN_LENGTH:
            self.last_reject[sid] = "short_stream"
            return False, None, "short_stream"
        if stream.length - stream.next_issue < self.MIN_TAIL:
            self.last_reject[sid] = "short_tail"
            return False, None, "short_tail"
        if self._local(stream):
            self.last_reject[sid] = "local_bank"
            return False, None, "local_bank"
        return True, self._plan_for(stream, stream.next_issue, None), "history"

    def should_revoke(self, stream) -> Optional[str]:
        """Is a live float demonstrably bad? Returns the trigger."""
        ent = self.history.entry(stream.sid)
        if ent.w_reuses >= self.REVOKE_REUSE_BURST:
            return "revoke_reuse_burst"
        if stream.consecutive_hits >= self.REVOKE_HIT_BURST:
            return "revoke_cache_hits"
        if ent.w_stores >= self.REVOKE_ALIAS_DENSITY:
            return "revoke_alias_density"
        return None
