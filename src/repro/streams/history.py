"""Stream history table (Table II) and the float/sink policy inputs.

The SE_core records each stream's runtime behaviour: requests sent,
private-cache reuses (reported by the L2 when a stream-tagged line is
hit again), private-cache misses, and whether an aliasing store was
observed. After enough requests accumulate, a stream floats if it
shows no reuse, a high miss ratio and no aliasing (SS IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class HistoryEntry:
    """Table II: sid, #requests, #reuses, #misses, aliased."""

    sid: int
    requests: int = 0
    reuses: int = 0
    misses: int = 0
    aliased: bool = False

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.requests if self.requests else 0.0


class StreamHistoryTable:
    """Per-core table of :class:`HistoryEntry`, keyed by stream id."""

    def __init__(
        self,
        min_requests: int = 32,
        miss_ratio_threshold: float = 0.7,
    ) -> None:
        self.min_requests = min_requests
        self.miss_ratio_threshold = miss_ratio_threshold
        self._entries: Dict[int, HistoryEntry] = {}

    def entry(self, sid: int) -> HistoryEntry:
        entries = self._entries
        if sid in entries:
            return entries[sid]
        ent = entries[sid] = HistoryEntry(sid=sid)
        return ent

    def record_request(self, sid: int) -> None:
        self.entry(sid).requests += 1

    def record_miss(self, sid: int) -> None:
        self.entry(sid).misses += 1

    def record_reuse(self, sid: int) -> None:
        self.entry(sid).reuses += 1

    def record_alias(self, sid: int) -> None:
        self.entry(sid).aliased = True

    def should_float(self, sid: int) -> bool:
        """SS IV-D: float once enough requests accumulate with no
        reuse, a high miss ratio, and no aliasing stores."""
        ent = self._entries.get(sid)
        if ent is None or ent.requests < self.min_requests:
            return False
        return (
            not ent.aliased
            and ent.reuses == 0
            and ent.miss_ratio >= self.miss_ratio_threshold
        )

    def reset(self, sid: int) -> None:
        self._entries.pop(sid, None)

    def __len__(self) -> int:
        return len(self._entries)
