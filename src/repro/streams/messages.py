"""Stream-management message bodies (config / migrate / end / credit).

These ride in NoC packets of traffic class ``STREAM`` — the "extra
messages to manage floating streams" band in Figure 15. Payload sizes
follow Table I (450-bit affine config, +60 bits per indirect stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.streams.isa import (
    AFFINE_FIELDS,
    StreamSpec,
    config_packet_bits,
)
from repro.streams.plan import FloatPlan


@dataclass
class FloatConfig:
    """SE_L2 -> SE_L3: float a stream (plus chained indirect streams)."""

    spec: StreamSpec
    children: List[StreamSpec]
    start_idx: int
    credits: int
    requester: int
    # Incarnation counter: a stream sid may float, end, and float again;
    # the epoch lets SE_L3s drop stale credits/ends from an earlier life.
    epoch: int = 0
    # Per-range float plan (None: classic all-L3 float). Extra change
    # points cost PLAN_POINT_BITS each on the wire.
    plan: Optional[FloatPlan] = None

    def bits(self) -> int:
        return config_packet_bits([self.spec] + list(self.children)) + \
            (self.plan.extra_bits() if self.plan is not None else 0)


@dataclass
class Migrate:
    """SE_L3 -> SE_L3: stream crosses a NUCA interleave boundary."""

    spec: StreamSpec
    children: List[StreamSpec]
    next_idx: int
    credits: int
    requester: int
    epoch: int = 0
    plan: Optional[FloatPlan] = None

    def bits(self) -> int:
        # Config fields plus the current iteration and credit count.
        return config_packet_bits([self.spec] + list(self.children)) + \
            AFFINE_FIELDS["iter"] + 16 + \
            (self.plan.extra_bits() if self.plan is not None else 0)


@dataclass
class EndStream:
    """SE_L2 -> SE_L3: terminate a floating stream (early end / sink)."""

    requester: int
    sid: int
    epoch: int = 0

    def bits(self) -> int:
        return 16


@dataclass
class EndAck:
    """SE_L3 -> SE_L2: termination acknowledged."""

    sid: int

    def bits(self) -> int:
        return 16


@dataclass
class Credit:
    """SE_L2 -> SE_L3: coarse-grained flow-control credit grant."""

    requester: int
    sid: int
    count: int
    epoch: int = 0

    def bits(self) -> int:
        return 32


@dataclass
class StreamInv:
    """SE_L3 -> SE_L2 (stream-grain coherence, SS V-B): another core
    wrote into this stream's fetched range — the stream must
    re-execute (sink); its buffered data is stale."""

    sid: int
    addr: int

    def bits(self) -> int:
        return 64


@dataclass
class IndFetch:
    """SE_L3 -> SE_L3: fetch one indirect element at its home bank and
    respond (subline) directly to the requesting tile."""

    requester: int
    sid: int
    element: int
    addr: int
    data_bytes: int

    def bits(self) -> int:
        return 64
