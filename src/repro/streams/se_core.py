"""Core-side stream engine (SE_core).

Holds stream definitions after ``stream_cfg``, runs ahead of the core
issuing binding prefetches into stream FIFOs, and owns the
float/sink policy (SS IV-D):

- **Float at configure time** when the stream's known footprint
  already exceeds the private L2.
- **Float from history** when the history table (Table II) shows
  enough requests with no private-cache reuse, a high miss ratio and
  no aliasing stores.
- **Sink** (undo the float) on an aliasing store, or after 8
  consecutive private-cache hits for a floating stream.

Non-floated streams issue normal cacheable requests through the L1
(tagged with their stream id so the caches can report reuse and tag
fills for Figure 2a). Floated streams' requests still check the
L1/L2 tags but are intercepted by the SE_L2 on miss.

Memory ordering: the prefetch element buffer (PEB) is modelled as the
set of issued-but-unconsumed elements; :meth:`notify_store` checks
committed stores against every active load stream's in-flight window,
flushing and re-issuing on an alias hit and marking the stream
aliased (which sinks it and disables further floating).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.mem.l1 import L1Cache, L1Request
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats
from repro.streams.history import SmartFloatPolicy, StreamHistoryTable
from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern, IndirectPattern
from repro.streams.plan import CORE, FloatPlan


@dataclass
class CoreStream:
    """Runtime state of one configured stream."""

    spec: StreamSpec
    fifo_elems: int
    next_issue: int = 0
    claimed: int = 0  # elements claimed by core-side stream_loads
    freed: int = 0  # elements delivered to the core (FIFO slots freed)
    ready: set = field(default_factory=set)
    waiters: Dict[int, List[Callable[[], None]]] = field(default_factory=dict)
    floating: bool = False
    float_start: int = 0  # first element the SE_L3 serves
    consecutive_hits: int = 0
    prev_line: int = -1  # last line observed by the policy bookkeeping
    children: List["CoreStream"] = field(default_factory=list)
    parent: Optional["CoreStream"] = None
    addr_range: tuple = (0, 0)
    # Per-range float plan (None: classic all-L3 float from
    # float_start). Elements in the plan's CORE ranges issue through
    # the normal private-cache path even while the stream floats.
    plan: Optional[FloatPlan] = None
    # Snapshots of immutable spec properties (the ``length`` property
    # walks into ``len(pattern)`` on every access — hot in _pump).
    sid: int = field(init=False, default=0)
    length: int = field(init=False, default=0)
    # Vectorized store-address buffer: ``addresses()`` chunk covering
    # [addr_buf_start, addr_buf_start + len(addr_buf)).
    addr_buf: list = field(init=False, default_factory=list)
    addr_buf_start: int = field(init=False, default=-1)

    def __post_init__(self) -> None:
        self.sid = self.spec.sid
        self.length = self.spec.length

    def ready_through(self) -> int:
        """Highest contiguous ready element index (exclusive)."""
        idx = self.freed
        while idx in self.ready:
            idx += 1
        return idx


class SECore:
    """Stream engine in the core (SS III-B + IV-D)."""

    SINK_HIT_THRESHOLD = 8

    def __init__(
        self,
        sim: Simulator,
        stats: Stats,
        tile: int,
        l1: L1Cache,
        se_l2=None,
        fifo_bytes: int = 1024,
        max_streams: int = 12,
        l2_capacity: int = 256 * 1024,
        float_enabled: bool = False,
        indirect_float_enabled: bool = True,
        history: Optional[StreamHistoryTable] = None,
        float_policy: str = "static",
        plan_enabled: bool = False,
    ) -> None:
        self.sim = sim
        self.stats = stats
        self.tile = tile
        self.l1 = l1
        self.se_l2 = se_l2
        self.fifo_bytes = fifo_bytes
        self.max_streams = max_streams
        self.l2_capacity = l2_capacity
        self.float_enabled = float_enabled
        self.indirect_float_enabled = indirect_float_enabled
        self.history = history or StreamHistoryTable()
        if float_policy not in ("static", "smart"):
            raise ValueError(f"unknown float policy {float_policy!r}")
        self.float_policy = float_policy
        self.policy: Optional[SmartFloatPolicy] = (
            SmartFloatPolicy(self.history, l2_capacity,
                             plan_enabled=plan_enabled)
            if float_policy == "smart" else None
        )
        self.streams: Dict[int, CoreStream] = {}
        self._c_requests = stats.counter("se_core.requests")
        if se_l2 is not None:
            se_l2.se_core = self
        tel = getattr(sim, "telemetry", None)
        if tel is not None:
            tel.watch_se_core(self)

    # ------------------------------------------------------------------
    # configuration (stream_cfg / stream_end)
    # ------------------------------------------------------------------
    def configure(self, specs: List[StreamSpec]) -> None:
        if len(self.streams) + len(specs) > self.max_streams:
            raise RuntimeError(
                f"SE_core supports {self.max_streams} streams; "
                f"{len(self.streams) + len(specs)} configured"
            )
        load_specs = [s for s in specs if s.kind == "load"]
        share = max(1, self.fifo_bytes // max(
            1, sum(s.pattern.elem_size for s in load_specs)
        ))
        for spec in specs:
            stream = CoreStream(spec=spec, fifo_elems=share)
            stream.addr_range = self._range_of(spec)
            self.streams[spec.sid] = stream
            self.stats.add("se_core.streams_configured")
        # Wire indirect children to their parents.
        for spec in specs:
            if spec.parent_sid is not None:
                child = self.streams[spec.sid]
                parent = self.streams[spec.parent_sid]
                child.parent = parent
                parent.children.append(child)
        # Float-at-configure: known-length footprint beyond the L2.
        if self.float_enabled:
            policy = self.policy
            if (
                policy is not None and policy.bank_of is None
                and self.se_l2 is not None
            ):
                policy.bind(self.se_l2.nuca.bank_of, self.tile)
            for spec in specs:
                stream = self.streams[spec.sid]
                if stream.spec.kind != "load" or stream.spec.is_indirect:
                    continue  # indirect streams float with their parent
                if policy is not None:
                    ok, plan, reason = policy.config_decision(
                        stream, self._config_footprint(stream)
                    )
                    if ok:
                        self._float(stream, reason=reason, plan=plan)
                elif self._floats_at_config(stream):
                    self._float(stream, reason="footprint")
        for spec in specs:
            self._pump(self.streams[spec.sid])

    def _range_of(self, spec: StreamSpec) -> tuple:
        pat = spec.pattern
        if isinstance(pat, IndirectPattern):
            # Conservative: the whole target array could be touched.
            # A negative scale walks the target downward from base, so
            # normalize — an inverted (lo, hi) here used to poison the
            # footprint sum below and the notify_store range gate.
            end = pat.base + pat.scale * (max_or(pat.index_array, 0) + 1)
            return (min(pat.base, end), max(pat.base, end))
        lo = hi = pat.base
        for stride, length in zip(pat.strides, pat.lengths):
            span = stride * (length - 1)
            if span >= 0:
                hi += span
            else:
                lo += span
        return (lo, hi + pat.elem_size)

    def _config_footprint(self, stream: CoreStream) -> int:
        footprint = stream.spec.pattern.footprint_bytes()
        for child in stream.children:
            # The gather target range counts toward the footprint.
            lo, hi = self._range_of(child.spec)
            footprint += hi - lo
        return footprint

    def _floats_at_config(self, stream: CoreStream) -> bool:
        if stream.spec.kind != "load" or stream.spec.is_indirect:
            # Indirect streams float with their parent.
            return False
        return self._config_footprint(stream) > self.l2_capacity

    def end(self, sids: List[int]) -> None:
        for sid in sids:
            stream = self.streams.pop(sid, None)
            if stream is None:
                continue
            if stream.parent is not None and stream in stream.parent.children:
                # A child ended while its parent float stays live:
                # detach so the parent stops pumping the dead child
                # and the SE_L2 drops its buffered child state.
                stream.parent.children.remove(stream)
            if stream.floating and self.se_l2 is not None:
                self.se_l2.end_stream(sid)
            self.history.reset(sid)

    # ------------------------------------------------------------------
    # floating / sinking
    # ------------------------------------------------------------------
    def _float(
        self, stream: CoreStream, reason: str = "history",
        plan: Optional[FloatPlan] = None,
    ) -> None:
        """Float ``stream``. ``reason`` labels which policy fired
        ("footprint" at configure, "history" from Table II) — it has no
        behavioral effect, but the telemetry provenance pillar records
        it with the decision's input snapshot. ``plan`` (smart+plan
        policy) carries per-range levels; None is the classic float
        from the current element."""
        if stream.floating or self.se_l2 is None:
            return
        if plan is not None and stream.children:
            # Chained indirect children have no data source in an
            # L2-level range: indirect floats stay classic.
            plan = None
        if plan is not None:
            plan.delay_until(stream.next_issue)
            first = plan.first_float_elem()
            if first is None:
                return  # degenerated to all-core: nothing floats
            float_start = first
        else:
            float_start = stream.next_issue
        stream.floating = True
        stream.float_start = float_start
        stream.plan = plan
        float_children = (
            stream.children if self.indirect_float_enabled else []
        )
        for child in float_children:
            child.floating = True
            # The SE_L3 chains children from the parent's float point;
            # earlier child elements still use the normal path.
            child.float_start = float_start
        self.stats.add("se_core.floats")
        self.se_l2.float_stream(
            stream.spec,
            start_idx=float_start,
            children=[c.spec for c in float_children],
            plan=plan,
        )

    def _sink(self, stream: CoreStream, reason: str = "policy") -> None:
        """Sink ``stream`` (undo its float). ``reason`` labels the
        trigger site ("cache_hits", "alias_store", "context_flush",
        "stream_inv", "alias_evict") for the provenance ledger; it has
        no behavioral effect."""
        if stream.parent is not None:
            # Indirect streams float and sink with their parent.
            self._sink(stream.parent, reason)
            return
        if not stream.floating:
            return
        stream.floating = False
        stream.plan = None
        for child in stream.children:
            child.floating = False
            child.plan = None
        self.stats.add("se_core.sinks")
        # Start the history over: without this, a still-qualifying
        # history entry would re-float the stream the next cycle and
        # the engine would thrash between floating and sinking. The
        # aliased bit survives the reset (Table II): an aliased
        # stream must not re-float; a revocation cooldown survives
        # for the same reason.
        for s in [stream] + stream.children:
            self.history.carryover_reset(s.sid)
        if self.se_l2 is not None:
            self.se_l2.end_stream(stream.sid)

    def _revoke(self, stream: CoreStream, reason: str) -> None:
        """Smart policy: undo a demonstrably bad float mid-run and
        start the cooldown that keeps it from re-floating right away.
        ``reason`` names the trigger ("revoke_reuse_burst",
        "revoke_cache_hits", "revoke_alias_density")."""
        if stream.parent is not None:
            self._revoke(stream.parent, reason)
            return
        if not stream.floating or self.policy is None:
            return
        self.stats.add("se_core.revokes")
        for s in [stream] + stream.children:
            ent = self.history.entry(s.sid)
            ent.cooldown = self.policy.COOLDOWN
            ent.revokes += 1
        self._sink(stream, reason=reason)

    def _maybe_float_from_history(self, stream: CoreStream) -> None:
        if (
            not self.float_enabled
            or stream.floating
            or stream.spec.kind != "load"
            or stream.spec.is_indirect
        ):
            return
        if self.policy is not None:
            ok, plan, reason = self.policy.history_decision(stream)
            if ok:
                self._float(stream, reason=reason, plan=plan)
            return
        if self.history.should_float(stream.sid) or any(
            self.history.should_float(c.sid) for c in stream.children
        ):
            self._float(stream)

    def on_stream_reuse(self, sid: int) -> None:
        """L2 hook: a stream-tagged line was reused in the L2."""
        self.history.record_reuse(sid)
        if self.policy is None:
            return
        stream = self.streams.get(sid)
        if stream is None:
            return
        parent = stream.parent or stream
        if (
            parent.floating
            and self.history.entry(sid).w_reuses
            >= self.policy.REVOKE_REUSE_BURST
        ):
            # Reuse burst at the L2: the float is starving a working
            # set the private caches were serving fine.
            self._revoke(parent, "revoke_reuse_burst")

    def flush_floating(self) -> None:
        """Context switch (SS IV-E): discard all floating streams.

        Stream floating adds no architectural state, so switching is
        just sinking every float; on switch-back nothing is floating
        and the policies re-decide from scratch.
        """
        for stream in list(self.streams.values()):
            if stream.floating and stream.parent is None:
                self._sink(stream, reason="context_flush")
        self.stats.add("se_core.context_flushes")

    # ------------------------------------------------------------------
    # issue machinery
    # ------------------------------------------------------------------
    def _pump(self, stream: CoreStream) -> None:
        """Issue requests up to the FIFO run-ahead window.

        Affine parent streams issue at *line-run* granularity: the
        consecutive same-line elements ahead of ``next_issue`` share
        one L1 request (the hardware coalesces subline elements into
        one line fetch anyway). Indirect streams stay per-element —
        each address needs its parent's value.
        """
        if stream.spec.kind != "load":
            return
        limit = min(stream.length, stream.freed + stream.fifo_elems)
        pattern = stream.spec.pattern
        coalesce = stream.parent is None and isinstance(pattern, AffinePattern)
        while stream.next_issue < limit:
            idx = stream.next_issue
            if stream.parent is not None:
                # Indirect: address needs the parent's element value.
                if idx >= stream.parent.ready_through() and not stream.floating:
                    break  # parent data not there yet; re-pumped later
            count = 1
            if coalesce:
                cap = limit - idx
                if stream.floating and idx < stream.float_start:
                    # The floating flag flips at float_start; a request
                    # must not straddle it. (A whole floating run is
                    # fine: same-line elements already rode one L1
                    # MSHR entry and released together pre-coalescing.)
                    cap = min(cap, stream.float_start - idx)
                if stream.floating and stream.plan is not None:
                    # Likewise a request must not straddle a plan
                    # change point (the serving level flips there).
                    edge = stream.plan.next_edge(idx)
                    if edge is not None:
                        cap = min(cap, edge - idx)
                if cap > 1:
                    count = pattern.line_run_length(idx, cap)
            stream.next_issue = idx + count
            self._issue(stream, idx, count=count)

    def _issue(
        self, stream: CoreStream, idx: int, reissue: bool = False,
        count: int = 1,
    ) -> None:
        addr = stream.spec.pattern.address(idx)
        sid = stream.sid
        self._c_requests[0] += count

        if count == 1:
            def on_done() -> None:
                self._element_ready(stream, idx)
        else:
            def on_done() -> None:
                # One line fetch served this many elements; keep the
                # logical event count at element grain.
                self.sim.count_inlined_events(count - 1)
                for j in range(idx, idx + count):
                    self._element_ready(stream, j)

        flo = stream.floating and idx >= stream.float_start
        if flo and stream.plan is not None:
            # Plan CORE ranges issue through the normal path even
            # while the stream floats elsewhere.
            flo = stream.plan.level_at(idx) != CORE
        req = L1Request(
            addr=addr,
            stream_id=sid,
            element=idx,
            floating=flo,
            on_done=on_done,
            count=count,
        )
        # Float/sink policy bookkeeping runs at cache-line grain: the
        # 2nd..16th element of a line is neither a fresh request nor a
        # hit/miss sample (it merges into the same line fetch).
        line = addr >> 6
        if line != stream.prev_line:
            stream.prev_line = line
            self.history.record_request(sid)
            # "Miss" means missing the whole private hierarchy
            # (Table II tracks private-cache misses); secondary misses
            # merged into an in-flight MSHR don't count either.
            hit = (
                self.l1.array.contains(addr)
                or self.l1.mshr.lookup(addr) is not None
                or self.l1.l2.array.contains(addr)
            )
            if not hit:
                self.history.record_miss(sid)
                stream.consecutive_hits = 0
            else:
                stream.consecutive_hits += 1
                if stream.floating:
                    if self.policy is not None:
                        trigger = self.policy.should_revoke(stream)
                        if trigger is not None:
                            self._revoke(stream, trigger)
                    elif stream.consecutive_hits >= self.SINK_HIT_THRESHOLD:
                        # The data is locally cached after all (SS IV-D).
                        self._sink(stream, reason="cache_hits")
        self.l1.access(req)
        if not reissue:
            self._maybe_float_from_history(stream)

    def _element_ready(self, stream: CoreStream, idx: int) -> None:
        stream.ready.add(idx)
        for waiter in stream.waiters.pop(idx, []):
            waiter()
        for child in stream.children:
            self._pump(child)

    # ------------------------------------------------------------------
    # core-side consumption (stream_load / stream_store)
    # ------------------------------------------------------------------
    def consume(self, sid: int, on_ready: Callable[[], None]) -> None:
        """stream_load: claim the next element; ``on_ready`` fires once
        its data is delivered (FIFO slot freed at that point).

        Pipelined iterations may claim ahead of deliveries — each call
        gets a distinct element index.
        """
        stream = self.streams[sid]
        idx = stream.claimed
        stream.claimed = idx + 1

        def deliver() -> None:
            stream.ready.discard(idx)
            stream.freed = max(stream.freed, idx + 1)
            if self.se_l2 is not None and stream.floating:
                self.se_l2.on_consumed(sid, idx)
            self._pump(stream)
            on_ready()

        if idx in stream.ready:
            # NOT fused: consume() is called mid-handler (the core keeps
            # dispatching after it returns), so running deliver() here
            # would reorder it ahead of the caller's remaining same-cycle
            # work — unlike the tail-position fusions in l1/l2 (§12).
            self.sim.schedule(0, deliver)
        else:
            stream.waiters.setdefault(idx, []).append(deliver)
            # Ensure the element is on its way (e.g. FIFO share 0 edge).
            if stream.next_issue <= idx:
                self._pump(stream)

    ADDR_CHUNK = 64  # elements per vectorized addresses() batch

    def store_next(self, sid: int) -> int:
        """stream_store: generate the next store address and advance.

        Store streams walk their pattern strictly sequentially, so the
        address generation is vectorized: one ``addresses()`` batch
        per :data:`ADDR_CHUNK` elements instead of one mixed-radix
        ``address()`` computation per store.
        """
        stream = self.streams[sid]
        idx = stream.claimed
        stream.claimed = idx + 1
        stream.freed = idx + 1
        start = stream.addr_buf_start
        buf = stream.addr_buf
        if start < 0 or not (start <= idx < start + len(buf)):
            pattern = stream.spec.pattern
            count = min(self.ADDR_CHUNK, stream.length - idx)
            if count > 1 and isinstance(pattern, AffinePattern):
                chunk = pattern.addresses(idx, count)
                buf = chunk.tolist() if hasattr(chunk, "tolist") else chunk
            else:
                buf = [pattern.address(idx)]
            stream.addr_buf = buf
            stream.addr_buf_start = start = idx
        return buf[idx - start]

    # ------------------------------------------------------------------
    # memory disambiguation (PEB, SS IV-E)
    # ------------------------------------------------------------------
    def notify_store(self, addr: int, size: int = 8) -> None:
        """A store committed: check it against in-flight stream windows."""
        for stream in list(self.streams.values()):
            if stream.spec.kind != "load":
                continue
            lo, hi = stream.addr_range
            if not (lo <= addr < hi):
                continue
            # Check the precise in-flight (PEB) window.
            aliased = False
            for idx in range(stream.freed, stream.next_issue):
                elem_addr = stream.spec.pattern.address(idx)
                if elem_addr <= addr < elem_addr + stream.spec.pattern.elem_size:
                    aliased = True
                    break
            if not aliased:
                if self.policy is not None:
                    # In-range but outside the in-flight window: a
                    # near-alias. Dense bursts make floating risky —
                    # the smart policy revokes before a real alias
                    # forces the expensive flush below.
                    self.history.record_range_store(stream.sid)
                    if (
                        stream.floating
                        and self.history.entry(stream.sid).w_stores
                        >= self.policy.REVOKE_ALIAS_DENSITY
                    ):
                        self._revoke(stream, "revoke_alias_density")
                continue
            self.stats.add("se_core.alias_flushes")
            self.history.record_alias(stream.sid)
            if stream.floating:
                self._sink(stream, reason="alias_store")
            # Flush the PEB: drop and re-issue unconsumed elements.
            for idx in range(stream.freed, stream.next_issue):
                if idx in stream.ready:
                    stream.ready.discard(idx)
                self._issue(stream, idx, reissue=True)


def max_or(seq, default):
    """Max of a (possibly numpy) sequence with a default for empty."""
    try:
        if len(seq) == 0:
            return default
    except TypeError:
        return default
    return int(max(seq))
