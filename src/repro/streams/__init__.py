"""Decoupled streams and the stream-floating engines."""

from repro.streams.history import HistoryEntry, StreamHistoryTable
from repro.streams.isa import (
    AFFINE_CONFIG_BITS,
    INDIRECT_CONFIG_BITS,
    StreamCfg,
    StreamEnd,
    StreamSpec,
    config_packet_bits,
)
from repro.streams.messages import (
    Credit,
    EndAck,
    EndStream,
    FloatConfig,
    IndFetch,
    Migrate,
)
from repro.streams.pattern import AffinePattern, IndirectPattern
from repro.streams.se_core import CoreStream, SECore
from repro.streams.se_l2 import SEL2
from repro.streams.se_l3 import SEL3

__all__ = [
    "AffinePattern",
    "IndirectPattern",
    "StreamSpec",
    "StreamCfg",
    "StreamEnd",
    "AFFINE_CONFIG_BITS",
    "INDIRECT_CONFIG_BITS",
    "config_packet_bits",
    "StreamHistoryTable",
    "HistoryEntry",
    "SECore",
    "CoreStream",
    "SEL2",
    "SEL3",
    "FloatConfig",
    "Migrate",
    "EndStream",
    "EndAck",
    "Credit",
    "IndFetch",
]
