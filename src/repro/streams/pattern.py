"""Stream access patterns: affine (up to 3 nested levels) and indirect.

The decoupled-stream ISA (SS III-A, Table I) encodes an affine stream
as a base address, up to three (stride, length) levels and an element
size. The flat element index ``i`` decomposes mixed-radix over the
level lengths (innermost level first):

    i = i2 * (len1 * len0) + i1 * len0 + i0
    addr(i) = base + i0*strd0 + i1*strd1 + i2*strd2

An indirect stream ``B[A[i] + w]`` (equation 1, SS IV-B) hangs off an
affine *index* stream over A: for each element the index value is read
from the actual workload array, scaled, and offset into B. Because the
simulator is execution-driven at the address level, the indirect
pattern holds a reference to the real (numpy or list) index array so
remote SE_L3s can chain addresses exactly like the hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.mem.addr import LINE_SIZE, line_addr


@dataclass(frozen=True)
class AffinePattern:
    """A (up to) 3-level affine access pattern."""

    base: int
    strides: Tuple[int, ...]  # bytes per step, innermost first
    lengths: Tuple[int, ...]  # trip counts, innermost first
    elem_size: int = 8

    def __post_init__(self) -> None:
        if not (1 <= len(self.strides) <= 3):
            raise ValueError("affine patterns support 1-3 levels")
        if len(self.strides) != len(self.lengths):
            raise ValueError("strides and lengths must align")
        if any(length <= 0 for length in self.lengths):
            raise ValueError("lengths must be positive")
        if self.elem_size <= 0:
            raise ValueError("elem_size must be positive")

    def __len__(self) -> int:
        total = 1
        for length in self.lengths:
            total *= length
        return total

    def address(self, idx: int) -> int:
        """Virtual address of flat element ``idx``."""
        if not (0 <= idx < len(self)):
            raise IndexError(f"element {idx} out of range ({len(self)})")
        addr = self.base
        remaining = idx
        for stride, length in zip(self.strides, self.lengths):
            addr += (remaining % length) * stride
            remaining //= length
        return addr

    def footprint_bytes(self) -> int:
        """Size of the touched address range (upper bound: distinct
        bytes assuming dense innermost level)."""
        lo = hi = self.base
        # Evaluate the extreme corners of the iteration space.
        for stride, length in zip(self.strides, self.lengths):
            span = stride * (length - 1)
            if span >= 0:
                hi += span
            else:
                lo += span
        return hi - lo + self.elem_size

    def lines(self) -> List[int]:
        """Distinct cache lines in iteration order (test helper; O(n))."""
        seen: List[int] = []
        last = None
        for idx in range(len(self)):
            line = line_addr(self.address(idx))
            if line != last and line not in seen:
                seen.append(line)
            last = line
        return seen

    def same_shape(self, other: "AffinePattern") -> bool:
        """Identical parameters — the stream-confluence merge test
        (SS IV-C compares base, strides, lengths of candidate streams)."""
        return (
            self.base == other.base
            and self.strides == other.strides
            and self.lengths == other.lengths
            and self.elem_size == other.elem_size
        )


@dataclass(frozen=True)
class IndirectPattern:
    """An indirect pattern ``B[A[i] + w]`` chained to an affine stream.

    ``index_array`` is the actual A[] contents (any integer sequence);
    ``index_pattern`` describes how A is walked. The indirect element
    for flat index ``i`` lives at::

        base + index_array[element_index(i)] * scale + field_offset
    """

    base: int
    index_pattern: AffinePattern
    index_array: Sequence[int] = field(hash=False, compare=False)
    scale: int = 8  # B element size the index is scaled by
    field_offset: int = 0  # the "+w" field/window offset
    elem_size: int = 8  # bytes actually consumed per element

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.elem_size <= 0:
            raise ValueError("scale and elem_size must be positive")

    def __len__(self) -> int:
        return len(self.index_pattern)

    def element_index(self, idx: int) -> int:
        """Logical A[] index for flat element ``idx``."""
        offset = self.index_pattern.address(idx) - self.index_pattern.base
        if offset % self.index_pattern.elem_size:
            raise ValueError("index stream address not element-aligned")
        return offset // self.index_pattern.elem_size

    def index_value(self, idx: int) -> int:
        return int(self.index_array[self.element_index(idx)])

    def address(self, idx: int) -> int:
        """Virtual address of indirect element ``idx``."""
        return self.base + self.index_value(idx) * self.scale + self.field_offset
