"""Stream access patterns: affine (up to 3 nested levels) and indirect.

The decoupled-stream ISA (SS III-A, Table I) encodes an affine stream
as a base address, up to three (stride, length) levels and an element
size. The flat element index ``i`` decomposes mixed-radix over the
level lengths (innermost level first):

    i = i2 * (len1 * len0) + i1 * len0 + i0
    addr(i) = base + i0*strd0 + i1*strd1 + i2*strd2

An indirect stream ``B[A[i] + w]`` (equation 1, SS IV-B) hangs off an
affine *index* stream over A: for each element the index value is read
from the actual workload array, scaled, and offset into B. Because the
simulator is execution-driven at the address level, the indirect
pattern holds a reference to the real (numpy or list) index array so
remote SE_L3s can chain addresses exactly like the hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Optional, Sequence, Tuple

from repro.mem.addr import LINE_SIZE, line_addr

try:  # optional vectorized element generation (no hard dependency)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


@dataclass(frozen=True)
class AffinePattern:
    """A (up to) 3-level affine access pattern."""

    base: int
    strides: Tuple[int, ...]  # bytes per step, innermost first
    lengths: Tuple[int, ...]  # trip counts, innermost first
    elem_size: int = 8

    def __post_init__(self) -> None:
        if not (1 <= len(self.strides) <= 3):
            raise ValueError("affine patterns support 1-3 levels")
        if len(self.strides) != len(self.lengths):
            raise ValueError("strides and lengths must align")
        if any(length <= 0 for length in self.lengths):
            raise ValueError("lengths must be positive")
        if self.elem_size <= 0:
            raise ValueError("elem_size must be positive")

    @cached_property
    def _size(self) -> int:
        total = 1
        for length in self.lengths:
            total *= length
        return total

    def __len__(self) -> int:
        return self._size

    def address(self, idx: int) -> int:
        """Virtual address of flat element ``idx``."""
        if not 0 <= idx < self._size:
            raise IndexError(f"element {idx} out of range ({self._size})")
        strides = self.strides
        levels = len(strides)
        if levels == 1:
            return self.base + idx * strides[0]
        lengths = self.lengths
        len0 = lengths[0]
        addr = self.base + (idx % len0) * strides[0]
        idx //= len0
        if levels == 2:
            return addr + idx * strides[1]
        len1 = lengths[1]
        return addr + (idx % len1) * strides[1] + (idx // len1) * strides[2]

    def addresses(self, start: int, count: int):
        """Addresses of elements ``start .. start+count-1`` (flat order).

        Returns a numpy int64 array when numpy is available, else a
        list — either way indexable and iterable. The vectorized path
        computes the mixed-radix decomposition closed-form instead of
        one :meth:`address` call per element.
        """
        if count < 0 or not 0 <= start <= self._size - count:
            raise IndexError(
                f"elements [{start}, {start + count}) out of range "
                f"({self._size})"
            )
        if _np is None:
            return [self.address(start + i) for i in range(count)]
        idx = _np.arange(start, start + count, dtype=_np.int64)
        strides = self.strides
        lengths = self.lengths
        addr = idx * 0 + self.base
        for level, stride in enumerate(strides[:-1]):
            addr += (idx % lengths[level]) * stride
            idx //= lengths[level]
        addr += idx * strides[-1]
        return addr

    def line_run_length(self, idx: int, limit: int) -> int:
        """How many consecutive elements starting at ``idx`` sit on
        ``idx``'s cache line (at least 1, at most ``limit``).

        This is the L3 issue unit's coalescing question (one GetU can
        serve a whole line's worth of subline elements), answered
        closed-form over the innermost affine level instead of one
        :meth:`address` call per element.
        """
        if limit > self._size - idx:
            limit = self._size - idx
        if limit <= 1:
            return max(limit, 1)
        addr = self.address(idx)
        line = addr & ~(LINE_SIZE - 1)
        len0 = self.lengths[0]
        strd0 = self.strides[0]
        row_remaining = len0 - idx % len0
        if strd0 > 0:
            run = -(-(line + LINE_SIZE - addr) // strd0)
        elif strd0 < 0:
            run = (addr - line) // -strd0 + 1
        else:
            run = limit
        count = min(run, row_remaining, limit)
        # A level boundary (or stride 0) may continue on the same
        # line; finish with the generic walk for the rare tail.
        while count < limit and self.address(idx + count) & ~(LINE_SIZE - 1) == line:
            count += 1
        return count

    def footprint_bytes(self) -> int:
        """Size of the touched address range (upper bound: distinct
        bytes assuming dense innermost level)."""
        lo = hi = self.base
        # Evaluate the extreme corners of the iteration space.
        for stride, length in zip(self.strides, self.lengths):
            span = stride * (length - 1)
            if span >= 0:
                hi += span
            else:
                lo += span
        return hi - lo + self.elem_size

    def lines(self) -> List[int]:
        """Distinct cache lines in iteration order (test helper; O(n))."""
        seen: List[int] = []
        last = None
        for addr in self.addresses(0, len(self)):
            line = line_addr(int(addr))
            if line != last and line not in seen:
                seen.append(line)
            last = line
        return seen

    def same_shape(self, other: "AffinePattern") -> bool:
        """Identical parameters — the stream-confluence merge test
        (SS IV-C compares base, strides, lengths of candidate streams)."""
        return (
            self.base == other.base
            and self.strides == other.strides
            and self.lengths == other.lengths
            and self.elem_size == other.elem_size
        )


@dataclass(frozen=True)
class IndirectPattern:
    """An indirect pattern ``B[A[i] + w]`` chained to an affine stream.

    ``index_array`` is the actual A[] contents (any integer sequence);
    ``index_pattern`` describes how A is walked. The indirect element
    for flat index ``i`` lives at::

        base + index_array[element_index(i)] * scale + field_offset
    """

    base: int
    index_pattern: AffinePattern
    index_array: Sequence[int] = field(hash=False, compare=False)
    scale: int = 8  # B element size the index is scaled by
    field_offset: int = 0  # the "+w" field/window offset
    elem_size: int = 8  # bytes actually consumed per element

    def __post_init__(self) -> None:
        # Negative scales are legal (descending gather targets); only
        # a zero scale (every element at base) is degenerate.
        if self.scale == 0 or self.elem_size <= 0:
            raise ValueError("scale must be nonzero and elem_size positive")

    def __len__(self) -> int:
        return len(self.index_pattern)

    def element_index(self, idx: int) -> int:
        """Logical A[] index for flat element ``idx``."""
        offset = self.index_pattern.address(idx) - self.index_pattern.base
        if offset % self.index_pattern.elem_size:
            raise ValueError("index stream address not element-aligned")
        return offset // self.index_pattern.elem_size

    def index_value(self, idx: int) -> int:
        return int(self.index_array[self.element_index(idx)])

    def address(self, idx: int) -> int:
        """Virtual address of indirect element ``idx``."""
        return self.base + self.index_value(idx) * self.scale + self.field_offset
