"""Per-element-range float plans (gem-forge's ``StreamFloatPlan``).

A classic float is all-or-nothing from ``start_idx``: every remaining
element is served by a remote SE_L3. A :class:`FloatPlan` generalizes
this to *change points* — element indices where the stream's serving
level switches — so one stream can run

    private caches -> float-to-L2 -> float-to-L3

over different element ranges. Three levels exist:

- :data:`CORE` — the element issues through the normal private-cache
  path (no floating);
- :data:`L2` — the SE_L2 prefetches the range into its stream buffer
  through the local L2 (cacheable; no remote SE_L3 involved);
- :data:`L3` — the classic decentralized path: a FloatConfig installs
  the range at the home SE_L3 bank and data streams back uncached.

Plans are carried end-to-end: ``se_core._float`` attaches one,
``se_l2.float_stream`` splits it into the L2-prefetch range and the
L3 range (deferring the FloatConfig until the consumer approaches a
midway L3 range), and ``se_l3._configure`` truncates the resident
stream to its L3 range. The wire cost is
:data:`~repro.streams.isa.PLAN_POINT_BITS` per change point beyond
the first (the first is the config's existing ``start_idx``).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.streams.isa import PLAN_POINT_BITS

CORE = "core"
L2 = "l2"
L3 = "l3"

LEVELS = (CORE, L2, L3)


class FloatPlan:
    """Sorted change points mapping element ranges to float levels.

    Elements before the first change point are implicitly
    :data:`CORE`. ``add_change_point`` entries are merged and sorted
    by :meth:`finalize` (idempotent; queries finalize lazily).
    """

    __slots__ = ("_points", "_starts", "_levels")

    def __init__(
        self, points: Optional[List[Tuple[int, str]]] = None,
    ) -> None:
        self._points: Dict[int, str] = {}
        self._starts: List[int] = []
        self._levels: List[str] = []
        if points:
            for elem, level in points:
                self.add_change_point(elem, level)
            self.finalize()

    def add_change_point(self, elem: int, level: str) -> "FloatPlan":
        if level not in LEVELS:
            raise ValueError(f"unknown float level {level!r}")
        if elem < 0:
            raise ValueError("change points are element indices (>= 0)")
        self._points[elem] = level  # last writer wins
        self._starts = []
        return self

    def finalize(self) -> "FloatPlan":
        """Sort the change points and merge adjacent same-level runs."""
        starts: List[int] = []
        levels: List[str] = []
        for elem in sorted(self._points):
            level = self._points[elem]
            prev = levels[-1] if levels else CORE
            if level == prev:
                continue  # no level change: merge into the prior run
            starts.append(elem)
            levels.append(level)
        self._starts = starts
        self._levels = levels
        return self

    def _ensure(self) -> None:
        if not self._starts and self._points:
            self.finalize()

    def delay_until(self, first: int) -> "FloatPlan":
        """gem-forge ``delayFloatUntil``: everything before ``first``
        runs on the core; the level active at ``first`` re-anchors
        there. Used when the float decision lands mid-stream."""
        level = self.level_at(first)
        self._points = {
            e: lv for e, lv in self._points.items() if e > first
        }
        if level != CORE:
            self._points[first] = level
        return self.finalize()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def level_at(self, idx: int) -> str:
        self._ensure()
        pos = bisect_right(self._starts, idx) - 1
        return self._levels[pos] if pos >= 0 else CORE

    def first_float_elem(self) -> Optional[int]:
        """First element served away from the core (midway floating)."""
        self._ensure()
        for start, level in zip(self._starts, self._levels):
            if level != CORE:
                return start
        return None

    def first_at(self, level: str) -> Optional[int]:
        """First element of the first ``level`` range, if any."""
        self._ensure()
        if level == CORE and (not self._starts or self._starts[0] > 0):
            return 0  # the implicit leading CORE run
        for start, lv in zip(self._starts, self._levels):
            if lv == level:
                return start
        return None

    def run_end(self, idx: int, default: int) -> int:
        """End (exclusive) of the contiguous same-level run at ``idx``
        (``default``: the run extends to the end of the stream)."""
        self._ensure()
        pos = bisect_right(self._starts, idx)
        return self._starts[pos] if pos < len(self._starts) else default

    def next_edge(self, idx: int) -> Optional[int]:
        """Next change point strictly after ``idx``, if any."""
        self._ensure()
        pos = bisect_right(self._starts, idx)
        return self._starts[pos] if pos < len(self._starts) else None

    def ranges(self) -> List[Tuple[int, str]]:
        """(start, level) runs in element order (implicit CORE run at
        0 omitted)."""
        self._ensure()
        return list(zip(self._starts, self._levels))

    # ------------------------------------------------------------------
    # wire cost / observability
    # ------------------------------------------------------------------
    def extra_bits(self) -> int:
        """Config-packet bits beyond a classic float (whose single
        change point is the existing ``start_idx`` field)."""
        self._ensure()
        return max(0, len(self._starts) - 1) * PLAN_POINT_BITS

    def to_dict(self) -> Dict[str, List]:
        return {"points": [[s, lv] for s, lv in self.ranges()]}

    def describe(self) -> str:
        self._ensure()
        if not self._starts:
            return "core@0"
        return " ".join(
            f"{lv}@{s}" for s, lv in zip(self._starts, self._levels)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FloatPlan({self.describe()})"
