"""L2-side stream engine (SE_L2, Figure 9).

The requesting tile's SE_L2:

- forwards float configurations to the home L3 bank of the stream's
  first element (after translating through the L2 TLB);
- buffers DataU responses from remote SE_L3s in an address-tagged
  stream buffer (the data is *not* cached — SS V-A);
- intercepts the core's floating-stream requests that miss in the
  private caches and answers them from the buffer;
- runs the coarse-grained credit protocol: credits return to the
  current bank only once half the buffer share has been freed,
  amortizing flow-control messages (SS IV-A);
- watches dirty L2 evictions for aliasing with buffered stream data,
  sinking the stream when found (SS IV-E, second window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.mem.addr import LINE_SIZE, NucaMap, line_addr

_LINE_MASK = ~(LINE_SIZE - 1)  # line_addr(), inlined for the hot paths
from repro.mem.l2 import L2AccessResult, L2Cache, L2Request
from repro.mem.tlb import Tlb
from repro.noc.message import STREAM, Packet
from repro.noc.network import Network
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats
from repro.streams.isa import StreamSpec
from repro.streams.messages import (
    Credit,
    EndAck,
    EndStream,
    FloatConfig,
    StreamInv,
)
from repro.streams.pattern import AffinePattern
from repro.streams.plan import L2, L3, FloatPlan


@dataclass
class Follower:
    """A constant-offset shifted copy of a floated stream (SS IV-B).

    Follower element ``i`` reads the leader's element ``i - delta``
    (``delta > 0``: the leader runs ahead). Only the leader fetches
    from the L3 — this is the stencil-reuse optimization that keeps
    A[i-1], A[i], A[i+1] from tripling floated traffic.
    """

    spec: StreamSpec
    delta: int
    consumed: int = 0


@dataclass
class BufferedStream:
    """Stream-buffer state for one floated stream."""

    spec: StreamSpec
    children: List[StreamSpec]
    capacity: int  # buffer share, in elements (credits granted at once)
    granted: int  # total credits handed to the SE_L3 side
    start_idx: int = 0  # first element the floated stream covers
    last_bank: int = 0  # bank that last sent us data (credit target)
    visited_banks: set = field(default_factory=set)  # for SS V-B dealloc
    ready: set = field(default_factory=set)
    served_by_cache: set = field(default_factory=set)
    waiters: Dict[int, List[L2Request]] = field(default_factory=dict)
    pending_free: int = 0
    child_ready: Dict[int, set] = field(default_factory=dict)  # sid -> idx set
    child_waiters: Dict[Tuple[int, int], List[L2Request]] = field(default_factory=dict)
    # Constant-offset reuse (SS IV-B):
    followers: Dict[int, Follower] = field(default_factory=dict)  # sid -> f
    consumed_leader: int = 0
    freed_through: int = 0
    # Incarnation counter (a sid can sink and re-float): stamped on
    # every config/credit/end message so SE_L3s can drop stale ones.
    epoch: int = 0
    # idx -> line base of element idx; the pattern is immutable for the
    # life of this buffered incarnation, so the dirty-evict alias scan
    # (on_dirty_evict) memoizes instead of re-evaluating the pattern
    # for every buffered element on every eviction.
    line_memo: Dict[int, int] = field(default_factory=dict)
    # Per-range float plan state (streams/plan.py). Classic floats:
    # plan None, l3_start == start_idx, config sent immediately.
    plan: Optional[FloatPlan] = None
    l3_start: Optional[int] = None  # first SE_L3-served element
    l3_limit: int = 0  # end (exclusive) of the SE_L3 range
    pending_config: bool = False  # config deferred until consumer nears
    config_sent: bool = False
    # L2-prefetch range cursor ([l2_next, l2_end) still to fetch).
    l2_next: int = 0
    l2_end: int = 0
    l2_inflight: int = 0

    @property
    def sid(self) -> int:
        return self.spec.sid

    def releasable_through(self) -> int:
        """Last element (exclusive) no consumer still needs."""
        through = self.consumed_leader
        for f in self.followers.values():
            through = min(through, f.consumed - f.delta)
        return through


class SEL2:
    """Stream engine at the private L2 (SS IV-A, Figure 9)."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        stats: Stats,
        tile: int,
        l2: L2Cache,
        nuca: NucaMap,
        buffer_bytes: int = 16 * 1024,
        stream_grain_coherence: bool = False,
        tlb: Optional[Tlb] = None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.stats = stats
        self.tile = tile
        self.l2 = l2
        self.nuca = nuca
        self.buffer_bytes = buffer_bytes
        self.stream_grain_coherence = stream_grain_coherence
        self.tlb = tlb or Tlb(entries=2048, hit_latency=8)
        self.streams: Dict[int, BufferedStream] = {}
        # sid -> (buffered stream, role) for every sid that resolves:
        # leaders, their indirect children, and followers. Kept in
        # sync by float/follow/end so the hot lookup is one dict get.
        self._sid_index: Dict[int, Tuple[BufferedStream, str]] = {}
        self._epochs: Dict[int, int] = {}  # sid -> last float epoch
        # Interned counter cells for the per-element hot path.
        self._c_intercepts = stats.counter("se_l2.intercepts")
        self._c_data_arrivals = stats.counter("se_l2.data_arrivals")
        self.se_core = None  # wired by SECore.__init__
        l2.se_l2 = self
        net.register(tile, "se_l2", self.handle)
        san = getattr(sim, "sanitizer", None)
        if san is not None:
            san.watch_se_l2(self)
        tel = getattr(sim, "telemetry", None)
        if tel is not None:
            tel.watch_se_l2(self)

    # ------------------------------------------------------------------
    # floating / termination (SE_core-facing)
    # ------------------------------------------------------------------
    def float_stream(
        self, spec: StreamSpec, start_idx: int, children: List[StreamSpec],
        plan: Optional[FloatPlan] = None,
    ) -> None:
        if plan is None and not children and self._try_follow(spec):
            return
        granule = spec.pattern.elem_size + sum(
            c.pattern.elem_size for c in children
        )
        active = max(1, len(self.streams) + 1)
        capacity = max(2, self.buffer_bytes // granule // active)
        epoch = self._epochs.get(spec.sid, 0) + 1
        self._epochs[spec.sid] = epoch
        l3_start = start_idx if plan is None else plan.first_at(L3)
        if plan is not None and l3_start is not None \
                and l3_start >= spec.length:
            l3_start = None  # the L3 range is empty: pure-L2 plan
        stream = BufferedStream(
            spec=spec, children=list(children),
            capacity=capacity, granted=start_idx + capacity,
            start_idx=start_idx, epoch=epoch,
            plan=plan, l3_start=l3_start, l3_limit=spec.length,
        )
        stream.consumed_leader = start_idx
        stream.freed_through = start_idx
        # Credits chase the L3 range's first element (== start_idx for
        # classic floats).
        anchor = l3_start if l3_start is not None else start_idx
        stream.last_bank = self.nuca.bank_of(
            spec.pattern.address(min(anchor, spec.length - 1))
        )
        for child in children:
            stream.child_ready[child.sid] = set()
        self.streams[spec.sid] = stream
        self._sid_index[spec.sid] = (stream, "leader")
        for child in children:
            self._sid_index[child.sid] = (stream, "child")
        self.stats.add("se_l2.floats")
        if plan is None:
            self._send_config(stream)
            return
        # Plan path: prefetch the L2-level range through the local L2
        # (cacheable; untagged so the stream's own hits don't read as
        # policy reuse), and install the L3 range remotely — now if
        # the consumer is close, deferred until it nears otherwise.
        l2_first = plan.first_at(L2)
        if l2_first is not None:
            stream.l2_next = max(start_idx, l2_first)
            stream.l2_end = min(
                spec.length, plan.run_end(stream.l2_next, spec.length)
            )
            self.stats.add("se_l2.plan_l2_ranges")
            self._pump_l2(stream)
        if l3_start is None:
            # No SE_L3 involvement: no config, credits or EndStream.
            stream.granted = spec.length
            return
        stream.l3_limit = min(
            spec.length, plan.run_end(l3_start, spec.length)
        )
        if stream.granted > l3_start:
            self._send_config(stream)
        else:
            # Midway float: hold the config until the consumer is a
            # buffer's worth away (_free sends it), so the SE_L3
            # never parks an idle stream against admission limits.
            stream.pending_config = True
            self.stats.add("se_l2.deferred_configs")

    def _send_config(self, stream: BufferedStream) -> None:
        """Translate and ship the FloatConfig for the stream's L3
        range (immediate for classic floats, deferred for midway
        plan ranges)."""
        spec = stream.spec
        stream.pending_config = False
        stream.config_sent = True
        first_addr = spec.pattern.address(
            min(stream.l3_start, spec.length - 1)
        )
        translate_cost = self.tlb.translate(first_addr)
        body = FloatConfig(
            spec=spec, children=list(stream.children),
            start_idx=stream.l3_start,
            credits=stream.granted - stream.l3_start,
            requester=self.tile, epoch=stream.epoch, plan=stream.plan,
        )
        self.net.send(Packet(
            src=self.tile, dst=self.nuca.bank_of(first_addr), kind=STREAM,
            payload_bits=body.bits(), dst_port="se_l3", body=body,
        ), extra_delay=translate_cost)

    # ------------------------------------------------------------------
    # L2-level plan ranges (prefetch into the stream buffer)
    # ------------------------------------------------------------------
    L2_PREFETCH_INFLIGHT = 4  # concurrent prefetches per stream
    L2_RETRY_CYCLES = 32  # back-off after an MSHR-full drop

    def _pump_l2(self, stream: BufferedStream) -> None:
        """Issue prefetches for the plan's L2 range, windowed to the
        stream's buffer share ahead of the consumer."""
        pattern = stream.spec.pattern
        limit = min(stream.l2_end, stream.freed_through + stream.capacity)
        while (
            stream.l2_inflight < self.L2_PREFETCH_INFLIGHT
            and stream.l2_next < limit
        ):
            idx = stream.l2_next
            count = 1
            cap = limit - idx
            if cap > 1 and isinstance(pattern, AffinePattern):
                count = pattern.line_run_length(idx, cap)
            stream.l2_next = idx + count
            stream.l2_inflight += 1
            self._l2_fetch(stream, idx, count)

    def _l2_fetch(self, stream: BufferedStream, idx: int, count: int) -> None:
        if self.streams.get(stream.sid) is not stream:
            return  # ended/sunk while the fetch was parked
        self.stats.add("se_l2.l2_prefetches")
        req = L2Request(
            addr=stream.spec.pattern.address(idx), prefetch=True,
            on_done=lambda result, s=stream, i=idx, c=count:
                self._l2_fetched(s, i, c, result),
        )
        self.l2.access(req)

    def _l2_fetched(self, stream, idx: int, count: int, result) -> None:
        if self.streams.get(stream.sid) is not stream:
            return
        if result is not None and getattr(result, "dropped", False):
            # MSHR pressure dropped the prefetch: retry later, keeping
            # the in-flight slot so the pump doesn't run away.
            self.sim.schedule(
                self.L2_RETRY_CYCLES, self._l2_fetch, stream, idx, count
            )
            return
        stream.l2_inflight -= 1
        for j in range(idx, idx + count):
            self._parent_data(stream, j)
        self._pump_l2(stream)

    def _try_follow(self, spec: StreamSpec) -> bool:
        """SS IV-B constant-offset reuse: if an already-floated stream
        has the same shape at a small positive offset ahead of this
        one, register this stream as its follower — no config packet,
        no extra L3 fetches."""
        pat = spec.pattern
        if spec.is_indirect or not hasattr(pat, "strides"):
            return False
        stride0 = pat.strides[0]
        if stride0 <= 0:
            return False
        for leader in self.streams.values():
            lpat = leader.spec.pattern
            if leader.spec.is_indirect or leader.children:
                continue
            if (
                getattr(lpat, "strides", None) != pat.strides
                or lpat.lengths != pat.lengths
                or lpat.elem_size != pat.elem_size
            ):
                continue
            diff = lpat.base - pat.base
            if diff <= 0 or diff % stride0:
                continue
            delta = diff // stride0
            if delta > max(1, leader.capacity // 2):
                continue
            leader.followers[spec.sid] = Follower(spec=spec, delta=delta)
            self._sid_index[spec.sid] = (leader, "follower")
            self.stats.add("se_l2.followers")
            return True
        return False

    def end_stream(self, sid: int) -> None:
        # Followers detach without any network traffic.
        for leader in self.streams.values():
            if sid in leader.followers:
                follower = leader.followers.pop(sid)
                self._sid_index.pop(sid, None)
                follower.consumed = leader.spec.length + follower.delta
                self._release(leader)
                return
        hit = self._sid_index.get(sid)
        if hit is not None and hit[1] == "child":
            # An indirect child ended while its parent float stays
            # live (SECore.end ends every floating sid; _sink only
            # ends the parent): detach the child here and tell the
            # SE_L3 to stop chaining it. Previously this fell through
            # to the silent no-op below and leaked the child state.
            self._end_child(hit[0], sid)
            return
        stream = self.streams.pop(sid, None)
        if stream is None:
            return
        self._sid_index.pop(sid, None)
        for child in stream.children:
            self._sid_index.pop(child.sid, None)
        for follower_sid in stream.followers:
            self._sid_index.pop(follower_sid, None)
        self.stats.add("se_l2.ends")
        if self.stream_grain_coherence:
            # SS V-B disadvantage #2: deallocation messages to every
            # bank that still tracks this stream's range data.
            for bank in stream.visited_banks - {stream.last_bank}:
                dealloc = EndStream(requester=self.tile, sid=sid,
                                    epoch=stream.epoch)
                self.stats.add("se_l2.range_deallocs")
                self.net.send(Packet(
                    src=self.tile, dst=bank, kind=STREAM,
                    payload_bits=dealloc.bits(), dst_port="se_l3",
                    body=dealloc,
                ))
        # Send the end packet to the stream's current bank (tracked as
        # the source of its most recent data; SE_L3s forward if the
        # stream migrated meanwhile) — SS IV-A. Pure-L2 plan floats
        # (and deferred configs never sent) have no SE_L3 state to end.
        if stream.config_sent:
            body = EndStream(requester=self.tile, sid=sid,
                             epoch=stream.epoch)
            self.net.send(Packet(
                src=self.tile, dst=stream.last_bank, kind=STREAM,
                payload_bits=body.bits(), dst_port="se_l3", body=body,
            ))
        # Answer any still-waiting core requests through the normal
        # (non-floating) path so nothing deadlocks.
        for idx, reqs in list(stream.waiters.items()):
            for req in reqs:
                self._bounce_to_memory(req)
        for (_sid, _idx), reqs in list(stream.child_waiters.items()):
            for req in reqs:
                self._bounce_to_memory(req)

    def _end_child(self, stream: BufferedStream, sid: int) -> None:
        """Detach one ended indirect child from a still-live float."""
        self._sid_index.pop(sid, None)
        stream.children = [c for c in stream.children if c.sid != sid]
        stream.child_ready.pop(sid, None)
        for key in [k for k in stream.child_waiters if k[0] == sid]:
            for req in stream.child_waiters.pop(key):
                self._bounce_to_memory(req)
        self.stats.add("se_l2.child_ends")
        if stream.config_sent:
            body = EndStream(requester=self.tile, sid=sid,
                             epoch=stream.epoch)
            self.net.send(Packet(
                src=self.tile, dst=stream.last_bank, kind=STREAM,
                payload_bits=body.bits(), dst_port="se_l3", body=body,
            ))

    def _bounce_to_memory(self, req: L2Request) -> None:
        req.floating = False
        self.sim.schedule(0, self.l2.access, req)

    # ------------------------------------------------------------------
    # core request interception
    # ------------------------------------------------------------------
    def _resolve(self, sid: Optional[int]) -> Optional[Tuple[BufferedStream, str]]:
        """Map a stream id to (buffered stream, role): the stream
        itself ("leader"), an indirect child, or a follower."""
        if sid is None:
            return None
        index = self._sid_index
        return index[sid] if sid in index else None

    def _find(self, sid: Optional[int]) -> Optional[BufferedStream]:
        hit = self._resolve(sid)
        return hit[0] if hit else None

    def intercept(self, req: L2Request) -> None:
        """A floating-stream request missed the private caches: serve
        it from the stream buffer (L2 latency already paid)."""
        hit = self._resolve(req.stream_id)
        if hit is None:
            # Stream already ended/sunk: fall back to the memory path.
            self._bounce_to_memory(req)
            return
        stream, role = hit
        self._c_intercepts[0] += 1
        idx = req.element
        if role == "leader":
            if idx < stream.start_idx:
                # A stale in-flight request from before the float (or
                # from a sink/re-float cycle): the SE_L3 will never
                # send this element — use the normal path.
                self._bounce_to_memory(req)
            elif idx in stream.ready or idx < stream.freed_through:
                self._respond(req)
            else:
                stream.waiters.setdefault(idx, []).append(req)
        elif role == "follower":
            leader_idx = idx - stream.followers[req.stream_id].delta
            if leader_idx < stream.start_idx:
                # Elements before the leader's window: normal path.
                self._bounce_to_memory(req)
            elif leader_idx in stream.ready or leader_idx < stream.freed_through:
                self.stats.add("se_l2.follower_hits")
                self._respond(req)
            else:
                stream.waiters.setdefault(leader_idx, []).append(req)
        else:  # indirect child
            if idx < stream.start_idx:
                self._bounce_to_memory(req)
                return
            ready = stream.child_ready.get(req.stream_id, set())
            if idx in ready:
                self._respond(req)
            else:
                stream.child_waiters.setdefault(
                    (req.stream_id, idx), []
                ).append(req)

    def _respond(self, req: L2Request) -> None:
        if req.on_done is not None:
            result = L2AccessResult(
                addr=line_addr(req.addr), writable=False, uncached=True,
            )
            self.sim.schedule(1, req.on_done, result)

    # ------------------------------------------------------------------
    # network ingress: DataU / EndAck
    # ------------------------------------------------------------------
    def handle(self, pkt: Packet) -> None:
        body = pkt.body
        if isinstance(body, EndAck):
            self.stats.add("se_l2.end_acks")
            return
        if isinstance(body, StreamInv):
            self._stream_inv(body)
            return
        # DataU (CohMsg): possibly a confluence multicast, in which
        # case se_info lists (tile, sid) members — pick ours.
        sid = body.stream_id
        if isinstance(body.se_info, list):
            for tile, member_sid in body.se_info:
                if tile == self.tile:
                    sid = member_sid
                    break
        stream = self._find(sid)
        if stream is None:
            self.stats.add("se_l2.orphan_data")
            return
        self._c_data_arrivals[0] += 1
        idx = body.element
        if sid == stream.sid:
            # Credits chase the *parent* stream's data source (child
            # sublines come from their own home banks).
            stream.last_bank = pkt.src
            if self.stream_grain_coherence:
                stream.visited_banks.add(pkt.src)
            if isinstance(idx, tuple):
                # Coalesced subline elements: one DataU covers a range.
                if not stream.waiters and not stream.served_by_cache:
                    # Nothing is waiting on (or pre-served from) any
                    # element: the per-index bookkeeping degenerates to
                    # a bulk set update.
                    stream.ready.update(range(idx[0], idx[1]))
                else:
                    for i in range(idx[0], idx[1]):
                        self._parent_data(stream, i)
            else:
                self._parent_data(stream, idx)
        else:
            self._child_data(stream, sid, idx)

    def _parent_data(self, stream: BufferedStream, idx: int) -> None:
        stream.ready.add(idx)
        for req in stream.waiters.pop(idx, []):
            self._respond(req)
        if idx in stream.served_by_cache:
            # The caches already served the core; release bookkeeping
            # recorded the consumption when the hit happened.
            stream.served_by_cache.discard(idx)
            self._release(stream)

    def _child_data(self, stream: BufferedStream, sid: int, idx: int) -> None:
        stream.child_ready.setdefault(sid, set()).add(idx)
        for req in stream.child_waiters.pop((sid, idx), []):
            self._respond(req)

    # ------------------------------------------------------------------
    # consumption, credits
    # ------------------------------------------------------------------
    def on_consumed(self, sid: int, idx: int) -> None:
        """SE_core consumed an element: advance release bookkeeping
        (a slot only frees once every consumer — leader and followers
        — is past it)."""
        hit = self._resolve(sid)
        if hit is None:
            return
        stream, role = hit
        if role == "child":
            # Child elements free with the parent (shared credits).
            stream.child_ready.get(sid, set()).discard(idx)
            return
        if role == "follower":
            follower = stream.followers[sid]
            follower.consumed = max(follower.consumed, idx + 1)
        else:
            stream.consumed_leader = max(stream.consumed_leader, idx + 1)
        self._release(stream)

    def _release(self, stream: BufferedStream) -> None:
        """Free buffer slots no consumer still needs; batch credits."""
        through = min(stream.releasable_through(), stream.spec.length)
        freed = through - stream.freed_through
        if freed <= 0:
            return
        for e in range(stream.freed_through, through):
            stream.ready.discard(e)
        stream.freed_through = through
        if stream.l2_next < stream.l2_end:
            # The prefetch window slid forward with the consumer.
            self._pump_l2(stream)
        self._free(stream, freed)

    def _free(self, stream: BufferedStream, count: int) -> None:
        stream.pending_free += count
        if stream.pending_free * 2 < stream.capacity:
            return
        if stream.l3_start is None:
            return  # pure-L2 plan: no SE_L3 side to grant to
        if stream.granted >= stream.l3_limit:
            return  # the L3 range will finish on current credits
        # Coarse-grained credit return (SS IV-A): half-buffer batches,
        # addressed to the bank of the last *allocated* element — the
        # bank the stream is at (or has migrated through, in which
        # case the SE_L3 forwarding chain routes the credit onward).
        grant = stream.pending_free
        stream.pending_free = 0
        stream.granted += grant
        if stream.pending_config:
            if stream.granted > stream.l3_start:
                # The consumer neared the midway L3 range: install it
                # now, with every credit granted so far.
                self._send_config(stream)
            return
        body = Credit(requester=self.tile, sid=stream.sid, count=grant,
                      epoch=stream.epoch)
        self.stats.add("se_l2.credits_sent")
        self.net.send_new(
            self.tile, stream.last_bank, STREAM, body.bits(), "se_l3",
            body=body,
        )

    def on_cache_hit(self, sid: Optional[int], idx: Optional[int]) -> None:
        """The private caches served a floating element (SS IV-A):
        record the consumption so the slot frees normally; if the
        DataU hasn't arrived yet, remember to drop it on arrival."""
        hit = self._resolve(sid)
        if hit is None or idx is None:
            return
        stream, role = hit
        if role == "follower":
            follower = stream.followers[sid]
            follower.consumed = max(follower.consumed, idx + 1)
        elif role == "leader":
            stream.consumed_leader = max(stream.consumed_leader, idx + 1)
            if idx not in stream.ready and idx >= stream.freed_through:
                stream.served_by_cache.add(idx)
        else:
            return
        self._release(stream)

    def _stream_inv(self, body: StreamInv) -> None:
        """Stream-grain coherence: a remote write hit this stream's
        fetched range — its buffered data is stale, re-execute."""
        self.stats.add("se_l2.stream_invs")
        stream = self.streams.get(body.sid)
        if self.se_core is not None:
            self.se_core.history.record_alias(body.sid)
            core_stream = self.se_core.streams.get(body.sid)
            if core_stream is not None:
                self.se_core._sink(core_stream, reason="stream_inv")
        elif stream is not None:
            # No SE_core attached (test rigs): drop the stream state.
            self.end_stream(body.sid)

    # ------------------------------------------------------------------
    # aliasing (SS IV-E second window)
    # ------------------------------------------------------------------
    def on_dirty_evict(self, addr: int) -> None:
        """A dirty line left the L2: if it overlaps a buffered stream
        element, mark the stream aliased and have the SE_core sink it."""
        base = line_addr(addr)
        for stream in list(self.streams.values()):
            address = stream.spec.pattern.address
            memo = stream.line_memo
            for idx in list(stream.ready) + list(stream.waiters):
                if idx in memo:
                    line = memo[idx]
                else:
                    line = memo[idx] = address(idx) & _LINE_MASK
                if line == base:
                    # Sink this stream, but keep scanning: several
                    # buffered streams can alias the same line.
                    self.stats.add("se_l2.alias_sinks")
                    if self.se_core is not None:
                        self.se_core.history.record_alias(stream.sid)
                        core_stream = self.se_core.streams.get(stream.sid)
                        if core_stream is not None:
                            self.se_core._sink(core_stream,
                                               reason="alias_evict")
                    break
