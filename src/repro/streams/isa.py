"""Decoupled-stream ISA: stream specifications and configuration
packets (Table I).

Workloads declare their streams as :class:`StreamSpec` objects, which
is the information a ``stream_cfg`` instruction carries. The packet
encodings below reproduce Table I: a full 3-level affine
configuration is 450 bits (less than one cache line) and each chained
indirect stream appends 60 bits.

In the core model a ``stream_load`` both consumes the current element
and advances the stream (the common case; the ISA's separate
``stream_step`` enabling control-dependent use is folded in, since
our workloads' iteration traces already resolve control flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.streams.pattern import AffinePattern, IndirectPattern

# --- Table I field widths (bits) ---
AFFINE_FIELDS = {
    "cid": 6,  # core id (64 cores)
    "sid": 4,  # stream id (12 streams/core)
    "base": 48,  # base virtual address
    "strd": 48 * 3,  # memory stride x3 levels
    "ptable": 48,  # page table address
    "iter": 48,  # current iteration
    "size": 8,  # element size
    "len": 48 * 3,  # length x3 levels
}
AFFINE_CONFIG_BITS = sum(AFFINE_FIELDS.values())  # 450 (Table I)

INDIRECT_FIELDS = {
    "sid": 4,
    "base": 48,
    "size": 8,
}
INDIRECT_CONFIG_BITS = sum(INDIRECT_FIELDS.values())  # 60 (Table I)

# Float-plan change point (streams/plan.py): an element index plus a
# 2-bit serving-level selector. A classic config's single change point
# rides the existing start_idx field; each further point costs this.
PLAN_FIELDS = {
    "elem": 48,  # change-point element index (iter width)
    "level": 2,  # core / l2 / l3 selector
}
PLAN_POINT_BITS = sum(PLAN_FIELDS.values())  # 50


@dataclass
class StreamSpec:
    """One stream as configured by ``stream_cfg``.

    ``pattern.elem_size`` is the granule the core consumes per
    ``stream_load`` (64 B for AVX-512 vector streams, the field size
    for scalar/indirect streams).
    """

    sid: int
    pattern: Union[AffinePattern, IndirectPattern]
    kind: str = "load"  # "load" or "store"
    # For indirect streams: the sid of the affine index stream this
    # stream chains from (must be configured in the same stream_cfg).
    parent_sid: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("load", "store"):
            raise ValueError(f"bad stream kind {self.kind!r}")
        if self.is_indirect and self.parent_sid is None:
            raise ValueError("indirect streams need a parent_sid")
        if not self.is_indirect and self.parent_sid is not None:
            raise ValueError("affine streams cannot have a parent")

    @property
    def is_indirect(self) -> bool:
        return isinstance(self.pattern, IndirectPattern)

    @property
    def length(self) -> int:
        return len(self.pattern)

    def config_bits(self) -> int:
        """Configuration packet contribution of this stream."""
        return INDIRECT_CONFIG_BITS if self.is_indirect else AFFINE_CONFIG_BITS


def config_packet_bits(specs: List[StreamSpec]) -> int:
    """Total bits of a stream configuration packet (SS IV-A/IV-B)."""
    return sum(spec.config_bits() for spec in specs)


# --- kernel-level stream instructions -------------------------------------


@dataclass
class StreamCfg:
    """Configure a group of streams before a loop."""

    specs: List[StreamSpec]


@dataclass
class StreamEnd:
    """Deconstruct streams after the loop (enables early termination)."""

    sids: List[int]


@dataclass
class MigrationPacket:
    """SE_L3 -> SE_L3 stream hand-off (SS IV-A: like a config packet
    plus the current iteration and remaining flow-control credits)."""

    spec: StreamSpec
    next_idx: int
    credits: int
    requester: int

    def bits(self) -> int:
        return self.spec.config_bits() + AFFINE_FIELDS["iter"] + 16
