"""CFD Euler solver (Table IV: fvcorr.domn.193K).

Unstructured-mesh flux computation: per cell, read the cell's own
state (affine), its four neighbour indices (the affine index stream),
and the neighbours' states (indirect, gathered through the mesh
connectivity) — the second of the paper's two indirect-stream
workloads. Compute per cell is heavy (flux evaluation), so cfd is
less bandwidth-bound than bfs; a small fraction of its indirect data
is already cached, which is why indirect floating costs it a little
traffic in Figure 15.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern, IndirectPattern
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase, chunk_range

NEIGHBORS = 4


@register
class Cfd(Workload):
    META = WorkloadMeta(
        name="cfd",
        table_iv="fvcorr.domn.193K",
        has_indirect=True,
    )

    def _cells(self) -> int:
        return max(2048, 193536 // (self.scale * 2))

    def _build(self) -> Dict[int, CoreProgram]:
        cells = self._cells()
        # Mesh connectivity is mostly local: neighbours near the cell.
        base_ids = np.repeat(np.arange(cells, dtype=np.int64), NEIGHBORS)
        jitter = self.rng.integers(-32, 33, cells * NEIGHBORS)
        nb = np.clip(base_ids + jitter, 0, cells - 1)
        density_base = self.layout.alloc("density", cells * 4)
        nb_base = self.layout.alloc("nb_idx", cells * NEIGHBORS * 4)
        flux_base = self.layout.alloc("flux", cells * 4)

        programs = {}
        for core in range(self.num_cores):
            my = chunk_range(cells, self.num_cores, core)
            count = max(1, len(my))
            nb_start = my.start * NEIGHBORS
            index_pattern = AffinePattern(
                base=nb_base + nb_start * 4, strides=(4,),
                lengths=(count * NEIGHBORS,), elem_size=4,
            )
            nb_spec = StreamSpec(sid=0, pattern=index_pattern)
            ind_spec = StreamSpec(sid=1, parent_sid=0, pattern=IndirectPattern(
                base=density_base, index_pattern=index_pattern,
                index_array=nb[nb_start:nb_start + count * NEIGHBORS],
                scale=4, elem_size=4,
            ))
            dens_spec = StreamSpec(sid=2, pattern=AffinePattern(
                base=density_base + my.start * 4, strides=(4,),
                lengths=(count,), elem_size=4,
            ))
            flux_spec = StreamSpec(sid=3, kind="store", pattern=AffinePattern(
                base=flux_base + my.start * 4, strides=(4,),
                lengths=(count,), elem_size=4,
            ))

            def iterations(count=count):
                gather = (("sload", 0), ("sload", 1)) * NEIGHBORS
                for _ in range(count):
                    yield Iteration(compute_ops=24, ops=(
                        ("sload", 2), *gather, ("sstore", 3),
                    ))

            programs[core] = CoreProgram(phases=[KernelPhase(
                name="flux",
                stream_specs=[nb_spec, ind_spec, dens_spec, flux_spec],
                iterations=iterations,
            )])
        return programs
