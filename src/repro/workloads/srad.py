"""SRAD — speckle-reducing anisotropic diffusion (Table IV:
512x2048, 8 iterations).

Each time step runs two kernels with a barrier between them: the
gradient/coefficient pass and the diffusion update, both 4-neighbour
stencils over the image with an auxiliary coefficient array. That
doubles the phase count relative to hotspot and re-streams the image
twice per step — exactly why srad stresses the NoC in Figure 15.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadMeta, register
from repro.workloads.stencil import StencilWorkload


@register
class Srad(StencilWorkload):
    META = WorkloadMeta(
        name="srad",
        table_iv="512x2048, 8 iters",
        stencil=True,
    )

    COMPUTE_OPS = 14
    KERNELS_PER_STEP = 2  # gradient pass + update pass

    def _dims(self):
        # Full size: 512 rows x 2048 f32 (8 kB rows).
        # Per-core stream footprint must clearly exceed the scaled L2
        # (32 rows x 512 B = 16 kB per core at the default profile).
        rows = max(self.num_cores * 32, 2048 // max(1, self.scale // 4))
        row_bytes = max(256, 8192 // self.scale)
        steps = max(1, 8 // min(self.scale, 8))
        return rows, row_bytes, steps
