"""Kernel representation: the stream programs cores execute.

A workload compiles (by hand, standing in for the paper's LLVM pass)
into one :class:`CoreProgram` per core: a list of :class:`KernelPhase`
objects separated by barriers (OpenMP parallel-for regions). Each
phase declares the streams its loop uses (``stream_cfg``) and yields
:class:`Iteration` records:

- ``compute_ops``: arithmetic ops in the iteration (issue-width
  divided by the core model);
- ``ops``: memory operations, as tuples:

  - ``("sload", sid)`` — consume + advance a load stream,
  - ``("sstore", sid)`` — store through a store stream,
  - ``("load", addr, op_id)`` — plain load (op_id ~ PC, trains
    prefetchers),
  - ``("store", addr, op_id)`` — plain store.

On systems without the decoupled-stream ISA (Base and the prefetcher
baselines), the core lowers ``sload``/``sstore`` to plain loads/stores
of the pattern's addresses with ``op_id = sid`` — the same binary-
compatible degradation the paper's compiler provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Sequence, Tuple

from repro.streams.isa import StreamSpec

Op = Tuple  # ("sload", sid) | ("sstore", sid) | ("load", a, pc) | ("store", a, pc)


@dataclass
class Iteration:
    """One loop iteration's work."""

    compute_ops: int
    ops: Sequence[Op]


@dataclass
class KernelPhase:
    """A parallel region between barriers.

    ``iterations`` is a zero-argument factory returning a fresh
    iterator, so programs can be re-run and inspected.
    """

    name: str
    stream_specs: List[StreamSpec] = field(default_factory=list)
    iterations: Callable[[], Iterator[Iteration]] = lambda: iter(())


@dataclass
class CoreProgram:
    """Everything one core executes: phases separated by barriers."""

    phases: List[KernelPhase] = field(default_factory=list)

    def __iter__(self):
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)


def chunk_range(total: int, workers: int, worker: int) -> range:
    """OpenMP static schedule: contiguous chunk of [0, total) for
    ``worker`` of ``workers``."""
    base = total // workers
    extra = total % workers
    start = worker * base + min(worker, extra)
    size = base + (1 if worker < extra else 0)
    return range(start, start + size)
