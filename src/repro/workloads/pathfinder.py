"""Pathfinder (Table IV: 1.5M entries, 8 iterations).

Dynamic programming over a wide array: each step computes
``dst[i] = wall[i] + min(src[i-1], src[i], src[i+1])`` with a barrier
between steps (one kernel phase per step). The +/-1 neighbours live
on the same cache line as ``src[i]`` almost always, so one affine
stream per array suffices; src/dst ping-pong between phases, which
also exercises the stream guarantee that configuration sees all
earlier stores (SS V-A).
"""

from __future__ import annotations

from typing import Dict

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase, chunk_range


@register
class Pathfinder(Workload):
    META = WorkloadMeta(
        name="pathfinder",
        table_iv="1.5m entries, 8 iterations",
    )

    def _dims(self):
        # Full size: 1.5M entries, 8 steps (6 MB of wall rows against
        # the 64 MB L3). Scaled so bufs + walls stay just under the
        # L3 while each core's row chunk still exceeds the private L2.
        cols = max(8192, 1_572_864 * 2 // (self.scale * 5))
        steps = 4 if self.scale > 1 else 8
        return cols, steps

    def _build(self) -> Dict[int, CoreProgram]:
        cols, steps = self._dims()
        row_bytes = cols * 4
        buf = [self.layout.alloc("buf0", row_bytes),
               self.layout.alloc("buf1", row_bytes)]
        wall = [self.layout.alloc(f"wall{s}", row_bytes) for s in range(steps)]

        programs = {}
        for core in range(self.num_cores):
            my = chunk_range(cols * 4 // 64, self.num_cores, core)  # lines
            phases = []
            for step in range(steps):
                src = buf[step % 2]
                dst = buf[(step + 1) % 2]
                src_spec = StreamSpec(sid=0, pattern=AffinePattern(
                    base=src + my.start * 64, strides=(64,),
                    lengths=(max(1, len(my)),), elem_size=64,
                ))
                wall_spec = StreamSpec(sid=1, pattern=AffinePattern(
                    base=wall[step] + my.start * 64, strides=(64,),
                    lengths=(max(1, len(my)),), elem_size=64,
                ))
                dst_spec = StreamSpec(sid=2, kind="store", pattern=AffinePattern(
                    base=dst + my.start * 64, strides=(64,),
                    lengths=(max(1, len(my)),), elem_size=64,
                ))

                def iterations(n=len(my)):
                    for _ in range(n):
                        # 16 entries/line: 2 cmps + add each, SIMD.
                        yield Iteration(compute_ops=6, ops=(
                            ("sload", 0), ("sload", 1), ("sstore", 2),
                        ))

                phases.append(KernelPhase(
                    name=f"step{step}",
                    stream_specs=[src_spec, wall_spec, dst_spec],
                    iterations=iterations,
                ))
            programs[core] = CoreProgram(phases=phases)
        return programs
