"""Workload infrastructure: virtual-memory layout, the Workload base
class, and the benchmark registry.

Each workload is the hand-compiled stream program for one Table IV
benchmark (standing in for the paper's LLVM pass — see DESIGN.md's
substitution table). A workload builds one
:class:`~repro.workloads.kernel.CoreProgram` per core, parameterized
by a ``scale`` divisor applied to the paper's dataset sizes so that
simulations finish quickly while working sets still exceed the
(equally scaled) private L2.

Conventions:

- dense (vectorizable) streams use 64-byte elements — the AVX-512
  consumption granule, one cache line per ``stream_load``;
- scalar/indirect streams use their natural element size; the SE_L3
  coalesces same-line elements, and indirect responses are sublines;
- stream ids are allocated per phase starting at 0 (12 per core max).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type

import numpy as np

from repro.mem.addr import PAGE_SIZE
from repro.workloads.kernel import CoreProgram


class Layout:
    """Bump allocator for the workload's virtual address space.

    Base addresses are page-aligned and spaced so distinct arrays
    never share a cache line, matching what a real allocator gives
    the compiled benchmarks.
    """

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base
        self.arrays: Dict[str, tuple] = {}

    def alloc(self, name: str, nbytes: int, align: int = PAGE_SIZE) -> int:
        if nbytes <= 0:
            raise ValueError(f"array {name!r} needs a positive size")
        addr = (self._next + align - 1) & ~(align - 1)
        self._next = addr + nbytes
        self.arrays[name] = (addr, nbytes)
        return addr

    def footprint(self) -> int:
        """Total bytes allocated so far."""
        return sum(size for _addr, size in self.arrays.values())


@dataclass
class WorkloadMeta:
    """Registry metadata, including the paper's Table IV description."""

    name: str
    table_iv: str
    has_indirect: bool = False
    has_confluence: bool = False
    stencil: bool = False


class Workload:
    """Base class: subclasses define ``META`` and ``_build``."""

    META: WorkloadMeta

    def __init__(self, num_cores: int, scale: int = 16, seed: int = 0) -> None:
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.num_cores = num_cores
        self.scale = scale
        self.rng = np.random.default_rng(seed)
        self.layout = Layout()

    @property
    def name(self) -> str:
        return self.META.name

    def build(self) -> Dict[int, CoreProgram]:
        """Programs for every core (same phase count everywhere)."""
        programs = self._build()
        lengths = {len(p) for p in programs.values()}
        if len(lengths) > 1:
            raise AssertionError(
                f"{self.name}: cores disagree on phase count ({lengths})"
            )
        return programs

    def _build(self) -> Dict[int, CoreProgram]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Workload]] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the global registry."""
    name = cls.META.name
    if name in _REGISTRY:
        raise ValueError(f"duplicate workload {name!r}")
    _REGISTRY[name] = cls
    return cls


def workload_names() -> List[str]:
    return sorted(_REGISTRY)


def get_workload(name: str) -> Type[Workload]:
    if name not in _REGISTRY:
        raise KeyError(f"unknown workload {name!r}; have {workload_names()}")
    return _REGISTRY[name]


def build_programs(
    name: str, num_cores: int, scale: int = 16, seed: int = 0,
) -> Dict[int, CoreProgram]:
    """Convenience: instantiate and build a registered workload."""
    return get_workload(name)(num_cores, scale=scale, seed=seed).build()
