"""The paper's 12 benchmarks (Table IV) as stream programs."""

from repro.workloads.base import (
    Layout,
    Workload,
    WorkloadMeta,
    build_programs,
    get_workload,
    workload_names,
)
from repro.workloads.kernel import (
    CoreProgram,
    Iteration,
    KernelPhase,
    chunk_range,
)

# Importing the modules registers the workloads.
from repro.workloads import (  # noqa: F401
    bfs,
    btree,
    cfd,
    conv3d,
    hotspot,
    hotspot3d,
    mv,
    nn,
    nw,
    particlefilter,
    pathfinder,
    srad,
)

ALL_WORKLOADS = workload_names()

__all__ = [
    "Workload",
    "WorkloadMeta",
    "Layout",
    "build_programs",
    "get_workload",
    "workload_names",
    "ALL_WORKLOADS",
    "CoreProgram",
    "KernelPhase",
    "Iteration",
    "chunk_range",
]
