"""The paper's 12 benchmarks (Table IV) as stream programs."""

from repro.workloads.base import (
    Layout,
    Workload,
    WorkloadMeta,
    build_programs,
    get_workload,
    workload_names,
)
from repro.workloads.kernel import (
    CoreProgram,
    Iteration,
    KernelPhase,
    chunk_range,
)

# Importing the modules registers the workloads.
from repro.workloads import (  # noqa: F401
    bfs,
    btree,
    cfd,
    conv3d,
    hotspot,
    hotspot3d,
    mv,
    nn,
    nw,
    particlefilter,
    pathfinder,
    srad,
    stencil_tiled,
)

# The paper's Table IV set, pinned: extra registered workloads (e.g.
# stencil_tiled, the revocation case study) stay out of the figures
# that sweep "all 12 benchmarks".
ALL_WORKLOADS = (
    "b+tree", "bfs", "cfd", "conv3d", "hotspot", "hotspot3D",
    "mv", "nn", "nw", "particlefilter", "pathfinder", "srad",
)

__all__ = [
    "Workload",
    "WorkloadMeta",
    "Layout",
    "build_programs",
    "get_workload",
    "workload_names",
    "ALL_WORKLOADS",
    "CoreProgram",
    "KernelPhase",
    "Iteration",
    "chunk_range",
]
