"""B+ tree (Table IV: 1M leaves, 10k lookups, 6k range queries).

Two phases:

1. **lookups** — pointer chasing down three levels of the tree at
   random positions. Nothing here streams; the accesses defeat both
   stride prefetchers and streams (the paper's b+tree shows the most
   modest gains of the suite).
2. **range queries** — each query scans a run of consecutive leaf
   lines. Sorted queries become a 2-level affine stream (scan length
   x query count with a stride between query starts), with the
   interior descents as plain loads.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase, chunk_range

LEAF_ENTRY_BYTES = 16
SCAN_LINES = 16  # lines touched per range query


@register
class BPlusTree(Workload):
    META = WorkloadMeta(
        name="b+tree",
        table_iv="1m leaves, 10k lookups, 6k range queries",
    )

    def _dims(self):
        leaves = max(16384, (1 << 19) // self.scale)
        lookups = max(256, 40000 // self.scale)
        queries = max(128, 24000 // self.scale)
        return leaves, lookups, queries

    def _build(self) -> Dict[int, CoreProgram]:
        leaves, lookups, queries = self._dims()
        leaf_bytes = leaves * LEAF_ENTRY_BYTES
        leaf_base = self.layout.alloc("leaves", leaf_bytes)
        inner_base = self.layout.alloc("inner", leaf_bytes // 32)
        root_base = self.layout.alloc("root", 4096)

        programs = {}
        for core in range(self.num_cores):
            my_lookups = len(chunk_range(lookups, self.num_cores, core))
            rng = np.random.default_rng(1000 + core)
            leaf_targets = rng.integers(0, leaf_bytes // 64, my_lookups)
            inner_targets = rng.integers(0, leaf_bytes // 32 // 64, my_lookups)

            def lookup_iters(n=my_lookups, leaf_t=leaf_targets,
                             inner_t=inner_targets):
                for i in range(n):
                    yield Iteration(compute_ops=6, ops=(
                        ("load", root_base + (i % 64) * 64, 10),
                        ("load", inner_base + int(inner_t[i]) * 64, 11),
                        ("load", leaf_base + int(leaf_t[i]) * 64, 12),
                    ))

            # Range scans: this core's queries land in its leaf chunk,
            # evenly spaced (sorted), forming one strided 2-D stream.
            my_leaf_lines = chunk_range(leaf_bytes // 64, self.num_cores, core)
            my_queries = max(1, len(chunk_range(queries, self.num_cores, core)))
            gap_lines = max(SCAN_LINES, len(my_leaf_lines) // my_queries)
            n_queries = max(1, len(my_leaf_lines) // gap_lines)
            scan_spec = StreamSpec(sid=0, pattern=AffinePattern(
                base=leaf_base + my_leaf_lines.start * 64,
                strides=(64, gap_lines * 64),
                lengths=(SCAN_LINES, n_queries),
                elem_size=64,
            ))
            inner_rng = np.random.default_rng(2000 + core)
            descents = inner_rng.integers(0, leaf_bytes // 32 // 64, n_queries)

            def scan_iters(nq=n_queries, descents=descents):
                for q in range(nq):
                    yield Iteration(compute_ops=6, ops=(
                        ("load", root_base + (q % 64) * 64, 20),
                        ("load", inner_base + int(descents[q]) * 64, 21),
                        ("sload", 0),
                    ))
                    for _ in range(SCAN_LINES - 1):
                        yield Iteration(compute_ops=4, ops=(("sload", 0),))

            programs[core] = CoreProgram(phases=[
                KernelPhase(name="lookups", iterations=lookup_iters),
                KernelPhase(name="scans", stream_specs=[scan_spec],
                            iterations=scan_iters),
            ])
        return programs
