"""Hotspot3D (Table IV: 512x512x8, 8 iterations).

The 3-D variant keeps the thin z dimension (8 levels) innermost in
the layout, so the z+/-1 neighbours of a point sit on the same cache
line as the point itself and the x+/-1 neighbours on the same or the
adjacent line of the same row stream — both are covered by the centre
stream's data. Only the y+/-1 neighbours need the shifted north/south
streams, making the kernel a row stencil like hotspot with heavier
per-line compute (7-point stencil across the in-line z levels).
"""

from __future__ import annotations

from repro.workloads.base import WorkloadMeta, register
from repro.workloads.stencil import StencilWorkload


@register
class Hotspot3D(StencilWorkload):
    META = WorkloadMeta(
        name="hotspot3D",
        table_iv="512x512x8, 8 iters",
        stencil=True,
    )

    COMPUTE_OPS = 16  # 7-point stencil over the folded z levels

    def _dims(self):
        # Full size: 512 y-rows of 512 x 8 x 4 B = 16 kB; scaled runs
        # shrink rows and row bytes together.
        rows = max(self.num_cores * 4, 512 // max(1, self.scale // 8))
        row_bytes = max(256, 16384 // self.scale)
        steps = max(2, 8 // min(self.scale, 4))
        return rows, row_bytes, steps
