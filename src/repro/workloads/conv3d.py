"""Tiled 3-D convolution (Table IV: H/W 256x256, I/O 16x64, K 3x3).

Output channels are partitioned across cores, so *every* core streams
the *same* input feature map with the same affine pattern — the
paper's flagship stream-confluence case (Figure 14: the shared input
constitutes 51% of conv3d's requests, multicast by the SE_L3).

Weights are tiny and stay cached; each core stores its own output
channel.
"""

from __future__ import annotations

from typing import Dict

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase


@register
class Conv3D(Workload):
    META = WorkloadMeta(
        name="conv3d",
        table_iv="H/W: 256x256, I/O: 16x64, K: 3x3",
        has_confluence=True,
    )

    def _dims(self):
        # Input feature map H x W x I (f32), z/channel folded inward so
        # a line holds contiguous input values.
        hw = max(32, 512 // self.scale)
        in_ch = 4
        return hw, in_ch

    def _build(self) -> Dict[int, CoreProgram]:
        hw, in_ch = self._dims()
        input_bytes = hw * hw * in_ch * 4
        input_lines = input_bytes // 64
        in_base = self.layout.alloc("input", input_bytes)
        w_base = self.layout.alloc("weights", 9 * in_ch * self.num_cores * 4)
        out_bytes = hw * hw * 4
        out_bases = [
            self.layout.alloc(f"out{c}", out_bytes) for c in range(self.num_cores)
        ]
        out_lines = out_bytes // 64

        programs = {}
        for core in range(self.num_cores):
            # Identical input pattern on every core -> confluence.
            in_spec = StreamSpec(sid=0, pattern=AffinePattern(
                base=in_base, strides=(64,), lengths=(input_lines,),
                elem_size=64,
            ))
            out_spec = StreamSpec(sid=1, kind="store", pattern=AffinePattern(
                base=out_bases[core], strides=(64,), lengths=(out_lines,),
                elem_size=64,
            ))

            def iterations(core=core):
                store_every = max(1, input_lines // out_lines)
                for line in range(input_lines):
                    ops = [("sload", 0)]
                    if line % store_every == store_every - 1:
                        ops.append(("sstore", 1))
                    if line % 64 == 0:
                        # Refresh a couple of weight lines (they hit).
                        ops.append(("load", w_base + (line // 64) % 9 * 64, 50))
                    # K*K MACs per input element across the line.
                    yield Iteration(compute_ops=24, ops=tuple(ops))

            programs[core] = CoreProgram(phases=[KernelPhase(
                name="conv", stream_specs=[in_spec, out_spec],
                iterations=iterations,
            )])
        return programs
