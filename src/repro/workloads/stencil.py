"""Shared machinery for the stencil workloads (hotspot, hotspot3D,
srad).

A stencil phase reads three row-shifted streams of the input grid
(south = row+1, centre, north = row-1), plus an auxiliary array
(power / coefficients), and stores one output row stream. The
*south* stream — the one furthest ahead in memory — is configured
first so the SE_L2 registers centre and north as constant-offset
followers (SS IV-B): only one copy of the grid crosses the NoC when
the streams float.

Grids ping-pong between two buffers with a barrier per time step.
A one-row halo above and below keeps boundary cores' shifted streams
inside the allocation.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.workloads.base import Workload
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase, chunk_range

SOUTH, CENTER, NORTH, AUX = 0, 1, 2, 3
OUT = 4


def row_stream(sid: int, base: int, row0: int, n_rows: int, row_bytes: int,
               kind: str = "load") -> StreamSpec:
    """A 2-level stream over rows [row0, row0 + n_rows)."""
    return StreamSpec(sid=sid, kind=kind, pattern=AffinePattern(
        base=base + row0 * row_bytes,
        strides=(64, row_bytes),
        lengths=(row_bytes // 64, n_rows),
        elem_size=64,
    ))


class StencilWorkload(Workload):
    """Base for row-wise stencils; subclasses set dims and compute."""

    #: grid rows / row bytes / time steps — set by subclass
    def _dims(self):  # pragma: no cover - abstract
        raise NotImplementedError

    #: arithmetic ops per line iteration
    COMPUTE_OPS = 10
    #: phases per time step (srad runs two kernels per iteration)
    KERNELS_PER_STEP = 1

    def _build(self) -> Dict[int, CoreProgram]:
        rows, row_bytes, steps = self._dims()
        grid_bytes = (rows + 2) * row_bytes  # one halo row each side
        grids = [self.layout.alloc("grid0", grid_bytes),
                 self.layout.alloc("grid1", grid_bytes)]
        aux_base = self.layout.alloc("aux", grid_bytes)
        row_lines = row_bytes // 64

        programs = {}
        for core in range(self.num_cores):
            my = chunk_range(rows, self.num_cores, core)
            n_rows = max(1, len(my))
            phases: List[KernelPhase] = []
            for step in range(steps):
                for kern in range(self.KERNELS_PER_STEP):
                    src = grids[step % 2]
                    dst = grids[(step + 1) % 2]
                    # +1 for the halo row at the top of the grid.
                    r0 = my.start + 1
                    specs = [
                        row_stream(SOUTH, src, r0 + 1, n_rows, row_bytes),
                        row_stream(CENTER, src, r0, n_rows, row_bytes),
                        row_stream(NORTH, src, r0 - 1, n_rows, row_bytes),
                        row_stream(AUX, aux_base, r0, n_rows, row_bytes),
                        row_stream(OUT, dst, r0, n_rows, row_bytes,
                                   kind="store"),
                    ]

                    def iterations(n=n_rows * row_lines,
                                   compute=self.COMPUTE_OPS):
                        for _ in range(n):
                            yield Iteration(compute_ops=compute, ops=(
                                ("sload", SOUTH), ("sload", CENTER),
                                ("sload", NORTH), ("sload", AUX),
                                ("sstore", OUT),
                            ))

                    phases.append(KernelPhase(
                        name=f"step{step}.{kern}", stream_specs=specs,
                        iterations=iterations,
                    ))
            programs[core] = CoreProgram(phases=phases)
        return programs
