"""Particle filter (Table IV: 48k particles, 1000x1000).

Three phases per frame:

1. **weigh** — each core streams its own particle chunk and computes
   likelihood weights (embarrassingly parallel, private streams);
2. **scan** — core 0 computes the cumulative weight array (the serial
   section of the real benchmark);
3. **resample** — *every* core streams the *entire* cumulative weight
   array with an identical pattern to draw its new particles: the
   paper's second stream-confluence showcase (Figure 15 calls out
   resampling through the shared accumulated-weight array).
"""

from __future__ import annotations

from typing import Dict

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase, chunk_range


@register
class ParticleFilter(Workload):
    META = WorkloadMeta(
        name="particlefilter",
        table_iv="48k particles, 1000x1000",
        has_confluence=True,
    )

    PARTICLE_BYTES = 16  # x, y, weight, payload

    def _particles(self) -> int:
        return max(8192, 48 * 1024 * 4 // self.scale)

    def _build(self) -> Dict[int, CoreProgram]:
        particles = self._particles()
        part_base = self.layout.alloc("particles", particles * self.PARTICLE_BYTES)
        w_base = self.layout.alloc("weights", particles * 8)
        cumw_base = self.layout.alloc("cumweights", particles * 8)
        newidx_base = self.layout.alloc("newidx", particles * 4)
        part_lines = particles * self.PARTICLE_BYTES // 64
        w_lines = particles * 8 // 64

        programs = {}
        for core in range(self.num_cores):
            my_part = chunk_range(part_lines, self.num_cores, core)
            my_w = chunk_range(w_lines, self.num_cores, core)

            # Phase 1: weigh own particles.
            p_spec = StreamSpec(sid=0, pattern=AffinePattern(
                base=part_base + my_part.start * 64, strides=(64,),
                lengths=(max(1, len(my_part)),), elem_size=64,
            ))
            wout_spec = StreamSpec(sid=1, kind="store", pattern=AffinePattern(
                base=w_base + my_w.start * 64, strides=(64,),
                lengths=(max(1, len(my_w)),), elem_size=64,
            ))

            def weigh(n=len(my_part)):
                for i in range(n):
                    ops = [("sload", 0)]
                    if i % 2 == 1:
                        ops.append(("sstore", 1))
                    yield Iteration(compute_ops=20, ops=tuple(ops))

            # Phase 2: serial prefix sum on core 0.
            if core == 0:
                win_spec = StreamSpec(sid=0, pattern=AffinePattern(
                    base=w_base, strides=(64,), lengths=(w_lines,),
                    elem_size=64,
                ))
                cum_spec = StreamSpec(sid=1, kind="store", pattern=AffinePattern(
                    base=cumw_base, strides=(64,), lengths=(w_lines,),
                    elem_size=64,
                ))

                def scan(n=w_lines):
                    for _ in range(n):
                        yield Iteration(compute_ops=8, ops=(
                            ("sload", 0), ("sstore", 1),
                        ))

                scan_phase = KernelPhase(
                    name="scan", stream_specs=[win_spec, cum_spec],
                    iterations=scan,
                )
            else:
                scan_phase = KernelPhase(name="scan")

            # Phase 3: every core walks the full cumulative array.
            cumr_spec = StreamSpec(sid=0, pattern=AffinePattern(
                base=cumw_base, strides=(64,), lengths=(w_lines,),
                elem_size=64,
            ))

            def resample(n=w_lines, core=core):
                for i in range(n):
                    ops = [("sload", 0)]
                    if i % 8 == core % 8:
                        ops.append((
                            "store",
                            newidx_base + (core * n + i) % particles * 4,
                            90,
                        ))
                    yield Iteration(compute_ops=4, ops=tuple(ops))

            programs[core] = CoreProgram(phases=[
                KernelPhase(name="weigh", stream_specs=[p_spec, wout_spec],
                            iterations=weigh),
                scan_phase,
                KernelPhase(name="resample", stream_specs=[cumr_spec],
                            iterations=resample),
            ])
        return programs
