"""Hotspot (Table IV: 1024x1024, 8 iterations).

Thermal simulation: a 5-point stencil over the temperature grid plus
a streaming read of the power grid, ping-ponging between buffers with
a barrier per time step. The east/west neighbours share the centre
row's cache lines; north/south rows arrive through the SE_L2's
constant-offset follower mechanism when floated.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadMeta, register
from repro.workloads.stencil import StencilWorkload


@register
class Hotspot(StencilWorkload):
    META = WorkloadMeta(
        name="hotspot",
        table_iv="1024x1024, 8 iters",
        stencil=True,
    )

    COMPUTE_OPS = 10

    def _dims(self):
        # Full size: 1024 rows of 4 kB (1024 f32); capacity scaling
        # shrinks both dimensions and the step count together so the
        # follower offsets (one row) stay within the scaled SE_L2
        # buffer share, as 4 kB rows do against the 16 kB buffer.
        shrink = max(1, self.scale // 4)
        rows = max(self.num_cores * 4, 1024 // shrink)
        row_bytes = max(256, 4096 // shrink)
        steps = max(2, 8 // min(self.scale, 4))
        return rows, row_bytes, steps
