"""Needleman-Wunsch (Table IV: 2048x2048).

Sequence alignment over a blocked score matrix processed in
anti-diagonal wavefront order: one kernel phase per anti-diagonal,
with only the blocks on that diagonal active. Within a block the
reference matrix is walked with a *blocked 2-D* affine pattern — a
few consecutive lines, then a jump of a full matrix row. The paper
notes this is exactly the access shape that defeats the stride
prefetcher ("nw failed on the stride prefetcher: blocked 2D array
accessed in diagonal order"), while a 2-level stream encodes it
directly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase


@register
class NeedlemanWunsch(Workload):
    META = WorkloadMeta(
        name="nw",
        table_iv="2048x2048",
    )

    BLOCK = 64  # block dimension in int32 entries

    def _dim(self) -> int:
        # Full size: 2048 x 2048 int32 (two 16 MB matrices); scaled so
        # ref + score together stay ~half of the scaled L3.
        return max(256, 2048 * 2 // self.scale)

    def _build(self) -> Dict[int, CoreProgram]:
        dim = self._dim()
        row_bytes = dim * 4
        ref_base = self.layout.alloc("ref", dim * row_bytes // 4 * 4)
        out_base = self.layout.alloc("score", dim * row_bytes // 4 * 4)
        nblocks = dim // self.BLOCK
        block_row_bytes = self.BLOCK * 4  # 256 B = 4 lines
        lines_per_block_row = block_row_bytes // 64

        def block_stream(sid: int, base: int, bi: int, bj: int,
                         kind: str = "load") -> StreamSpec:
            start = base + bi * self.BLOCK * row_bytes + bj * block_row_bytes
            return StreamSpec(sid=sid, kind=kind, pattern=AffinePattern(
                base=start,
                strides=(64, row_bytes),
                lengths=(lines_per_block_row, self.BLOCK),
                elem_size=64,
            ))

        programs = {}
        for core in range(self.num_cores):
            phases: List[KernelPhase] = []
            for diag in range(2 * nblocks - 1):
                blocks = [
                    (i, diag - i)
                    for i in range(nblocks)
                    if 0 <= diag - i < nblocks and i % self.num_cores == core
                ]
                if not blocks:
                    phases.append(KernelPhase(name=f"diag{diag}"))
                    continue
                specs = []
                for k, (bi, bj) in enumerate(blocks[:5]):
                    specs.append(block_stream(2 * k, ref_base, bi, bj))
                    specs.append(block_stream(2 * k + 1, out_base, bi, bj,
                                              kind="store"))

                def iterations(nb=len(blocks[:5]),
                               n=self.BLOCK * lines_per_block_row):
                    for k in range(nb):
                        for _ in range(n):
                            yield Iteration(compute_ops=8, ops=(
                                ("sload", 2 * k), ("sstore", 2 * k + 1),
                            ))

                phases.append(KernelPhase(
                    name=f"diag{diag}", stream_specs=specs,
                    iterations=iterations,
                ))
            programs[core] = CoreProgram(phases=phases)
        return programs
