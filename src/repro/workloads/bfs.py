"""BFS (Table IV: 1M nodes, 599970 edges).

Level-synchronous breadth-first search. Per level, cores scan their
slice of the frontier's edge list (an affine index stream) and check
each destination's visited flag — the indirect stream ``B[A[i]]``
that indirect floating accelerates, with 4-byte subline responses
(the paper: bfs is one of only two workloads with indirect streams,
and the one where subline transfer pays off, Figure 15).

Baseline prefetchers get no traction on the visited accesses — the
paper's evaluated prefetchers do not support indirection, which is
why bfs is an outlier in Figure 13.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern, IndirectPattern
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase, chunk_range


@register
class Bfs(Workload):
    META = WorkloadMeta(
        name="bfs",
        table_iv="1m nodes, 599970 edges",
        has_indirect=True,
    )

    LEVELS = 3

    def _dims(self):
        # Paper ratio: 1M nodes to 600k edges — most visited-flag
        # lookups touch cold lines, which is what makes the 4-byte
        # subline transfers profitable.
        nodes = max(8192, (1 << 20) // self.scale)
        edges = max(2048, int(nodes * 0.6))
        return nodes, edges

    def _build(self) -> Dict[int, CoreProgram]:
        nodes, edges = self._dims()
        edge_dst = self.rng.integers(0, nodes, edges, dtype=np.int64)
        edge_base = self.layout.alloc("edge_dst", edges * 4)
        visited_base = self.layout.alloc("visited", nodes * 4)
        dist_base = self.layout.alloc("dist", nodes * 4)

        programs = {}
        for core in range(self.num_cores):
            phases = []
            for level in range(self.LEVELS):
                lo = level * edges // self.LEVELS
                hi = (level + 1) * edges // self.LEVELS
                my = chunk_range(hi - lo, self.num_cores, core)
                start = lo + my.start
                count = max(1, len(my))
                index_pattern = AffinePattern(
                    base=edge_base + start * 4, strides=(4,),
                    lengths=(count,), elem_size=4,
                )
                edge_spec = StreamSpec(sid=0, pattern=index_pattern)
                visited_spec = StreamSpec(sid=1, parent_sid=0, pattern=IndirectPattern(
                    base=visited_base, index_pattern=index_pattern,
                    index_array=edge_dst[start:start + count],
                    scale=4, elem_size=4,
                ))
                my_dsts = edge_dst[start:start + count]

                def iterations(count=count, my_dsts=my_dsts):
                    for i in range(count):
                        ops = [("sload", 0), ("sload", 1)]
                        if i % 8 == 0:
                            # A fraction of edges discover new nodes.
                            dst = int(my_dsts[i])
                            ops.append(("store", dist_base + dst * 4, 70))
                        yield Iteration(compute_ops=3, ops=tuple(ops))

                phases.append(KernelPhase(
                    name=f"level{level}",
                    stream_specs=[edge_spec, visited_spec],
                    iterations=iterations,
                ))
            programs[core] = CoreProgram(phases=phases)
        return programs
