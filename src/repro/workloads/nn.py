"""Nearest neighbor (Table IV: 768k entries).

Each core streams its chunk of the record array once, computing a
distance per record and keeping a small top-k — a pure streaming scan
whose working set exceeds the on-chip caches, so it is bound by
memory bandwidth (the paper's Figure 16 note: wider links don't help
nn once DRAM is the bottleneck).
"""

from __future__ import annotations

from typing import Dict

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase, chunk_range


@register
class NearestNeighbor(Workload):
    META = WorkloadMeta(
        name="nn",
        table_iv="768k entries",
    )

    RECORD_BYTES = 32  # lat/long + payload per record

    def _records(self) -> int:
        return max(4096, (768 * 1024) // self.scale)

    def _build(self) -> Dict[int, CoreProgram]:
        records = self._records()
        total_bytes = records * self.RECORD_BYTES
        rec_base = self.layout.alloc("records", total_bytes)
        total_lines = total_bytes // 64

        programs = {}
        for core in range(self.num_cores):
            my_lines = chunk_range(total_lines, self.num_cores, core)
            spec = StreamSpec(sid=0, pattern=AffinePattern(
                base=rec_base + my_lines.start * 64,
                strides=(64,), lengths=(max(1, len(my_lines)),), elem_size=64,
            ))

            def iterations(n=len(my_lines)):
                for _ in range(n):
                    # 2 records per line: distance + top-k compare.
                    yield Iteration(compute_ops=8, ops=(("sload", 0),))

            programs[core] = CoreProgram(phases=[KernelPhase(
                name="scan", stream_specs=[spec], iterations=iterations,
            )])
        return programs
