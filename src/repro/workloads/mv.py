"""Matrix-vector multiplication (Table IV: matrix 256 x 65536).

``y[i] = sum_j M[i][j] * x[j]``, rows partitioned across cores
(OpenMP static). The matrix stream is enormous and never reused — the
canonical affine-floating candidate, and at full size it streams from
DRAM, which is why the paper calls mv out as memory-bandwidth-bound
(Figure 18's mv-4x8 note). The x vector is re-walked per row and fits
in the private L2, so the float policy correctly keeps it cached (it
shows reuse in the history table).
"""

from __future__ import annotations

from typing import Dict

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase, chunk_range


@register
class MatrixVector(Workload):
    META = WorkloadMeta(
        name="mv",
        table_iv="matrix 256 x 65536",
    )

    def _dims(self):
        # Full size: 256 x 65536 f32. Scaled so the matrix is ~half
        # the (scaled) L3 and x just fits the private L2.
        rows = max(2 * self.num_cores, 256 // max(1, self.scale // 2))
        cols = max(512, 32768 // self.scale)
        return rows, cols

    def _build(self) -> Dict[int, CoreProgram]:
        rows, cols = self._dims()
        row_bytes = cols * 4
        row_lines = row_bytes // 64
        m_base = self.layout.alloc("M", rows * row_bytes)
        x_base = self.layout.alloc("x", row_bytes)
        y_base = self.layout.alloc("y", rows * 8)

        programs = {}
        for core in range(self.num_cores):
            my_rows = chunk_range(rows, self.num_cores, core)
            n_rows = max(1, len(my_rows))
            # One 2-level stream walks all of the core's matrix rows.
            m_spec = StreamSpec(sid=0, pattern=AffinePattern(
                base=m_base + my_rows.start * row_bytes,
                strides=(64, row_bytes), lengths=(row_lines, n_rows),
                elem_size=64,
            ))
            # x is re-walked once per row (outer stride 0).
            x_spec = StreamSpec(sid=1, pattern=AffinePattern(
                base=x_base, strides=(64, 0), lengths=(row_lines, n_rows),
                elem_size=64,
            ))

            def iterations(my_rows=my_rows, row_lines=row_lines):
                for row in my_rows:
                    for _line in range(row_lines):
                        # 16 f32 per line: vector FMA + partial reduce.
                        yield Iteration(compute_ops=6, ops=(
                            ("sload", 0), ("sload", 1),
                        ))
                    yield Iteration(compute_ops=8, ops=(
                        ("store", y_base + row * 8, 100),
                    ))

            programs[core] = CoreProgram(phases=[KernelPhase(
                name="mv", stream_specs=[m_spec, x_spec],
                iterations=iterations,
            )])
        return programs
