"""Tiled (cache-blocked) stencil — the smart policy's revocation case.

Not one of the paper's 12 Table IV workloads: a PCOT-style
time-tiled kernel where each core sweeps a small block of the grid
:data:`SWEEPS` times before moving to the next block (one phase per
block). The block is sized to sit comfortably inside the private
caches, so the *first* sweep looks exactly like a streaming workload
— cold, reuse-free, high miss ratio — and any Table-II history
policy floats it right around the qualification threshold. The
second sweep then re-reads the block out of the private caches,
proving the float wrong.

The static policy only recovers through the coarse 8-consecutive-hit
sink; the smart policy *revokes* the float (hit burst / L2 reuse
burst) and its cooldown keeps the stream private for the remaining
sweeps. This is the ablation figure's "should revoke" point.
"""

from __future__ import annotations

from typing import Dict, List

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase

CENTER, AUX = 0, 1

#: block footprint in bytes — small enough to be cache-resident at
#: every capacity scale (the scaled private L2 floors at 4 kB), large
#: enough that one sweep crosses the history qualification threshold
#: (32 line requests) while still cold.
BLOCK_BYTES = 2048
#: temporal sweeps over each block before moving on
SWEEPS = 4
#: blocks processed per core (one phase each)
BLOCKS_PER_CORE = 2
#: lines of the small coefficient table the AUX stream cycles over
AUX_LINES = 4


@register
class StencilTiled(Workload):
    META = WorkloadMeta(
        name="stencil_tiled",
        table_iv="blocked 2 kB tiles, 4 sweeps (not in Table IV)",
        stencil=True,
    )

    COMPUTE_OPS = 10

    def _build(self) -> Dict[int, CoreProgram]:
        lines = BLOCK_BYTES // 64
        grid = self.layout.alloc(
            "grid", self.num_cores * BLOCKS_PER_CORE * BLOCK_BYTES
        )
        aux_base = self.layout.alloc("coeffs", AUX_LINES * 64)

        programs = {}
        for core in range(self.num_cores):
            phases: List[KernelPhase] = []
            for block in range(BLOCKS_PER_CORE):
                base = grid + (core * BLOCKS_PER_CORE + block) * BLOCK_BYTES
                specs = [
                    # The block, re-swept SWEEPS times (stride-0 outer
                    # level): sweep 1 is cold and streaming-shaped,
                    # sweeps 2+ hit the private caches.
                    StreamSpec(sid=CENTER, pattern=AffinePattern(
                        base=base, strides=(64, 0),
                        lengths=(lines, SWEEPS), elem_size=64,
                    )),
                    # A tiny coefficient table cycled per element —
                    # cache-resident, never qualifies to float.
                    StreamSpec(sid=AUX, pattern=AffinePattern(
                        base=aux_base, strides=(64, 0),
                        lengths=(AUX_LINES, lines * SWEEPS // AUX_LINES),
                        elem_size=64,
                    )),
                ]

                def iterations(n=lines * SWEEPS, compute=self.COMPUTE_OPS):
                    for _ in range(n):
                        yield Iteration(compute_ops=compute, ops=(
                            ("sload", CENTER), ("sload", AUX),
                        ))

                phases.append(KernelPhase(
                    name=f"block{block}", stream_specs=specs,
                    iterations=iterations,
                ))
            programs[core] = CoreProgram(phases=phases)
        return programs
