"""Core timing models."""

from repro.cpu.core import Core

__all__ = ["Core"]
