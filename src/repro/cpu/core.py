"""Core timing models (IO4 / OOO4 / OOO8).

Cores execute :class:`~repro.workloads.kernel.CoreProgram` phases as a
pipeline of loop iterations:

- the front end dispatches one iteration per
  ``ceil(ops / issue_width)`` cycles;
- an iteration's loads issue together (subject to the load-queue
  bound) and its compute takes ``ceil(compute_ops / issue_width)``
  cycles after dispatch;
- iterations commit in order; the in-flight window is bounded by the
  instruction window (ROB/IQ) and load queue (Table III), which is
  where out-of-order latency hiding (and the in-order core's lack of
  it) comes from;
- stores drain asynchronously through a bounded store buffer.

With the decoupled-stream ISA (SS/SF systems), ``sload`` ops consume
from the SE_core FIFOs — the SE's run-ahead, not the core window,
hides their latency, which is why the in-order core gets OOO-like
memory behaviour (SS III-B). Without it, stream ops lower to plain
loads/stores so the exact same program runs on every system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from typing import TYPE_CHECKING

from repro.mem.l1 import L1Cache, L1Request
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats
from repro.streams.pattern import AffinePattern
from repro.streams.se_core import SECore
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase

if TYPE_CHECKING:  # avoid the package-init import cycle via repro.system
    from repro.system.params import CoreParams


@dataclass
class _IterState:
    """Bookkeeping for one in-flight iteration."""

    seq: int
    loads_pending: int = 0
    compute_done_at: int = 0
    dispatched: bool = False
    finished: bool = False
    committed: bool = False


class Core:
    """One core executing a program phase by phase."""

    def __init__(
        self,
        sim: Simulator,
        stats: Stats,
        tile: int,
        l1: L1Cache,
        params: CoreParams,
        se_core: Optional[SECore] = None,
    ) -> None:
        self.sim = sim
        self.stats = stats
        self.tile = tile
        self.l1 = l1
        self.params = params
        self.se = se_core
        # Per-phase state:
        self._iter_source: Optional[Iterator[Iteration]] = None
        self._inflight: List[_IterState] = []
        self._next_seq = 0
        self._front_free_at = 0
        self._outstanding_loads = 0
        self._outstanding_stores = 0
        self._store_waiters: List[Callable[[], None]] = []
        self._phase_done_cb: Optional[Callable[[], None]] = None
        self._source_exhausted = False
        # Fallback stream positions when there is no SE (Base systems).
        self._fallback_pos: Dict[int, int] = {}
        self._fallback_specs: Dict[int, object] = {}
        # sid -> (chunk start, address list) vectorized via addresses().
        self._fallback_buf: Dict[int, tuple] = {}
        self._peeked: Optional[Iteration] = None
        self._phase_sids: List[int] = []
        self.ops_committed = 0
        self.finish_time = 0
        self._fast = getattr(sim, "fastpath", False)
        tel = getattr(sim, "telemetry", None)
        if tel is not None:
            tel.watch_core(self)

    # ------------------------------------------------------------------
    # phase control (driven by the Chip)
    # ------------------------------------------------------------------
    def run_phase(self, phase: KernelPhase, on_done: Callable[[], None]) -> None:
        """Execute one kernel phase; ``on_done`` fires at the barrier."""
        self._phase_done_cb = on_done
        self._iter_source = phase.iterations()
        self._source_exhausted = False
        self._peeked = None
        self._next_seq = 0
        self._front_free_at = self.sim.now
        self._fallback_pos = {}
        self._fallback_buf = {}
        self._fallback_specs = {s.sid: s for s in phase.stream_specs}
        self._phase_sids = [s.sid for s in phase.stream_specs]
        if self.se is not None and phase.stream_specs:
            # stream_cfg: a few cycles of configuration work.
            self._front_free_at += len(phase.stream_specs)
            self.se.configure(phase.stream_specs)
        self._try_dispatch()

    def _phase_complete(self) -> None:
        if self.se is not None and self._phase_sids:
            self.se.end(self._phase_sids)
        self.finish_time = self.sim.now
        cb = self._phase_done_cb
        self._phase_done_cb = None
        if cb is not None:
            cb()

    # ------------------------------------------------------------------
    # dispatch / commit pipeline
    # ------------------------------------------------------------------
    def _window_allows(self, it: Iteration) -> bool:
        ops_per_iter = max(1, len(it.ops) + it.compute_ops)
        window_iters = max(1, self.params.window // ops_per_iter)
        if len(self._inflight) >= window_iters:
            return False
        loads = sum(1 for op in it.ops if op[0] in ("sload", "load"))
        if (
            loads
            and self._outstanding_loads
            and self._outstanding_loads + loads > self.params.lq
        ):
            # LQ full. (An iteration with more loads than LQ entries
            # still dispatches once the queue drains — its loads issue
            # in bursts in real hardware; we approximate by letting a
            # lone oversized iteration proceed.)
            return False
        return True

    def _try_dispatch(self) -> None:
        while not self._source_exhausted:
            it = self._peek_iteration()
            if it is None:
                break
            if not self._window_allows(it):
                return  # re-tried on commit / load completion
            self._pop_iteration()
            state = _IterState(seq=self._next_seq)
            self._next_seq += 1
            self._inflight.append(state)
            total_ops = max(1, len(it.ops) + it.compute_ops)
            dispatch_at = max(self.sim.now, self._front_free_at)
            self._front_free_at = dispatch_at + math.ceil(
                total_ops / self.params.issue_width
            )
            self.sim.schedule_at(dispatch_at, self._start_iteration, state, it)
        if (
            self._source_exhausted
            and not self._inflight
            and self._phase_done_cb is not None
        ):
            self._phase_complete()

    def _peek_iteration(self) -> Optional[Iteration]:
        if self._peeked is None:
            try:
                self._peeked = next(self._iter_source)
            except StopIteration:
                self._source_exhausted = True
                return None
        return self._peeked

    def _pop_iteration(self) -> Iteration:
        it = self._peeked
        self._peeked = None
        return it

    def _start_iteration(self, state: _IterState, it: Iteration) -> None:
        state.dispatched = True
        state.compute_done_at = self.sim.now + math.ceil(
            max(1, it.compute_ops) / self.params.issue_width
        )
        self.ops_committed += len(it.ops) + it.compute_ops
        self.stats.add("core.iterations")
        self.stats.add("core.ops", len(it.ops) + it.compute_ops)
        for op in it.ops:
            self._issue_op(state, op)
        # An iteration with no loads still completes after compute.
        self.sim.schedule_at(state.compute_done_at, self._check_done, state)

    def _issue_op(self, state: _IterState, op) -> None:
        kind = op[0]
        if kind == "sload":
            if self.se is not None:
                state.loads_pending += 1
                self._outstanding_loads += 1
                self.se.consume(op[1], lambda: self._load_done(state))
            else:
                # Lowered stream load: tagged with its stream id so
                # the caches can classify the fill (Figure 2a) and the
                # stride prefetchers can train on the access site.
                addr = self._fallback_addr(op[1])
                self._plain_load(state, addr, op_id=op[1], stream_id=op[1])
        elif kind == "load":
            self._plain_load(state, op[1], op_id=op[2])
        elif kind == "sstore":
            if self.se is not None:
                addr = self.se.store_next(op[1])
            else:
                addr = self._fallback_addr(op[1])
            self._plain_store(addr, op_id=op[1])
        elif kind == "store":
            self._plain_store(op[1], op_id=op[2])
        else:
            raise ValueError(f"unknown op {op!r}")

    FALLBACK_ADDR_CHUNK = 64  # elements per vectorized addresses() batch

    def _fallback_addr(self, sid: int) -> int:
        """Lower a stream op to its current address without an SE.

        Lowered stream ops walk the pattern strictly sequentially, so
        affine address generation is vectorized: one ``addresses()``
        batch per chunk instead of a mixed-radix ``address()`` per op.
        """
        pos = self._fallback_pos.get(sid, 0)
        self._fallback_pos[sid] = pos + 1
        start, buf = self._fallback_buf.get(sid, (0, ()))
        off = pos - start
        if not 0 <= off < len(buf):
            pattern = self._fallback_specs[sid].pattern
            count = min(self.FALLBACK_ADDR_CHUNK, len(pattern) - pos)
            if count > 1 and isinstance(pattern, AffinePattern):
                chunk = pattern.addresses(pos, count)
                buf = chunk.tolist() if hasattr(chunk, "tolist") else chunk
            else:
                buf = [pattern.address(pos)]
            self._fallback_buf[sid] = (pos, buf)
            off = 0
        return buf[off]

    def _plain_load(
        self, state: _IterState, addr: int, op_id: int,
        stream_id: Optional[int] = None,
    ) -> None:
        state.loads_pending += 1
        self._outstanding_loads += 1
        self.stats.add("core.loads")
        self.l1.access(L1Request(
            addr=addr, op_id=op_id, stream_id=stream_id,
            on_done=lambda: self._load_done(state),
        ))

    def _load_done(self, state: _IterState) -> None:
        state.loads_pending -= 1
        self._outstanding_loads -= 1
        self._check_done(state)
        self._try_dispatch()

    def _plain_store(self, addr: int, op_id: int) -> None:
        self.stats.add("core.stores")
        self._do_store(addr, op_id)

    def _do_store(self, addr: int, op_id: int) -> None:
        if self._outstanding_stores >= self.params.sq:
            # Store buffer full: queue behind draining stores.
            self._store_waiters.append(lambda: self._do_store(addr, op_id))
            return
        self._outstanding_stores += 1
        if self.se is not None:
            # Committed store checks the PEB for stream aliasing.
            self.se.notify_store(addr)
        self.l1.access(L1Request(
            addr=addr, is_write=True, op_id=op_id,
            on_done=self._store_done,
        ))

    def _store_done(self) -> None:
        self._outstanding_stores -= 1
        if self._store_waiters:
            sim = self.sim
            if self._fast and sim.can_inline():
                # Tail fusion (DESIGN.md §12): nothing else pending
                # this cycle, so the zero-delay wakeup runs now.
                sim.count_inlined_events(1)
                self._store_waiters.pop(0)()
            else:
                sim.schedule(0, self._store_waiters.pop(0))

    def _check_done(self, state: _IterState) -> None:
        if state.finished:
            return
        if state.loads_pending == 0 and self.sim.now >= state.compute_done_at:
            state.finished = True
            self._commit_in_order()

    def _commit_in_order(self) -> None:
        committed_any = False
        while self._inflight and self._inflight[0].finished:
            self._inflight.pop(0)
            committed_any = True
        if committed_any:
            self._try_dispatch()
