"""Full-chip assembly and the run loop.

:class:`Chip` builds the mesh, network, DRAM corners and one
:class:`~repro.system.tile.Tile` per mesh coordinate, then executes
per-core :class:`~repro.workloads.kernel.CoreProgram` lists phase by
phase with a global barrier between phases (OpenMP semantics).

:meth:`Chip.run` returns a :class:`RunResult` with the cycle count
(the slowest core's finish across all phases), the merged stats tree,
and derived metrics (NoC utilization, traffic breakdowns) used by the
experiment harness.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mem.addr import NucaMap
from repro.mem.dram import DramSystem
from repro.noc.message import TRAFFIC_CLASSES
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats
from repro.system.params import SystemParams
from repro.system.tile import Tile
from repro.workloads.kernel import CoreProgram, KernelPhase


@dataclass
class RunResult:
    """Outcome of one full workload run."""

    cycles: int
    stats: Stats
    params: SystemParams
    per_core_finish: List[int] = field(default_factory=list)

    @property
    def noc_flit_hops(self) -> float:
        return sum(
            self.stats.get(f"noc.flit_hops.{k}") for k in TRAFFIC_CLASSES
        )

    @property
    def noc_flits(self) -> float:
        return sum(
            self.stats.get(f"noc.flits.{k}") for k in TRAFFIC_CLASSES
        )

    def traffic_breakdown(self) -> Dict[str, float]:
        """Flit-hops by traffic class (Figure 15's bands)."""
        return {
            kind: self.stats.get(f"noc.flit_hops.{kind}")
            for kind in TRAFFIC_CLASSES
        }

    def noc_utilization(self) -> float:
        mesh = Mesh(self.params.cols, self.params.rows)
        if self.cycles <= 0:
            return 0.0
        return self.noc_flit_hops / (mesh.num_links * self.cycles)


class Chip:
    """A tiled multicore built from :class:`SystemParams`."""

    MAX_EVENTS = 500_000_000  # livelock guard for runaway simulations

    def __init__(self, params: SystemParams) -> None:
        self.params = params
        self.sim = Simulator()
        self.stats = Stats()
        self.mesh = Mesh(params.cols, params.rows)
        self.net = Network(
            self.sim, self.mesh, self.stats,
            link_bits=params.link_bits, router_stages=params.router_stages,
        )
        self.nuca = NucaMap(self.mesh.num_tiles, params.l3_interleave)
        self.dram = DramSystem(
            self.sim, self.net, self.stats,
            access_latency=params.dram_latency,
            cycles_per_line=params.dram_cycles_per_line_effective,
        )
        self.tiles: List[Tile] = [
            Tile(t, params, self.sim, self.net, self.stats,
                 self.nuca, self.mesh, self.dram)
            for t in range(self.mesh.num_tiles)
        ]
        tel = self.sim.telemetry
        if tel is not None:
            tel.watch_chip(self)

    @property
    def num_cores(self) -> int:
        return self.mesh.num_tiles

    # ------------------------------------------------------------------
    def run(self, programs: Dict[int, CoreProgram]) -> RunResult:
        """Run per-core programs to completion with phase barriers.

        The event loop runs with the cyclic garbage collector paused
        (restored on exit): the kernel and message pools recycle the
        hot allocations, so collector passes over the arrival batches
        and handler closures are pure overhead mid-run.
        """
        for core_id in programs:
            if not (0 <= core_id < self.num_cores):
                raise ValueError(f"program for nonexistent core {core_id}")
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return self._run_phases(programs)
        finally:
            if was_enabled:
                gc.enable()

    def _run_phases(self, programs: Dict[int, CoreProgram]) -> RunResult:
        num_phases = max((len(p) for p in programs.values()), default=0)
        finish_time = 0
        per_core_finish = [0] * self.num_cores

        for phase_idx in range(num_phases):
            participants = {
                core_id: program.phases[phase_idx]
                for core_id, program in programs.items()
                if phase_idx < len(program)
            }
            pending = {"count": len(participants)}

            def one_done(pending=pending) -> None:
                pending["count"] -= 1

            for core_id, phase in participants.items():
                self.tiles[core_id].core.run_phase(phase, one_done)
            self.sim.run(max_events=self.MAX_EVENTS)
            if pending["count"] != 0:
                raise RuntimeError(
                    f"phase {phase_idx} deadlocked: {pending['count']} cores "
                    f"never finished (event queue drained at {self.sim.now})"
                )
            for core_id in participants:
                core = self.tiles[core_id].core
                per_core_finish[core_id] = core.finish_time
                finish_time = max(finish_time, core.finish_time)

        # Drain stragglers (writebacks, in-flight prefetches).
        self.sim.run(max_events=self.MAX_EVENTS)
        san = self.sim.sanitizer
        if san is not None:
            san.final_check()
            self.stats.set("sanitizer.trace_hash", san.trace_hash)
            self.stats.set("sanitizer.trace_events", san.trace_events)
            self.stats.set("sanitizer.violations", san.violations)
        tel = self.sim.telemetry
        if tel is not None:
            tel.finalize(self.stats)
        self.stats.set("chip.cycles", finish_time)
        return RunResult(
            cycles=finish_time,
            stats=self.stats,
            params=self.params,
            per_core_finish=per_core_finish,
        )
