"""One tile: core + L1 + private L2 + L3 bank slice + stream engines.

The tile wires every cross-component hook: prefetchers into the L1/L2,
the SE_L2 into the L2 (floating-request interception, dirty-eviction
alias checks), the SE_L3 into the L3 bank (GetU issue), and the stream
reuse notifications back into the SE_core history table.
"""

from __future__ import annotations

from typing import Optional

from repro.mem.addr import NucaMap
from repro.mem.dram import DramSystem
from repro.mem.l1 import L1Cache
from repro.mem.l2 import L2Cache
from repro.mem.l3 import L3Bank
from repro.mem.tlb import Tlb
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.prefetch.bingo import BingoPrefetcher
from repro.prefetch.bulk import BulkGrouper
from repro.prefetch.stride import StridePrefetcher
from repro.cpu.core import Core
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats
from repro.streams.se_core import SECore
from repro.streams.se_l2 import SEL2
from repro.streams.se_l3 import SEL3
from repro.system.params import SystemParams


class Tile:
    """Everything at one mesh coordinate."""

    def __init__(
        self,
        tile_id: int,
        params: SystemParams,
        sim: Simulator,
        net: Network,
        stats: Stats,
        nuca: NucaMap,
        mesh: Mesh,
        dram: DramSystem,
    ) -> None:
        self.tile_id = tile_id
        self.params = params

        self.l3 = L3Bank(
            sim, net, stats, tile_id,
            size_bytes=params.l3_bank_size, ways=params.l3_ways,
            latency=params.l3_latency, mshrs=params.l3_mshrs,
            replacement=params.replacement, dram=dram, nuca=nuca,
        )
        self.l2 = L2Cache(
            sim, net, stats, tile_id,
            size_bytes=params.l2_size, ways=params.l2_ways,
            latency=params.l2_latency, mshrs=params.l2_mshrs,
            replacement=params.replacement, nuca=nuca,
        )
        self.l1 = L1Cache(
            sim, stats, tile_id, self.l2,
            size_bytes=params.l1_size, ways=params.l1_ways,
            latency=params.l1_latency, mshrs=params.l1_mshrs,
        )

        # --- prefetchers -------------------------------------------------
        if params.l1_prefetcher == "stride":
            self.l1.prefetcher = StridePrefetcher(
                streams=params.l1_pf_streams, degree=params.l1_pf_degree,
            )
        elif params.l1_prefetcher == "bingo":
            self.l1.prefetcher = BingoPrefetcher()
        elif params.l1_prefetcher is not None:
            raise ValueError(f"unknown L1 prefetcher {params.l1_prefetcher!r}")
        if params.l2_prefetcher == "stride":
            self.l2.prefetcher = StridePrefetcher(
                streams=params.l2_pf_streams, degree=params.l2_pf_degree,
            )
        elif params.l2_prefetcher is not None:
            raise ValueError(f"unknown L2 prefetcher {params.l2_prefetcher!r}")
        if params.bulk_prefetch:
            if params.l3_interleave <= 64:
                raise ValueError(
                    "bulk prefetch requires >64B L3 interleaving (SS VI)"
                )
            self.l2.bulk = BulkGrouper(sim, net, stats, tile_id)

        # --- stream engines ----------------------------------------------
        self.se_l2: Optional[SEL2] = None
        self.se_l3: Optional[SEL3] = None
        self.se_core: Optional[SECore] = None
        if params.floating_enabled:
            l2_tlb = Tlb(entries=2048, hit_latency=8)
            self.se_l2 = SEL2(
                sim, net, stats, tile_id, self.l2, nuca,
                buffer_bytes=params.se_l2_buffer_bytes, tlb=l2_tlb,
                stream_grain_coherence=params.stream_grain_coherence,
            )
            self.se_l3 = SEL3(
                sim, net, stats, tile_id, self.l3, nuca, mesh,
                max_streams=params.se_l3_max_streams,
                confluence_enabled=params.confluence_enabled,
                indirect_enabled=params.indirect_float_enabled,
                stream_grain_coherence=params.stream_grain_coherence,
                tlb=Tlb(entries=1024, hit_latency=2),
            )
        if params.streams_enabled or params.floating_enabled:
            self.se_core = SECore(
                sim, stats, tile_id, self.l1, se_l2=self.se_l2,
                fifo_bytes=params.core.se_fifo_bytes,
                max_streams=params.se_max_streams_per_core,
                l2_capacity=params.l2_size,
                float_enabled=params.floating_enabled,
                indirect_float_enabled=params.indirect_float_enabled,
                float_policy=params.float_policy,
                plan_enabled=params.float_plan,
            )
            self.l2.on_stream_reuse = self.se_core.on_stream_reuse

        self.core = Core(
            sim, stats, tile_id, self.l1, params.core, se_core=self.se_core,
        )
