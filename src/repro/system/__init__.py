"""Chip assembly: parameters, tiles, the full system and named configs."""

from repro.system.chip import Chip, RunResult
from repro.system.configs import CONFIG_NAMES, make_config
from repro.system.params import CORES, IO4, OOO4, OOO8, CoreParams, SystemParams
from repro.system.tile import Tile

__all__ = [
    "Chip",
    "RunResult",
    "Tile",
    "SystemParams",
    "CoreParams",
    "IO4",
    "OOO4",
    "OOO8",
    "CORES",
    "make_config",
    "CONFIG_NAMES",
]
