"""Named system configurations — the paper's comparison set (SS VI).

===============  ====================================================
name             system
===============  ====================================================
base             no prefetching
stride           L1 stride + L2 stride prefetchers
bingo            L1 Bingo spatial + L2 stride prefetchers
bulk             stride prefetchers with bulk request grouping
                 (requires >64 B interleaving; traffic study only)
ss               stream-specialized core (decoupled-stream ISA,
                 no floating)
sf               stream floating (1 kB L3 interleaving by default)
sf_aff           floating with only affine streams (Figure 15)
sf_ind           affine + indirect floating, no confluence
sf_smart         sf with the adaptive float policy (windowed
                 counters, length/locality gates, revocation)
sf_plan          sf_smart plus per-range FloatPlans (probation L2
                 prefixes, midway/deferred configs)
===============  ====================================================

Every builder takes the core preset name ("io4" / "ooo4" / "ooo8"),
mesh dimensions, and a capacity ``scale`` (see
:meth:`~repro.system.params.SystemParams.scaled`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.system.params import CORES, SystemParams

CONFIG_NAMES = (
    "base", "stride", "bingo", "bulk", "ss", "sf", "sf_aff", "sf_ind",
    "sf_sgc", "sf_smart", "sf_plan",
)

# The paper runs SF with 1 kB interleaving to curb migrations (SS VI);
# all other systems use the 64 B default from Table III.
SF_INTERLEAVE = 1024
BULK_INTERLEAVE = 256


def make_config(
    name: str,
    core: str = "ooo8",
    cols: int = 8,
    rows: int = 8,
    scale: int = 1,
    link_bits: int = 256,
    l3_interleave: Optional[int] = None,
) -> SystemParams:
    """Build the named system configuration."""
    if core not in CORES:
        raise ValueError(f"unknown core {core!r} (have {sorted(CORES)})")
    base = SystemParams(
        core=CORES[core], cols=cols, rows=rows, link_bits=link_bits,
    )
    if name == "base":
        params = base
    elif name == "stride":
        params = replace(base, l1_prefetcher="stride", l2_prefetcher="stride")
    elif name == "bingo":
        params = replace(base, l1_prefetcher="bingo", l2_prefetcher="stride")
    elif name == "bulk":
        params = replace(
            base, l1_prefetcher="stride", l2_prefetcher="stride",
            bulk_prefetch=True,
            l3_interleave=l3_interleave or BULK_INTERLEAVE,
        )
    elif name == "ss":
        params = replace(base, streams_enabled=True)
    elif name == "sf":
        params = replace(
            base, streams_enabled=True, floating_enabled=True,
            l3_interleave=l3_interleave or SF_INTERLEAVE,
        )
    elif name == "sf_aff":
        params = replace(
            base, streams_enabled=True, floating_enabled=True,
            confluence_enabled=False, indirect_float_enabled=False,
            l3_interleave=l3_interleave or SF_INTERLEAVE,
        )
    elif name == "sf_ind":
        params = replace(
            base, streams_enabled=True, floating_enabled=True,
            confluence_enabled=False, indirect_float_enabled=True,
            l3_interleave=l3_interleave or SF_INTERLEAVE,
        )
    elif name == "sf_smart":
        params = replace(
            base, streams_enabled=True, floating_enabled=True,
            float_policy="smart",
            l3_interleave=l3_interleave or SF_INTERLEAVE,
        )
    elif name == "sf_plan":
        params = replace(
            base, streams_enabled=True, floating_enabled=True,
            float_policy="smart", float_plan=True,
            l3_interleave=l3_interleave or SF_INTERLEAVE,
        )
    elif name == "sf_sgc":
        # SS V-B: full SF plus stream-grain coherence tracking.
        params = replace(
            base, streams_enabled=True, floating_enabled=True,
            stream_grain_coherence=True,
            l3_interleave=l3_interleave or SF_INTERLEAVE,
        )
    else:
        raise ValueError(f"unknown config {name!r} (have {CONFIG_NAMES})")
    if l3_interleave is not None:
        params = replace(params, l3_interleave=l3_interleave)
    return params.scaled(scale)
