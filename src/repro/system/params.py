"""System and microarchitecture parameters (Table III).

:class:`SystemParams` captures everything the chip builder needs; the
three core presets (IO4 / OOO4 / OOO8) follow Table III. The
:meth:`SystemParams.scaled` helper shrinks every capacity by a common
factor, preserving the working-set-to-cache ratios that drive the
paper's effects while letting test/benchmark runs finish quickly
(DESIGN.md SS6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class CoreParams:
    """One CPU preset from Table III."""

    name: str
    issue_width: int
    window: int  # IQ (in-order) / ROB (out-of-order) instruction window
    lq: int  # load queue entries
    sq: int  # store queue + store buffer entries
    se_fifo_bytes: int  # SE_core stream FIFO capacity
    out_of_order: bool

    def scaled(self, factor: int) -> "CoreParams":
        """Core queues and the SE FIFO are structural (they bound
        run-ahead and MLP, not working sets), so they do not scale."""
        return self


IO4 = CoreParams(
    name="io4", issue_width=4, window=10, lq=4, sq=10,
    se_fifo_bytes=256, out_of_order=False,
)
OOO4 = CoreParams(
    name="ooo4", issue_width=4, window=96, lq=24, sq=24,
    se_fifo_bytes=1024, out_of_order=True,
)
OOO8 = CoreParams(
    name="ooo8", issue_width=8, window=224, lq=72, sq=56,
    se_fifo_bytes=2048, out_of_order=True,
)

CORES = {"io4": IO4, "ooo4": OOO4, "ooo8": OOO8}


@dataclass(frozen=True)
class SystemParams:
    """Full-chip configuration (Table III defaults)."""

    core: CoreParams = OOO8
    cols: int = 8
    rows: int = 8
    # NoC
    link_bits: int = 256
    router_stages: int = 5
    # L1
    l1_size: int = 32 * 1024
    l1_ways: int = 8
    l1_latency: int = 2
    l1_mshrs: int = 16
    # L2 (private)
    l2_size: int = 256 * 1024
    l2_ways: int = 16
    l2_latency: int = 16
    l2_mshrs: int = 32
    # L3 (shared, per bank)
    l3_bank_size: int = 1024 * 1024
    l3_ways: int = 16
    l3_latency: int = 20
    l3_mshrs: int = 32
    l3_interleave: int = 64
    replacement: str = "brrip"
    # DRAM (DDR3-1600, 12.8 GB/s aggregate over 4 corners @ 2 GHz)
    dram_latency: int = 100
    dram_cycles_per_line: int = 40
    # Stream engines
    se_l2_buffer_bytes: int = 16 * 1024
    se_l3_max_streams: int = 768
    se_max_streams_per_core: int = 12
    # Feature flags (which system is being modelled)
    l1_prefetcher: Optional[str] = None  # None | "stride" | "bingo"
    l2_prefetcher: Optional[str] = None  # None | "stride"
    bulk_prefetch: bool = False
    streams_enabled: bool = False  # decoupled-stream ISA (SS)
    floating_enabled: bool = False  # stream floating (SF)
    confluence_enabled: bool = True
    indirect_float_enabled: bool = True
    # Float policy: "static" (the paper's Table II) or "smart"
    # (windowed counters, length/locality gates, mid-run revocation).
    float_policy: str = "static"
    # Per-range FloatPlans (smart policy only): probation L2 prefix /
    # pure-L2 ranges before committing a stream to a remote SE_L3.
    float_plan: bool = False
    # SS V-B alternative: track floated streams' accessed ranges at the
    # SE_L3 and invalidate them on conflicting writes, instead of the
    # uncached-data scheme (the paper's future work, implemented here
    # as an option).
    stream_grain_coherence: bool = False
    # Stride prefetcher knobs (Table III)
    l1_pf_streams: int = 16
    l1_pf_degree: int = 8
    l2_pf_streams: int = 16
    l2_pf_degree: int = 16

    @property
    def num_tiles(self) -> int:
        return self.cols * self.rows

    @property
    def dram_cycles_per_line_effective(self) -> int:
        """Per-controller line service time. Meshes below 4x4 keep the
        paper's per-core DRAM bandwidth share (12.8 GB/s over 64
        cores would starve a 4-core run completely otherwise); 4x4
        and larger use the nominal Table III value."""
        if self.num_tiles >= 16:
            return self.dram_cycles_per_line
        return max(1, self.dram_cycles_per_line * 16 // max(1, self.num_tiles))

    def scaled(self, factor: int) -> "SystemParams":
        """Divide every capacity by ``factor`` (power of two), keeping
        latencies, widths and associativities — the fast-run profile."""
        if factor <= 0 or factor & (factor - 1):
            raise ValueError("scale factor must be a positive power of two")
        if factor == 1:
            return self
        return replace(
            self,
            core=self.core.scaled(factor),
            l1_size=max(1024, self.l1_size // factor),
            # The private L2 shrinks one extra notch: scaled workloads
            # keep the paper's "per-core stream footprint >> L2"
            # regime (full size: 4 MB grids vs 256 kB L2).
            l2_size=max(2048, self.l2_size // (factor * 2)),
            l3_bank_size=max(4096, self.l3_bank_size // factor),
            se_l2_buffer_bytes=max(4096, self.se_l2_buffer_bytes // factor),
        )

    def describe(self) -> str:
        feats = []
        if self.l1_prefetcher:
            feats.append(f"L1-{self.l1_prefetcher}")
        if self.l2_prefetcher:
            feats.append(f"L2-{self.l2_prefetcher}")
        if self.bulk_prefetch:
            feats.append("bulk")
        if self.floating_enabled:
            feats.append("SF")
        elif self.streams_enabled:
            feats.append("SS")
        tag = "+".join(feats) if feats else "base"
        return f"{self.core.name}-{self.cols}x{self.rows}-{tag}"
