"""Experiment harness: runner, per-figure experiments, reports."""

from repro.harness.runner import RunRecord, clear_cache, run_once
from repro.harness import experiments, report

__all__ = ["run_once", "RunRecord", "clear_cache", "experiments", "report"]
