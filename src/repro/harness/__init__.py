"""Experiment harness: runner, cache, parallel fan-out, figures, reports."""

from repro.harness.runner import (
    RunRecord,
    clear_cache,
    configure_disk_cache,
    run_once,
)
from repro.harness.cache import RunCache, default_cache_dir
from repro.harness.parallel import resolve_jobs, run_points
from repro.harness import experiments, report

__all__ = [
    "run_once",
    "RunRecord",
    "RunCache",
    "clear_cache",
    "configure_disk_cache",
    "default_cache_dir",
    "resolve_jobs",
    "run_points",
    "experiments",
    "report",
]
