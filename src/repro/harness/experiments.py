"""Per-figure experiments (DESIGN.md's experiment index).

Each function runs the simulations a paper figure/table needs and
returns a plain-data structure the report module renders. Every
figure of the paper's evaluation has a function here; the pytest
benchmarks under ``benchmarks/`` call them one-to-one.

Every figure follows the same three-step shape:

1. **enumerate** its independent ``(workload, config, core, geometry,
   seed)`` points,
2. **fan out** through :func:`~repro.harness.parallel.run_points`
   (``jobs`` argument / ``REPRO_JOBS`` env; memo + disk cache), which
   leaves every record in the runner's memo,
3. **assemble** the figure from ``run_once`` calls, which are now all
   cache hits.

Because step 3 is the exact serial code path, a ``--jobs N`` run
produces byte-identical reports to a serial one.  Figures that share
points (e.g. Figure 13's SF rows feeding Figure 14) simulate them
once per session — and, with the disk cache enabled, once ever.

Defaults target the fast profile (4x4 mesh, capacity scale 16); pass
``cols/rows/scale`` for larger runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.parallel import run_points
from repro.harness.runner import RunRecord, run_once
from repro.noc.message import TRAFFIC_CLASSES
from repro.workloads import ALL_WORKLOADS

FIG13_CONFIGS = ("base", "stride", "bingo", "ss", "sf")
FIG13_CORES = ("io4", "ooo4", "ooo8")

# Workload subset for the expensive sweeps (documented in
# EXPERIMENTS.md); chosen to cover affine, indirect, confluence,
# stencil and irregular behaviour.
SWEEP_WORKLOADS = ("conv3d", "bfs", "hotspot", "mv", "nn", "pathfinder")


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


# ---------------------------------------------------------------------------
# Figure 2: motivation — no-reuse evictions and their traffic
# ---------------------------------------------------------------------------


@dataclass
class Fig2Row:
    workload: str
    frac_noreuse: float  # L2 evictions never reused (of all evictions)
    frac_noreuse_stream: float  # ... attributable to stream accesses
    frac_traffic_noreuse: float  # flits spent on no-reuse lines (of all)
    frac_traffic_ctrl: float  # control share of those flits


def fig2_motivation(
    workloads: Sequence[str] = ALL_WORKLOADS,
    core: str = "ooo8",
    jobs: Optional[int] = None,
    **kw,
) -> List[Fig2Row]:
    """Figure 2a/2b: run Base and classify L2 evictions/traffic."""
    run_points(
        [dict(workload=wl, config="base", core=core, **kw)
         for wl in workloads],
        jobs=jobs,
    )
    rows = []
    for wl in workloads:
        rec = run_once(wl, "base", core=core, **kw)
        s = rec.stats
        evictions = s["l2.evictions"]
        noreuse = s["l2.evictions_noreuse"]
        stream = s["l2.evictions_noreuse_stream"]
        flits_total = sum(
            s.get(f"noc.flits.{k}") for k in TRAFFIC_CLASSES
        )
        nr_data = s["l2.noreuse_flits.data"]
        nr_ctrl = s["l2.noreuse_flits.ctrl"]
        rows.append(Fig2Row(
            workload=wl,
            frac_noreuse=noreuse / evictions if evictions else 0.0,
            frac_noreuse_stream=stream / evictions if evictions else 0.0,
            frac_traffic_noreuse=(
                (nr_data + nr_ctrl) / flits_total if flits_total else 0.0
            ),
            frac_traffic_ctrl=nr_ctrl / flits_total if flits_total else 0.0,
        ))
    return rows


# ---------------------------------------------------------------------------
# Figure 13: overall speedup and energy efficiency
# ---------------------------------------------------------------------------


@dataclass
class Fig13Cell:
    speedup: float
    energy_eff: float  # baseline energy / this energy


def fig13_speedup(
    workloads: Sequence[str] = ALL_WORKLOADS,
    cores: Sequence[str] = FIG13_CORES,
    configs: Sequence[str] = FIG13_CONFIGS,
    jobs: Optional[int] = None,
    **kw,
) -> Dict[str, Dict[str, Dict[str, Fig13Cell]]]:
    """{core: {workload: {config: Fig13Cell}}} vs the same-core Base."""
    run_points(
        [dict(workload=wl, config=cfg, core=core, **kw)
         for core in cores
         for wl in workloads
         for cfg in ("base",) + tuple(configs)],
        jobs=jobs,
    )
    out: Dict[str, Dict[str, Dict[str, Fig13Cell]]] = {}
    for core in cores:
        out[core] = {}
        for wl in workloads:
            base = run_once(wl, "base", core=core, **kw)
            cells = {}
            for cfg in configs:
                rec = run_once(wl, cfg, core=core, **kw)
                cells[cfg] = Fig13Cell(
                    speedup=base.cycles / rec.cycles if rec.cycles else 0.0,
                    energy_eff=(
                        base.energy.total / rec.energy.total
                        if rec.energy.total else 0.0
                    ),
                )
            out[core][wl] = cells
    return out


# ---------------------------------------------------------------------------
# Figure 14: L3 request breakdown under SF
# ---------------------------------------------------------------------------

FIG14_SOURCES = ("core", "core_stream", "float_affine", "float_ind", "float_conf")


def fig14_requests(
    workloads: Sequence[str] = ALL_WORKLOADS,
    core: str = "ooo8",
    jobs: Optional[int] = None,
    **kw,
) -> Dict[str, Dict[str, float]]:
    """{workload: {source: fraction of all L3 requests}} for SF."""
    run_points(
        [dict(workload=wl, config="sf", core=core, **kw)
         for wl in workloads],
        jobs=jobs,
    )
    out = {}
    for wl in workloads:
        rec = run_once(wl, "sf", core=core, **kw)
        counts = {
            src: rec.stats.get(f"l3.requests_by_source.{src}")
            for src in FIG14_SOURCES
        }
        total = sum(counts.values())
        out[wl] = {
            src: (counts[src] / total if total else 0.0)
            for src in FIG14_SOURCES
        }
    return out


# ---------------------------------------------------------------------------
# Figure 15: NoC traffic breakdown and utilization
# ---------------------------------------------------------------------------

FIG15_CONFIGS = ("stride", "bulk", "bingo", "ss", "sf_aff", "sf_ind", "sf")


@dataclass
class Fig15Row:
    workload: str
    config: str
    ctrl: float  # flit-hops normalized to the workload's Base total
    data: float
    stream: float
    utilization: float

    @property
    def total(self) -> float:
        return self.ctrl + self.data + self.stream


def fig15_traffic(
    workloads: Sequence[str] = ALL_WORKLOADS,
    configs: Sequence[str] = FIG15_CONFIGS,
    core: str = "ooo8",
    jobs: Optional[int] = None,
    **kw,
) -> List[Fig15Row]:
    run_points(
        [dict(workload=wl, config=cfg, core=core, **kw)
         for wl in workloads
         for cfg in ("base",) + tuple(configs)],
        jobs=jobs,
    )
    rows = []
    for wl in workloads:
        base = run_once(wl, "base", core=core, **kw)
        base_total = base.flit_hops or 1.0
        for cfg in ("base",) + tuple(configs):
            rec = run_once(wl, cfg, core=core, **kw)
            td = rec.traffic_breakdown()
            rows.append(Fig15Row(
                workload=wl, config=cfg,
                ctrl=td["ctrl"] / base_total,
                data=td["data"] / base_total,
                stream=td["stream"] / base_total,
                utilization=rec.noc_utilization(),
            ))
    return rows


# ---------------------------------------------------------------------------
# Figure 16: sensitivity to NoC link width
# ---------------------------------------------------------------------------

FIG16_WIDTHS = (128, 256, 512)


def fig16_linkwidth(
    workloads: Sequence[str] = SWEEP_WORKLOADS,
    core: str = "ooo8",
    widths: Sequence[int] = FIG16_WIDTHS,
    jobs: Optional[int] = None,
    **kw,
) -> Dict[str, Dict[Tuple[str, int], float]]:
    """{workload: {(config, width): speedup vs bingo at 128-bit}}."""
    run_points(
        [dict(workload=wl, config="bingo", core=core, link_bits=128, **kw)
         for wl in workloads]
        + [dict(workload=wl, config=cfg, core=core, link_bits=width, **kw)
           for wl in workloads
           for cfg in ("bingo", "sf")
           for width in widths],
        jobs=jobs,
    )
    out = {}
    for wl in workloads:
        ref = run_once(wl, "bingo", core=core, link_bits=128, **kw)
        cells = {}
        for cfg in ("bingo", "sf"):
            for width in widths:
                rec = run_once(wl, cfg, core=core, link_bits=width, **kw)
                cells[(cfg, width)] = (
                    ref.cycles / rec.cycles if rec.cycles else 0.0
                )
        out[wl] = cells
    return out


# ---------------------------------------------------------------------------
# Figure 17: sensitivity to NUCA interleaving granularity
# ---------------------------------------------------------------------------

FIG17_GRANULARITIES = (64, 256, 1024, 4096)


def fig17_interleave(
    workloads: Sequence[str] = SWEEP_WORKLOADS,
    core: str = "ooo8",
    granularities: Sequence[int] = FIG17_GRANULARITIES,
    jobs: Optional[int] = None,
    **kw,
) -> Dict[str, Dict[Tuple[str, int], float]]:
    """{workload: {(config, interleave): speedup vs bingo at 64B}}."""
    run_points(
        [dict(workload=wl, config="bingo", core=core, l3_interleave=64, **kw)
         for wl in workloads]
        + [dict(workload=wl, config=cfg, core=core, l3_interleave=gran, **kw)
           for wl in workloads
           for cfg in ("bingo", "sf")
           for gran in granularities],
        jobs=jobs,
    )
    out = {}
    for wl in workloads:
        ref = run_once(wl, "bingo", core=core, l3_interleave=64, **kw)
        cells = {}
        for cfg in ("bingo", "sf"):
            for gran in granularities:
                rec = run_once(wl, cfg, core=core, l3_interleave=gran, **kw)
                cells[(cfg, gran)] = (
                    ref.cycles / rec.cycles if rec.cycles else 0.0
                )
        out[wl] = cells
    return out


# ---------------------------------------------------------------------------
# Figure 18: core scaling
# ---------------------------------------------------------------------------


@dataclass
class Fig18Cell:
    sf_over_ss: float
    l2_hit_rate: float  # in SS, as the paper annotates
    l3_hit_rate: float


def fig18_scaling(
    workloads: Sequence[str] = SWEEP_WORKLOADS,
    core: str = "ooo8",
    meshes: Sequence[Tuple[int, int]] = ((2, 2), (4, 4), (4, 8)),
    scale: int = 16,
    jobs: Optional[int] = None,
    **kw,
) -> Dict[str, Dict[Tuple[int, int], Fig18Cell]]:
    """SF speedup over SS across mesh sizes (weak scaling: the
    workload scale shrinks as cores grow, keeping per-core work
    comparable, as in the paper's fixed-size strong-scaling spirit)."""
    run_points(
        [dict(workload=wl, config=cfg, core=core, cols=cols, rows=rows,
              scale=scale, **kw)
         for wl in workloads
         for cols, rows in meshes
         for cfg in ("ss", "sf")],
        jobs=jobs,
    )
    out = {}
    for wl in workloads:
        cells = {}
        for cols, rows in meshes:
            ss = run_once(wl, "ss", core=core, cols=cols, rows=rows,
                          scale=scale, **kw)
            sf = run_once(wl, "sf", core=core, cols=cols, rows=rows,
                          scale=scale, **kw)
            cells[(cols, rows)] = Fig18Cell(
                sf_over_ss=ss.cycles / sf.cycles if sf.cycles else 0.0,
                l2_hit_rate=ss.l2_hit_rate(),
                l3_hit_rate=ss.l3_hit_rate(),
            )
        out[wl] = cells
    return out


# ---------------------------------------------------------------------------
# Policy ablation: static Table II vs smart vs smart+plan (new figure)
# ---------------------------------------------------------------------------

ABLATION_CONFIGS = ("sf", "sf_smart", "sf_plan")
# The 12 Table IV benchmarks plus the tiled stencil, whose cache-
# resident re-sweeps are the revocation case the static policy only
# handles through the coarse consecutive-hit sink.
ABLATION_WORKLOADS = ALL_WORKLOADS + ("stencil_tiled",)


@dataclass
class PolicyRow:
    workload: str
    config: str
    speedup: float  # vs the same-core SS (no floating)
    floats: int
    sinks: int
    revokes: int
    deferred_configs: int  # plan configs held back past l3_start
    plan_l2_ranges: int  # pure-L2 / probation prefix ranges pumped


def fig_policy_ablation(
    workloads: Sequence[str] = ABLATION_WORKLOADS,
    configs: Sequence[str] = ABLATION_CONFIGS,
    core: str = "ooo8",
    jobs: Optional[int] = None,
    **kw,
) -> List[PolicyRow]:
    """Float-policy ablation: each config's speedup over SS plus the
    policy activity counters (floats / sinks / revocations / plan
    machinery) that explain it."""
    run_points(
        [dict(workload=wl, config=cfg, core=core, **kw)
         for wl in workloads
         for cfg in ("ss",) + tuple(configs)],
        jobs=jobs,
    )
    rows = []
    for wl in workloads:
        base = run_once(wl, "ss", core=core, **kw)
        for cfg in configs:
            rec = run_once(wl, cfg, core=core, **kw)
            s = rec.stats
            rows.append(PolicyRow(
                workload=wl, config=cfg,
                speedup=base.cycles / rec.cycles if rec.cycles else 0.0,
                floats=int(s.get("se_core.floats")),
                sinks=int(s.get("se_core.sinks")),
                revokes=int(s.get("se_core.revokes")),
                deferred_configs=int(s.get("se_l2.deferred_configs")),
                plan_l2_ranges=int(s.get("se_l2.plan_l2_ranges")),
            ))
    return rows


# ---------------------------------------------------------------------------
# Latency attribution: where floating buys its cycles (new figure)
# ---------------------------------------------------------------------------

ATTRIBUTION_CONFIGS = ("base", "ss", "sf", "sf_smart")


@dataclass
class AttributionRow:
    workload: str
    config: str
    cycles: int
    speedup: float  # vs the same-core Base
    cpi: Dict[str, float] = field(default_factory=dict)  # bucket -> cycles


def fig_latency_attribution(
    workloads: Sequence[str] = ALL_WORKLOADS,
    configs: Sequence[str] = ATTRIBUTION_CONFIGS,
    core: str = "ooo8",
    jobs: Optional[int] = None,
    **kw,
) -> List[AttributionRow]:
    """Cycle-accounting ablation: the per-bucket CPI stack (from the
    attribution telemetry pillar) for each config, so the speedup
    column can be read against *which wait buckets emptied* — floated
    configs should move cycles out of the NoC/DRAM-wait buckets on
    the stream-heavy workloads."""
    run_points(
        [dict(workload=wl, config=cfg, core=core, obs="attribution", **kw)
         for wl in workloads
         for cfg in configs],
        jobs=jobs,
    )
    rows = []
    for wl in workloads:
        base = run_once(wl, configs[0], core=core, obs="attribution", **kw)
        for cfg in configs:
            rec = run_once(wl, cfg, core=core, obs="attribution", **kw)
            tel = rec.telemetry or {}
            rows.append(AttributionRow(
                workload=wl, config=cfg, cycles=rec.cycles,
                speedup=base.cycles / rec.cycles if rec.cycles else 0.0,
                cpi={
                    name[len("cpi."):]: value
                    for name, value in sorted(tel.items())
                    if name.startswith("cpi.")
                    and name not in ("cpi.total_cycles",
                                     "cpi.journeys_dropped")
                },
            ))
    return rows


# ---------------------------------------------------------------------------
# Figure 19: energy vs speedup scatter
# ---------------------------------------------------------------------------


@dataclass
class Fig19Point:
    core: str
    config: str
    speedup: float  # geomean speedup vs IO4 Base
    energy: float  # geomean energy vs IO4 Base (lower is better)


def fig19_energy_scatter(
    workloads: Sequence[str] = ALL_WORKLOADS,
    cores: Sequence[str] = FIG13_CORES,
    configs: Sequence[str] = ("base", "bingo", "ss", "sf"),
    jobs: Optional[int] = None,
    **kw,
) -> List[Fig19Point]:
    run_points(
        [dict(workload=wl, config="base", core="io4", **kw)
         for wl in workloads]
        + [dict(workload=wl, config=cfg, core=core, **kw)
           for core in cores
           for cfg in configs
           for wl in workloads],
        jobs=jobs,
    )
    points = []
    refs = {wl: run_once(wl, "base", core="io4", **kw) for wl in workloads}
    for core in cores:
        for cfg in configs:
            speedups, energies = [], []
            for wl in workloads:
                rec = run_once(wl, cfg, core=core, **kw)
                ref = refs[wl]
                if rec.cycles and ref.cycles:
                    speedups.append(ref.cycles / rec.cycles)
                if rec.energy.total and ref.energy.total:
                    energies.append(rec.energy.total / ref.energy.total)
            points.append(Fig19Point(
                core=core, config=cfg,
                speedup=geomean(speedups), energy=geomean(energies),
            ))
    return points
