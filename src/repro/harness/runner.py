"""Experiment runner: one (workload, system) simulation -> RunRecord.

Runs are memoized in-process (the per-figure experiments share many
points — e.g. Figure 13's SF-OOO8 runs are Figure 14's input), so a
benchmark session never simulates the same point twice.  On top of the
memo sits an optional on-disk :class:`~repro.harness.cache.RunCache`
(enabled by the ``REPRO_CACHE_DIR`` environment variable or
:func:`configure_disk_cache`), so repeated sessions never re-simulate
either.  Both layers key on the *complete* run parameters — including
``seed``: two runs of the same point with different seeds are distinct
entries (this was historically a bug: the memo key omitted the seed
and silently returned the first seed's record).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.harness.cache import ENV_CACHE_DIR, RunCache
from repro.obs.telemetry import ENV_TELEMETRY
from repro.noc.message import TRAFFIC_CLASSES
from repro.sim.stats import Stats
from repro.system.chip import Chip, RunResult
from repro.system.configs import make_config
from repro.workloads.base import build_programs


@dataclass
class RunRecord:
    """Everything the experiments extract from one simulation."""

    workload: str
    config: str
    core: str
    cols: int
    rows: int
    scale: int
    link_bits: int
    l3_interleave: Optional[int]
    seed: int
    cycles: int
    stats: Stats
    energy: EnergyBreakdown
    # Deterministic telemetry summary counters (span/sample/event
    # totals) when the run simulated with REPRO_TELEMETRY on; None
    # otherwise. Artifacts themselves go through the telemetry sink.
    telemetry: Optional[Dict[str, float]] = None
    # Telemetry pillars the point itself requests (comma list, e.g.
    # "attribution"); a run parameter — and so a cache key — because
    # pillar hooks serialize deliveries that fastpath would fuse.
    obs: Optional[str] = None

    @property
    def key(self) -> Tuple:
        return run_key(
            self.workload, self.config, self.core, self.cols, self.rows,
            self.scale, self.link_bits, self.l3_interleave, self.seed,
            self.obs,
        )

    @property
    def params(self) -> Dict[str, Any]:
        """The complete run parameters (the disk-cache key)."""
        return {
            "workload": self.workload, "config": self.config,
            "core": self.core, "cols": self.cols, "rows": self.rows,
            "scale": self.scale, "link_bits": self.link_bits,
            "l3_interleave": self.l3_interleave, "seed": self.seed,
            "obs": self.obs,
        }

    @property
    def flit_hops(self) -> float:
        return sum(
            self.stats.get(f"noc.flit_hops.{k}") for k in TRAFFIC_CLASSES
        )

    def traffic_breakdown(self) -> Dict[str, float]:
        return {
            k: self.stats.get(f"noc.flit_hops.{k}") for k in TRAFFIC_CLASSES
        }

    def noc_utilization(self) -> float:
        from repro.noc.topology import Mesh

        if self.cycles <= 0:
            return 0.0
        links = Mesh(self.cols, self.rows).num_links
        return self.flit_hops / (links * self.cycles)

    def l2_hit_rate(self) -> float:
        accesses = self.stats["l2.hits"] + self.stats["l2.misses"]
        return self.stats["l2.hits"] / accesses if accesses else 0.0

    def l3_hit_rate(self) -> float:
        accesses = self.stats["l3.hits"] + self.stats["l3.misses"]
        return self.stats["l3.hits"] / accesses if accesses else 0.0

    # Serialization: plain-JSON round-trip for the disk cache and for
    # shipping records across multiprocessing workers.
    def to_dict(self) -> Dict[str, Any]:
        out = dict(self.params)
        out["cycles"] = self.cycles
        out["stats"] = self.stats.to_dict()
        out["energy"] = self.energy.to_dict()
        if self.telemetry is not None:
            out["telemetry"] = dict(self.telemetry)
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunRecord":
        return cls(
            workload=payload["workload"],
            config=payload["config"],
            core=payload["core"],
            cols=payload["cols"],
            rows=payload["rows"],
            scale=payload["scale"],
            link_bits=payload["link_bits"],
            l3_interleave=payload["l3_interleave"],
            seed=payload.get("seed", 0),
            cycles=payload["cycles"],
            stats=Stats.from_dict(payload["stats"]),
            energy=EnergyBreakdown.from_dict(payload["energy"]),
            telemetry=payload.get("telemetry"),
            obs=payload.get("obs"),
        )


def run_key(
    workload: str, config: str, core: str, cols: int, rows: int,
    scale: int, link_bits: int, l3_interleave: Optional[int],
    seed: int = 0, obs: Optional[str] = None,
) -> Tuple:
    """The complete memo key of one experiment point.  ``seed`` is
    part of the key: different seeds are different runs."""
    return (workload, config, core, cols, rows, scale, link_bits,
            l3_interleave, seed, obs)


def run_params(
    workload: str,
    config: str,
    core: str = "ooo8",
    cols: int = 4,
    rows: int = 4,
    scale: int = 16,
    link_bits: int = 256,
    l3_interleave: Optional[int] = None,
    seed: int = 0,
    obs: Optional[str] = None,
) -> Dict[str, Any]:
    """Normalize one point's kwargs into the complete parameter dict
    (defaults applied) shared by the memo, disk cache and fan-out."""
    return {
        "workload": workload, "config": config, "core": core,
        "cols": cols, "rows": rows, "scale": scale,
        "link_bits": link_bits, "l3_interleave": l3_interleave,
        "seed": seed, "obs": obs,
    }


def params_key(params: Dict[str, Any]) -> Tuple:
    return run_key(**params)


_MEMO: Dict[Tuple, RunRecord] = {}


@dataclass
class RunCounters:
    """How this process satisfied its run_once calls (surfaced by the
    CLI's per-figure cache line)."""

    memo_hits: int = 0
    disk_hits: int = 0
    simulated: int = 0

    def reset(self) -> None:
        self.memo_hits = self.disk_hits = self.simulated = 0


COUNTERS = RunCounters()

# Disk cache: explicit configuration beats the environment; by default
# the cache is enabled iff REPRO_CACHE_DIR is set (the CLI always
# configures one explicitly).
_DISK_CONFIGURED = False
_DISK: Optional[RunCache] = None
_DISK_ENV_DIR: Optional[str] = None


def configure_disk_cache(path: Optional[str]) -> Optional[RunCache]:
    """Point the runner at an on-disk cache (``None`` disables it)."""
    global _DISK_CONFIGURED, _DISK
    _DISK_CONFIGURED = True
    _DISK = RunCache(path) if path else None
    return _DISK


def reset_disk_cache() -> None:
    """Forget any explicit configuration; revert to env-driven."""
    global _DISK_CONFIGURED, _DISK, _DISK_ENV_DIR
    _DISK_CONFIGURED = False
    _DISK = None
    _DISK_ENV_DIR = None


def disk_cache() -> Optional[RunCache]:
    """The active disk cache, if any (env-driven unless configured)."""
    global _DISK, _DISK_ENV_DIR
    if _DISK_CONFIGURED:
        return _DISK
    env = os.environ.get(ENV_CACHE_DIR)
    if not env:
        return None
    if _DISK is None or _DISK_ENV_DIR != env:
        _DISK_ENV_DIR = env
        _DISK = RunCache(env)
    return _DISK


def clear_cache() -> None:
    """Drop the in-process memo (the disk cache is untouched)."""
    _MEMO.clear()
    COUNTERS.reset()


# Telemetry sink: when the CLI enables telemetry pillars it installs a
# sink here (same explicit-beats-env pattern as the disk cache); the
# runner hands it each fresh simulation's telemetry for aggregation.
# Without a sink, REPRO_TELEMETRY_DIR (if set) gets per-point files.
_OBS_SINK = None


def configure_telemetry(sink) -> None:
    """Install a :class:`repro.obs.export.TelemetrySink` (or None)."""
    global _OBS_SINK
    _OBS_SINK = sink


def reset_telemetry() -> None:
    global _OBS_SINK
    _OBS_SINK = None


def _export_telemetry(chip: Chip, params: Dict[str, Any]) -> Optional[Dict]:
    """Collect a finished chip's telemetry into the sink (or the
    env-dir fallback); returns the deterministic summary counters."""
    tel = getattr(chip.sim, "telemetry", None)
    if tel is None:
        return None
    if _OBS_SINK is not None:
        _OBS_SINK.collect(tel, params)
    else:
        from repro.obs.export import export_point_artifacts, point_slug
        from repro.obs.telemetry import ENV_TELEMETRY_DIR

        out_dir = os.environ.get(ENV_TELEMETRY_DIR)
        if out_dir:
            export_point_artifacts(tel, out_dir, point_slug(params))
    return tel.summary()


def simulate(params: Dict[str, Any]) -> RunRecord:
    """Run one point, bypassing every cache layer."""
    system = make_config(
        params["config"], core=params["core"], cols=params["cols"],
        rows=params["rows"], scale=params["scale"],
        link_bits=params["link_bits"],
        l3_interleave=params["l3_interleave"],
    )
    obs = params.get("obs")
    if obs and not os.environ.get(ENV_TELEMETRY, "").strip():
        # Point-requested pillars: telemetry attaches inside
        # Simulator.__init__, so the env only needs to cover chip
        # construction. An explicit REPRO_TELEMETRY wins.
        os.environ[ENV_TELEMETRY] = obs
        try:
            chip = Chip(system)
        finally:
            del os.environ[ENV_TELEMETRY]
    else:
        chip = Chip(system)
    programs = build_programs(
        params["workload"], chip.num_cores, scale=params["scale"],
        seed=params["seed"],
    )
    result: RunResult = chip.run(programs)
    energy = EnergyModel().evaluate(result.stats, result.cycles, system)
    telemetry = _export_telemetry(chip, params)
    return RunRecord(
        cycles=result.cycles, stats=result.stats, energy=energy,
        telemetry=telemetry, **params,
    )


def run_once(
    workload: str,
    config: str,
    core: str = "ooo8",
    cols: int = 4,
    rows: int = 4,
    scale: int = 16,
    link_bits: int = 256,
    l3_interleave: Optional[int] = None,
    seed: int = 0,
    obs: Optional[str] = None,
    use_cache: bool = True,
) -> RunRecord:
    """Simulate one experiment point (memo + optional disk cache)."""
    params = run_params(
        workload, config, core=core, cols=cols, rows=rows, scale=scale,
        link_bits=link_bits, l3_interleave=l3_interleave, seed=seed,
        obs=obs,
    )
    key = params_key(params)
    disk = disk_cache() if use_cache else None
    if use_cache:
        if key in _MEMO:
            COUNTERS.memo_hits += 1
            return _MEMO[key]
        if disk is not None:
            record = disk.get(params)
            if record is not None:
                COUNTERS.disk_hits += 1
                _MEMO[key] = record
                return record
    record = simulate(params)
    COUNTERS.simulated += 1
    if use_cache:
        _MEMO[key] = record
        if disk is not None:
            disk.put(params, record)
    return record


def store_record(record: RunRecord, use_cache: bool = True) -> None:
    """Install an externally computed record (e.g. from a worker
    process) into the memo and disk cache."""
    if not use_cache:
        return
    _MEMO[record.key] = record
    disk = disk_cache()
    if disk is not None:
        disk.put(record.params, record)


def memo_lookup(key: Tuple) -> Optional[RunRecord]:
    return _MEMO.get(key)
