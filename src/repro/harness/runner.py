"""Experiment runner: one (workload, system) simulation -> RunRecord.

Runs are memoized in-process (the per-figure experiments share many
points — e.g. Figure 13's SF-OOO8 runs are Figure 14's input), so a
benchmark session never simulates the same point twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.sim.stats import Stats
from repro.system.chip import Chip, RunResult
from repro.system.configs import make_config
from repro.workloads.base import build_programs


@dataclass
class RunRecord:
    """Everything the experiments extract from one simulation."""

    workload: str
    config: str
    core: str
    cols: int
    rows: int
    scale: int
    link_bits: int
    l3_interleave: Optional[int]
    cycles: int
    stats: Stats
    energy: EnergyBreakdown

    @property
    def key(self) -> Tuple:
        return run_key(
            self.workload, self.config, self.core, self.cols, self.rows,
            self.scale, self.link_bits, self.l3_interleave,
        )

    @property
    def flit_hops(self) -> float:
        return sum(
            self.stats.get(f"noc.flit_hops.{k}") for k in ("ctrl", "data", "stream")
        )

    def traffic_breakdown(self) -> Dict[str, float]:
        return {
            k: self.stats.get(f"noc.flit_hops.{k}")
            for k in ("ctrl", "data", "stream")
        }

    def noc_utilization(self) -> float:
        from repro.noc.topology import Mesh

        if self.cycles <= 0:
            return 0.0
        links = Mesh(self.cols, self.rows).num_links
        return self.flit_hops / (links * self.cycles)

    def l2_hit_rate(self) -> float:
        accesses = self.stats["l2.hits"] + self.stats["l2.misses"]
        return self.stats["l2.hits"] / accesses if accesses else 0.0

    def l3_hit_rate(self) -> float:
        accesses = self.stats["l3.hits"] + self.stats["l3.misses"]
        return self.stats["l3.hits"] / accesses if accesses else 0.0


def run_key(
    workload: str, config: str, core: str, cols: int, rows: int,
    scale: int, link_bits: int, l3_interleave: Optional[int],
) -> Tuple:
    return (workload, config, core, cols, rows, scale, link_bits, l3_interleave)


_MEMO: Dict[Tuple, RunRecord] = {}


def clear_cache() -> None:
    _MEMO.clear()


def run_once(
    workload: str,
    config: str,
    core: str = "ooo8",
    cols: int = 4,
    rows: int = 4,
    scale: int = 16,
    link_bits: int = 256,
    l3_interleave: Optional[int] = None,
    seed: int = 0,
    use_cache: bool = True,
) -> RunRecord:
    """Simulate one experiment point (memoized)."""
    key = run_key(workload, config, core, cols, rows, scale, link_bits,
                  l3_interleave)
    if use_cache and key in _MEMO:
        return _MEMO[key]
    params = make_config(
        config, core=core, cols=cols, rows=rows, scale=scale,
        link_bits=link_bits, l3_interleave=l3_interleave,
    )
    chip = Chip(params)
    programs = build_programs(workload, chip.num_cores, scale=scale, seed=seed)
    result: RunResult = chip.run(programs)
    energy = EnergyModel().evaluate(result.stats, result.cycles, params)
    record = RunRecord(
        workload=workload, config=config, core=core, cols=cols, rows=rows,
        scale=scale, link_bits=link_bits, l3_interleave=l3_interleave,
        cycles=result.cycles, stats=result.stats, energy=energy,
    )
    if use_cache:
        _MEMO[key] = record
    return record
