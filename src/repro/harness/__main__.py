"""CLI: regenerate any of the paper's figures from the command line.

Examples::

    python -m repro.harness fig13
    python -m repro.harness fig15 --core ooo8 --scale 16
    python -m repro.harness fig13 --cols 8 --rows 8 --scale 4   # full-size
    python -m repro.harness all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import experiments, report
from repro.workloads import ALL_WORKLOADS

FIGURES = ("fig2", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness",
        description="Regenerate Stream Floating (HPCA'21) figures",
    )
    parser.add_argument("figure", choices=FIGURES + ("all",))
    parser.add_argument("--cols", type=int, default=4)
    parser.add_argument("--rows", type=int, default=4)
    parser.add_argument("--scale", type=int, default=16,
                        help="capacity/dataset scale divisor (1 = paper size)")
    parser.add_argument("--core", default="ooo8",
                        choices=("io4", "ooo4", "ooo8"))
    parser.add_argument("--workloads", nargs="*", default=None,
                        help=f"subset of {list(ALL_WORKLOADS)}")
    args = parser.parse_args(argv)

    kw = dict(cols=args.cols, rows=args.rows, scale=args.scale)
    wl = tuple(args.workloads) if args.workloads else None
    figures = FIGURES if args.figure == "all" else (args.figure,)
    for fig in figures:
        t0 = time.time()
        print(f"=== {fig} ===")
        if fig == "fig2":
            out = report.render_fig2(experiments.fig2_motivation(
                workloads=wl or ALL_WORKLOADS, core=args.core, **kw))
        elif fig == "fig13":
            out = report.render_fig13(experiments.fig13_speedup(
                workloads=wl or ALL_WORKLOADS, **kw))
        elif fig == "fig14":
            out = report.render_fig14(experiments.fig14_requests(
                workloads=wl or ALL_WORKLOADS, core=args.core, **kw))
        elif fig == "fig15":
            out = report.render_fig15(experiments.fig15_traffic(
                workloads=wl or ALL_WORKLOADS, core=args.core, **kw))
        elif fig == "fig16":
            out = report.render_sweep(
                experiments.fig16_linkwidth(
                    workloads=wl or experiments.SWEEP_WORKLOADS,
                    core=args.core, **kw),
                "Figure 16 (link width, vs bingo@128)",
                report.PAPER_NOTES["fig16"],
            )
        elif fig == "fig17":
            out = report.render_sweep(
                experiments.fig17_interleave(
                    workloads=wl or experiments.SWEEP_WORKLOADS,
                    core=args.core, **kw),
                "Figure 17 (NUCA interleave, vs bingo@64B)",
                report.PAPER_NOTES["fig17"],
            )
        elif fig == "fig18":
            out = report.render_fig18(experiments.fig18_scaling(
                workloads=wl or experiments.SWEEP_WORKLOADS,
                core=args.core, scale=args.scale))
        elif fig == "fig19":
            out = report.render_fig19(experiments.fig19_energy_scatter(
                workloads=wl or ALL_WORKLOADS, **kw))
        print(out)
        print(f"[{fig} done in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
