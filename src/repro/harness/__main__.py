"""CLI: regenerate any of the paper's figures from the command line.

Examples::

    python -m repro.harness fig13
    python -m repro.harness fig15 --core ooo8 --scale 16
    python -m repro.harness fig13 --cols 8 --rows 8 --scale 4   # full-size
    python -m repro.harness fig13 --jobs 4                      # parallel
    python -m repro.harness all --jobs 0                        # all CPUs
    python -m repro.harness fig13 --no-cache                    # force re-sim

Independent simulation points fan out over ``--jobs`` worker
processes (default: the ``REPRO_JOBS`` environment variable, else
serial), and results persist in a content-addressed disk cache under
``--cache-dir`` (default: ``REPRO_CACHE_DIR``, else
``~/.cache/repro-stream-floating``) — a rerun of the same figure
performs zero new simulations.  Per-point progress and the cache
hit/miss summary go to stderr; report text goes to stdout, and is
byte-identical whatever ``--jobs`` is.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.harness import experiments, parallel, report
from repro.harness.cache import default_cache_dir
from repro.harness.runner import (
    COUNTERS,
    configure_disk_cache,
    configure_telemetry,
    reset_disk_cache,
    reset_telemetry,
)
from repro.workloads import ALL_WORKLOADS

FIGURES = ("fig2", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness",
        description="Regenerate Stream Floating (HPCA'21) figures",
    )
    parser.add_argument("figure", choices=FIGURES + ("all",))
    parser.add_argument("--cols", type=int, default=4)
    parser.add_argument("--rows", type=int, default=4)
    parser.add_argument("--scale", type=int, default=16,
                        help="capacity/dataset scale divisor (1 = paper size)")
    parser.add_argument("--core", default="ooo8",
                        choices=("io4", "ooo4", "ooo8"))
    parser.add_argument("--workloads", nargs="*", default=None,
                        help=f"subset of {list(ALL_WORKLOADS)}")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload generation seed (part of the cache key)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel simulation workers (0 = one per CPU; "
                             "default: $REPRO_JOBS, else serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent run-cache directory (default: "
                             "$REPRO_CACHE_DIR, else "
                             "~/.cache/repro-stream-floating)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk run cache")
    parser.add_argument("--sanitize", action="store_true",
                        help="enable the runtime invariant sanitizer "
                             "(sets REPRO_SANITIZE=1 for this run and "
                             "its worker processes)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON of "
                             "request/stream lifecycle spans (open in "
                             "Perfetto / chrome://tracing)")
    parser.add_argument("--interval-stats", type=int, metavar="N",
                        default=None,
                        help="sample Stats deltas every N cycles "
                             "(IPC, NoC util, L3 MPKI, streams alive)")
    parser.add_argument("--interval-out", metavar="PATH", default=None,
                        help="interval time-series output (default "
                             "intervals.jsonl; .csv extension switches "
                             "to CSV)")
    parser.add_argument("--profile", action="store_true",
                        help="profile the event kernel (host time per "
                             "callback) and report the top hot paths")
    parser.add_argument("--profile-out", metavar="PATH", default=None,
                        help="kernel profile JSON output "
                             "(default profile.json)")
    parser.add_argument("--provenance-out", metavar="PATH", default=None,
                        help="decision provenance ledger output "
                             "(queryable JSONL: every float/sink/"
                             "migrate/confluence verdict with its "
                             "input snapshot)")
    args = parser.parse_args(argv)

    configure_disk_cache(
        None if args.no_cache else (args.cache_dir or default_cache_dir())
    )
    parallel.set_progress(lambda line: print(line, file=sys.stderr))
    from repro.obs.telemetry import ENV_INTERVAL, ENV_TELEMETRY
    from repro.sim.sanitizer import ENV_SANITIZE
    prev_sanitize = os.environ.get(ENV_SANITIZE)
    if args.sanitize:
        os.environ[ENV_SANITIZE] = "1"
    pillars = []
    if args.trace_out:
        pillars.append("spans")
    if args.interval_stats:
        pillars.append("interval")
    if args.profile:
        pillars.append("profile")
    if args.provenance_out:
        pillars.append("provenance")
    prev_telemetry = os.environ.get(ENV_TELEMETRY)
    prev_interval = os.environ.get(ENV_INTERVAL)
    prev_tel_dir = None
    worker_dir = None
    sink = None
    if pillars:
        import tempfile

        from repro.obs.export import TelemetrySink
        from repro.obs.telemetry import ENV_TELEMETRY_DIR

        os.environ[ENV_TELEMETRY] = ",".join(pillars)
        if args.interval_stats:
            os.environ[ENV_INTERVAL] = str(args.interval_stats)
        # Parent-process simulations feed the in-process sink; fan-out
        # workers (which reset the sink on start) export per-point
        # artifacts into a scratch dir the sink merges afterwards —
        # so --jobs N and telemetry compose.
        prev_tel_dir = os.environ.get(ENV_TELEMETRY_DIR)
        worker_dir = tempfile.mkdtemp(prefix="repro-telemetry-")
        os.environ[ENV_TELEMETRY_DIR] = worker_dir
        sink = TelemetrySink(
            trace_out=args.trace_out,
            interval_out=args.interval_out or (
                "intervals.jsonl" if args.interval_stats else None),
            profile_out=args.profile_out or (
                "profile.json" if args.profile else None),
            provenance_out=args.provenance_out,
        )
        configure_telemetry(sink)
    try:
        rc = _run(args)
        if sink is not None:
            ingested = sink.ingest_dir(worker_dir)
            if ingested:
                print(f"[telemetry] merged {ingested} worker point(s)",
                      file=sys.stderr)
            if sink.points == 0 and ingested == 0:
                print("[telemetry] no points simulated (all cache "
                      "hits?) — artifacts will be empty; rerun with "
                      "--no-cache to regenerate", file=sys.stderr)
            for path in sink.write():
                print(f"[telemetry] wrote {path}", file=sys.stderr)
            if args.profile and (sink.points or ingested):
                print(sink.profile_report(), file=sys.stderr)
        return rc
    finally:
        # main() is also called in-process by tests: restore the
        # module-global cache/progress configuration on the way out.
        if args.sanitize:
            if prev_sanitize is None:
                os.environ.pop(ENV_SANITIZE, None)
            else:
                os.environ[ENV_SANITIZE] = prev_sanitize
        if pillars:
            from repro.obs.telemetry import ENV_TELEMETRY_DIR

            if prev_telemetry is None:
                os.environ.pop(ENV_TELEMETRY, None)
            else:
                os.environ[ENV_TELEMETRY] = prev_telemetry
            if prev_interval is None:
                os.environ.pop(ENV_INTERVAL, None)
            else:
                os.environ[ENV_INTERVAL] = prev_interval
            if prev_tel_dir is None:
                os.environ.pop(ENV_TELEMETRY_DIR, None)
            else:
                os.environ[ENV_TELEMETRY_DIR] = prev_tel_dir
            if worker_dir is not None:
                import shutil

                shutil.rmtree(worker_dir, ignore_errors=True)
        parallel.set_progress(None)
        reset_telemetry()
        reset_disk_cache()


def _run(args) -> int:
    kw = dict(cols=args.cols, rows=args.rows, scale=args.scale,
              seed=args.seed, jobs=args.jobs)
    wl = tuple(args.workloads) if args.workloads else None
    figures = FIGURES if args.figure == "all" else (args.figure,)
    for fig in figures:
        t0 = time.time()
        c0 = (COUNTERS.memo_hits, COUNTERS.disk_hits, COUNTERS.simulated)
        print(f"=== {fig} ===")
        if fig == "fig2":
            out = report.render_fig2(experiments.fig2_motivation(
                workloads=wl or ALL_WORKLOADS, core=args.core, **kw))
        elif fig == "fig13":
            out = report.render_fig13(experiments.fig13_speedup(
                workloads=wl or ALL_WORKLOADS, **kw))
        elif fig == "fig14":
            out = report.render_fig14(experiments.fig14_requests(
                workloads=wl or ALL_WORKLOADS, core=args.core, **kw))
        elif fig == "fig15":
            out = report.render_fig15(experiments.fig15_traffic(
                workloads=wl or ALL_WORKLOADS, core=args.core, **kw))
        elif fig == "fig16":
            out = report.render_sweep(
                experiments.fig16_linkwidth(
                    workloads=wl or experiments.SWEEP_WORKLOADS,
                    core=args.core, **kw),
                "Figure 16 (link width, vs bingo@128)",
                report.PAPER_NOTES["fig16"],
            )
        elif fig == "fig17":
            out = report.render_sweep(
                experiments.fig17_interleave(
                    workloads=wl or experiments.SWEEP_WORKLOADS,
                    core=args.core, **kw),
                "Figure 17 (NUCA interleave, vs bingo@64B)",
                report.PAPER_NOTES["fig17"],
            )
        elif fig == "fig18":
            out = report.render_fig18(experiments.fig18_scaling(
                workloads=wl or experiments.SWEEP_WORKLOADS,
                core=args.core, scale=args.scale, seed=args.seed,
                jobs=args.jobs))
        elif fig == "fig19":
            out = report.render_fig19(experiments.fig19_energy_scatter(
                workloads=wl or ALL_WORKLOADS, **kw))
        print(out)
        memo, disk, sim = (
            COUNTERS.memo_hits - c0[0],
            COUNTERS.disk_hits - c0[1],
            COUNTERS.simulated - c0[2],
        )
        print(
            f"[{fig} done in {time.time() - t0:.1f}s; cache: "
            f"{memo} memo hits, {disk} disk hits, {sim} simulated]\n",
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
