"""Parallel fan-out of independent experiment points.

Every figure is assembled from dozens of independent ``(workload,
config, core, geometry, seed)`` simulation points — an embarrassingly
parallel task graph.  :func:`run_points` takes the enumerated points,
satisfies what it can from the in-process memo and the on-disk
:class:`~repro.harness.cache.RunCache`, and fans the remaining misses
out over a ``multiprocessing`` pool.  Workers ship their results back
as plain dicts (:meth:`RunRecord.to_dict` round-trips exactly), and
the parent installs them into both cache layers — so a parallel run
leaves the process in *exactly* the state a serial run would, and the
figure-assembly code downstream (pure memo hits) produces
byte-identical reports regardless of ``--jobs``.

The worker count resolves, in order: the explicit ``jobs`` argument,
the ``REPRO_JOBS`` environment variable, then 1 (serial).  ``jobs=0``
means "one worker per CPU".
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.harness import runner
from repro.harness.runner import RunRecord, params_key, run_params

ENV_JOBS = "REPRO_JOBS"

# Per-point progress sink (the CLI points this at stderr); ``None``
# keeps the library silent.
_progress: Optional[Callable[[str], None]] = None


def set_progress(sink: Optional[Callable[[str], None]]) -> None:
    global _progress
    _progress = sink


def _emit(line: str) -> None:
    if _progress is not None:
        _progress(line)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit argument > ``REPRO_JOBS`` env > serial."""
    if jobs is None:
        env = os.environ.get(ENV_JOBS, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _point_label(params: Dict[str, Any]) -> str:
    label = (
        f"{params['workload']}/{params['config']}/{params['core']}"
        f" {params['cols']}x{params['rows']}/s{params['scale']}"
    )
    if params["link_bits"] != 256:
        label += f" link={params['link_bits']}"
    if params["l3_interleave"] is not None:
        label += f" ilv={params['l3_interleave']}"
    if params["seed"]:
        label += f" seed={params['seed']}"
    if params.get("obs"):
        label += f" obs={params['obs']}"
    return label


def _worker(item: Tuple[int, Dict[str, Any]]) -> Tuple[int, Dict[str, Any], float]:
    """Pool worker: simulate one point, return its serialized record.

    Workers bypass the caches (the parent already established these
    points are misses, and centralizing stores in the parent keeps
    the disk writes single-writer per invocation).
    """
    index, params = item
    t0 = time.time()
    record = runner.simulate(params)
    return index, record.to_dict(), time.time() - t0


def run_points(
    points: Iterable[Dict[str, Any]],
    jobs: Optional[int] = None,
    use_cache: bool = True,
) -> Dict[Tuple, RunRecord]:
    """Materialize every point, in parallel where possible.

    ``points`` are kwarg-dicts accepted by
    :func:`~repro.harness.runner.run_once` (partial dicts are fine —
    defaults are applied).  Returns ``{run_key: RunRecord}`` and, as a
    deliberate side effect, leaves every record in the runner's memo
    (and disk cache when enabled), so subsequent ``run_once`` calls
    are hits.
    """
    jobs = resolve_jobs(jobs)

    # Normalize and dedupe while preserving order (figures enumerate
    # overlapping point sets — e.g. every config shares its Base).
    ordered: List[Tuple[Tuple, Dict[str, Any]]] = []
    seen = set()
    for point in points:
        params = run_params(**point)
        key = params_key(params)
        if key not in seen:
            seen.add(key)
            ordered.append((key, params))

    results: Dict[Tuple, RunRecord] = {}
    pending: List[Tuple[Tuple, Dict[str, Any]]] = []
    memo_hits = disk_hits = 0
    disk = runner.disk_cache() if use_cache else None
    for key, params in ordered:
        record = runner.memo_lookup(key) if use_cache else None
        if record is not None:
            runner.COUNTERS.memo_hits += 1
            memo_hits += 1
            results[key] = record
            _emit(f"[memo] {_point_label(params)}")
            continue
        if disk is not None:
            record = disk.get(params)
            if record is not None:
                runner.COUNTERS.disk_hits += 1
                disk_hits += 1
                runner.store_record(record)
                results[key] = record
                _emit(f"[disk] {_point_label(params)}")
                continue
        pending.append((key, params))

    t0 = time.time()
    if pending and (jobs <= 1 or len(pending) == 1):
        for key, params in pending:
            t1 = time.time()
            record = runner.run_once(**params, use_cache=use_cache)
            results[key] = record
            _emit(f"[sim ] {_point_label(params)} {time.time() - t1:.1f}s")
    elif pending:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        items = [(i, params) for i, (_, params) in enumerate(pending)]
        # Workers must not inherit the parent's in-process telemetry
        # sink (fork copies module globals): resetting it makes each
        # worker fall back to the REPRO_TELEMETRY_DIR per-point
        # artifact export, which the parent sink merges afterwards.
        with ctx.Pool(min(jobs, len(pending)),
                      initializer=runner.reset_telemetry) as pool:
            for index, payload, elapsed in pool.imap_unordered(
                _worker, items, chunksize=1
            ):
                key, params = pending[index]
                record = RunRecord.from_dict(payload)
                runner.COUNTERS.simulated += 1
                runner.store_record(record, use_cache=use_cache)
                results[key] = record
                _emit(f"[sim ] {_point_label(params)} {elapsed:.1f}s")

    if ordered:
        _emit(
            f"[cache] {len(ordered)} points: {memo_hits} memo hits, "
            f"{disk_hits} disk hits, {len(pending)} simulated "
            f"({time.time() - t0:.1f}s)"
        )
    return results
