"""Content-addressed on-disk cache of simulation results.

Every experiment point is a pure function of its *complete* run
parameters (workload, config, core, geometry, link width, interleave,
**seed**) plus the simulator code itself.  :class:`RunCache` stores one
JSON file per point, keyed by a SHA-256 over the canonicalized
parameters, a schema version and a fingerprint of the ``repro``
package sources — so editing the simulator (or bumping the schema)
invalidates every stale entry automatically, while re-running the same
experiment in a later session costs a file read instead of a
simulation.

Robustness rules:

* corrupt, truncated or hand-edited cache files are treated as misses,
  never as fatal errors;
* entries written by a different code fingerprint or schema are stale
  and ignored;
* writes are atomic (temp file + ``os.replace``), so concurrent
  processes — e.g. a ``--jobs N`` pool or two CLI invocations — can
  share one cache directory safely.

The cache directory defaults to ``~/.cache/repro-stream-floating`` and
is overridden by the ``REPRO_CACHE_DIR`` environment variable or the
CLI's ``--cache-dir``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

CACHE_SCHEMA = 1

ENV_CACHE_DIR = "REPRO_CACHE_DIR"

_fingerprint: Optional[str] = None


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else an XDG-style per-user directory."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache")
    return os.path.join(xdg, "repro-stream-floating")


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (computed once per
    process).  Any change to the simulator invalidates the cache."""
    global _fingerprint
    if _fingerprint is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _fingerprint = digest.hexdigest()
    return _fingerprint


def params_digest(params: Dict[str, Any], fingerprint: str) -> str:
    """Content address of one experiment point."""
    payload = json.dumps(
        {"schema": CACHE_SCHEMA, "fingerprint": fingerprint, "params": params},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheCounters:
    """Hit/miss accounting surfaced in the progress output."""

    hits: int = 0
    misses: int = 0
    stale: int = 0  # schema/fingerprint mismatch (counted in misses too)
    errors: int = 0  # unreadable/corrupt files (counted in misses too)
    stores: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.stale = self.errors = self.stores = 0


class RunCache:
    """A directory of ``<sha256>.json`` run records."""

    def __init__(self, root: str, fingerprint: Optional[str] = None) -> None:
        self.root = root
        self.fingerprint = fingerprint or code_fingerprint()
        self.counters = CacheCounters()

    def path_for(self, params: Dict[str, Any]) -> str:
        return os.path.join(
            self.root, params_digest(params, self.fingerprint) + ".json"
        )

    def get(self, params: Dict[str, Any]):
        """The cached :class:`~repro.harness.runner.RunRecord` for
        ``params``, or ``None`` on any kind of miss."""
        from repro.harness.runner import RunRecord

        path = self.path_for(params)
        try:
            with open(path, "r") as fh:
                payload = json.load(fh)
            if (
                payload.get("schema") != CACHE_SCHEMA
                or payload.get("fingerprint") != self.fingerprint
            ):
                self.counters.stale += 1
                self.counters.misses += 1
                return None
            record = RunRecord.from_dict(payload["record"])
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt or truncated entries are misses, never fatal.
            self.counters.errors += 1
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return record

    def put(self, params: Dict[str, Any], record) -> None:
        """Atomically persist ``record`` under ``params``' digest.
        Failures (read-only dir, disk full) are swallowed: the cache
        is an accelerator, not a correctness dependency."""
        path = self.path_for(params)
        payload = {
            "schema": CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "params": params,
            "record": record.to_dict(),
        }
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return
        self.counters.stores += 1

    def __len__(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.root)
                if name.endswith(".json") and not name.startswith(".")
            )
        except OSError:
            return 0
