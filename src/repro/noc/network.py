"""Network model: wormhole-routed mesh with per-link occupancy.

Latency model per packet (head flit):

- per hop: ``router_stages + 1`` cycles (5-stage router + 1-cycle
  link, Table III), plus queueing when the next link is still busy
  with earlier packets;
- serialization: the tail flit arrives ``flits`` cycles after the
  head, and each link on the route stays reserved for ``flits``
  cycles (wormhole approximation).

Each unidirectional link keeps a ``busy_until`` reservation, which is
what creates congestion at high utilization — central to Figures 15/16
(traffic and link-width sensitivity).

Multicast (stream confluence) forks the X-Y tree: every *unique* link
in the destination set's routes is traversed once, so merged streams
genuinely save flit-hops on their shared prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.noc.message import TRAFFIC_CLASSES, Packet
from repro.noc.topology import Link, Mesh
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats

Handler = Callable[[Packet], None]


@dataclass
class DeliveryInfo:
    """Returned by :meth:`Network.send` for the caller's accounting."""

    flits: int
    hops: int
    flit_hops: int


class Network:
    """The chip's interconnect. All tiles share one instance."""

    LOCAL_LATENCY = 1  # core-to-colocated-bank hop through the local router

    def __init__(
        self,
        sim: Simulator,
        mesh: Mesh,
        stats: Stats,
        link_bits: int = 256,
        router_stages: int = 5,
    ) -> None:
        self.sim = sim
        self.mesh = mesh
        self.stats = stats
        self.link_bits = link_bits
        self.hop_latency = router_stages + 1
        self._busy_until: Dict[Link, int] = {}
        self._handlers: Dict[Tuple[int, str], Handler] = {}
        # Hot-path caches: X-Y routes are static per (src, dst) pair,
        # and the dotted stat names are static per traffic class.
        self._route_cache: Dict[Tuple[int, int], List[Link]] = {}
        self._stat_keys: Dict[str, Tuple[str, str, str]] = {}
        # Deliveries arriving at the same cycle share one kernel event:
        # arrival cycle -> [(handler, packet), ...] in send order. A
        # batch exists for a cycle iff its drain event is scheduled.
        self._arrivals: Dict[int, List[Tuple[Handler, Packet]]] = {}
        # The network is built before every endpoint, so registering
        # here lets the sanitizer wrap all handlers as they attach.
        san = getattr(sim, "sanitizer", None)
        if san is not None:
            san.watch_network(self)
        tel = getattr(sim, "telemetry", None)
        if tel is not None:
            tel.watch_network(self)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register(self, tile: int, port: str, handler: Handler) -> None:
        """Attach ``handler`` for packets addressed to (tile, port)."""
        key = (tile, port)
        if key in self._handlers:
            raise ValueError(f"handler already registered for {key}")
        self._handlers[key] = handler

    # ------------------------------------------------------------------
    # unicast
    # ------------------------------------------------------------------
    def send(self, packet: Packet, extra_delay: int = 0) -> DeliveryInfo:
        """Inject ``packet`` now (+``extra_delay``); returns accounting
        info immediately while delivery is scheduled asynchronously."""
        flits = packet.flits(self.link_bits)
        key = (packet.src, packet.dst)
        route = self._route_cache.get(key)
        if route is None:
            route = self._route_cache[key] = self.mesh.route(*key)
        arrival = self._traverse(
            route, self.sim.now + extra_delay, flits, local_key=packet.dst,
        )
        self._record(packet.kind, flits, len(route))
        self._deliver_at(arrival, packet)
        return DeliveryInfo(
            flits=flits, hops=len(route), flit_hops=flits * len(route)
        )

    def _traverse(
        self, route: List[Link], inject_time: int, flits: int,
        local_key: Optional[int] = None,
    ) -> int:
        """Walk the head flit down ``route`` with link contention;
        returns the tail-flit arrival time at the destination.

        Same-tile deliveries serialize on a per-tile pseudo-link so
        delivery order matches send order there too — the protocol
        relies on per-route FIFO ordering (a Data grant must never be
        overtaken by a later forward from the same bank).
        """
        head = inject_time
        busy = self._busy_until
        hop = self.hop_latency
        for link in route:
            depart = busy.get(link, 0)
            if depart < head:
                depart = head
            busy[link] = depart + flits
            head = depart + hop
        if not route and local_key is not None:
            link = (local_key, local_key)
            depart = busy.get(link, 0)
            if depart < head:
                depart = head
            busy[link] = depart + flits
            head = depart + self.LOCAL_LATENCY
        return head + flits - 1

    def _deliver_at(self, when: int, packet: Packet) -> None:
        handler = self._handlers.get((packet.dst, packet.dst_port))
        if handler is None:
            raise KeyError(
                f"no handler at tile {packet.dst} port {packet.dst_port!r}"
            )
        now = self.sim.now
        if when < now:
            when = now
        batch = self._arrivals.get(when)
        if batch is None:
            self._arrivals[when] = [(handler, packet)]
            self.sim.schedule_at(when, self._drain_cycle, when)
        else:
            batch.append((handler, packet))

    def _drain_cycle(self, when: int) -> None:
        """Run every delivery that arrives at cycle ``when``.

        Handlers fire in send order (the batch is append-ordered), so
        per-route FIFO delivery is unchanged; batching only merges the
        kernel dispatches. Handlers that send again either hit a later
        cycle or (same-cycle degenerate) re-arm a fresh batch, because
        this cycle's batch is detached before any handler runs. Each
        delivery is still one logical event for ``events_executed``.
        """
        batch = self._arrivals.pop(when)
        self.sim.count_inlined_events(len(batch) - 1)
        for handler, packet in batch:
            handler(packet)

    # ------------------------------------------------------------------
    # multicast
    # ------------------------------------------------------------------
    def multicast(
        self,
        src: int,
        dsts: Iterable[int],
        kind: str,
        payload_bits: int,
        dst_port: str,
        body=None,
    ) -> DeliveryInfo:
        """Send one logical packet to several tiles along a shared
        X-Y tree. Each unique tree link carries the flits once."""
        dsts = list(dict.fromkeys(dsts))
        if not dsts:
            raise ValueError("multicast needs at least one destination")
        template = Packet(
            src=src, dst=dsts[0], kind=kind,
            payload_bits=payload_bits, dst_port=dst_port, body=body,
        )
        flits = template.flits(self.link_bits)
        routes = self.mesh.multicast_tree(src, dsts)
        tree_links = Mesh.unique_links(routes)
        # Reserve each tree link once; per-destination arrival follows
        # its own route's (already reserved) links.
        depart_at: Dict[Link, int] = {}
        # Reserve in BFS-ish order: routes share prefixes, so walk each
        # route and reserve links not yet reserved by this multicast.
        for dst in dsts:
            head = self.sim.now
            for link in routes[dst]:
                if link not in depart_at:
                    depart = max(head, self._busy_until.get(link, 0))
                    self._busy_until[link] = depart + flits
                    depart_at[link] = depart
                head = depart_at[link] + self.hop_latency
        total_hops = 0
        for dst in dsts:
            route = routes[dst]
            if route:
                arrival = depart_at[route[-1]] + self.hop_latency + flits - 1
            else:
                arrival = self.sim.now + self.LOCAL_LATENCY + flits - 1
            pkt = Packet(
                src=src, dst=dst, kind=kind,
                payload_bits=payload_bits, dst_port=dst_port, body=body,
            )
            self._deliver_at(arrival, pkt)
            total_hops += len(route)
        flit_hops = flits * len(tree_links)
        self._record(kind, flits, len(tree_links))
        self.stats.add("noc.multicast.packets")
        self.stats.add("noc.multicast.saved_flit_hops",
                       flits * total_hops - flit_hops)
        return DeliveryInfo(flits=flits, hops=len(tree_links), flit_hops=flit_hops)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _record(self, kind: str, flits: int, hops: int) -> None:
        keys = self._stat_keys.get(kind)
        if keys is None:
            keys = self._stat_keys[kind] = (
                f"noc.packets.{kind}",
                f"noc.flits.{kind}",
                f"noc.flit_hops.{kind}",
            )
        # Direct counter updates: Stats.add is a method call per counter
        # and this runs three times per packet.
        values = self.stats._values
        k = keys[0]
        values[k] = values.get(k, 0) + 1
        k = keys[1]
        values[k] = values.get(k, 0) + flits
        k = keys[2]
        values[k] = values.get(k, 0) + flits * hops

    def utilization(self, cycles: int) -> float:
        """Average link utilization: flit-hops / (links x cycles)."""
        if cycles <= 0:
            return 0.0
        flit_hops = sum(
            self.stats.get(f"noc.flit_hops.{kind}") for kind in TRAFFIC_CLASSES
        )
        return flit_hops / (self.mesh.num_links * cycles)
