"""Network model: wormhole-routed mesh with per-link occupancy.

Latency model per packet (head flit):

- per hop: ``router_stages + 1`` cycles (5-stage router + 1-cycle
  link, Table III), plus queueing when the next link is still busy
  with earlier packets;
- serialization: the tail flit arrives ``flits`` cycles after the
  head, and each link on the route stays reserved for ``flits``
  cycles (wormhole approximation).

Each unidirectional link keeps a ``busy_until`` reservation, which is
what creates congestion at high utilization — central to Figures 15/16
(traffic and link-width sensitivity).

Multicast (stream confluence) forks the X-Y tree: every *unique* link
in the destination set's routes is traversed once, so merged streams
genuinely save flit-hops on their shared prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.noc.message import TRAFFIC_CLASSES, Packet, _packet_ids
from repro.noc.topology import Link, Mesh
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats

Handler = Callable[[Packet], None]


@dataclass
class DeliveryInfo:
    """Returned by :meth:`Network.send` for the caller's accounting."""

    flits: int
    hops: int
    flit_hops: int


class Network:
    """The chip's interconnect. All tiles share one instance."""

    LOCAL_LATENCY = 1  # core-to-colocated-bank hop through the local router

    def __init__(
        self,
        sim: Simulator,
        mesh: Mesh,
        stats: Stats,
        link_bits: int = 256,
        router_stages: int = 5,
    ) -> None:
        self.sim = sim
        self.mesh = mesh
        self.stats = stats
        self.link_bits = link_bits
        self.hop_latency = router_stages + 1
        self._busy_until: Dict[Link, int] = {}
        self._handlers: Dict[Tuple[int, str], Handler] = {}
        # Hot-path caches: X-Y routes are static per (src, dst) pair,
        # flit counts are static per payload size, and the per-class
        # accounting updates interned counter cells (DESIGN.md §12).
        self._route_cache: Dict[Tuple[int, int], List[Link]] = {}
        self._flits_cache: Dict[int, int] = {}
        self._stat_cells: Dict[str, Tuple[List[int], List[int], List[int]]] = {}
        # Lane cache: everything static per (src, dst, kind, payload,
        # port) — route, flit count, stat cells, the local pseudo-link,
        # and a shared DeliveryInfo (callers only read it) — so send()
        # runs traversal, accounting and delivery scheduling without
        # calling _traverse/_record/_deliver_at per packet.
        self._lanes: Dict[Tuple[int, int, str, int, str], tuple] = {}
        self._tree_cache: Dict[Tuple[int, Tuple[int, ...]], tuple] = {}
        # Deliveries arriving at the same cycle share one kernel event:
        # arrival cycle -> [(handler, packet), ...] in send order. A
        # batch exists for a cycle iff its drain event is scheduled.
        self._arrivals: Dict[int, List[Tuple[Handler, Packet]]] = {}
        # Packet free-list (DESIGN.md §12): with pooling enabled the
        # network reclaims every delivered packet shell (no handler
        # retains the Packet object — bodies have their own lifetime)
        # and send_new() reuses them. Pooling is vetoed by observers
        # (sim.pooling), which may retain packet references.
        self._pooling = getattr(sim, "pooling", False)
        self._pkt_free: List[Packet] = []
        # The network is built before every endpoint, so registering
        # here lets the sanitizer wrap all handlers as they attach.
        san = getattr(sim, "sanitizer", None)
        if san is not None:
            san.watch_network(self)
        tel = getattr(sim, "telemetry", None)
        if tel is not None:
            tel.watch_network(self)
        # Observers (sanitizer/telemetry) interpose on _deliver_at by
        # assigning an instance attribute; when they do, send() must
        # route deliveries through the wrapper instead of appending to
        # the arrival batch directly. All wrapping happens above, so
        # one check here covers the network's lifetime.
        self._observed = "_deliver_at" in self.__dict__

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register(self, tile: int, port: str, handler: Handler) -> None:
        """Attach ``handler`` for packets addressed to (tile, port)."""
        key = (tile, port)
        if key in self._handlers:
            raise ValueError(f"handler already registered for {key}")
        self._handlers[key] = handler

    # ------------------------------------------------------------------
    # unicast
    # ------------------------------------------------------------------
    def send_new(
        self,
        src: int,
        dst: int,
        kind: str,
        payload_bits: int,
        dst_port: str,
        body=None,
        extra_delay: int = 0,
    ) -> DeliveryInfo:
        """Allocate a packet (from the free-list when pooling is on)
        and send it. Hot senders use this instead of ``send(Packet(...))``
        so delivered shells cycle back instead of being garbage."""
        free = self._pkt_free
        if free:
            packet = free.pop()
            packet.src = src
            packet.dst = dst
            packet.kind = kind
            packet.payload_bits = payload_bits
            packet.dst_port = dst_port
            packet.body = body
            packet.pid = next(_packet_ids)
        else:
            packet = Packet(src, dst, kind, payload_bits, dst_port, body)
        return self.send(packet, extra_delay)

    def send(self, packet: Packet, extra_delay: int = 0) -> DeliveryInfo:
        """Inject ``packet`` now (+``extra_delay``); returns accounting
        info immediately while delivery is scheduled asynchronously.

        This is the fused hot path (DESIGN.md §12): one lane-cache
        probe replaces the per-packet route/flits/handler/stat-cell
        lookups, and traversal, accounting and delivery scheduling run
        inline instead of as three method calls. The timing math is
        byte-for-byte the old _traverse/_deliver_at logic.
        """
        lanes = self._lanes
        key = (packet.src, packet.dst, packet.kind,
               packet.payload_bits, packet.dst_port)
        lane = lanes[key] if key in lanes else self._make_lane(key, packet)
        route, flits, hkey, c_pkts, c_flits, c_fhops, info, local_link = lane
        sim = self.sim
        busy = self._busy_until
        hop = self.hop_latency
        head = sim.now + extra_delay
        for link in route:
            if link in busy:
                depart = busy[link]
                if depart < head:
                    depart = head
            else:
                depart = head
            busy[link] = depart + flits
            head = depart + hop
        if local_link is not None:
            # Same-tile delivery: serialize on the per-tile pseudo-link
            # so delivery order matches send order there too.
            if local_link in busy:
                depart = busy[local_link]
                if depart < head:
                    depart = head
            else:
                depart = head
            busy[local_link] = depart + flits
            head = depart + self.LOCAL_LATENCY
        when = head + flits - 1
        c_pkts[0] += 1
        c_flits[0] += flits
        c_fhops[0] += info.flit_hops
        if self._observed:
            self._deliver_at(when, packet)
            return info
        now = sim.now
        if when < now:
            when = now
        arrivals = self._arrivals
        if when in arrivals:
            arrivals[when].append((self._handlers[hkey], packet))
        else:
            arrivals[when] = [(self._handlers[hkey], packet)]
            sim.schedule_at(when, self._drain_cycle, when)
        return info

    def _make_lane(self, key: Tuple[int, int, str, int, str],
                   packet: Packet) -> tuple:
        src, dst, kind, payload, dst_port = key
        flits = self._flits_cache.get(payload)
        if flits is None:
            flits = self._flits_cache[payload] = packet.flits(self.link_bits)
        route = self._route_cache.get((src, dst))
        if route is None:
            route = self._route_cache[(src, dst)] = self.mesh.route(src, dst)
        hkey = (dst, dst_port)
        if hkey not in self._handlers:
            raise KeyError(f"no handler at tile {dst} port {dst_port!r}")
        cells = self._stat_cells.get(kind)
        if cells is None:
            cells = self._stat_cells[kind] = (
                self.stats.counter(f"noc.packets.{kind}"),
                self.stats.counter(f"noc.flits.{kind}"),
                self.stats.counter(f"noc.flit_hops.{kind}"),
            )
        hops = len(route)
        lane = (
            route, flits, hkey, cells[0], cells[1], cells[2],
            DeliveryInfo(flits=flits, hops=hops, flit_hops=flits * hops),
            (dst, dst) if not route else None,
        )
        self._lanes[key] = lane
        return lane

    def _traverse(
        self, route: List[Link], inject_time: int, flits: int,
        local_key: Optional[int] = None,
    ) -> int:
        """Walk the head flit down ``route`` with link contention;
        returns the tail-flit arrival time at the destination.

        Same-tile deliveries serialize on a per-tile pseudo-link so
        delivery order matches send order there too — the protocol
        relies on per-route FIFO ordering (a Data grant must never be
        overtaken by a later forward from the same bank).
        """
        head = inject_time
        busy = self._busy_until
        hop = self.hop_latency
        for link in route:
            depart = busy.get(link, 0)
            if depart < head:
                depart = head
            busy[link] = depart + flits
            head = depart + hop
        if not route and local_key is not None:
            link = (local_key, local_key)
            depart = busy.get(link, 0)
            if depart < head:
                depart = head
            busy[link] = depart + flits
            head = depart + self.LOCAL_LATENCY
        return head + flits - 1

    def _deliver_at(self, when: int, packet: Packet) -> None:
        handler = self._handlers.get((packet.dst, packet.dst_port))
        if handler is None:
            raise KeyError(
                f"no handler at tile {packet.dst} port {packet.dst_port!r}"
            )
        now = self.sim.now
        if when < now:
            when = now
        batch = self._arrivals.get(when)
        if batch is None:
            self._arrivals[when] = [(handler, packet)]
            self.sim.schedule_at(when, self._drain_cycle, when)
        else:
            batch.append((handler, packet))

    def _drain_cycle(self, when: int) -> None:
        """Run every delivery that arrives at cycle ``when``.

        Handlers fire in send order (the batch is append-ordered), so
        per-route FIFO delivery is unchanged; batching only merges the
        kernel dispatches. Handlers that send again either hit a later
        cycle or (same-cycle degenerate) re-arm a fresh batch, because
        this cycle's batch is detached before any handler runs. Each
        delivery is still one logical event for ``events_executed``.
        """
        batch = self._arrivals.pop(when)
        sim = self.sim
        pool = self._pkt_free if self._pooling else None
        n = len(batch)
        if n == 1:
            # Singleton batch: the handler runs in tail position, so
            # nested handler fusions stay available.
            handler, packet = batch[0]
            handler(packet)
            if pool is not None:
                packet.body = None
                pool.append(packet)
            return
        sim.count_inlined_events(n - 1)
        # The undrained tail of the batch is invisible to the event
        # queue, so nested handler fusions must stand down while it
        # exists (DESIGN.md §12); the final handler runs unguarded,
        # back in tail position.
        sim._inline_depth += 1
        try:
            for handler, packet in batch[:-1]:
                handler(packet)
                if pool is not None:
                    packet.body = None
                    pool.append(packet)
        finally:
            sim._inline_depth -= 1
        handler, packet = batch[n - 1]
        handler(packet)
        if pool is not None:
            packet.body = None
            pool.append(packet)

    # ------------------------------------------------------------------
    # multicast
    # ------------------------------------------------------------------
    def multicast(
        self,
        src: int,
        dsts: Iterable[int],
        kind: str,
        payload_bits: int,
        dst_port: str,
        body=None,
    ) -> DeliveryInfo:
        """Send one logical packet to several tiles along a shared
        X-Y tree. Each unique tree link carries the flits once."""
        dsts = list(dict.fromkeys(dsts))
        if not dsts:
            raise ValueError("multicast needs at least one destination")
        template = Packet(
            src=src, dst=dsts[0], kind=kind,
            payload_bits=payload_bits, dst_port=dst_port, body=body,
        )
        flits = self._flits_cache.get(payload_bits)
        if flits is None:
            flits = self._flits_cache[payload_bits] = template.flits(self.link_bits)
        # X-Y trees are static per (src, destination set): confluence
        # groups multicast the same set for every element, so cache the
        # routes and the deduplicated tree links alongside the unicast
        # lane cache.
        tree_key = (src, tuple(dsts))
        cached = self._tree_cache.get(tree_key)
        if cached is None:
            routes = self.mesh.multicast_tree(src, dsts)
            tree_links = Mesh.unique_links(routes)
            cached = self._tree_cache[tree_key] = (routes, tree_links)
        else:
            routes, tree_links = cached
        # Reserve each tree link once; per-destination arrival follows
        # its own route's (already reserved) links.
        depart_at: Dict[Link, int] = {}
        # Reserve in BFS-ish order: routes share prefixes, so walk each
        # route and reserve links not yet reserved by this multicast.
        for dst in dsts:
            head = self.sim.now
            for link in routes[dst]:
                if link not in depart_at:
                    depart = max(head, self._busy_until.get(link, 0))
                    self._busy_until[link] = depart + flits
                    depart_at[link] = depart
                head = depart_at[link] + self.hop_latency
        total_hops = 0
        for dst in dsts:
            route = routes[dst]
            if route:
                arrival = depart_at[route[-1]] + self.hop_latency + flits - 1
            else:
                arrival = self.sim.now + self.LOCAL_LATENCY + flits - 1
            pkt = Packet(
                src=src, dst=dst, kind=kind,
                payload_bits=payload_bits, dst_port=dst_port, body=body,
            )
            self._deliver_at(arrival, pkt)
            total_hops += len(route)
        flit_hops = flits * len(tree_links)
        self._record(kind, flits, len(tree_links))
        self.stats.add("noc.multicast.packets")
        self.stats.add("noc.multicast.saved_flit_hops",
                       flits * total_hops - flit_hops)
        return DeliveryInfo(flits=flits, hops=len(tree_links), flit_hops=flit_hops)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _record(self, kind: str, flits: int, hops: int) -> None:
        cells = self._stat_cells.get(kind)
        if cells is None:
            cells = self._stat_cells[kind] = (
                self.stats.counter(f"noc.packets.{kind}"),
                self.stats.counter(f"noc.flits.{kind}"),
                self.stats.counter(f"noc.flit_hops.{kind}"),
            )
        # Interned cell updates: Stats.add is a method call per counter
        # and this runs three times per packet.
        cells[0][0] += 1
        cells[1][0] += flits
        cells[2][0] += flits * hops

    def utilization(self, cycles: int) -> float:
        """Average link utilization: flit-hops / (links x cycles)."""
        if cycles <= 0:
            return 0.0
        flit_hops = sum(
            self.stats.get(f"noc.flit_hops.{kind}") for kind in TRAFFIC_CLASSES
        )
        return flit_hops / (self.mesh.num_links * cycles)
