"""2-D mesh topology with X-Y dimension-order routing.

Tiles are numbered row-major: tile ``t`` sits at column ``t % cols``
and row ``t // cols``. Links are unidirectional; the link from tile
``a`` to an adjacent tile ``b`` is identified by the pair ``(a, b)``.

X-Y routing (the paper's Table III) routes along the X dimension first,
then Y, which is deadlock-free and deterministic — and is also what
makes the 2x2-block restriction on stream confluence sensible: streams
from nearby tiles share most of their path, so multicast saves hops.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

Link = Tuple[int, int]


class Mesh:
    """Geometry and routing for a ``cols`` x ``rows`` mesh."""

    def __init__(self, cols: int, rows: int) -> None:
        if cols <= 0 or rows <= 0:
            raise ValueError("mesh dimensions must be positive")
        self.cols = cols
        self.rows = rows
        self.num_tiles = cols * rows

    def coords(self, tile: int) -> Tuple[int, int]:
        """(x, y) coordinates of ``tile``."""
        self._check(tile)
        return tile % self.cols, tile // self.cols

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise ValueError(f"({x}, {y}) outside {self.cols}x{self.rows} mesh")
        return y * self.cols + x

    def _check(self, tile: int) -> None:
        if not (0 <= tile < self.num_tiles):
            raise ValueError(f"tile {tile} outside mesh of {self.num_tiles}")

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[Link]:
        """X-Y route as an ordered list of unidirectional links."""
        self._check(src)
        self._check(dst)
        links: List[Link] = []
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        here = src
        while x != dx:
            x += 1 if dx > x else -1
            nxt = self.tile_at(x, y)
            links.append((here, nxt))
            here = nxt
        while y != dy:
            y += 1 if dy > y else -1
            nxt = self.tile_at(x, y)
            links.append((here, nxt))
            here = nxt
        return links

    def multicast_tree(self, src: int, dsts: Iterable[int]) -> Dict[int, List[Link]]:
        """Per-destination X-Y routes sharing a common prefix tree.

        Returns ``{dst: route}`` where routes follow X-Y order, so any
        two routes share their common prefix. The set of *unique* links
        across all routes is the multicast tree the router would
        traverse once per link.
        """
        return {dst: self.route(src, dst) for dst in set(dsts)}

    @staticmethod
    def unique_links(routes: Dict[int, List[Link]]) -> Set[Link]:
        """Distinct links across a multicast route set."""
        links: Set[Link] = set()
        for route in routes.values():
            links.update(route)
        return links

    @property
    def num_links(self) -> int:
        """Total unidirectional links in the mesh."""
        horizontal = 2 * (self.cols - 1) * self.rows
        vertical = 2 * (self.rows - 1) * self.cols
        return horizontal + vertical

    def corners(self) -> List[int]:
        """Corner tiles, where the memory controllers sit (Table III)."""
        return [
            self.tile_at(0, 0),
            self.tile_at(self.cols - 1, 0),
            self.tile_at(0, self.rows - 1),
            self.tile_at(self.cols - 1, self.rows - 1),
        ]

    def block_of(self, tile: int, block: int = 2) -> Tuple[int, int]:
        """Which ``block`` x ``block`` tile-block contains ``tile``.

        Stream confluence only merges streams whose requesting tiles
        fall in the same 2x2 block (SS IV-C).
        """
        x, y = self.coords(tile)
        return x // block, y // block
