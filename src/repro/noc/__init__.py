"""Mesh network-on-chip: topology, packets, and the wormhole model."""

from repro.noc.message import (
    CTRL,
    DATA,
    HEADER_BITS,
    STREAM,
    TRAFFIC_CLASSES,
    Packet,
    control_payload_bits,
    data_payload_bits,
)
from repro.noc.network import DeliveryInfo, Network
from repro.noc.topology import Mesh

__all__ = [
    "Mesh",
    "Network",
    "DeliveryInfo",
    "Packet",
    "CTRL",
    "DATA",
    "STREAM",
    "HEADER_BITS",
    "TRAFFIC_CLASSES",
    "control_payload_bits",
    "data_payload_bits",
]
