"""NoC packets and traffic classification.

Figure 15 classifies traffic into *coherence control*, *data*, and
*stream management* (configuration / migration / termination / flow
control). Every packet carries one of these classes so the network can
maintain the same breakdown.

Flit accounting follows Garnet conventions: a packet is a 64-bit header
plus its payload, serialized onto the configured link width (256-bit
default, Table III; Figure 16 sweeps 128/256/512). A bare control
message is one flit; a full cache-line data response is
``ceil((64 + 512) / link_bits)`` flits — 3 at 256-bit. Subline
responses (indirect floating, SS IV-B) carry only the requested bytes
and thus fewer flits.
"""

from __future__ import annotations

import itertools
from typing import Any

HEADER_BITS = 64

# Traffic classes (Figure 15's breakdown).
CTRL = "ctrl"  # coherence + request control messages
DATA = "data"  # cache line / subline payload carriers
STREAM = "stream"  # stream config / migrate / end / credit messages

TRAFFIC_CLASSES = (CTRL, DATA, STREAM)

_packet_ids = itertools.count()


class Packet:
    """One NoC packet.

    ``dst_port`` names the handler at the destination tile ("l2",
    "l3", "dram", "se_l2", "se_l3"); ``body`` is the protocol-level
    message object, opaque to the network.
    """

    __slots__ = ("src", "dst", "kind", "payload_bits", "dst_port",
                 "body", "pid")

    def __init__(
        self,
        src: int,
        dst: int,
        kind: str,
        payload_bits: int,
        dst_port: str,
        body: Any = None,
        pid: int = None,
    ) -> None:
        if kind not in TRAFFIC_CLASSES:
            raise ValueError(f"unknown traffic class {kind!r}")
        if payload_bits < 0:
            raise ValueError("payload_bits must be >= 0")
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload_bits = payload_bits
        self.dst_port = dst_port
        self.body = body
        self.pid = next(_packet_ids) if pid is None else pid

    def __repr__(self) -> str:
        return (
            f"Packet(src={self.src}, dst={self.dst}, kind={self.kind!r}, "
            f"payload_bits={self.payload_bits}, "
            f"dst_port={self.dst_port!r}, body={self.body!r}, "
            f"pid={self.pid})"
        )

    def flits(self, link_bits: int) -> int:
        """Number of flits on a link of ``link_bits`` width."""
        total = HEADER_BITS + self.payload_bits
        return max(1, -(-total // link_bits))


def data_payload_bits(data_bytes: int) -> int:
    """Payload bits for a data message carrying ``data_bytes``."""
    return data_bytes * 8


def control_payload_bits(extra_bytes: int = 0) -> int:
    """Payload bits for a control message (address etc. fit in the
    header; ``extra_bytes`` for anything beyond)."""
    return extra_bytes * 8
