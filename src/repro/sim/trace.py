"""Event tracing: lightweight instrumentation for debugging runs.

A :class:`Tracer` records typed stream-protocol events (floats,
sinks, migrations, confluence joins, credits, terminations) with
timestamps, bounded by a ring buffer. It is what we used while
bringing the protocol up, promoted to a supported tool::

    chip = Chip(make_config("sf", ...))
    tracer = Tracer(chip, kinds={"float", "sink", "migrate"})
    chip.run(programs)
    for ev in tracer.events:
        print(ev)
    print(tracer.summary())

Since the telemetry layer (:mod:`repro.obs`) landed, the Tracer is a
plain subscriber on its event bus rather than a second monkey-patching
layer: it attaches (or reuses) a :class:`~repro.obs.telemetry.Telemetry`
on the chip's simulator and subscribes to the requested kinds. Build
it *after* the chip and *before* ``run``, as before.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Iterable, Optional, Set


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    kind: str
    tile: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.cycle:>9}] {self.kind:<8} tile {self.tile:<3} {self.detail}"


class Tracer:
    """Record selected event kinds from a chip's components.

    ``kinds`` limits what is recorded (None = everything):
    ``float``, ``sink``, ``migrate``, ``confluence``, ``credit``,
    ``end``.
    """

    KINDS = ("float", "sink", "migrate", "confluence", "credit", "end")

    def __init__(self, chip, kinds: Optional[Iterable[str]] = None,
                 capacity: int = 100_000) -> None:
        self.chip = chip
        self.kinds: Optional[Set[str]] = set(kinds) if kinds else None
        if self.kinds:
            unknown = self.kinds - set(self.KINDS)
            if unknown:
                raise ValueError(f"unknown trace kinds {sorted(unknown)}")
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._install()

    def _install(self) -> None:
        from repro.obs.telemetry import Telemetry, TelemetryConfig

        tel = self.chip.sim.telemetry
        if tel is None:
            # Bus-only attach: no pillars, no step hook — just the
            # component hooks publishing events.
            tel = Telemetry(self.chip.sim, TelemetryConfig())
        tel.adopt(self.chip)
        for kind in (self.kinds or self.KINDS):
            tel.subscribe(kind, self._on_event)

    def _on_event(self, ev) -> None:
        self.events.append(TraceEvent(
            cycle=ev.cycle, kind=ev.kind, tile=ev.tile, detail=ev.detail,
        ))

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Counts per event kind."""
        counts = Counter(ev.kind for ev in self.events)
        lines = [f"{kind:<12} {counts.get(kind, 0):>8}" for kind in self.KINDS]
        return "\n".join(lines)

    def of_kind(self, kind: str):
        return [ev for ev in self.events if ev.kind == kind]
