"""Event tracing: lightweight instrumentation for debugging runs.

A :class:`Tracer` hooks a chip's components and records typed events
(stream floats/sinks/migrations, NoC sends, cache misses) with
timestamps, bounded by a ring buffer. It is what we used while
bringing the protocol up, promoted to a supported tool::

    chip = Chip(make_config("sf", ...))
    tracer = Tracer(chip, kinds={"float", "sink", "migrate"})
    chip.run(programs)
    for ev in tracer.events:
        print(ev)
    print(tracer.summary())
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Iterable, Optional, Set


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    kind: str
    tile: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.cycle:>9}] {self.kind:<8} tile {self.tile:<3} {self.detail}"


class Tracer:
    """Record selected event kinds from a chip's components.

    ``kinds`` limits what is recorded (None = everything):
    ``float``, ``sink``, ``migrate``, ``confluence``, ``credit``,
    ``end``. Hooks are installed by wrapping the relevant methods, so
    building a Tracer *after* the chip and *before* ``run``.
    """

    KINDS = ("float", "sink", "migrate", "confluence", "credit", "end")

    def __init__(self, chip, kinds: Optional[Iterable[str]] = None,
                 capacity: int = 100_000) -> None:
        self.chip = chip
        self.kinds: Optional[Set[str]] = set(kinds) if kinds else None
        if self.kinds:
            unknown = self.kinds - set(self.KINDS)
            if unknown:
                raise ValueError(f"unknown trace kinds {sorted(unknown)}")
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._install()

    def _want(self, kind: str) -> bool:
        return self.kinds is None or kind in self.kinds

    def _record(self, kind: str, tile: int, detail: str) -> None:
        self.events.append(TraceEvent(
            cycle=self.chip.sim.now, kind=kind, tile=tile, detail=detail,
        ))

    def _install(self) -> None:
        for tile in self.chip.tiles:
            if tile.se_core is not None:
                self._wrap_se_core(tile.se_core, tile.tile_id)
            if tile.se_l3 is not None:
                self._wrap_se_l3(tile.se_l3, tile.tile_id)

    def _wrap_se_core(self, se, tile_id: int) -> None:
        if self._want("float"):
            orig_float = se._float

            def traced_float(stream, _orig=orig_float):
                was = stream.floating
                _orig(stream)
                if not was and stream.floating:
                    self._record("float", tile_id,
                                 f"sid {stream.sid} @elem {stream.float_start}")
            se._float = traced_float
        if self._want("sink"):
            orig_sink = se._sink

            def traced_sink(stream, _orig=orig_sink):
                was = stream.floating
                _orig(stream)
                if was and not stream.floating:
                    self._record("sink", tile_id, f"sid {stream.sid}")
            se._sink = traced_sink

    def _wrap_se_l3(self, se3, tile_id: int) -> None:
        if self._want("migrate"):
            orig = se3._migrate

            def traced_migrate(stream, addr, _orig=orig):
                self._record(
                    "migrate", tile_id,
                    f"{stream.key} elem {stream.next_idx} -> bank "
                    f"{se3.nuca.bank_of(addr)}",
                )
                _orig(stream, addr)
            se3._migrate = traced_migrate
        if self._want("confluence"):
            orig_merge = se3._try_merge

            def traced_merge(stream, _orig=orig_merge):
                _orig(stream)
                if stream.group is not None:
                    self._record(
                        "confluence", tile_id,
                        f"{stream.key} joined group of "
                        f"{len(stream.group.members)}",
                    )
            se3._try_merge = traced_merge
        if self._want("credit"):
            orig_credit = se3._credit

            def traced_credit(body, _orig=orig_credit):
                self._record("credit", tile_id,
                             f"({body.requester},{body.sid}) +{body.count}")
                _orig(body)
            se3._credit = traced_credit
        if self._want("end"):
            orig_end = se3._end

            def traced_end(body, _orig=orig_end):
                self._record("end", tile_id,
                             f"({body.requester},{body.sid})")
                _orig(body)
            se3._end = traced_end

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Counts per event kind."""
        counts = Counter(ev.kind for ev in self.events)
        lines = [f"{kind:<12} {counts.get(kind, 0):>8}" for kind in self.KINDS]
        return "\n".join(lines)

    def of_kind(self, kind: str):
        return [ev for ev in self.events if ev.kind == kind]
