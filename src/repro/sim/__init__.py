"""Discrete-event simulation kernel, statistics and tracing."""

from repro.sim.kernel import Simulator
from repro.sim.sanitizer import Sanitizer, SanitizerError
from repro.sim.stats import Histogram, Stats
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Simulator",
    "Sanitizer",
    "SanitizerError",
    "Stats",
    "Histogram",
    "Tracer",
    "TraceEvent",
]
