"""Discrete-event simulation kernel.

Every component in the simulated chip (cores, caches, the NoC, DRAM
controllers, stream engines) shares one :class:`Simulator`. Time is
measured in core clock cycles (the paper's system runs at 2.0 GHz; see
``repro.system.params``). Events are callbacks scheduled at absolute or
relative times and executed in (time, insertion-order) order, so the
simulation is fully deterministic.

Two interchangeable scheduler backends implement those semantics
(DESIGN.md §10):

- :class:`CalendarSimulator` (the default) — a calendar queue: a ring
  of ``RING`` per-cycle FIFO buckets covering the window
  ``[now, now + RING)``, with a binary heap holding far-future
  overflow events. Scheduling into the window and dispatching are both
  O(1) appends/indexing with no comparisons; overflow events migrate
  into the ring exactly when the window reaches them, before any
  direct insert for their cycle can occur, which preserves the global
  (time, insertion-order) ordering bit-for-bit.
- :class:`HeapSimulator` — the original single ``heapq`` ordered by
  ``(time, seq)``. Kept as the A/B reference: ``REPRO_KERNEL=heap``
  selects it, and the equivalence suite asserts identical determinism
  hashes, event counts and stats against the calendar queue.

Both backends share the exact same observable contract: events at the
same cycle run in the order they were scheduled (FIFO tie-break),
``run(until=N)`` leaves ``now == N`` even when the queue drains early,
and fractional schedule times are rejected rather than silently
truncated.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, List, Optional, Tuple

from repro.obs import telemetry as _telemetry
from repro.sim import fastpath as _fastpath
from repro.sim import sanitizer as _sanitizer

ENV_KERNEL = "REPRO_KERNEL"

_KERNELS = ("calendar", "heap")


def kernel_from_env() -> str:
    """Which scheduler backend ``REPRO_KERNEL`` selects."""
    raw = os.environ.get(ENV_KERNEL, "").strip().lower()
    if raw in ("", "calendar", "default"):
        return "calendar"
    if raw == "heap":
        return "heap"
    raise ValueError(
        f"{ENV_KERNEL}={raw!r} names an unknown kernel; valid: {_KERNELS}"
    )


class Simulator:
    """A deterministic discrete-event simulator.

    Events scheduled for the same cycle run in the order they were
    scheduled (FIFO tie-break), which keeps runs reproducible.
    Instantiating ``Simulator()`` returns the backend selected by
    ``REPRO_KERNEL`` (calendar queue unless ``heap`` is requested).
    """

    def __new__(cls, *args, **kwargs):
        if cls is Simulator:
            cls = (
                HeapSimulator if kernel_from_env() == "heap"
                else CalendarSimulator
            )
        return object.__new__(cls)

    def __init__(self) -> None:
        self.now: int = 0
        self._seq: int = 0
        self._events_executed: int = 0
        self._events_inlined: int = 0
        # Depth of handler-layer fused loops currently on the stack.
        # While positive, can_inline() reports False: a fused loop
        # holds callbacks in a local list the queue cannot see, so a
        # nested fusion would run ahead of them (DESIGN.md §12).
        self._inline_depth: int = 0
        self._init_queue()
        # None unless REPRO_SANITIZE enables invariant checking; when
        # attached, components register themselves at construction.
        self.sanitizer = _sanitizer.maybe_attach(self)
        # Same contract for the telemetry layer (REPRO_TELEMETRY).
        # The sanitizer attaches first so its step hook sits closest
        # to the kernel and hashes the same event stream either way.
        self.telemetry = _telemetry.maybe_attach(self)
        # Handler fast paths (REPRO_FASTPATH, default on) fuse
        # uncontended event chains into synchronous calls that credit
        # count_inlined_events(). Fusion changes the *event stream*
        # (hence the S5 trace hash) but never cycles or architectural
        # stats (DESIGN.md §12). Telemetry vetoes fusion: its wrappers
        # publish after their inner handler returns, so a fused callback
        # chain would invert observer ordering (e.g. a span closing
        # before the hop that produced it). The sanitizer does not —
        # tier-1 runs exercise the fused paths, and the S5 hash change
        # is regenerated deliberately. Message pooling additionally
        # requires no sanitizer, since observers may retain references
        # past a message's handler.
        self.fastpath = _fastpath.enabled() and self.telemetry is None
        self.pooling = self.fastpath and self.sanitizer is None

    # -- backend hooks -------------------------------------------------
    def _init_queue(self) -> None:
        raise NotImplementedError

    def _push(self, when: int, fn: Callable[..., Any], args: tuple) -> None:
        raise NotImplementedError

    def _advance_to(self, when: int) -> None:
        """Move ``now`` forward to ``when`` (no pending event before
        it), doing any backend bookkeeping the move requires."""
        raise NotImplementedError

    # -- scheduling ----------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be a non-negative whole number of cycles; a
        zero delay runs later in the current cycle (after all
        previously scheduled events for this cycle).
        """
        if type(delay) is int:
            d = delay
        else:
            d = int(delay)
            if d != delay:
                raise ValueError(
                    f"delay must be a whole number of cycles, got {delay!r}"
                )
        if d < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._push(self.now + d, fn, args)

    def schedule_at(self, when: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute cycle ``when``.

        ``when`` is coerced *before* the past-check so a fractional
        time can never sneak past the guard and silently truncate onto
        an earlier cycle; non-integral times are rejected outright.
        """
        if type(when) is int:
            w = when
        else:
            w = int(when)
            if w != when:
                raise ValueError(
                    f"schedule time must be a whole cycle, got {when!r}"
                )
        if w < self.now:
            raise ValueError(
                f"cannot schedule at cycle {when}, current cycle is {self.now}"
            )
        self._push(w, fn, args)

    # -- introspection -------------------------------------------------
    @property
    def events_pending(self) -> int:
        """Number of events still in the queue."""
        raise NotImplementedError

    @property
    def events_executed(self) -> int:
        """Total number of events run so far."""
        return self._events_executed

    @property
    def events_inlined(self) -> int:
        """Logical events that ran fused/batched instead of through a
        kernel dispatch (a subset of ``events_executed``)."""
        return self._events_inlined

    def count_inlined_events(self, n: int) -> None:
        """Account ``n`` callbacks executed inside a batching event
        (e.g. the NoC's per-cycle delivery drain) so ``events_executed``
        keeps counting logical events, not just kernel dispatches."""
        self._events_executed += n
        self._events_inlined += n

    def can_inline(self) -> bool:
        """True when nothing is pending at the current cycle, so a
        handler may run a zero-delay callback synchronously instead of
        scheduling it: with an empty current-cycle queue the scheduled
        callback would execute next anyway, and anything the callback
        itself schedules lands behind it in FIFO order either way
        (DESIGN.md §12). When another event *is* pending this cycle,
        fusing would jump the queue — callers must fall back to
        ``schedule(0, ...)``."""
        raise NotImplementedError

    def peek_time(self) -> Optional[int]:
        """Cycle of the next pending event, or ``None`` if queue empty."""
        nxt = self.peek_event()
        return nxt[0] if nxt is not None else None

    def peek_event(self) -> Optional[Tuple[int, Callable[..., Any]]]:
        """(cycle, callback) of the next pending event, or ``None``."""
        raise NotImplementedError

    # -- execution -----------------------------------------------------
    def step(self) -> bool:
        """Run the single next event. Returns False if none remain."""
        raise NotImplementedError

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains.

        ``until`` bounds simulated time (events at cycles > ``until``
        stay queued, and ``now`` advances to ``until`` even when the
        queue drains first); ``max_events`` bounds the number of events
        run, which guards against accidental livelock in tests. Returns
        the current cycle when the run stops.
        """
        if "step" in self.__dict__:
            # A step hook (sanitizer / telemetry profiler) is
            # installed: dispatch through it, one event at a time.
            return self._run_hooked(until, max_events)
        return self._run_fast(until, max_events)

    def _run_hooked(self, until: Optional[int], max_events: Optional[int]) -> int:
        executed = 0
        step = self.step
        while True:
            nxt = self.peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                break
            if max_events is not None and executed >= max_events:
                return self.now
            step()
            executed += 1
        if until is not None and self.now < until:
            self._advance_to(until)
        return self.now

    def _run_fast(self, until: Optional[int], max_events: Optional[int]) -> int:
        raise NotImplementedError


class HeapSimulator(Simulator):
    """The original single-heap backend (``REPRO_KERNEL=heap``)."""

    def _init_queue(self) -> None:
        self._queue: List[Tuple[int, int, Callable[..., Any], tuple]] = []

    def _push(self, when: int, fn: Callable[..., Any], args: tuple) -> None:
        heapq.heappush(self._queue, (when, self._seq, fn, args))
        self._seq += 1

    def _advance_to(self, when: int) -> None:
        self.now = when

    @property
    def events_pending(self) -> int:
        return len(self._queue)

    def can_inline(self) -> bool:
        if self._inline_depth:
            return False
        queue = self._queue
        return not queue or queue[0][0] != self.now

    def peek_event(self) -> Optional[Tuple[int, Callable[..., Any]]]:
        if not self._queue:
            return None
        head = self._queue[0]
        return head[0], head[2]

    def step(self) -> bool:
        if not self._queue:
            return False
        when, _seq, fn, args = heapq.heappop(self._queue)
        self.now = when
        self._events_executed += 1
        fn(*args)
        return True

    def _run_fast(self, until: Optional[int], max_events: Optional[int]) -> int:
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        while queue:
            if until is not None and queue[0][0] > until:
                break
            if max_events is not None and executed >= max_events:
                return self.now
            when, _seq, fn, args = pop(queue)
            self.now = when
            self._events_executed += 1
            fn(*args)
            executed += 1
        if until is not None and self.now < until:
            self.now = until
        return self.now


class CalendarSimulator(Simulator):
    """Calendar-queue backend: per-cycle FIFO buckets + overflow heap.

    Invariants (DESIGN.md §10):

    - every pending ring event sits at a cycle in ``[now, now + RING)``
      in bucket ``when & (RING - 1)``, so a bucket holds events of
      exactly one cycle at a time and plain append order *is* global
      insertion order for that cycle;
    - every overflow-heap event is at a cycle ``>= now + RING``; when
      ``now`` advances, events falling inside the new window migrate
      into their buckets immediately — before any direct insert for
      those cycles is possible — keyed by ``(when, seq)`` so per-cycle
      FIFO order is preserved across the migration;
    - buckets are deques consumed from the left as they execute, so a
      bucket always holds exactly the *pending* events of its cycle;
      ``can_inline()`` is then a free emptiness test on the current
      bucket, which is what gates the handler-layer zero-delay
      fusions (DESIGN.md §12).
    """

    RING = 2048  # bucket count; must be a power of two

    def _init_queue(self) -> None:
        self._mask = self.RING - 1
        self._buckets: List[deque] = [deque() for _ in range(self.RING)]
        self._ring_count = 0  # pending events across all buckets
        self._overflow: List[Tuple[int, int, Callable[..., Any], tuple]] = []

    def _push(self, when: int, fn: Callable[..., Any], args: tuple) -> None:
        if when < self.now + self.RING:
            self._buckets[when & self._mask].append((fn, args))
            self._ring_count += 1
        else:
            heapq.heappush(self._overflow, (when, self._seq, fn, args))
            self._seq += 1

    # Inline overrides of the base implementations: scheduling is the
    # single hottest simulator entry point, so the window test and
    # bucket append happen right here instead of through ``_push``.
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        if type(delay) is int:
            d = delay
        else:
            d = int(delay)
            if d != delay:
                raise ValueError(
                    f"delay must be a whole number of cycles, got {delay!r}"
                )
        if d < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        if d < self.RING:
            self._buckets[(self.now + d) & self._mask].append((fn, args))
            self._ring_count += 1
        else:
            heapq.heappush(
                self._overflow, (self.now + d, self._seq, fn, args)
            )
            self._seq += 1

    def schedule_at(self, when: int, fn: Callable[..., Any], *args: Any) -> None:
        if type(when) is int:
            w = when
        else:
            w = int(when)
            if w != when:
                raise ValueError(
                    f"schedule time must be a whole cycle, got {when!r}"
                )
        now = self.now
        if w < now:
            raise ValueError(
                f"cannot schedule at cycle {when}, current cycle is {now}"
            )
        if w < now + self.RING:
            self._buckets[w & self._mask].append((fn, args))
            self._ring_count += 1
        else:
            heapq.heappush(self._overflow, (w, self._seq, fn, args))
            self._seq += 1

    def _advance_to(self, when: int) -> None:
        if when == self.now:
            return
        self.now = when
        overflow = self._overflow
        if overflow and overflow[0][0] < when + self.RING:
            horizon = when + self.RING
            buckets = self._buckets
            mask = self._mask
            pop = heapq.heappop
            while overflow and overflow[0][0] < horizon:
                w, _seq, fn, args = pop(overflow)
                buckets[w & mask].append((fn, args))
                self._ring_count += 1

    @property
    def events_pending(self) -> int:
        return self._ring_count + len(self._overflow)

    def can_inline(self) -> bool:
        return (
            not self._inline_depth
            and not self._buckets[self.now & self._mask]
        )

    def peek_event(self) -> Optional[Tuple[int, Callable[..., Any]]]:
        bucket = self._buckets[self.now & self._mask]
        if bucket:
            return self.now, bucket[0][0]
        if self._ring_count:
            buckets = self._buckets
            mask = self._mask
            c = self.now + 1
            while not buckets[c & mask]:
                c += 1
            return c, buckets[c & mask][0][0]
        if self._overflow:
            head = self._overflow[0]
            return head[0], head[2]
        return None

    def step(self) -> bool:
        nxt = self.peek_event()
        if nxt is None:
            return False
        when = nxt[0]
        if when != self.now:
            self._advance_to(when)
        fn, args = self._buckets[when & self._mask].popleft()
        self._ring_count -= 1
        self._events_executed += 1
        fn(*args)
        return True

    def _run_fast(self, until: Optional[int], max_events: Optional[int]) -> int:
        buckets = self._buckets
        mask = self._mask
        budget = max_events if max_events is not None else None
        while True:
            bucket = buckets[self.now & mask]
            if not bucket:
                if self._ring_count:
                    c = self.now + 1
                    while not buckets[c & mask]:
                        c += 1
                elif self._overflow:
                    c = self._overflow[0][0]
                else:
                    break  # drained
                if until is not None and c > until:
                    break
                self._advance_to(c)
                bucket = buckets[c & mask]
            # Drain the current cycle. Zero-delay events append to this
            # same bucket mid-drain and are picked up by the emptiness
            # test; fused (inlined) callbacks never enter the bucket at
            # all and are accounted via count_inlined_events.
            consumed = 0
            popleft = bucket.popleft
            if budget is None:
                # Unbudgeted drain (the normal full-run case): no
                # per-event budget bookkeeping in the loop.
                try:
                    while bucket:
                        fn, args = popleft()
                        consumed += 1
                        fn(*args)
                finally:
                    self._ring_count -= consumed
                    self._events_executed += consumed
                continue
            try:
                while bucket:
                    fn, args = popleft()
                    consumed += 1
                    fn(*args)
                    budget -= 1
                    if budget <= 0:
                        break
            finally:
                self._ring_count -= consumed
                self._events_executed += consumed
            if budget <= 0:
                return self.now
        if until is not None and self.now < until:
            self._advance_to(until)
        return self.now
