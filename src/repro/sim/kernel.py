"""Discrete-event simulation kernel.

Every component in the simulated chip (cores, caches, the NoC, DRAM
controllers, stream engines) shares one :class:`Simulator`. Time is
measured in core clock cycles (the paper's system runs at 2.0 GHz; see
``repro.system.params``). Events are callbacks scheduled at absolute or
relative times and executed in (time, insertion-order) order, so the
simulation is fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.obs import telemetry as _telemetry
from repro.sim import sanitizer as _sanitizer


class Simulator:
    """A deterministic discrete-event simulator.

    Events scheduled for the same cycle run in the order they were
    scheduled (FIFO tie-break), which keeps runs reproducible.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callable[..., Any], tuple]] = []
        self._seq: int = 0
        self._events_executed: int = 0
        # None unless REPRO_SANITIZE enables invariant checking; when
        # attached, components register themselves at construction.
        self.sanitizer = _sanitizer.maybe_attach(self)
        # Same contract for the telemetry layer (REPRO_TELEMETRY).
        # The sanitizer attaches first so its step hook sits closest
        # to the kernel and hashes the same event stream either way.
        self.telemetry = _telemetry.maybe_attach(self)

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; a zero delay runs later in the
        current cycle (after all previously scheduled events for this
        cycle).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self.schedule_at(self.now + int(delay), fn, *args)

    def schedule_at(self, when: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute cycle ``when``."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule at cycle {when}, current cycle is {self.now}"
            )
        heapq.heappush(self._queue, (int(when), self._seq, fn, args))
        self._seq += 1

    @property
    def events_pending(self) -> int:
        """Number of events still in the queue."""
        return len(self._queue)

    @property
    def events_executed(self) -> int:
        """Total number of events run so far."""
        return self._events_executed

    def peek_time(self) -> Optional[int]:
        """Cycle of the next pending event, or ``None`` if queue empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Run the single next event. Returns False if none remain."""
        if not self._queue:
            return False
        when, _seq, fn, args = heapq.heappop(self._queue)
        self.now = when
        self._events_executed += 1
        fn(*args)
        return True

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains.

        ``until`` bounds simulated time (events at cycles > ``until``
        stay queued); ``max_events`` bounds the number of events run,
        which guards against accidental livelock in tests. Returns the
        current cycle when the run stops.
        """
        executed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return self.now
