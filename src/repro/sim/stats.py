"""Statistics collection for the simulator.

All components report into one :class:`Stats` tree owned by the chip.
Counters are hierarchical dotted names (``"noc.flits.data"``); this
mirrors gem5's stats organization and makes the experiment harness's
job (grouping, normalizing against a baseline) mechanical.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Mapping, Optional, Tuple


class Stats:
    """A flat map of dotted counter names to numeric values.

    Supports increment (:meth:`add`), max-tracking (:meth:`maximize`),
    prefix queries (:meth:`group`) and merging (:meth:`merge`). Values
    are ints or floats; missing counters read as 0.
    """

    __slots__ = ("_values", "_cells")

    def __init__(self) -> None:
        # A plain dict: reads must never insert keys. The previous
        # defaultdict let maximize/get materialize a 0 baseline as a
        # read side-effect, so a first *negative* maximize was lost.
        self._values: Dict[str, float] = {}
        # Interned counter cells (DESIGN.md §12): ``counter(name)``
        # hands out a one-element list whose slot the hot path
        # increments directly; pending deltas fold into _values on
        # every read. Increments are commutative with add(), so a
        # name may be driven through both APIs.
        self._cells: Dict[str, List[float]] = {}

    def counter(self, name: str) -> List[float]:
        """Interned fast counter for ``name``: a one-element list.

        Hot handlers hoist ``cell = stats.counter("x")`` once and pay
        a single ``cell[0] += n`` per event; the pending delta folds
        into the value map on any read. Do not mix with :meth:`set`
        or :meth:`maximize` on the same name.
        """
        cell = self._cells.get(name)
        if cell is None:
            cell = self._cells[name] = [0]
        return cell

    def _flush(self) -> None:
        """Fold pending interned-cell deltas into the value map."""
        values = self._values
        for name, cell in self._cells.items():
            delta = cell[0]
            if delta:
                cell[0] = 0
                values[name] = values.get(name, 0) + delta

    def add(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        try:
            self._values[name] += amount
        except KeyError:
            self._values[name] = amount

    def set(self, name: str, value: float) -> None:
        """Overwrite counter ``name``."""
        self._values[name] = value

    def maximize(self, name: str, value: float) -> None:
        """Keep the maximum *seen* value in ``name`` — the first value
        always records, even when negative."""
        prev = self._values.get(name)
        if prev is None or value > prev:
            self._values[name] = value

    def get(self, name: str, default: float = 0) -> float:
        if self._cells:
            self._flush()
        return self._values.get(name, default)

    def __getitem__(self, name: str) -> float:
        if self._cells:
            self._flush()
        return self._values.get(name, 0)

    def __contains__(self, name: str) -> bool:
        if self._cells:
            self._flush()
        return name in self._values

    def group(self, prefix: str) -> Dict[str, float]:
        """All counters under ``prefix.`` with the prefix stripped."""
        if self._cells:
            self._flush()
        cut = len(prefix) + 1
        return {
            name[cut:]: value
            for name, value in self._values.items()
            if name.startswith(prefix + ".")
        }

    def total(self, prefix: str) -> float:
        """Sum of all counters under ``prefix.``."""
        return sum(self.group(prefix).values())

    def merge(self, other: "Stats") -> None:
        """Add every counter from ``other`` into this object."""
        if other._cells:
            other._flush()
        for name, value in other._values.items():
            self.add(name, value)

    def items(self) -> Iterator[Tuple[str, float]]:
        if self._cells:
            self._flush()
        return iter(sorted(self._values.items()))

    def as_dict(self) -> Dict[str, float]:
        if self._cells:
            self._flush()
        return dict(self._values)

    # Serialization (the disk run-cache stores stats as plain JSON).
    def to_dict(self) -> Dict[str, float]:
        if self._cells:
            self._flush()
        return dict(self._values)

    @classmethod
    def from_dict(cls, values: Mapping[str, float]) -> "Stats":
        stats = cls()
        for name, value in values.items():
            stats._values[name] = value
        return stats

    def dump(self) -> str:
        """Human-readable listing, one counter per line."""
        if self._cells:
            self._flush()
        width = max((len(k) for k in self._values), default=0)
        lines = [f"{k:<{width}}  {v:g}" for k, v in sorted(self._values.items())]
        return "\n".join(lines)


class Histogram:
    """A simple bucketed histogram for latency-style distributions."""

    __slots__ = ("bucket_size", "_buckets", "count", "sum", "_min", "_max")

    def __init__(self, bucket_size: int = 16) -> None:
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self.bucket_size = bucket_size
        self._buckets: Dict[int, int] = defaultdict(int)
        self.count = 0
        self.sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def record(self, value: float) -> None:
        self._buckets[int(value) // self.bucket_size] += 1
        self.count += 1
        self.sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def min(self) -> float:
        """Smallest recorded value (0.0 while empty — never ±inf,
        which would poison means and is not JSON-serializable)."""
        return 0.0 if self._min is None else self._min

    @property
    def max(self) -> float:
        """Largest recorded value (0.0 while empty)."""
        return 0.0 if self._max is None else self._max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[int, int]]:
        """Sorted (bucket_start, count) pairs."""
        return sorted(
            (bucket * self.bucket_size, count)
            for bucket, count in self._buckets.items()
        )

    def percentile(self, p: float) -> float:
        """Value at the ``p``-th percentile (0..100), resolved at
        bucket granularity: the inclusive upper edge of the bucket
        holding the ``ceil(count * p / 100)``-th sample, clamped to
        the recorded min/max. Empty histograms read 0.0."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        if p == 0:
            return self.min
        rank = max(1, -(-self.count * p // 100))  # ceil without math
        seen = 0
        for bucket, count in sorted(self._buckets.items()):
            seen += count
            if seen >= rank:
                upper = (bucket + 1) * self.bucket_size - 1
                return min(max(float(upper), self.min), self.max)
        return self.max  # unreachable, defensive

    # Serialization (interval snapshots / span latency distributions
    # ride in the disk run-cache next to Stats).
    def to_dict(self) -> Dict[str, object]:
        return {
            "bucket_size": self.bucket_size,
            "count": self.count,
            "sum": self.sum,
            "min": self._min,
            "max": self._max,
            # JSON object keys are strings; store raw bucket indices.
            "buckets": {str(b): c for b, c in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Histogram":
        hist = cls(bucket_size=int(payload["bucket_size"]))
        hist.count = int(payload["count"])
        hist.sum = float(payload["sum"])
        hist._min = payload.get("min")
        hist._max = payload.get("max")
        for bucket, count in payload.get("buckets", {}).items():
            hist._buckets[int(bucket)] = int(count)
        return hist
