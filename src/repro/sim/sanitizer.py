"""Runtime invariant sanitizer for the simulated chip.

A pluggable checking layer that components register with the shared
:class:`~repro.sim.kernel.Simulator`.  When enabled (``--sanitize``
harness flag, the ``REPRO_SANITIZE`` environment variable, or the
tier-1 pytest autouse fixture) it wraps a handful of component entry
points and validates protocol invariants *while the simulation runs*,
so bugs surface at the cycle they happen instead of as corrupted
stats thousands of events later.

Checkers (DESIGN.md §7):

- **S1 MESI single-writer / directory agreement** — after every
  coherence-carrying delivery and L3 transaction step: at most one L2
  holds a line in M/E; M/E never coexists with S copies unless an
  invalidation is in flight to the sharer; an L1 ``writable`` hint is
  always backed by L2 write permission; at quiescence the directory
  and the private caches agree exactly.
- **S2 MSHR watchdog** — no MSHR entry outstanding longer than
  ``MSHR_AGE_BOUND`` cycles; every file empty at drain.
- **S3 NoC conservation** — every injected packet is eventually
  ejected (per-packet age bound while in flight, injected == delivered
  and zero in-flight at drain).
- **S4 floated-stream lifetime and credits** — every stream floated
  by an SE_L2 is ended or dropped exactly once across the SE_L3s;
  credits consumed by the issue units never exceed credits granted;
  confluence multicast fan-out stays within one 2x2 block and the
  group-size cap; no SE_L3 retains streams, pending credits or
  confluence groups at drain.
- **S5 determinism trace** — a rolling CRC over the (cycle,
  event-name) trace, exposed as the ``sanitizer.trace_hash`` stat so
  the harness can compare runs across ``--jobs`` values.

Violations raise :class:`SanitizerError` carrying the cycle, tile and
offending object.  When disabled the hooks cost nothing: components
check ``sim.sanitizer`` once at construction and register only if it
exists — no per-event guards anywhere.
"""

from __future__ import annotations

import os
import zlib
from typing import Any, Dict, List, Optional, Tuple

ENV_SANITIZE = "REPRO_SANITIZE"

_OFF_VALUES = ("", "0", "off", "false", "no")


def enabled_by_env() -> bool:
    """Is ``REPRO_SANITIZE`` set to a truthy value?"""
    return os.environ.get(ENV_SANITIZE, "").strip().lower() not in _OFF_VALUES


def maybe_attach(sim) -> Optional["Sanitizer"]:
    """Attach a sanitizer to ``sim`` iff the environment enables it."""
    if enabled_by_env():
        return Sanitizer(sim)
    return None


class SanitizerError(AssertionError):
    """A runtime invariant violation.

    Carries the failed check's id (``"S1"``..``"S5"``), the simulation
    cycle, the tile (when attributable) and the offending object.
    """

    def __init__(
        self,
        check: str,
        message: str,
        cycle: int,
        tile: Optional[int] = None,
        obj: Any = None,
    ) -> None:
        self.check = check
        self.cycle = cycle
        self.tile = tile
        self.obj = obj
        detail = f"[{check}] cycle {cycle}"
        if tile is not None:
            detail += f" tile {tile}"
        detail += f": {message}"
        if obj is not None:
            detail += f" ({obj!r})"
        super().__init__(detail)


class Sanitizer:
    """Invariant checkers hanging off one :class:`Simulator`.

    Components self-register in their constructors::

        san = getattr(sim, "sanitizer", None)
        if san is not None:
            san.watch_l2(self)

    so both full :class:`~repro.system.chip.Chip` assemblies and the
    bare component rigs in the unit tests get coverage.
    """

    # Watchdog bounds (cycles). Generous: the deepest legitimate wait
    # is an L3 miss behind a congested DRAM queue, a few thousand
    # cycles even in the stress configurations.
    MSHR_AGE_BOUND = 200_000
    NOC_AGE_BOUND = 200_000
    # Periodic scans piggyback on the event loop every N events (a
    # self-rescheduling watchdog event would keep the queue non-empty
    # and break the chip's drain loop).
    SCAN_PERIOD = 4096

    def __init__(self, sim) -> None:
        self.sim = sim
        sim.sanitizer = self
        self.violations = 0
        # S5 rolling trace hash.
        self._crc = 0
        self._hashed = 0
        # Component registries.
        self._net = None
        self._l1s: Dict[int, Any] = {}
        self._l2s: Dict[int, Any] = {}
        self._banks: Dict[int, Any] = {}
        self._se_l2s: Dict[int, Any] = {}
        self._se_l3s: Dict[int, Any] = {}
        self._mshrs: List[Tuple[str, int, Any]] = []
        # S3 packet conservation.
        self._in_flight: Dict[int, Tuple[Any, int]] = {}
        self._injected = 0
        self._delivered = 0
        # S1 transient excuses: (line, dst tile) -> in-flight Inv count.
        self._invs: Dict[Tuple[int, int], int] = {}
        # S4 lifetime ledgers, keyed per incarnation (tile, sid, epoch);
        # credit ledgers are cumulative per (tile, sid).
        self._floats: Dict[Tuple[int, int, int], int] = {}
        self._terms: Dict[Tuple[int, int, int], int] = {}
        self._granted: Dict[Tuple[int, int], int] = {}
        self._consumed: Dict[Tuple[int, int], int] = {}
        self._install_step_hook()

    # ------------------------------------------------------------------
    # failure reporting
    # ------------------------------------------------------------------
    def _fail(
        self, check: str, message: str, tile: Optional[int] = None, obj: Any = None,
    ) -> None:
        self.violations += 1
        raise SanitizerError(check, message, self.sim.now, tile=tile, obj=obj)

    # ------------------------------------------------------------------
    # S5: determinism trace (+ the periodic scan heartbeat)
    # ------------------------------------------------------------------
    @property
    def trace_hash(self) -> int:
        """CRC32 over the (cycle, event-name) trace so far."""
        return self._crc

    @property
    def trace_events(self) -> int:
        return self._hashed

    def _install_step_hook(self) -> None:
        sim = self.sim
        inner_step = sim.step

        def step() -> bool:
            nxt = sim.peek_event()
            if nxt is not None:
                when, fn = nxt
                name = getattr(fn, "__qualname__", None) or type(fn).__name__
                self._crc = zlib.crc32(b"%d|%s" % (when, name.encode()), self._crc)
                self._hashed += 1
                if self._hashed % self.SCAN_PERIOD == 0:
                    self._periodic_scan()
            return inner_step()

        sim.step = step

    def _periodic_scan(self) -> None:
        now = self.sim.now
        for label, tile, mshr in self._mshrs:
            age = mshr.oldest_age(now)
            if age > self.MSHR_AGE_BOUND:
                self._fail(
                    "S2",
                    f"{label} MSHR entry outstanding for {age} cycles "
                    f"(bound {self.MSHR_AGE_BOUND})",
                    tile=tile, obj=mshr.outstanding()[:4],
                )
        for _pid, (pkt, injected_at) in self._in_flight.items():
            age = now - injected_at
            if age > self.NOC_AGE_BOUND:
                self._fail(
                    "S3",
                    f"packet in flight for {age} cycles without delivery",
                    obj=pkt,
                )

    # ------------------------------------------------------------------
    # S3: NoC conservation (+ the S1 Inv excuse bookkeeping)
    # ------------------------------------------------------------------
    def watch_network(self, net) -> None:
        """Wrap packet injection and handler registration.

        Must run before any component registers a handler — the
        Network registers the sanitizer in its own constructor, and
        every other component is built after the network.
        """
        self._net = net
        san = self
        inner_deliver = net._deliver_at

        def deliver_at(when: int, packet) -> None:
            san._in_flight[packet.pid] = (packet, san.sim.now)
            san._injected += 1
            body = packet.body
            if getattr(body, "op", None) == "Inv":
                key = (san._line(body.addr), packet.dst)
                san._invs[key] = san._invs.get(key, 0) + 1
            inner_deliver(when, packet)

        net._deliver_at = deliver_at
        inner_register = net.register

        def register(tile: int, port: str, handler) -> None:
            def checked(pkt) -> None:
                san._note_delivery(pkt, tile, port)
                handler(pkt)
                san._after_delivery(pkt, port)

            checked.__qualname__ = getattr(
                handler, "__qualname__", f"handler[{tile},{port}]"
            )
            inner_register(tile, port, checked)

        net.register = register

    def _note_delivery(self, pkt, tile: int, port: str) -> None:
        if self._in_flight.pop(pkt.pid, None) is None:
            self._fail(
                "S3", "packet delivered but never tracked as injected",
                tile=tile, obj=pkt,
            )
        self._delivered += 1

    def _after_delivery(self, pkt, port: str) -> None:
        body = pkt.body
        addr = getattr(body, "addr", None)
        if getattr(body, "op", None) == "Inv":
            key = (self._line(addr), pkt.dst)
            n = self._invs.get(key, 0)
            if n <= 1:
                self._invs.pop(key, None)
            else:
                self._invs[key] = n - 1
        if port == "l2" and addr is not None:
            self._check_line(self._line(addr))

    # ------------------------------------------------------------------
    # S1: MESI single-writer / directory agreement
    # ------------------------------------------------------------------
    def _line(self, addr: int):
        from repro.mem.addr import line_addr

        return line_addr(addr)

    def _mesi(self):
        from repro.mem.cache import EXCLUSIVE, MODIFIED, SHARED

        return MODIFIED, EXCLUSIVE, SHARED

    def watch_l1(self, l1) -> None:
        self._l1s[l1.tile] = l1
        self._mshrs.append(("l1", l1.tile, l1.mshr))
        san = self
        inner_wb = l1._writeback_to_l2

        def writeback(addr: int) -> None:
            M, E, _S = san._mesi()
            line = l1.l2.array.lookup(addr, touch=False)
            if line is not None and line.state not in (M, E):
                san._fail(
                    "S1",
                    f"dirty L1 writeback folds into L2 line {addr:#x} "
                    f"without write permission (state {line.state!r})",
                    tile=l1.tile, obj=line,
                )
            inner_wb(addr)

        l1._writeback_to_l2 = writeback

    def watch_l2(self, l2) -> None:
        self._l2s[l2.tile] = l2
        self._mshrs.append(("l2", l2.tile, l2.mshr))

    def watch_l3(self, bank) -> None:
        self._banks[bank.tile] = bank
        self._mshrs.append(("l3", bank.tile, bank.mshr))
        san = self
        inner_process = bank._process

        def process(src: int, msg) -> None:
            inner_process(src, msg)
            if msg.op not in ("GetU", "MemRead"):
                san._check_line(san._line(msg.addr))

        bank._process = process

    def _check_line(self, base: int) -> None:
        """Cross-tile snapshot invariants for one line."""
        M, E, S = self._mesi()
        writers = []
        sharers = []
        for tile, l2 in self._l2s.items():
            line = l2.array.lookup(base, touch=False)
            if line is None:
                continue
            if line.state in (M, E):
                writers.append(tile)
            elif line.state == S:
                sharers.append(tile)

        def excused(tile: int) -> bool:
            # An Inv in flight to the tile makes its stale copy legal.
            return self._invs.get((base, tile), 0) > 0

        if len(writers) > 1:
            unexcused = [t for t in writers if not excused(t)]
            if len(unexcused) > 1:
                self._fail(
                    "S1",
                    f"line {base:#x} has multiple M/E owners {writers}",
                    obj=tuple(writers),
                )
        if writers and sharers:
            for tile in sharers:
                if not excused(tile):
                    self._fail(
                        "S1",
                        f"line {base:#x} in M/E at {writers} while still "
                        f"shared at tile {tile} with no Inv in flight",
                        tile=tile,
                    )
        for tile, l1 in self._l1s.items():
            line = l1.array.lookup(base, touch=False)
            if line is None:
                continue
            l2 = self._l2s.get(tile)
            backing = l2.array.lookup(base, touch=False) if l2 else None
            if backing is None:
                self._fail(
                    "S1",
                    f"L1 line {base:#x} not backed by the inclusive L2",
                    tile=tile,
                )
            elif line.writable and backing.state not in (M, E):
                self._fail(
                    "S1",
                    f"L1 writable hint for {base:#x} without L2 write "
                    f"permission (L2 state {backing.state!r})",
                    tile=tile, obj=line,
                )

    # ------------------------------------------------------------------
    # S4: floated-stream lifetime and credit accounting
    # ------------------------------------------------------------------
    def watch_se_l2(self, se) -> None:
        self._se_l2s[se.tile] = se
        san = self
        inner_send = se._send_config

        def send_config(stream) -> None:
            # One ledger entry per incarnation (tile, sid, epoch) that
            # reaches an SE_L3: each must be ended or dropped exactly
            # once there. Pure-L2 plan floats never configure an SE_L3
            # and stay out of the ledger; a deferred config enters it
            # at send time with every credit granted so far.
            inner_send(stream)
            ikey = (se.tile, stream.sid, stream.epoch)
            if ikey in san._floats:
                san._fail(
                    "S4", f"stream incarnation {ikey} configured twice",
                    tile=se.tile, obj=ikey,
                )
            san._floats[ikey] = 1
            key = (se.tile, stream.sid)
            san._granted[key] = (
                san._granted.get(key, 0) + stream.granted - stream.l3_start
            )

        se._send_config = send_config
        inner_free = se._free

        def free(stream, count: int) -> None:
            before_granted = stream.granted
            sent_before = stream.config_sent
            inner_free(stream, count)
            delta = stream.granted - before_granted
            if delta > 0 and sent_before:
                # Grants before the config is sent ride the config
                # itself (counted by the send wrapper above).
                key = (se.tile, stream.sid)
                san._granted[key] = san._granted.get(key, 0) + delta

        se._free = free

    def watch_se_l3(self, se) -> None:
        self._se_l3s[se.tile] = se
        san = self
        inner_issue = se._issue_one

        def issue_one(stream) -> bool:
            members = (
                list(stream.group.members) if stream.group is not None
                else [stream]
            )
            before = {m.key: m.credits for m in members}
            out = inner_issue(stream)
            for m in members:
                spent = before[m.key] - m.credits
                if spent > 0:
                    san._consume(m.key, spent, se.tile)
            fwd = se.forwarding.get(stream.key)
            if stream.key not in se.streams and (
                fwd is None or fwd[1] != stream.epoch
            ):
                # Silent completion. (A migration leaves a forwarding
                # breadcrumb carrying this incarnation's epoch; an
                # older breadcrumb for the same key doesn't count.)
                san._terminate(
                    (stream.requester, stream.spec.sid, stream.epoch),
                    se.tile,
                )
            return out

        se._issue_one = issue_one
        for name in ("_end", "check_write", "flush_floating"):
            self._wrap_terminal(se, name)
        inner_configure = se._configure

        def configure(spec, children, requester, start_idx, credits,
                      epoch=0, migrated=False, plan=None):
            key = (requester, spec.sid)
            prev = se.streams.get(key)
            out = inner_configure(spec, children, requester, start_idx,
                                  credits, epoch, migrated, plan)
            cur = se.streams.get(key)
            if cur is prev:
                # The incoming incarnation was not installed (admission
                # rejection or stale Migrate): it dies here.
                san._terminate((requester, spec.sid, epoch), se.tile)
            elif prev is not None:
                # A superseded resident incarnation was replaced.
                san._terminate(
                    (requester, spec.sid, prev.epoch), se.tile,
                )
            # Forward the verdict so observability wrappers stacked
            # outside this one still see it.
            return out

        se._configure = configure
        inner_ready = se._data_ready

        def data_ready(participants, element, msg) -> None:
            if len(participants) > se.MAX_GROUP:
                san._fail(
                    "S4",
                    f"confluence fan-out {len(participants)} exceeds the "
                    f"group cap {se.MAX_GROUP}",
                    tile=se.tile, obj=[m.key for m in participants],
                )
            tiles = [m.requester for m in participants]
            if len(set(tiles)) != len(tiles):
                san._fail(
                    "S4", "duplicate requester tile in confluence multicast",
                    tile=se.tile, obj=tiles,
                )
            if len(participants) > 1:
                blocks = {se.mesh.block_of(t, se.BLOCK) for t in tiles}
                if len(blocks) > 1:
                    san._fail(
                        "S4",
                        f"confluence group spans tile blocks {sorted(blocks)}",
                        tile=se.tile, obj=tiles,
                    )
            inner_ready(participants, element, msg)

        se._data_ready = data_ready

    def _wrap_terminal(self, se, name: str) -> None:
        """Wrap an SE_L3 method that may remove streams: any key that
        leaves ``se.streams`` without a forwarding entry terminated
        here (migrations leave a forwarding breadcrumb)."""
        san = self
        inner = getattr(se, name)

        def wrapped(*args, **kwargs):
            before = dict(se.streams)
            out = inner(*args, **kwargs)
            for key, stream in before.items():
                if se.streams.get(key) is stream:
                    continue
                fwd = se.forwarding.get(key)
                if fwd is None or fwd[1] != stream.epoch:
                    san._terminate((key[0], key[1], stream.epoch), se.tile)
            return out

        wrapped.__qualname__ = getattr(inner, "__qualname__", name)
        setattr(se, name, wrapped)

    def _terminate(self, ikey, tile: int) -> None:
        """Record the death of incarnation ``(tile, sid, epoch)``."""
        if ikey not in self._floats:
            return  # configured outside a watched SE_L2 (bare-rig tests)
        n = self._terms.get(ikey, 0) + 1
        self._terms[ikey] = n
        if n > 1:
            self._fail(
                "S4",
                f"stream incarnation {ikey} ended/dropped {n} times",
                tile=tile, obj=ikey,
            )

    def _consume(self, key, count: int, tile: int) -> None:
        if key not in self._granted:
            return
        consumed = self._consumed.get(key, 0) + count
        self._consumed[key] = consumed
        if consumed > self._granted[key]:
            self._fail(
                "S4",
                f"stream {key} consumed {consumed} credits but only "
                f"{self._granted[key]} were granted",
                tile=tile, obj=key,
            )

    # ------------------------------------------------------------------
    # quiescence checks (from Chip.run after the final drain)
    # ------------------------------------------------------------------
    def final_check(self) -> None:
        """Strict invariants that only hold once the event queue has
        drained: exact directory agreement, empty MSHRs, zero packets
        in flight, no stream state left anywhere."""
        for label, tile, mshr in self._mshrs:
            if len(mshr):
                self._fail(
                    "S2",
                    f"{label} MSHR file not empty at drain",
                    tile=tile, obj=mshr.outstanding(),
                )
        if self._in_flight:
            self._fail(
                "S3",
                f"{len(self._in_flight)} packets injected but never "
                "delivered",
                obj=[pkt for pkt, _ in list(self._in_flight.values())[:4]],
            )
        if self._injected != self._delivered:
            self._fail(
                "S3",
                f"packet conservation broken: {self._injected} injected, "
                f"{self._delivered} delivered",
            )
        if self._invs:
            self._fail(
                "S1", "invalidations still marked in flight at drain",
                obj=dict(self._invs),
            )
        self._final_directory_check()
        self._final_stream_check()

    def _final_directory_check(self) -> None:
        M, E, _S = self._mesi()
        for btile, bank in self._banks.items():
            for base, ent in bank.dir.items():
                for tile in ent.holders():
                    l2 = self._l2s.get(tile)
                    line = l2.array.lookup(base, touch=False) if l2 else None
                    if line is None:
                        self._fail(
                            "S1",
                            f"directory lists tile {tile} for {base:#x} but "
                            "its L2 does not hold the line",
                            tile=btile, obj=ent,
                        )
                if ent.owner is not None:
                    l2 = self._l2s.get(ent.owner)
                    line = l2.array.lookup(base, touch=False) if l2 else None
                    if line is not None and line.state not in (M, E):
                        self._fail(
                            "S1",
                            f"directory owner {ent.owner} of {base:#x} holds "
                            f"it in state {line.state!r}",
                            tile=btile, obj=ent,
                        )
        for tile, l2 in self._l2s.items():
            if l2.nuca is None:
                break  # bare rig without a NUCA map: skip reverse check
            for line in l2.array.all_lines():
                bank = self._banks.get(l2.nuca.bank_of(line.addr))
                if bank is None:
                    continue
                ent = bank.dir.peek(line.addr)
                if ent is None or tile not in ent.holders():
                    self._fail(
                        "S1",
                        f"L2 holds {line.addr:#x} (state {line.state!r}) "
                        "unknown to its home directory",
                        tile=tile, obj=line,
                    )
                elif line.state in (M, E) and ent.owner != tile:
                    self._fail(
                        "S1",
                        f"L2 holds {line.addr:#x} in {line.state!r} but the "
                        f"directory owner is {ent.owner}",
                        tile=tile, obj=ent,
                    )
        for tile, l1 in self._l1s.items():
            l2 = self._l2s.get(tile)
            if l2 is None:
                continue
            for line in l1.array.all_lines():
                if not l2.array.contains(line.addr):
                    self._fail(
                        "S1",
                        f"L1 line {line.addr:#x} missing from the inclusive "
                        "L2",
                        tile=tile, obj=line,
                    )

    def _final_stream_check(self) -> None:
        for tile, se in self._se_l3s.items():
            if se.streams:
                self._fail(
                    "S4", "floated streams still resident at drain",
                    tile=tile, obj=sorted(se.streams),
                )
            if se.pending_credits:
                self._fail(
                    "S4", "credits still parked at drain",
                    tile=tile, obj=dict(se.pending_credits),
                )
            if se.groups:
                self._fail(
                    "S4", "confluence group leaked at drain",
                    tile=tile, obj=se.groups,
                )
        for tile, se in self._se_l2s.items():
            for sid, stream in se.streams.items():
                if stream.waiters or stream.child_waiters:
                    self._fail(
                        "S4",
                        f"SE_L2 stream {sid} still has waiters at drain",
                        tile=tile, obj=stream.waiters,
                    )
        for ikey in self._floats:
            if self._terms.get(ikey, 0) != 1:
                self._fail(
                    "S4",
                    f"stream incarnation {ikey} floated but was "
                    f"ended/dropped {self._terms.get(ikey, 0)} times",
                    obj=ikey,
                )
