"""Handler-layer fast-path gate (DESIGN.md §12).

The fast paths fuse uncontended handler chains into synchronous
calls, intern hot counters, pool messages and batch affine issue.
They are **on by default** and must be architecturally invisible:
cycles and every architectural stat are byte-identical with the
fast paths disabled.  ``REPRO_FASTPATH=0`` restores the fully
event-driven reference path (the equivalence suite runs both and
diffs them).

The gate is resolved once per :class:`~repro.sim.kernel.Simulator`
construction and cached on the instance as ``sim.fastpath`` so hot
handlers test one attribute instead of the environment.
"""

from __future__ import annotations

import os

ENV_FASTPATH = "REPRO_FASTPATH"

_OFF_VALUES = ("0", "off", "false", "no")


def enabled() -> bool:
    """True unless ``REPRO_FASTPATH`` opts out (default: on)."""
    value = os.environ.get(ENV_FASTPATH, "1")
    return value.strip().lower() not in _OFF_VALUES
