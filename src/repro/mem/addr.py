"""Address arithmetic: cache lines, pages, and static-NUCA interleaving.

The paper's L3 is a static NUCA: physical addresses are interleaved
across the 64 L3 banks at a configurable granularity (64 B by default
for the baselines; stream floating prefers 1 kB — Figure 17 sweeps
64 B / 256 B / 1 kB / 4 kB). A stream "migrates" between banks exactly
when its next address maps to a different bank under this interleaving.
"""

from __future__ import annotations

LINE_SIZE = 64
LINE_SHIFT = 6
PAGE_SIZE = 4096
PAGE_SHIFT = 12


def line_addr(addr: int) -> int:
    """Align ``addr`` down to its cache-line base."""
    return addr & ~(LINE_SIZE - 1)


def line_offset(addr: int) -> int:
    """Byte offset of ``addr`` within its cache line."""
    return addr & (LINE_SIZE - 1)


def line_index(addr: int) -> int:
    """Cache-line number of ``addr``."""
    return addr >> LINE_SHIFT


def page_addr(addr: int) -> int:
    """Align ``addr`` down to its page base."""
    return addr & ~(PAGE_SIZE - 1)


def page_index(addr: int) -> int:
    """Page number of ``addr``."""
    return addr >> PAGE_SHIFT


def same_line(a: int, b: int) -> bool:
    return line_addr(a) == line_addr(b)


def same_page(a: int, b: int) -> bool:
    return page_addr(a) == page_addr(b)


def lines_covered(addr: int, size: int) -> range:
    """Line numbers touched by the byte range [addr, addr + size)."""
    if size <= 0:
        raise ValueError("size must be positive")
    first = line_index(addr)
    last = line_index(addr + size - 1)
    return range(first, last + 1)


class NucaMap:
    """Static-NUCA mapping of addresses to L3 banks.

    Addresses are interleaved round-robin across ``num_banks`` banks at
    ``interleave`` byte granularity. ``interleave`` must be a multiple
    of the cache line size (the paper uses 64 B, 256 B, 1 kB or 4 kB).
    """

    def __init__(self, num_banks: int, interleave: int = LINE_SIZE) -> None:
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if interleave < LINE_SIZE or interleave % LINE_SIZE:
            raise ValueError(
                f"interleave must be a multiple of the {LINE_SIZE}B line size"
            )
        if interleave & (interleave - 1):
            raise ValueError("interleave must be a power of two")
        self.num_banks = num_banks
        self.interleave = interleave

    def bank_of(self, addr: int) -> int:
        """L3 bank holding ``addr``."""
        return (addr // self.interleave) % self.num_banks

    def chunk_base(self, addr: int) -> int:
        """Base address of the interleave chunk containing ``addr``."""
        return addr & ~(self.interleave - 1)

    def chunk_end(self, addr: int) -> int:
        """First address after the chunk containing ``addr``."""
        return self.chunk_base(addr) + self.interleave

    def same_bank(self, a: int, b: int) -> bool:
        return self.bank_of(a) == self.bank_of(b)

    def __repr__(self) -> str:
        return f"NucaMap(num_banks={self.num_banks}, interleave={self.interleave})"
