"""Memory controllers.

Table III places one DDR3-1600 controller at each of the four mesh
corners, 12.8 GB/s aggregate. We model each controller as a fixed
access latency plus a bandwidth bottleneck: back-to-back line
transfers serialize at ``cycles_per_line`` (64 B at 3.2 GB/s per
controller and 2 GHz core clock = 40 cycles per line).

Addresses are interleaved across controllers at page granularity so
streaming workloads load-balance the corners.
"""

from __future__ import annotations

from typing import List

from repro.mem.addr import PAGE_SHIFT
from repro.noc.message import CTRL, DATA, Packet, data_payload_bits
from repro.mem.coherence import CohMsg, release_msg
from repro.noc.network import Network
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats


class DramController:
    """One memory controller attached to a corner tile."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        stats: Stats,
        tile: int,
        access_latency: int = 100,
        cycles_per_line: int = 40,
    ) -> None:
        self.sim = sim
        self.net = net
        self.stats = stats
        self.tile = tile
        self.access_latency = access_latency
        self.cycles_per_line = cycles_per_line
        self._busy_until = 0
        # Telemetry tag: completion cycle of the most recent service
        # (access latency on top of the channel-serialization queue).
        self.last_done = 0
        self._pooling = getattr(sim, "pooling", False)
        self._c_reads = stats.counter("dram.reads")
        self._c_writes = stats.counter("dram.writes")
        net.register(tile, "dram", self.handle)
        tel = getattr(sim, "telemetry", None)
        if tel is not None:
            tel.watch_dram(self)

    def handle(self, pkt: Packet) -> None:
        msg: CohMsg = pkt.body
        if msg.op == "MemRead":
            self._c_reads[0] += 1
            done = self._service()
            # Build the response eagerly and schedule the bound send
            # directly — no closure allocation per read.
            self.sim.schedule_at(done, self.net.send, Packet(
                src=self.tile, dst=pkt.src, kind=DATA,
                payload_bits=data_payload_bits(64),
                dst_port="l3",
                body=CohMsg(
                    op="MemData", addr=msg.addr, requester=msg.requester,
                    se_info=msg.se_info,
                ),
            ))
        elif msg.op == "MemWrite":
            self._c_writes[0] += 1
            self._service()
        else:
            raise ValueError(f"DRAM controller got unexpected op {msg.op!r}")
        if self._pooling:
            # MemRead/MemWrite are consumed fully above (the MemData
            # response copies what it needs), so the body recycles.
            release_msg(msg)

    def _service(self) -> int:
        """Reserve the channel for one line; returns completion cycle."""
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + self.cycles_per_line
        self.last_done = start + self.access_latency
        return self.last_done


class DramSystem:
    """The four corner controllers plus the page-interleaved mapping."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        stats: Stats,
        access_latency: int = 100,
        cycles_per_line: int = 40,
    ) -> None:
        corner_tiles = net.mesh.corners()
        self.controllers: List[DramController] = [
            DramController(
                sim, net, stats, tile,
                access_latency=access_latency,
                cycles_per_line=cycles_per_line,
            )
            for tile in dict.fromkeys(corner_tiles)
        ]

    CHANNEL_INTERLEAVE_SHIFT = PAGE_SHIFT  # page-granularity channels

    def controller_tile(self, addr: int) -> int:
        """Corner tile homing ``addr``.

        Channels interleave at page granularity (open-page address
        mapping: consecutive lines of a page stay on one channel for
        row-buffer locality). Together with Table III's 12.8 GB/s
        budget this reproduces the contended-memory regime the
        paper's 64-core evaluation operates in.
        """
        idx = (addr >> self.CHANNEL_INTERLEAVE_SHIFT) % len(self.controllers)
        return self.controllers[idx].tile
