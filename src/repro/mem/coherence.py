"""Coherence protocol messages and the L3 directory.

The chip runs a 3-level MESI protocol with an in-LLC directory: each
L3 bank tracks, for every line it homes, the set of private L2 sharers
and (exclusively) the single owner in M/E state.

The stream-floating extension adds ``GetU`` ("get uncached", Fig 12):
the requested data is returned to the requesting tile's SE_L2 buffer
*without* the requester being recorded as a sharer. If another L2 owns
the line in M state, the request is forwarded and the owner supplies
the data without changing its own state — exactly the three cases in
Figure 12 (present / not present / owned elsewhere).

Message taxonomy (``CohMsg.op``):

==============  =======  ==================================================
op              class    meaning
==============  =======  ==================================================
GetS            ctrl     read request, requester becomes sharer
GetX            ctrl     write request, requester becomes owner
GetU            ctrl     uncached stream read (no directory update)
PutS            ctrl     clean eviction notice (snoop-filter update)
PutM            data     dirty writeback from an L2
PutAck          ctrl     bank acknowledges a PutM
Data            data     line data response to an L2 (grant S/E/M)
DataU           data     uncached line/subline response to an SE_L2
FwdGetS         ctrl     bank asks M/E owner to service a GetS
FwdGetX         ctrl     bank asks owner to service a GetX and invalidate
FwdGetU         ctrl     bank asks owner to service a GetU (Fig 12c)
FwdMiss         ctrl     owner no longer had the line; bank retries
DownData        data     owner's writeback accompanying a FwdGetS downgrade
Inv             ctrl     invalidate a sharer (GetX or LLC back-inval)
InvAck          ctrl     sharer's invalidation acknowledgement
MemRead         ctrl     L3 bank -> memory controller fetch
MemWrite        data     writeback to memory
MemData         data     memory controller -> L3 bank fill
==============  =======  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.mem.addr import LINE_SIZE, line_addr

_LINE_MASK = ~(LINE_SIZE - 1)  # line_addr(), inlined for the hot paths

# Ops whose packets carry a full line (or subline) of data.
DATA_OPS = frozenset(
    {"Data", "DataU", "PutM", "DownData", "MemWrite", "MemData"}
)


class CohMsg:
    """A coherence-protocol message body (rides inside a NoC packet)."""

    __slots__ = (
        "op", "addr",
        "requester",  # tile id of the L2/SE that started the transaction
        # Request provenance for Figure 14's L3 request breakdown:
        # "core" (demand/prefetch), "core_stream" (SE_core-issued, not
        # floated), or set by SE_L3 ("float_affine"/"float_ind"/
        # "float_conf").
        "source",
        # Data-grant annotations:
        "grant",       # state granted by a Data response: "S", "E" or "M"
        "dirty",
        "data_bytes",  # subline responses carry less (§IV-B)
        # Stream annotations on GetU/DataU:
        "stream_id", "element",
        "se_info",  # opaque SE_L3 bookkeeping echoed in responses
        # LLC back-invalidation may require the owner to write straight
        # to memory (the bank no longer tracks the line).
        "writeback_to_dram",
        # Bank-internal: request already counted in the L3 request stats
        # (set when a request is parked/replayed, to avoid double
        # counts).
        "seen",
    )

    def __init__(
        self,
        op: str,
        addr: int,
        requester: int,
        source: str = "core",
        grant: str = "",
        dirty: bool = False,
        data_bytes: int = 64,
        stream_id: Optional[int] = None,
        element: Optional[int] = None,
        se_info: object = None,
        writeback_to_dram: bool = False,
        seen: bool = False,
    ) -> None:
        self.op = op
        self.addr = addr
        self.requester = requester
        self.source = source
        self.grant = grant
        self.dirty = dirty
        self.data_bytes = data_bytes
        self.stream_id = stream_id
        self.element = element
        self.se_info = se_info
        self.writeback_to_dram = writeback_to_dram
        self.seen = seen

    def __repr__(self) -> str:
        return (
            f"CohMsg(op={self.op!r}, addr={self.addr:#x}, "
            f"requester={self.requester}, source={self.source!r}, "
            f"grant={self.grant!r}, dirty={self.dirty}, "
            f"data_bytes={self.data_bytes}, stream_id={self.stream_id}, "
            f"element={self.element})"
        )

    @property
    def carries_data(self) -> bool:
        return self.op in DATA_OPS


# ----------------------------------------------------------------------
# Transient-message free-list (DESIGN.md §12).
#
# Messages whose receiving handler consumes them fully and synchronously
# (never queues, forwards, or stores them) can cycle through a pool
# instead of being allocated fresh per hop. That is true for bodies the
# L2 and DRAM controllers receive — their handlers return before the
# next event runs — but NOT for L3-bound bodies (the bank re-schedules
# the body behind its access latency), multicast bodies (shared across
# deliveries), or requests (parked in MSHR meta). Release is gated on
# ``sim.pooling`` by the caller; acquire is unconditional (an empty
# pool degrades to a plain allocation).
_MSG_POOL: list = []


def acquire_msg(
    op: str,
    addr: int,
    requester: int,
    source: str = "core",
    grant: str = "",
    dirty: bool = False,
    data_bytes: int = 64,
    stream_id: Optional[int] = None,
    element: Optional[int] = None,
    se_info: object = None,
    writeback_to_dram: bool = False,
) -> CohMsg:
    """A :class:`CohMsg` from the free-list (or fresh when empty)."""
    pool = _MSG_POOL
    if not pool:
        return CohMsg(
            op, addr, requester, source, grant, dirty, data_bytes,
            stream_id, element, se_info, writeback_to_dram,
        )
    msg = pool.pop()
    msg.op = op
    msg.addr = addr
    msg.requester = requester
    msg.source = source
    msg.grant = grant
    msg.dirty = dirty
    msg.data_bytes = data_bytes
    msg.stream_id = stream_id
    msg.element = element
    msg.se_info = se_info
    msg.writeback_to_dram = writeback_to_dram
    msg.seen = False
    return msg


def release_msg(msg: CohMsg) -> None:
    """Return a fully-consumed transient message to the free-list."""
    msg.se_info = None
    _MSG_POOL.append(msg)


@dataclass
class DirEntry:
    """Directory state for one line homed at an L3 bank."""

    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None  # tile id holding the line in M/E

    @property
    def idle(self) -> bool:
        return not self.sharers and self.owner is None

    def holders(self) -> Set[int]:
        """All tiles the directory believes hold the line."""
        holders = set(self.sharers)
        if self.owner is not None:
            holders.add(self.owner)
        return holders


class Directory:
    """Sharer/owner tracking for the lines homed at one L3 bank."""

    def __init__(self) -> None:
        self._entries: Dict[int, DirEntry] = {}
        self.invalidations_sent = 0

    def entry(self, addr: int) -> DirEntry:
        base = addr & _LINE_MASK
        entries = self._entries
        if base in entries:
            return entries[base]
        ent = entries[base] = DirEntry()
        return ent

    def peek(self, addr: int) -> Optional[DirEntry]:
        """Entry if one exists, without creating it."""
        base = addr & _LINE_MASK
        entries = self._entries
        return entries[base] if base in entries else None

    def add_sharer(self, addr: int, tile: int) -> None:
        ent = self.entry(addr)
        ent.sharers.add(tile)
        if ent.owner == tile:
            ent.owner = None

    def set_owner(self, addr: int, tile: int) -> None:
        ent = self.entry(addr)
        ent.owner = tile
        ent.sharers.clear()

    def remove(self, addr: int, tile: int) -> None:
        """Drop ``tile`` from the line's sharers/owner (PutS/PutM/Inv)."""
        ent = self._entries.get(line_addr(addr))
        if ent is None:
            return
        ent.sharers.discard(tile)
        if ent.owner == tile:
            ent.owner = None
        if ent.idle:
            del self._entries[line_addr(addr)]

    def clear(self, addr: int) -> Optional[DirEntry]:
        """Forget the line entirely (LLC eviction); returns old entry."""
        return self._entries.pop(line_addr(addr), None)

    def items(self):
        """(line address, entry) pairs for every tracked line."""
        return self._entries.items()

    def __len__(self) -> int:
        return len(self._entries)
