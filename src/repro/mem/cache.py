"""Set-associative cache array with the metadata the paper measures.

This is the tag/data bookkeeping shared by L1, L2 and L3 controllers.
Beyond the usual state, each line tracks:

- ``uses``: demand accesses since fill — a line evicted with
  ``uses <= 1`` (the fill's own demand use) counts as *evicted without
  reuse*, the quantity in Figure 2a;
- ``stream_id``: the stream that brought the line in (the paper extends
  the private-cache tag array with a 4-bit stream id, §IV-D), used both
  for the reuse-history float policy and for Figure 2a's "stream"
  fraction;
- ``prefetched``: whether a prefetcher (not a demand miss) filled it,
  for prefetch accuracy accounting;
- ``fill_flits``: NoC flits spent bringing the line in, so eviction-
  without-reuse traffic (Figure 2b) can be attributed per line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mem.addr import LINE_SIZE, line_addr
from repro.mem.replacement import ReplacementPolicy, make_policy

# Coherence states (MESI). The same enum serves private caches and the
# LLC/directory; not every state is meaningful at every level.
INVALID = "I"
SHARED = "S"
EXCLUSIVE = "E"
MODIFIED = "M"


@dataclass
class CacheLine:
    """One cache line's tag entry."""

    addr: int = 0
    state: str = INVALID
    dirty: bool = False
    # --- accounting used by the paper's measurements ---
    fill_cycle: int = 0
    uses: int = 0
    prefetched: bool = False
    stream_id: Optional[int] = None
    fill_flits: int = 0  # data flits spent filling the line
    fill_flits_ctrl: int = 0  # control flits spent filling the line
    seq_num: int = 0  # aliasing-window sequence tag (SS IV-E)
    writable: bool = False  # L1-level hint: backing L2 state is M/E

    @property
    def valid(self) -> bool:
        return self.state != INVALID


class CacheArray:
    """A set-associative array of :class:`CacheLine`.

    The array does pure tag management: controllers decide when to
    look up, fill and evict, and own all timing and messaging.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        replacement: str = "lru",
        seed: int = 0,
        set_index_fn=None,
    ) -> None:
        """``set_index_fn(addr) -> int`` overrides the default set
        index (line number). L3 banks use it to index by *bank-local*
        line number, so the NUCA interleave bits don't alias away most
        of the bank's sets."""
        if size_bytes % (ways * LINE_SIZE):
            raise ValueError(
                f"size {size_bytes} not divisible into {ways}-way sets of "
                f"{LINE_SIZE}B lines"
            )
        self.size_bytes = size_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * LINE_SIZE)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"number of sets ({self.num_sets}) must be a power of two")
        self._lines: List[List[CacheLine]] = [
            [CacheLine() for _ in range(ways)] for _ in range(self.num_sets)
        ]
        self._policies: List[ReplacementPolicy] = [
            make_policy(replacement, ways, seed=seed + set_idx)
            for set_idx in range(self.num_sets)
        ]
        self._set_index_fn = set_index_fn
        # Map line base address -> (set, way) for O(1) lookups.
        self._where: Dict[int, Tuple[int, int]] = {}

    def set_of(self, addr: int) -> int:
        if self._set_index_fn is not None:
            return self._set_index_fn(addr) & (self.num_sets - 1)
        return (addr >> 6) & (self.num_sets - 1)

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the line holding ``addr``, updating recency if
        ``touch``; ``None`` on miss."""
        base = line_addr(addr)
        loc = self._where.get(base)
        if loc is None:
            return None
        set_idx, way = loc
        line = self._lines[set_idx][way]
        if touch:
            self._policies[set_idx].on_hit(way)
        return line

    def contains(self, addr: int) -> bool:
        return line_addr(addr) in self._where

    def pick_victim(self, addr: int, avoid=None) -> Tuple[int, CacheLine]:
        """Choose (way, line) to evict so ``addr`` can be filled.

        Does not modify state; the caller should handle writeback of a
        valid victim, then call :meth:`fill`. ``avoid`` is an optional
        predicate over line addresses; lines it matches (e.g. lines
        with in-flight transactions) are skipped unless every way
        matches, in which case a RuntimeError is raised.
        """
        set_idx = self.set_of(addr)
        ways = self._lines[set_idx]
        valid = [ln.valid for ln in ways]
        policy = self._policies[set_idx]
        for _attempt in range(self.ways):
            way = policy.victim(valid)
            line = ways[way]
            if avoid is None or not line.valid or not avoid(line.addr):
                return way, line
            # Pinned: make it most-recently-used and try again.
            policy.on_hit(way)
        raise RuntimeError(f"all ways pinned in set {set_idx}")

    def fill(
        self,
        addr: int,
        state: str,
        now: int = 0,
        prefetched: bool = False,
        stream_id: Optional[int] = None,
        fill_flits: int = 0,
        fill_flits_ctrl: int = 0,
        avoid=None,
    ) -> Tuple[CacheLine, Optional[CacheLine]]:
        """Insert ``addr``; returns (new_line, evicted_copy_or_None).

        The evicted line is returned as a *copy* holding its final
        metadata so the controller can account for it after the slot
        has been reused. ``avoid`` is forwarded to :meth:`pick_victim`.
        """
        base = line_addr(addr)
        if base in self._where:
            raise ValueError(f"fill of already-present line {base:#x}")
        set_idx = self.set_of(addr)
        way, victim = self.pick_victim(addr, avoid=avoid)
        evicted: Optional[CacheLine] = None
        if victim.valid:
            evicted = CacheLine(**vars(victim))
            del self._where[victim.addr]
        victim.addr = base
        victim.state = state
        victim.dirty = False
        victim.fill_cycle = now
        victim.uses = 0
        victim.prefetched = prefetched
        victim.stream_id = stream_id
        victim.fill_flits = fill_flits
        victim.fill_flits_ctrl = fill_flits_ctrl
        victim.seq_num = 0
        victim.writable = False
        self._where[base] = (set_idx, way)
        self._policies[set_idx].on_fill(way)
        return victim, evicted

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Drop ``addr`` if present; returns a copy of the dropped line."""
        base = line_addr(addr)
        loc = self._where.pop(base, None)
        if loc is None:
            return None
        set_idx, way = loc
        line = self._lines[set_idx][way]
        copy = CacheLine(**vars(line))
        line.state = INVALID
        line.dirty = False
        return copy

    def all_lines(self) -> List[CacheLine]:
        """All valid lines (test/debug helper)."""
        return [ln for st in self._lines for ln in st if ln.valid]

    def occupancy(self) -> int:
        return len(self._where)

    def __len__(self) -> int:
        return len(self._where)
