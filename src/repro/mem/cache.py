"""Set-associative cache array with the metadata the paper measures.

This is the tag/data bookkeeping shared by L1, L2 and L3 controllers.
Beyond the usual state, each line tracks:

- ``uses``: demand accesses since fill — a line evicted with
  ``uses <= 1`` (the fill's own demand use) counts as *evicted without
  reuse*, the quantity in Figure 2a;
- ``stream_id``: the stream that brought the line in (the paper extends
  the private-cache tag array with a 4-bit stream id, §IV-D), used both
  for the reuse-history float policy and for Figure 2a's "stream"
  fraction;
- ``prefetched``: whether a prefetcher (not a demand miss) filled it,
  for prefetch accuracy accounting;
- ``fill_flits``: NoC flits spent bringing the line in, so eviction-
  without-reuse traffic (Figure 2b) can be attributed per line.

The array preallocates ``sets x ways`` :class:`CacheLine` slots in one
flat list (slot = ``set * ways + way``) and keeps a line-base -> slot
map, so lookups are one dict probe + one list index with no nested
containers on the hot path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mem.addr import LINE_SIZE, line_addr
from repro.mem.replacement import ReplacementPolicy, make_policy

# Coherence states (MESI). The same enum serves private caches and the
# LLC/directory; not every state is meaningful at every level.
INVALID = "I"
SHARED = "S"
EXCLUSIVE = "E"
MODIFIED = "M"


class CacheLine:
    """One cache line's tag entry."""

    __slots__ = (
        "addr", "state", "dirty",
        # --- accounting used by the paper's measurements ---
        "fill_cycle", "uses", "prefetched", "stream_id",
        "fill_flits",       # data flits spent filling the line
        "fill_flits_ctrl",  # control flits spent filling the line
        "seq_num",          # aliasing-window sequence tag (§IV-E)
        "writable",         # L1-level hint: backing L2 state is M/E
    )

    def __init__(
        self,
        addr: int = 0,
        state: str = INVALID,
        dirty: bool = False,
        fill_cycle: int = 0,
        uses: int = 0,
        prefetched: bool = False,
        stream_id: Optional[int] = None,
        fill_flits: int = 0,
        fill_flits_ctrl: int = 0,
        seq_num: int = 0,
        writable: bool = False,
    ) -> None:
        self.addr = addr
        self.state = state
        self.dirty = dirty
        self.fill_cycle = fill_cycle
        self.uses = uses
        self.prefetched = prefetched
        self.stream_id = stream_id
        self.fill_flits = fill_flits
        self.fill_flits_ctrl = fill_flits_ctrl
        self.seq_num = seq_num
        self.writable = writable

    @property
    def valid(self) -> bool:
        return self.state != INVALID

    def copy(self) -> "CacheLine":
        """Snapshot for post-eviction accounting."""
        dup = CacheLine.__new__(CacheLine)
        dup.addr = self.addr
        dup.state = self.state
        dup.dirty = self.dirty
        dup.fill_cycle = self.fill_cycle
        dup.uses = self.uses
        dup.prefetched = self.prefetched
        dup.stream_id = self.stream_id
        dup.fill_flits = self.fill_flits
        dup.fill_flits_ctrl = self.fill_flits_ctrl
        dup.seq_num = self.seq_num
        dup.writable = self.writable
        return dup

    def __repr__(self) -> str:  # debugging / sanitizer reports
        return (
            f"CacheLine(addr={self.addr:#x}, state={self.state!r}, "
            f"dirty={self.dirty}, uses={self.uses}, "
            f"stream_id={self.stream_id}, prefetched={self.prefetched})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheLine):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in CacheLine.__slots__
        )


class CacheArray:
    """A set-associative array of :class:`CacheLine`.

    The array does pure tag management: controllers decide when to
    look up, fill and evict, and own all timing and messaging.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        replacement: str = "lru",
        seed: int = 0,
        set_index_fn=None,
    ) -> None:
        """``set_index_fn(addr) -> int`` overrides the default set
        index (line number). L3 banks use it to index by *bank-local*
        line number, so the NUCA interleave bits don't alias away most
        of the bank's sets."""
        if size_bytes % (ways * LINE_SIZE):
            raise ValueError(
                f"size {size_bytes} not divisible into {ways}-way sets of "
                f"{LINE_SIZE}B lines"
            )
        self.size_bytes = size_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * LINE_SIZE)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"number of sets ({self.num_sets}) must be a power of two")
        # Flat slot array: slot = set_idx * ways + way.
        self._slots: List[CacheLine] = [
            CacheLine() for _ in range(self.num_sets * ways)
        ]
        self._policies: List[ReplacementPolicy] = [
            make_policy(replacement, ways, seed=seed + set_idx)
            for set_idx in range(self.num_sets)
        ]
        self._set_index_fn = set_index_fn
        self._set_mask = self.num_sets - 1
        # Map line base address -> flat slot for O(1) lookups.
        self._where: Dict[int, int] = {}
        # Shared all-valid vector for pick_victim's no-free-way case;
        # policies only read it, so one instance serves every set.
        self._all_valid = [True] * ways

    def set_of(self, addr: int) -> int:
        if self._set_index_fn is not None:
            return self._set_index_fn(addr) & self._set_mask
        return (addr >> 6) & self._set_mask

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the line holding ``addr``, updating recency if
        ``touch``; ``None`` on miss."""
        base = addr & ~(LINE_SIZE - 1)
        where = self._where
        if base not in where:
            return None
        slot = where[base]
        if touch:
            ways = self.ways
            self._policies[slot // ways].on_hit(slot % ways)
        return self._slots[slot]

    def contains(self, addr: int) -> bool:
        return addr & ~(LINE_SIZE - 1) in self._where

    def pick_victim(self, addr: int, avoid=None) -> Tuple[int, CacheLine]:
        """Choose (way, line) to evict so ``addr`` can be filled.

        Does not modify state; the caller should handle writeback of a
        valid victim, then call :meth:`fill`. ``avoid`` is an optional
        predicate over line addresses; lines it matches (e.g. lines
        with in-flight transactions) are skipped unless every way
        matches, in which case a RuntimeError is raised.
        """
        set_idx = self.set_of(addr)
        base_slot = set_idx * self.ways
        slots = self._slots
        nways = self.ways
        # Free-way fast scan: both policies prefer the lowest-index
        # invalid way, so finding one here short-circuits the policy
        # (and the per-fill validity vector) entirely.
        for way in range(nways):
            line = slots[base_slot + way]
            if line.state == INVALID:
                return way, line
        valid = self._all_valid
        policy = self._policies[set_idx]
        for _attempt in range(nways):
            way = policy.victim(valid)
            line = slots[base_slot + way]
            if avoid is None or not line.valid or not avoid(line.addr):
                return way, line
            # Pinned: make it most-recently-used and try again.
            policy.on_hit(way)
        raise RuntimeError(f"all ways pinned in set {set_idx}")

    def fill(
        self,
        addr: int,
        state: str,
        now: int = 0,
        prefetched: bool = False,
        stream_id: Optional[int] = None,
        fill_flits: int = 0,
        fill_flits_ctrl: int = 0,
        avoid=None,
    ) -> Tuple[CacheLine, Optional[CacheLine]]:
        """Insert ``addr``; returns (new_line, evicted_copy_or_None).

        The evicted line is returned as a *copy* holding its final
        metadata so the controller can account for it after the slot
        has been reused. ``avoid`` is forwarded to :meth:`pick_victim`.
        """
        base = addr & ~(LINE_SIZE - 1)
        if base in self._where:
            raise ValueError(f"fill of already-present line {base:#x}")
        set_idx = self.set_of(addr)
        way, victim = self.pick_victim(addr, avoid=avoid)
        evicted: Optional[CacheLine] = None
        if victim.state != INVALID:
            evicted = victim.copy()
            del self._where[victim.addr]
        victim.addr = base
        victim.state = state
        victim.dirty = False
        victim.fill_cycle = now
        victim.uses = 0
        victim.prefetched = prefetched
        victim.stream_id = stream_id
        victim.fill_flits = fill_flits
        victim.fill_flits_ctrl = fill_flits_ctrl
        victim.seq_num = 0
        victim.writable = False
        self._where[base] = set_idx * self.ways + way
        self._policies[set_idx].on_fill(way)
        return victim, evicted

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Drop ``addr`` if present; returns a copy of the dropped line."""
        slot = self._where.pop(line_addr(addr), None)
        if slot is None:
            return None
        line = self._slots[slot]
        copy = line.copy()
        line.state = INVALID
        line.dirty = False
        return copy

    def all_lines(self) -> List[CacheLine]:
        """All valid lines (test/debug helper)."""
        return [ln for ln in self._slots if ln.valid]

    def occupancy(self) -> int:
        return len(self._where)

    def __len__(self) -> int:
        return len(self._where)
