"""Translation lookaside buffers.

The paper assumes a private two-level TLB per core, plus a TLB inside
each SE_L3's translate unit (Table III: 64-entry 8-way L1 TLB,
2k/1k-entry 16-way L2/SE_L3 TLB, 8-cycle L2-TLB latency).

We simulate a single flat address space per workload, so "translation"
is identity; what matters for the paper's measurements is the *timing*
(TLB miss = page walk latency) and the *frequency* of SE translations
(affine streams only translate once per page, indirect streams once
per element — SS IV-E).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.mem.addr import page_index


class Tlb:
    """An LRU TLB over page numbers with a fixed hit/miss latency."""

    def __init__(
        self,
        entries: int,
        hit_latency: int = 1,
        miss_latency: int = 20,
        backing: Optional["Tlb"] = None,
    ) -> None:
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.entries = entries
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self.backing = backing
        self._pages: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def translate(self, vaddr: int) -> int:
        """Translate ``vaddr``; returns access latency in cycles.

        Identity mapping — the returned value is the cost. On a miss
        the page is filled (and looked up in the backing TLB if one is
        configured, adding its cost instead of the full walk when it
        hits there).
        """
        page = page_index(vaddr)
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return self.hit_latency
        self.misses += 1
        cost = self.hit_latency
        if self.backing is not None:
            cost += self.backing.translate(vaddr)
        else:
            cost += self.miss_latency
        self._fill(page)
        return cost

    def _fill(self, page: int) -> None:
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = True

    def flush(self) -> None:
        self._pages.clear()

    def __contains__(self, vaddr: int) -> bool:
        return page_index(vaddr) in self._pages
