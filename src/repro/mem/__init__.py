"""Memory system: caches, coherence, DRAM, TLBs, address math."""

from repro.mem.addr import LINE_SIZE, PAGE_SIZE, NucaMap, line_addr
from repro.mem.cache import (
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    SHARED,
    CacheArray,
    CacheLine,
)
from repro.mem.coherence import CohMsg, DirEntry, Directory
from repro.mem.dram import DramController, DramSystem
from repro.mem.l1 import L1Cache, L1Request
from repro.mem.l2 import L2AccessResult, L2Cache, L2Request
from repro.mem.l3 import L3Bank
from repro.mem.mshr import MshrEntry, MshrFile
from repro.mem.replacement import BrripPolicy, LruPolicy, make_policy
from repro.mem.tlb import Tlb

__all__ = [
    "LINE_SIZE",
    "PAGE_SIZE",
    "NucaMap",
    "line_addr",
    "CacheArray",
    "CacheLine",
    "INVALID",
    "SHARED",
    "EXCLUSIVE",
    "MODIFIED",
    "CohMsg",
    "Directory",
    "DirEntry",
    "DramController",
    "DramSystem",
    "L1Cache",
    "L1Request",
    "L2Cache",
    "L2Request",
    "L2AccessResult",
    "L3Bank",
    "MshrFile",
    "MshrEntry",
    "BrripPolicy",
    "LruPolicy",
    "make_policy",
    "Tlb",
]
