"""Miss-status holding registers.

An MSHR file tracks outstanding misses per cache line so that
concurrent requests for the same line merge into one upstream fetch,
and bounds the number of in-flight misses a cache may have (extra
misses stall, which is one of the ways memory-level parallelism is
limited in the simulated cores and caches).

The file preallocates its ``capacity`` entries as a slot pool with a
free-list, mirroring the hardware structure: :meth:`allocate` pops a
free slot and re-initialises it in place, :meth:`release` detaches the
entry (the caller owns it — fill paths consume waiters/meta after
release, and may allocate the same slot count again immediately) and
:meth:`recycle` returns a detached entry's slot to the pool once the
caller is done with it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.mem.addr import LINE_SIZE

_LINE_MASK = ~(LINE_SIZE - 1)  # line_addr(), inlined for the hot paths


class MshrEntry:
    """One outstanding line miss with its waiting callbacks."""

    __slots__ = (
        "addr", "issued_cycle", "waiters",
        # Arbitrary controller state (e.g. whether any merged request
        # was a demand access vs. only prefetches, or needs write
        # permission).
        "is_write", "is_prefetch_only", "meta",
    )

    def __init__(self, addr: int = 0, issued_cycle: int = 0) -> None:
        self.addr = addr
        self.issued_cycle = issued_cycle
        self.waiters: List[Callable[[Any], None]] = []
        self.is_write = False
        self.is_prefetch_only = True
        self.meta: dict = {}

    def _reset(self, addr: int, issued_cycle: int) -> None:
        self.addr = addr
        self.issued_cycle = issued_cycle
        self.waiters = []
        self.is_write = False
        self.is_prefetch_only = True
        self.meta = {}

    def __repr__(self) -> str:  # debugging / sanitizer reports
        return (
            f"MshrEntry(addr={self.addr:#x}, issued={self.issued_cycle}, "
            f"waiters={len(self.waiters)}, is_write={self.is_write}, "
            f"is_prefetch_only={self.is_prefetch_only})"
        )


class MshrFile:
    """A bounded set of :class:`MshrEntry`, keyed by line address.

    Entries live in a preallocated pool; the dict maps live line
    addresses to pool entries and ``_free`` holds the idle slots.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, MshrEntry] = {}
        self._free: List[MshrEntry] = [MshrEntry() for _ in range(capacity)]
        # Slots on loan to fill paths (released but not yet recycled).
        # Invariant: len(_entries) + len(_free) + _lent == capacity.
        self._lent = 0

    def lookup(self, addr: int) -> Optional[MshrEntry]:
        base = addr & _LINE_MASK
        entries = self._entries
        return entries[base] if base in entries else None

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, addr: int, now: int) -> MshrEntry:
        """Pop a free slot for ``addr``; raises if full or duplicate."""
        base = addr & _LINE_MASK
        entries = self._entries
        if base in entries:
            raise ValueError(f"MSHR already allocated for {base:#x}")
        free = self._free
        if free:
            entry = free.pop()
            entry._reset(base, now)
        elif self._lent:
            # All idle slots are on loan to fill paths; materialize the
            # loaned slot's replacement only now that it is needed.
            self._lent -= 1
            entry = MshrEntry(base, now)
        else:
            raise RuntimeError("MSHR file full")
        entries[base] = entry
        return entry

    def release(self, addr: int) -> MshrEntry:
        """Detach and return the entry for ``addr``.

        The caller owns the returned entry (its waiters/meta stay
        intact); its slot is replenished immediately so a new miss can
        allocate without waiting on the caller, which matches the old
        unpooled behaviour. :meth:`recycle` is therefore optional.
        """
        base = addr & _LINE_MASK
        entry = self._entries.pop(base, None)
        if entry is None:
            raise KeyError(f"no MSHR for {base:#x}")
        self._lent += 1
        return entry

    def recycle(self, entry: MshrEntry) -> None:
        """Return a detached entry's storage to the pool, repaying the
        loan :meth:`release` recorded (keeps the pool at ``capacity``
        while reusing the hot object)."""
        if self._lent:
            self._lent -= 1
            self._free.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def oldest_age(self, now: int) -> int:
        """Age in cycles of the longest-outstanding entry (0 if empty)."""
        if not self._entries:
            return 0
        return now - min(e.issued_cycle for e in self._entries.values())

    def outstanding(self) -> List[int]:
        """Line addresses with in-flight misses (test helper)."""
        return sorted(self._entries)
