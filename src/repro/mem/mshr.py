"""Miss-status holding registers.

An MSHR file tracks outstanding misses per cache line so that
concurrent requests for the same line merge into one upstream fetch,
and bounds the number of in-flight misses a cache may have (extra
misses stall, which is one of the ways memory-level parallelism is
limited in the simulated cores and caches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.mem.addr import line_addr


@dataclass
class MshrEntry:
    """One outstanding line miss with its waiting callbacks."""

    addr: int
    issued_cycle: int
    waiters: List[Callable[[Any], None]] = field(default_factory=list)
    # Arbitrary controller state (e.g. whether any merged request was a
    # demand access vs. only prefetches, or needs write permission).
    is_write: bool = False
    is_prefetch_only: bool = True
    meta: dict = field(default_factory=dict)


class MshrFile:
    """A bounded set of :class:`MshrEntry`, keyed by line address."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, MshrEntry] = {}

    def lookup(self, addr: int) -> Optional[MshrEntry]:
        return self._entries.get(line_addr(addr))

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, addr: int, now: int) -> MshrEntry:
        """Create an entry for ``addr``; raises if full or duplicate."""
        base = line_addr(addr)
        if base in self._entries:
            raise ValueError(f"MSHR already allocated for {base:#x}")
        if self.full:
            raise RuntimeError("MSHR file full")
        entry = MshrEntry(addr=base, issued_cycle=now)
        self._entries[base] = entry
        return entry

    def release(self, addr: int) -> MshrEntry:
        """Remove and return the entry for ``addr``."""
        base = line_addr(addr)
        entry = self._entries.pop(base, None)
        if entry is None:
            raise KeyError(f"no MSHR for {base:#x}")
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def oldest_age(self, now: int) -> int:
        """Age in cycles of the longest-outstanding entry (0 if empty)."""
        if not self._entries:
            return 0
        return now - min(e.issued_cycle for e in self._entries.values())

    def outstanding(self) -> List[int]:
        """Line addresses with in-flight misses (test helper)."""
        return sorted(self._entries)
