"""Shared L3 (LLC) bank controller with directory and GetU support.

One bank per tile (Table III: 1 MB, 16-way, 20-cycle latency, MESI,
static NUCA). Each bank owns the directory state for the lines it
homes and serializes transactions per line with a bank MSHR file:
requests arriving for a line with an in-flight transaction queue and
replay when it completes.

Protocol simplifications relative to a full transient-state MESI
implementation (documented per DESIGN.md; none affect the message
*counts* the paper measures):

- Forwarding is bank-relayed: when an L2 owns a line in M/E, the bank
  sends ``FwdGetS``/``FwdGetX`` to the owner, the owner answers with
  ``DownData`` to the bank, and the bank responds to the requester.
  The same two data messages flow as in 3-hop MESI, at slightly higher
  latency for this (rare in our workloads) case.
- GetX responses do not wait for invalidation acks (sharers ack to the
  requester in parallel with the data response).
- ``GetU`` (stream floating) never updates the directory. If the line
  is owned elsewhere the owner supplies data via ``DownDataU`` without
  changing its own state (Fig 12c).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.mem.addr import LINE_SIZE, NucaMap
from repro.mem.cache import CacheArray, EXCLUSIVE, MODIFIED, SHARED
from repro.mem.coherence import CohMsg, Directory, acquire_msg
from repro.mem.dram import DramSystem
from repro.mem.mshr import MshrFile
from repro.noc.message import CTRL, DATA, Packet, control_payload_bits, data_payload_bits
from repro.noc.network import Network
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats

_LINE_MASK = ~(LINE_SIZE - 1)  # line_addr(), inlined for the hot paths

# Interned "l3.requests_by_source.<category>" stat names: the f-string
# ran once per request on the bank's hottest paths.
_SOURCE_KEYS: Dict[str, str] = {}


def _by_source_key(category: str) -> str:
    key = _SOURCE_KEYS.get(category)
    if key is None:
        key = _SOURCE_KEYS[category] = f"l3.requests_by_source.{category}"
    return key


class L3Bank:
    """One LLC bank (plus its slice of the directory)."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        stats: Stats,
        tile: int,
        size_bytes: int,
        ways: int = 16,
        latency: int = 20,
        mshrs: int = 16,
        replacement: str = "brrip",
        dram: Optional[DramSystem] = None,
        nuca: Optional[NucaMap] = None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.stats = stats
        self.tile = tile
        self.latency = latency
        set_index_fn = None
        if nuca is not None:
            lines_per_chunk = nuca.interleave // LINE_SIZE
            banks = nuca.num_banks

            def set_index_fn(addr: int) -> int:
                # Bank-local line number: which interleave chunk of
                # this bank, times lines per chunk, plus the offset.
                chunk = (addr // nuca.interleave) // banks
                return chunk * lines_per_chunk + (
                    (addr // LINE_SIZE) % lines_per_chunk
                )

        self.array = CacheArray(
            size_bytes, ways, replacement=replacement, seed=tile,
            set_index_fn=set_index_fn,
        )
        self.dir = Directory()
        self.mshr = MshrFile(mshrs)
        self._waitq: List[tuple] = []  # requests waiting for a free MSHR
        # Telemetry hop-reason tag: the most recent _demand's verdict
        # ("hit", "miss", "forward", "queued", "mshr_wait").
        self.last_outcome = ""
        self.dram = dram
        # Interned counter cells for the bank's hottest stats
        # (DESIGN.md §12); cells are shared across banks by name.
        self._c_hits = stats.counter("l3.hits")
        self._c_misses = stats.counter("l3.misses")
        self._c_gets = stats.counter("l3.requests.gets")
        self._c_getx = stats.counter("l3.requests.getx")
        self._c_stream_float = stats.counter("l3.requests.stream_float")
        self._src_cells: Dict[str, List[float]] = {}
        # Colocated SE_L3, attached by the tile assembly. The bank
        # notifies it when GetU data it asked for becomes available.
        self.se_l3 = None
        net.register(tile, "l3", self.handle)
        san = getattr(sim, "sanitizer", None)
        if san is not None:
            san.watch_l3(self)
        tel = getattr(sim, "telemetry", None)
        if tel is not None:
            tel.watch_l3(self)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def handle(self, pkt: Packet) -> None:
        """NoC ingress: pay the bank access latency, then process."""
        self.sim.schedule(self.latency, self._process, pkt.src, pkt.body)

    def stream_read(
        self,
        addr: int,
        requester: int,
        on_ready: Callable[[CohMsg], None],
        data_bytes: int = LINE_SIZE,
        stream_id: Optional[int] = None,
        element: Optional[int] = None,
        category: str = "float_affine",
    ) -> None:
        """Colocated SE_L3 issues an uncached read of ``addr``.

        ``on_ready(msg)`` fires (at this bank) once the line's data is
        available here; the SE_L3 then decides how to respond (unicast
        DataU, multicast for a confluence group, or chain an indirect
        request). No directory state is modified. ``category`` labels
        the request for Figure 14 (affine / indirect / confluence).
        """
        msg = CohMsg(
            op="GetU", addr=addr, requester=requester,
            data_bytes=data_bytes, stream_id=stream_id, element=element,
            se_info=on_ready, source=category,
        )
        self._c_stream_float[0] += 1
        self._src_cell(category)[0] += 1
        self.sim.schedule(self.latency, self._process, self.tile, msg)

    def _src_cell(self, category: str) -> List[float]:
        cells = self._src_cells
        if category in cells:
            return cells[category]
        cell = cells[category] = self.stats.counter(_by_source_key(category))
        return cell

    # ------------------------------------------------------------------
    # transaction processing
    # ------------------------------------------------------------------
    def _process(self, src: int, msg: CohMsg) -> None:
        op = msg.op
        if op in ("GetS", "GetX", "GetU"):
            self._demand(src, msg)
        elif op == "GetSBulk":
            # Bulk prefetch (SS VI): unpack the grouped GetS requests.
            for sub in msg.se_info:
                self._demand(src, sub)
        elif op == "PutS":
            self.stats.add("l3.puts")
            self.dir.remove(msg.addr, msg.requester)
        elif op == "PutM":
            self._put_m(src, msg)
        elif op == "MemData":
            self._mem_data(msg)
        elif op == "DownData":
            self._down_data(msg)
        elif op == "DownDataU":
            self._down_data_u(msg)
        elif op == "FwdMiss":
            self._fwd_miss(msg)
        else:
            raise ValueError(f"L3 bank got unexpected op {op!r}")

    def _blocked(self, addr: int) -> bool:
        return self.mshr.lookup(addr) is not None

    def _demand(self, src: int, msg: CohMsg) -> None:
        """GetS / GetX / GetU head-of-line processing."""
        base = msg.addr & _LINE_MASK
        entry = self.mshr.lookup(base)
        if entry is not None:
            # Line transaction in flight: queue and replay later.
            self.last_outcome = "queued"
            entry.meta.setdefault("queued", []).append((src, msg))
            return
        op = msg.op
        if not msg.seen:
            msg.seen = True
            if op == "GetS":
                self._c_gets[0] += 1
                self._src_cell(msg.source)[0] += 1
            elif op == "GetX":
                self._c_getx[0] += 1
                self._src_cell(msg.source)[0] += 1

        ent = self.dir.peek(base)
        owner = ent.owner if ent else None
        if owner is not None and owner != msg.requester:
            self.last_outcome = "forward"
            self._forward_to_owner(owner, src, msg)
            return

        line = self.array.lookup(base)
        if line is not None:
            self.last_outcome = "hit"
            self._c_hits[0] += 1
            if ent is None and op == "GetS":
                # Uncontended GetS shortcut: no directory entry means
                # no sharers and no owner, so the grant is exactly the
                # idle-entry branch of _satisfy (EXCLUSIVE, clean) —
                # taken inline with a pooled message and packet shell.
                self.dir.entry(base).owner = msg.requester
                self.net.send_new(
                    self.tile, msg.requester, DATA,
                    data_payload_bits(LINE_SIZE), "l2",
                    body=acquire_msg("Data", base, msg.requester,
                                     grant=EXCLUSIVE),
                )
                return
            self._satisfy(msg, line_dirty=line.dirty)
            return

        # LLC miss: fetch from memory.
        if self.mshr.full:
            # Park in the bank's wait queue until an MSHR frees up.
            self.last_outcome = "mshr_wait"
            self._waitq.append((src, msg))
            self.stats.add("l3.mshr_full_waits")
            return
        self.last_outcome = "miss"
        self._c_misses[0] += 1
        entry = self.mshr.allocate(base, self.sim.now)
        entry.meta["head"] = (src, msg)
        dram_tile = self.dram.controller_tile(base)
        self.net.send_new(
            self.tile, dram_tile, CTRL, control_payload_bits(), "dram",
            body=acquire_msg("MemRead", addr=base, requester=self.tile),
        )

    def _forward_to_owner(self, owner: int, src: int, msg: CohMsg) -> None:
        """Ask the current M/E owner to supply the data."""
        base = msg.addr & _LINE_MASK
        if self.mshr.full:
            self._waitq.append((src, msg))
            self.stats.add("l3.mshr_full_waits")
            return
        fwd_op = {"GetS": "FwdGetS", "GetX": "FwdGetX", "GetU": "FwdGetU"}[msg.op]
        entry = self.mshr.allocate(base, self.sim.now)
        entry.meta["head"] = (src, msg)
        self.stats.add("l3.forwards")
        self.net.send_new(
            self.tile, owner, CTRL, control_payload_bits(), "l2",
            body=acquire_msg(fwd_op, base, msg.requester,
                             data_bytes=msg.data_bytes),
        )

    def _satisfy(self, msg: CohMsg, line_dirty: bool) -> None:
        """Line data is available at the bank: grant it."""
        base = msg.addr & _LINE_MASK
        if msg.op == "GetU":
            on_ready = msg.se_info
            if callable(on_ready):
                # Colocated SE_L3 drives the response itself.
                on_ready(msg)
            else:
                # Remote GetU (no SE attached): plain uncached response.
                self.send_data_u(msg.requester, msg)
            return
        ent = self.dir.entry(base)
        if ent.owner == msg.requester:
            # Stale ownership (e.g. the owner silently lost the line
            # and is re-requesting): treat as non-owner.
            ent.owner = None
        if msg.op == "GetS":
            if ent.idle:
                grant = EXCLUSIVE
                ent.owner = msg.requester
            else:
                grant = SHARED
                ent.sharers.add(msg.requester)
                if ent.owner is not None and ent.owner != msg.requester:
                    # Shouldn't happen (owner handled earlier), defensive.
                    ent.sharers.add(ent.owner)
                    ent.owner = None
        else:  # GetX
            if self.se_l3 is not None:
                # Stream-grain coherence (SS V-B): a write-ownership
                # request may invalidate streams that fetched this range.
                self.se_l3.check_write(base, msg.requester)
            for sharer in sorted(ent.sharers):
                if sharer == msg.requester:
                    continue
                self.dir.invalidations_sent += 1
                self.stats.add("l3.invalidations")
                self.net.send_new(
                    self.tile, sharer, CTRL, control_payload_bits(), "l2",
                    body=acquire_msg("Inv", base, msg.requester),
                )
            grant = MODIFIED
            ent.sharers.clear()
            ent.owner = msg.requester
        self.net.send_new(
            self.tile, msg.requester, DATA,
            data_payload_bits(LINE_SIZE), "l2",
            body=acquire_msg("Data", base, msg.requester, grant=grant,
                             dirty=line_dirty and grant == MODIFIED),
        )

    def send_data_u(self, dst: int, msg: CohMsg, dsts: Optional[List[int]] = None) -> None:
        """Uncached data response(s) to SE_L2 buffers.

        ``dsts`` (multicast, stream confluence) overrides ``dst``.
        """
        body = CohMsg(
            op="DataU", addr=msg.addr & _LINE_MASK, requester=msg.requester,
            data_bytes=msg.data_bytes, stream_id=msg.stream_id,
            element=msg.element,
        )
        payload = data_payload_bits(msg.data_bytes)
        if dsts and len(dsts) > 1:
            self.net.multicast(
                src=self.tile, dsts=dsts, kind=DATA,
                payload_bits=payload, dst_port="se_l2", body=body,
            )
        else:
            # Unicast DataU: pooled packet shell, but the body stays a
            # plain allocation — the SE_L2 may park it on a stream.
            target = dsts[0] if dsts else dst
            self.net.send_new(
                self.tile, target, DATA, payload, "se_l2", body=body,
            )

    # ------------------------------------------------------------------
    # fills and completions
    # ------------------------------------------------------------------
    def _mem_data(self, msg: CohMsg) -> None:
        base = msg.addr & _LINE_MASK
        self._fill(base, dirty=False)
        self._complete(base)

    def _down_data(self, msg: CohMsg) -> None:
        """Owner's writeback after FwdGetS/FwdGetX."""
        base = msg.addr & _LINE_MASK
        line = self.array.lookup(base)
        if line is None:
            self._fill(base, dirty=True)
        else:
            line.dirty = True
        # Owner relinquished M/E (downgrade or invalidate).
        entry = self.mshr.lookup(base)
        head_msg = entry.meta["head"][1] if entry else None
        ent = self.dir.entry(base)
        if head_msg is not None and head_msg.op == "GetX":
            # Owner invalidated itself; requester becomes owner below.
            ent.owner = None
            ent.sharers.clear()
        else:
            # GetS downgrade: old owner stays on as a sharer.
            if ent.owner is not None:
                ent.sharers.add(ent.owner)
                ent.owner = None
        self._complete(base)

    def _down_data_u(self, msg: CohMsg) -> None:
        """Owner supplied data for a GetU without state change."""
        base = msg.addr & _LINE_MASK
        self._complete(base)

    def _fwd_miss(self, msg: CohMsg) -> None:
        """The owner no longer had the line: clear stale ownership and
        retry the queued head transaction."""
        base = msg.addr & _LINE_MASK
        entry = self.mshr.lookup(base)
        self.dir.remove(base, msg.requester)
        if entry is None:
            return
        src, head = entry.meta["head"]
        queued = entry.meta.get("queued", [])
        self.mshr.recycle(self.mshr.release(base))
        self.stats.add("l3.fwd_misses")
        self.sim.schedule(self.latency, self._process, src, head)
        for qsrc, qmsg in queued:
            self.sim.schedule(self.latency, self._process, qsrc, qmsg)
        self._drain_waitq()

    def _complete(self, base: int) -> None:
        """Head transaction's data is now at the bank: satisfy it and
        replay anything queued behind it."""
        entry = self.mshr.lookup(base)
        if entry is None:
            return
        src, head = entry.meta["head"]
        queued = entry.meta.get("queued", [])
        self.mshr.recycle(self.mshr.release(base))
        line = self.array.lookup(base, touch=False)
        self._satisfy(head, line_dirty=bool(line and line.dirty))
        for qsrc, qmsg in queued:
            self.sim.schedule(0, self._process, qsrc, qmsg)
        self._drain_waitq()

    def _drain_waitq(self) -> None:
        """Admit parked requests as MSHRs free up (FIFO order)."""
        free = self.mshr.capacity - len(self.mshr)
        for _ in range(min(free, len(self._waitq))):
            src, msg = self._waitq.pop(0)
            self.sim.schedule(0, self._replay_parked, src, msg)

    def _replay_parked(self, src: int, msg: CohMsg) -> None:
        self._process(src, msg)
        # The request may have completed without ever allocating an
        # MSHR (the line arrived at the bank while it was parked, so it
        # hit). No transaction completion will fire then, so keep
        # draining here or the rest of the queue is stranded.
        self._drain_waitq()

    def _put_m(self, src: int, msg: CohMsg) -> None:
        base = msg.addr & _LINE_MASK
        self.stats.add("l3.putm")
        line = self.array.lookup(base, touch=False)
        if line is None:
            self._fill(base, dirty=True)
        else:
            line.dirty = True
        self.dir.remove(base, msg.requester)
        self.net.send_new(
            self.tile, msg.requester, CTRL, control_payload_bits(), "l2",
            body=acquire_msg("PutAck", base, msg.requester),
        )

    def _fill(self, base: int, dirty: bool) -> None:
        """Insert a line, back-invalidating the victim's sharers
        (inclusive LLC) and writing back dirty victims."""
        if self.array.contains(base):
            if dirty:
                self.array.lookup(base, touch=False).dirty = True
            return
        line, evicted = self.array.fill(
            base, SHARED, now=self.sim.now, avoid=self._blocked,
        )
        line.dirty = dirty
        if evicted is None:
            return
        self.stats.add("l3.evictions")
        ent = self.dir.clear(evicted.addr)
        if ent is not None:
            targets = set(ent.sharers)
            if ent.owner is not None:
                targets.add(ent.owner)
            for tile in sorted(targets):
                self.stats.add("l3.back_invalidations")
                self.net.send_new(
                    self.tile, tile, CTRL, control_payload_bits(), "l2",
                    body=acquire_msg("Inv", evicted.addr, self.tile,
                                     writeback_to_dram=True),
                )
        if evicted.dirty:
            dram_tile = self.dram.controller_tile(evicted.addr)
            self.net.send_new(
                self.tile, dram_tile, DATA,
                data_payload_bits(LINE_SIZE), "dram",
                body=acquire_msg("MemWrite", evicted.addr, self.tile),
            )
