"""Private L2 cache controller.

One per tile (Table III: 256 kB, 16-way, 16-cycle). The L2 is the
coherence endpoint for the tile: it exchanges GetS/GetX/Put* with the
home L3 banks, receives forwards and invalidations, and back-
invalidates the colocated L1 on evictions (inclusive hierarchy).

This controller also produces the paper's motivation measurements:

- Figure 2a: every eviction is classified by whether the line was
  re-accessed after its fill (``uses``), whether it was clean, and
  whether a stream brought it in (``stream_id``).
- Figure 2b: for lines evicted clean-without-reuse, the flits spent
  filling them (recorded at fill time) plus their eviction messages
  are accumulated into ``l2.noreuse_flits.*``.

Stream hooks: ``se_l2`` intercepts misses of floating-stream requests
(the data lives in the SE_L2 stream buffer, not the cache);
``on_stream_reuse`` reports hits on stream-tagged lines to the
SE_core's history table (SS IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.mem.addr import LINE_SIZE, NucaMap
from repro.mem.cache import CacheArray, EXCLUSIVE, MODIFIED, SHARED
from repro.mem.coherence import CohMsg, acquire_msg, release_msg
from repro.mem.mshr import MshrFile
from repro.noc.message import CTRL, DATA, Packet, control_payload_bits, data_payload_bits
from repro.noc.network import Network
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats

_LINE_MASK = ~(LINE_SIZE - 1)  # line_addr(), inlined for the hot paths


class L2AccessResult:
    """Handed to the ``on_done`` callback of an L2 access."""

    __slots__ = (
        "addr", "writable",
        "latency_paid",  # False when served by SE_L2 interception
        "dropped",       # prefetch rejected (MSHR pressure): no fill
        "uncached",      # served from the SE_L2 stream buffer: the line
        # is not in the L2, so the L1 must not cache it either
    )

    def __init__(
        self,
        addr: int,
        writable: bool,
        latency_paid: bool = True,
        dropped: bool = False,
        uncached: bool = False,
    ) -> None:
        self.addr = addr
        self.writable = writable
        self.latency_paid = latency_paid
        self.dropped = dropped
        self.uncached = uncached

    def __repr__(self) -> str:
        return (
            f"L2AccessResult(addr={self.addr:#x}, writable={self.writable}, "
            f"dropped={self.dropped}, uncached={self.uncached})"
        )


class L2Request:
    """An access descriptor from the L1 (or prefetchers / SE_core)."""

    __slots__ = ("addr", "is_write", "prefetch", "stream_id", "element",
                 "floating", "op_id", "on_done")

    def __init__(
        self,
        addr: int,
        is_write: bool = False,
        prefetch: bool = False,
        stream_id: Optional[int] = None,
        element: Optional[int] = None,
        floating: bool = False,  # request for a floated stream's element
        op_id: Optional[int] = None,
        on_done: Optional[Callable[[L2AccessResult], None]] = None,
    ) -> None:
        self.addr = addr
        self.is_write = is_write
        self.prefetch = prefetch
        self.stream_id = stream_id
        self.element = element
        self.floating = floating
        self.op_id = op_id
        self.on_done = on_done

    def __repr__(self) -> str:
        return (
            f"L2Request(addr={self.addr:#x}, is_write={self.is_write}, "
            f"prefetch={self.prefetch}, stream_id={self.stream_id}, "
            f"element={self.element}, floating={self.floating})"
        )


class L2Cache:
    """Private, inclusive-of-L1, MESI L2 controller."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        stats: Stats,
        tile: int,
        size_bytes: int,
        ways: int = 16,
        latency: int = 16,
        mshrs: int = 16,
        replacement: str = "brrip",
        nuca: Optional[NucaMap] = None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.stats = stats
        self.tile = tile
        self.latency = latency
        self.array = CacheArray(size_bytes, ways, replacement=replacement, seed=tile)
        self.mshr = MshrFile(mshrs)
        # fill()'s eviction-victim predicate: skip lines with in-flight
        # transactions. Victim addresses are already line bases, so the
        # MSHR key-set membership test is lookup() minus the masking —
        # hoisted here so _fill doesn't build a closure per fill.
        self._avoid_inflight = self.mshr._entries.__contains__
        self.nuca = nuca
        self._overflow: List[L2Request] = []  # demand requests beyond MSHRs
        # Hooks wired by the tile assembly:
        self.se_l2 = None  # intercepts floating-stream misses
        self.on_stream_reuse: Optional[Callable[[int], None]] = None
        self.on_l1_invalidate: Optional[Callable[[int], None]] = None
        self.on_l1_downgrade: Optional[Callable[[int], None]] = None
        self.prefetcher = None  # L2 stride prefetcher (trained on misses)
        self.bulk = None  # optional bulk-prefetch request grouper
        # Telemetry hop-reason tag: how the most recent _miss left the
        # L2 ("gets"/"getx"/"bulk" sent to the home bank, "merge" rode
        # an in-flight MSHR entry, "overflow"/"prefetch_drop" parked).
        self.last_miss_kind = ""
        self._fast = getattr(sim, "fastpath", False)
        self._pooling = getattr(sim, "pooling", False)
        # A line-sized Data response always serializes to the same flit
        # count; compute it once instead of building a throwaway Packet
        # per response (DESIGN.md §12).
        self._resp_flits = Packet(
            src=0, dst=tile, kind=DATA,
            payload_bits=data_payload_bits(LINE_SIZE), dst_port="l2",
        ).flits(net.link_bits)
        net.register(tile, "l2", self.handle)
        san = getattr(sim, "sanitizer", None)
        if san is not None:
            san.watch_l2(self)
        tel = getattr(sim, "telemetry", None)
        if tel is not None:
            tel.watch_l2(self)

    def _sp(self, name: str, amount: float = 1) -> None:
        self.stats.add(name, amount)

    # ------------------------------------------------------------------
    # access path (from L1 / prefetchers / SE_core)
    # ------------------------------------------------------------------
    def access(self, req: L2Request) -> None:
        """Look up ``req.addr``; respond through ``req.on_done``."""
        base = req.addr & _LINE_MASK
        line = self.array.lookup(base)
        if line is not None and not (req.is_write and line.state == SHARED):
            # Plain hit (writes need M/E; E upgrades to M silently).
            self._sp("l2.hits")
            line.uses += 1
            if req.is_write:
                line.state = MODIFIED
                line.dirty = True
            if line.stream_id is not None and self.on_stream_reuse:
                self.on_stream_reuse(line.stream_id)
            if req.floating and self.se_l2 is not None:
                # Data unexpectedly cached: tell SE_L2 to advance past
                # this element (SS IV-A).
                self.se_l2.on_cache_hit(req.stream_id, req.element)
            self._respond(req, writable=line.state in (MODIFIED, EXCLUSIVE))
            return

        self._sp("l2.misses")
        if req.floating and self.se_l2 is not None:
            # The element belongs to a floated stream: the SE_L2 stream
            # buffer owns the data; never escalate to the L3.
            self.sim.schedule(
                self.latency, self.se_l2.intercept, req,
            )
            return
        if self.prefetcher is not None and not req.prefetch:
            for pf_addr in self.prefetcher.on_access(req.op_id, base, hit=False):
                self._issue_prefetch(pf_addr)
        self._miss(req, line)

    PREFETCH_MSHR_RESERVE = 4  # MSHRs kept free for demand misses

    def _issue_prefetch(self, addr: int) -> None:
        base = addr & _LINE_MASK
        if self.array.contains(base) or self.mshr.lookup(base) is not None:
            return
        if len(self.mshr) >= self.mshr.capacity - self.PREFETCH_MSHR_RESERVE:
            self._sp("l2.prefetch_dropped")
            return
        self._sp("l2.prefetch_issued")
        self._miss(L2Request(addr=base, prefetch=True), None)

    def _miss(self, req: L2Request, line) -> None:
        base = req.addr & _LINE_MASK
        upgrade = line is not None  # write hit in S: needs GetX, no fill
        entry = self.mshr.lookup(base)
        if entry is not None:
            self.last_miss_kind = "merge"
            entry.is_write = entry.is_write or req.is_write
            entry.is_prefetch_only = entry.is_prefetch_only and req.prefetch
            if req.on_done is not None:
                entry.waiters.append(req)
            return
        if self.mshr.full:
            if req.prefetch:
                self.last_miss_kind = "prefetch_drop"
                self._sp("l2.prefetch_dropped")
                if req.on_done is not None:
                    # Tell the L1 so it releases its own MSHR entry.
                    self.sim.schedule(1, req.on_done, L2AccessResult(
                        addr=base, writable=False, dropped=True,
                    ))
                return
            self.last_miss_kind = "overflow"
            self._overflow.append(req)
            return
        entry = self.mshr.allocate(base, self.sim.now)
        entry.is_write = req.is_write
        entry.is_prefetch_only = req.prefetch
        if req.on_done is not None:
            entry.waiters.append(req)
        entry.meta["stream_id"] = req.stream_id
        entry.meta["prefetch"] = req.prefetch
        entry.meta["upgrade"] = upgrade
        entry.meta["req_flits"] = 0
        op = "GetX" if req.is_write else "GetS"
        home = self.nuca.bank_of(base)
        source = "core_stream" if req.stream_id is not None else "core"
        msg = CohMsg(op=op, addr=base, requester=self.tile, source=source)
        if self.bulk is not None and req.prefetch and op == "GetS":
            self.last_miss_kind = "bulk"
            self.bulk.enqueue(home, msg, entry)
            return
        self.last_miss_kind = "getx" if req.is_write else "gets"
        # Body stays a plain allocation: L3-bound requests may be
        # parked in the bank's MSHR meta, so they never pool.
        info = self.net.send_new(
            self.tile, home, CTRL, control_payload_bits(), "l3", body=msg,
        )
        entry.meta["req_flits"] = info.flits

    # ------------------------------------------------------------------
    # network ingress
    # ------------------------------------------------------------------
    def handle(self, pkt: Packet) -> None:
        msg: CohMsg = pkt.body
        op = msg.op
        if op == "Data":
            self._data(pkt, msg)
        elif op == "Inv":
            self._inv(msg)
        elif op == "InvAck":
            self._sp("l2.inv_acks")
        elif op == "PutAck":
            self._sp("l2.put_acks")
        elif op in ("FwdGetS", "FwdGetX", "FwdGetU"):
            self._forward(pkt, msg)
        else:
            raise ValueError(f"L2 got unexpected op {op!r}")
        if self._pooling:
            # Every op above is consumed fully and synchronously: the
            # body can cycle back to the transient-message pool.
            release_msg(msg)

    def _data(self, pkt: Packet, msg: CohMsg) -> None:
        base = msg.addr & _LINE_MASK
        entry = self.mshr.release(base)
        resp_flits = self._resp_flits
        if entry.meta["upgrade"]:
            line = self.array.lookup(base, touch=False)
            if line is not None:
                line.state = msg.grant
                line.dirty = line.dirty or msg.grant == MODIFIED
            else:
                self._fill(base, msg, entry, resp_flits)
        else:
            self._fill(base, msg, entry, resp_flits)
        line = self.array.lookup(base, touch=False)
        writable = bool(line) and line.state in (MODIFIED, EXCLUSIVE)
        sim = self.sim
        if self._fast and sim.can_inline():
            # Fused response (DESIGN.md §12): the zero-delay waiter
            # callbacks run synchronously after _data fully completes,
            # exactly where the event queue would have run them.
            self._drain_overflow()
            sim._inline_depth += 1
            try:
                for waiter in entry.waiters:
                    if waiter.on_done is not None:
                        sim.count_inlined_events(1)
                        waiter.on_done(L2AccessResult(
                            addr=base, writable=writable))
            finally:
                sim._inline_depth -= 1
        else:
            for waiter in entry.waiters:
                self._respond(waiter, writable=writable, delay=0)
            self._drain_overflow()
        self.mshr.recycle(entry)

    def _fill(self, base: int, msg: CohMsg, entry, resp_flits: int) -> None:
        state = msg.grant or SHARED
        meta = entry.meta
        line, evicted = self.array.fill(
            base, state, now=self.sim.now,
            prefetched=meta["prefetch"] if "prefetch" in meta else False,
            stream_id=meta["stream_id"] if "stream_id" in meta else None,
            fill_flits=resp_flits,
            fill_flits_ctrl=meta["req_flits"] if "req_flits" in meta else 0,
            avoid=self._avoid_inflight,
        )
        if state == MODIFIED:
            line.dirty = True
        if evicted is not None:
            self._evict(evicted)

    def _drain_overflow(self) -> None:
        while self._overflow and not self.mshr.full:
            req = self._overflow.pop(0)
            self.access(req)

    # ------------------------------------------------------------------
    # evictions (the Figure 2 measurements live here)
    # ------------------------------------------------------------------
    def _evict(self, victim) -> None:
        base = victim.addr
        if self.on_l1_invalidate:
            self.on_l1_invalidate(base)
        self._sp("l2.evictions")
        evict_flits_ctrl = 0
        evict_flits_data = 0
        home = self.nuca.bank_of(base)
        if victim.dirty and self.se_l2 is not None:
            # SS IV-E (second window): a dirty eviction may alias a
            # buffered floating-stream element.
            self.se_l2.on_dirty_evict(base)
        if victim.dirty:
            info = self.net.send_new(
                self.tile, home, DATA, data_payload_bits(LINE_SIZE), "l3",
                body=CohMsg(op="PutM", addr=base, requester=self.tile),
            )
            evict_flits_data = info.flits
        else:
            info = self.net.send_new(
                self.tile, home, CTRL, control_payload_bits(), "l3",
                body=CohMsg(op="PutS", addr=base, requester=self.tile),
            )
            evict_flits_ctrl = info.flits
        # --- Figure 2a/2b classification ---
        no_reuse = victim.uses == 0 and not victim.dirty
        if no_reuse:
            self._sp("l2.evictions_noreuse")
            if victim.stream_id is not None:
                self._sp("l2.evictions_noreuse_stream")
            self._sp("l2.noreuse_flits.data", victim.fill_flits + evict_flits_data)
            self._sp(
                "l2.noreuse_flits.ctrl",
                victim.fill_flits_ctrl + evict_flits_ctrl,
            )

    def _inv(self, msg: CohMsg) -> None:
        base = msg.addr & _LINE_MASK
        victim = self.array.invalidate(base)
        if self.on_l1_invalidate:
            self.on_l1_invalidate(base)
        self._sp("l2.invalidated")
        if victim is None:
            return
        if victim.dirty and msg.writeback_to_dram:
            # LLC back-invalidation of an M-state line: the bank no
            # longer homes it, write straight to memory.
            # (Requires a DramSystem mapping; use home-bank relay when
            # unavailable.)
            self.net.send_new(
                self.tile, self.nuca.bank_of(base), DATA,
                data_payload_bits(LINE_SIZE), "l3",
                body=CohMsg(op="PutM", addr=base, requester=self.tile),
            )
        elif not msg.writeback_to_dram:
            self.net.send_new(
                self.tile, msg.requester, CTRL, control_payload_bits(), "l2",
                body=acquire_msg("InvAck", base, self.tile),
            )

    def _forward(self, pkt: Packet, msg: CohMsg) -> None:
        base = msg.addr & _LINE_MASK
        line = self.array.lookup(base, touch=False)
        if line is None:
            # We no longer hold the line (our PutS/PutM is in flight):
            # nack so the bank clears the stale ownership and retries.
            # Note the bank's grant-then-forward sequence cannot race
            # us, because the NoC is FIFO per route: a Data response
            # always arrives before a later forward from its bank.
            self.net.send_new(
                self.tile, pkt.src, CTRL, control_payload_bits(), "l3",
                body=CohMsg(op="FwdMiss", addr=base, requester=self.tile),
            )
            return
        down_op = "DownDataU" if msg.op == "FwdGetU" else "DownData"
        self.net.send_new(
            self.tile, pkt.src, DATA, data_payload_bits(msg.data_bytes), "l3",
            body=CohMsg(op=down_op, addr=base, requester=msg.requester),
        )
        if msg.op == "FwdGetS":
            line.state = SHARED
            line.dirty = False
            if self.on_l1_downgrade:
                self.on_l1_downgrade(base)
        elif msg.op == "FwdGetX":
            self.array.invalidate(base)
            if self.on_l1_invalidate:
                self.on_l1_invalidate(base)
        # FwdGetU: no state change (Fig 12c).

    # ------------------------------------------------------------------
    def _respond(self, req: L2Request, writable: bool, delay: Optional[int] = None) -> None:
        if req.on_done is None:
            return
        lat = self.latency if delay is None else delay
        result = L2AccessResult(addr=req.addr & _LINE_MASK, writable=writable)
        self.sim.schedule(lat, req.on_done, result)
