"""Cache replacement policies: LRU and Bimodal RRIP.

The paper's caches use Bimodal RRIP (BRRIP) with p = 0.03 (Table III):
re-reference interval prediction [Jaleel et al., ISCA'10] where new
lines are inserted with a *long* re-reference prediction most of the
time and a *distant* prediction otherwise, which makes the cache
scan-resistant — exactly the thrashing workloads the paper studies.

A policy manages one set of ``ways`` lines. The cache array calls
``on_fill`` / ``on_hit`` / ``victim``.
"""

from __future__ import annotations

import random
from typing import List, Optional


class ReplacementPolicy:
    """Per-set replacement state. One instance per cache set."""

    def __init__(self, ways: int) -> None:
        self.ways = ways

    def on_fill(self, way: int) -> None:
        raise NotImplementedError

    def on_hit(self, way: int) -> None:
        raise NotImplementedError

    def victim(self, valid: List[bool]) -> int:
        """Pick the way to evict. ``valid[w]`` is False for empty ways
        (which are always preferred)."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Classic least-recently-used, tracked with a recency timestamp."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._stamp = 0
        self._last_use = [0] * ways

    def _touch(self, way: int) -> None:
        self._stamp += 1
        self._last_use[way] = self._stamp

    def on_fill(self, way: int) -> None:
        self._touch(way)

    def on_hit(self, way: int) -> None:
        self._touch(way)

    def victim(self, valid: List[bool]) -> int:
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        return min(range(self.ways), key=lambda w: self._last_use[w])


class BrripPolicy(ReplacementPolicy):
    """Bimodal RRIP with 2-bit re-reference prediction values (RRPV).

    - Hit promotes a line to RRPV 0 (near re-reference).
    - Fill inserts at RRPV 2 (long) with probability ``p``, else RRPV 3
      (distant) — the bimodal throttle that defeats thrashing.
    - Victim selection finds an RRPV-3 line, aging all lines until one
      exists.

    The random choice uses a private deterministic PRNG seeded per set
    so simulations are reproducible.
    """

    MAX_RRPV = 3

    def __init__(self, ways: int, p: float = 0.03, seed: int = 0) -> None:
        super().__init__(ways)
        self.p = p
        self._rrpv = [self.MAX_RRPV] * ways
        self._rng = random.Random(seed)

    def on_fill(self, way: int) -> None:
        if self._rng.random() < self.p:
            self._rrpv[way] = self.MAX_RRPV - 1
        else:
            self._rrpv[way] = self.MAX_RRPV

    def on_hit(self, way: int) -> None:
        self._rrpv[way] = 0

    def victim(self, valid: List[bool]) -> int:
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        while True:
            for way in range(self.ways):
                if self._rrpv[way] == self.MAX_RRPV:
                    return way
            for way in range(self.ways):
                self._rrpv[way] += 1


def make_policy(name: str, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Factory used by cache constructors (``"lru"`` or ``"brrip"``)."""
    if name == "lru":
        return LruPolicy(ways)
    if name == "brrip":
        return BrripPolicy(ways, seed=seed)
    raise ValueError(f"unknown replacement policy {name!r}")
