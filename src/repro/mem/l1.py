"""L1 data cache controller.

Per-tile, 32 kB 8-way, 2-cycle latency (Table III). The L1 is not a
coherence endpoint: the colocated L2 is inclusive of it and back-
invalidates it when lines leave the L2. Each line carries a
``writable`` hint mirroring the L2's M/E state so stores know whether
an upgrade round-trip is needed.

The L1 hosts the demand-side prefetchers (stride or Bingo): every
demand access trains the prefetcher, whose suggested lines are issued
as non-blocking prefetch fills through the normal L1->L2 path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.mem.addr import LINE_SIZE
from repro.mem.cache import CacheArray, EXCLUSIVE, MODIFIED, SHARED
from repro.mem.l2 import L2AccessResult, L2Cache, L2Request
from repro.mem.mshr import MshrFile
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats

_LINE_MASK = ~(LINE_SIZE - 1)  # line_addr(), inlined for the hot paths


class L1Request:
    """A core-side access.

    ``count`` > 1 marks a line-coalesced stream request: the SE_core
    merged that many consecutive same-line elements (starting at
    ``element``) into one access, and hit accounting credits them all.
    """

    __slots__ = ("addr", "is_write", "prefetch", "stream_id", "element",
                 "floating", "op_id", "on_done", "count")

    def __init__(
        self,
        addr: int,
        is_write: bool = False,
        prefetch: bool = False,
        stream_id: Optional[int] = None,
        element: Optional[int] = None,
        floating: bool = False,
        op_id: Optional[int] = None,
        on_done: Optional[Callable[[], None]] = None,
        count: int = 1,
    ) -> None:
        self.addr = addr
        self.is_write = is_write
        self.prefetch = prefetch
        self.stream_id = stream_id
        self.element = element
        self.floating = floating
        self.op_id = op_id
        self.on_done = on_done
        self.count = count

    def __repr__(self) -> str:
        return (
            f"L1Request(addr={self.addr:#x}, is_write={self.is_write}, "
            f"prefetch={self.prefetch}, stream_id={self.stream_id}, "
            f"element={self.element}, floating={self.floating}, "
            f"count={self.count})"
        )


class L1Cache:
    """Private L1D with prefetcher hooks."""

    def __init__(
        self,
        sim: Simulator,
        stats: Stats,
        tile: int,
        l2: L2Cache,
        size_bytes: int = 32 * 1024,
        ways: int = 8,
        latency: int = 2,
        mshrs: int = 8,
        replacement: str = "lru",
    ) -> None:
        self.sim = sim
        self.stats = stats
        self.tile = tile
        self.l2 = l2
        self.latency = latency
        self.array = CacheArray(size_bytes, ways, replacement=replacement, seed=tile)
        self.mshr = MshrFile(mshrs)
        # fill()'s eviction-victim predicate: victim addresses are line
        # bases, so MSHR key membership is lookup() minus the masking —
        # hoisted so _fill doesn't build a closure per fill.
        self._avoid_inflight = self.mshr._entries.__contains__
        self._overflow: List[L1Request] = []
        self.prefetcher = None  # L1 stride or Bingo, wired by the tile
        # Telemetry hop-reason tag: why the most recent _fill resolved
        # the way it did ("fill" cached, "uncached" stream data,
        # "drop" rejected prefetch re-issue).
        self.last_fill_reason = "fill"
        self._fast = getattr(sim, "fastpath", False)
        self._c_hits = stats.counter("l1.hits")
        self._c_misses = stats.counter("l1.misses")
        l2.on_l1_invalidate = self.invalidate
        l2.on_l1_downgrade = self.downgrade
        san = getattr(sim, "sanitizer", None)
        if san is not None:
            san.watch_l1(self)
        tel = getattr(sim, "telemetry", None)
        if tel is not None:
            tel.watch_l1(self)

    # ------------------------------------------------------------------
    def access(self, req: L1Request) -> None:
        line = self.array.lookup(req.addr)  # lookup masks to the line
        hit = line is not None and (not req.is_write or line.writable)
        if self.prefetcher is not None and not req.prefetch and not req.floating:
            for pf_addr in self.prefetcher.on_access(req.op_id, req.addr, hit=hit):
                self._issue_prefetch(pf_addr, req.op_id)
        if hit:
            self._c_hits[0] += req.count
            line.uses += req.count
            if req.is_write:
                line.dirty = True
            if req.floating and self.l2.se_l2 is not None:
                # Floating stream data unexpectedly in L1 (SS IV-A):
                # serve from cache, tell SE_L2 to advance.
                se_l2 = self.l2.se_l2
                for j in range(req.count):
                    se_l2.on_cache_hit(req.stream_id, req.element + j)
            if req.on_done is not None:
                self.sim.schedule(self.latency, req.on_done)
            return
        self._c_misses[0] += req.count
        self._miss(req)

    PREFETCH_MSHR_RESERVE = 2  # MSHRs kept free for demand misses

    def _issue_prefetch(self, addr: int, op_id: Optional[int]) -> None:
        base = addr & _LINE_MASK
        if self.array.contains(base) or self.mshr.lookup(base) is not None:
            return
        if len(self.mshr) >= self.mshr.capacity - self.PREFETCH_MSHR_RESERVE:
            self.stats.add("l1.prefetch_dropped")
            return
        self.stats.add("l1.prefetch_issued")
        self._miss(L1Request(addr=base, prefetch=True, op_id=op_id))

    def _miss(self, req: L1Request) -> None:
        base = req.addr & _LINE_MASK
        entry = self.mshr.lookup(base)
        if entry is not None:
            entry.is_write = entry.is_write or req.is_write
            entry.is_prefetch_only = entry.is_prefetch_only and req.prefetch
            entry.waiters.append(req)
            return
        if self.mshr.full:
            if req.prefetch:
                self.stats.add("l1.prefetch_dropped")
                return
            self._overflow.append(req)
            return
        entry = self.mshr.allocate(base, self.sim.now)
        entry.is_write = req.is_write
        entry.is_prefetch_only = req.prefetch
        entry.waiters.append(req)
        l2_req = L2Request(
            addr=base,
            is_write=req.is_write,
            prefetch=req.prefetch,
            stream_id=req.stream_id,
            element=req.element,
            floating=req.floating,
            op_id=req.op_id,
            on_done=lambda result: self._fill(base, result),
        )
        self.sim.schedule(self.latency, self.l2.access, l2_req)

    def _fill(self, base: int, result: L2AccessResult) -> None:
        entry = self.mshr.release(base)
        self.last_fill_reason = (
            "drop" if result.dropped
            else "uncached" if result.uncached
            else "fill"
        )
        if result.dropped:
            # The L2 rejected our prefetch. Re-issue for any demand
            # requests that merged into the entry meanwhile.
            for waiter in entry.waiters:
                if not waiter.prefetch:
                    self._miss(waiter)
            self._drain_overflow()
            self.mshr.recycle(entry)
            return
        # The L2's grant may be stale: a downgrade or invalidation can
        # land during the response latency window, after the L2 decided
        # ``result.writable`` but before this fill runs. The writable
        # hint must mirror the L2's *current* M/E state, or a store
        # would silently dirty a shared line (a second writer).
        l2_line = self.l2.array.lookup(base, touch=False)
        writable = l2_line is not None and l2_line.state in (MODIFIED, EXCLUSIVE)
        if not self.array.contains(base):
            stream_id = None
            for waiter in entry.waiters:
                if waiter.stream_id is not None:
                    stream_id = waiter.stream_id
                    break
            # Floating-stream data bypasses the caches entirely: it
            # lives in the SE_L2 buffer (SS V-A, uncached stream data),
            # even when a demand request merged into the same MSHR.
            # Inclusion guard: the L2 may have evicted the line during
            # the response latency window; don't fill the L1 then.
            if not result.uncached and l2_line is not None:
                line, evicted = self.array.fill(
                    base, SHARED, now=self.sim.now,
                    prefetched=entry.is_prefetch_only,
                    stream_id=stream_id,
                    avoid=self._avoid_inflight,
                )
                line.writable = writable
                if entry.is_write and writable:
                    line.dirty = True
                if evicted is not None and evicted.dirty:
                    self._writeback_to_l2(evicted.addr)
        else:
            line = self.array.lookup(base, touch=False)
            line.writable = writable
            if entry.is_write and writable:
                line.dirty = True
        if entry.is_write and not writable and not result.uncached:
            # Write permission was revoked while the response was in
            # flight: retry the store as a background upgrade (GetX).
            self.stats.add("l1.write_upgrade_retries")
            self._miss(L1Request(addr=base, is_write=True))
        sim = self.sim
        if self._fast and sim.can_inline():
            # Fused wakeup (DESIGN.md §12): with nothing else pending
            # this cycle, the zero-delay waiter callbacks would run
            # immediately after this handler in queue order — so run
            # them synchronously once _fill has fully completed
            # (after the overflow drain, exactly where the event
            # queue would have run them). count_inlined_events keeps
            # the logical event count identical to the unfused path.
            self._drain_overflow()
            sim._inline_depth += 1
            try:
                for waiter in entry.waiters:
                    if waiter.on_done is not None:
                        sim.count_inlined_events(1)
                        waiter.on_done()
            finally:
                sim._inline_depth -= 1
        else:
            for waiter in entry.waiters:
                if waiter.on_done is not None:
                    sim.schedule(0, waiter.on_done)
            self._drain_overflow()
        self.mshr.recycle(entry)

    def _writeback_to_l2(self, addr: int) -> None:
        """Dirty L1 victim folds into the (inclusive) L2 copy."""
        line = self.l2.array.lookup(addr, touch=False)
        if line is not None:
            line.dirty = True
            line.state = MODIFIED
        self.stats.add("l1.writebacks")

    def _drain_overflow(self) -> None:
        while self._overflow and not self.mshr.full:
            req = self._overflow.pop(0)
            base = req.addr & _LINE_MASK
            line = self.array.lookup(base)
            if line is not None and (not req.is_write or line.writable):
                # The line arrived while the request was parked.
                self.stats.add("l1.hits", req.count)
                line.uses += req.count
                if req.is_write:
                    line.dirty = True
                if req.on_done is not None:
                    self.sim.schedule(self.latency, req.on_done)
                continue
            self._miss(req)

    def invalidate(self, addr: int) -> None:
        self.array.invalidate(addr & _LINE_MASK)

    def downgrade(self, addr: int) -> None:
        """L2 lost write permission: clear the writable hint (and fold
        any silently dirtied L1 data back into the outgoing copy)."""
        line = self.array.lookup(addr & _LINE_MASK, touch=False)
        if line is not None:
            line.writable = False
            line.dirty = False
