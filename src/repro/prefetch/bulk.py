"""Bulk prefetch: the paper's "microarchitecture-only" comparison.

SS VI: the L2 stride prefetcher is augmented to group up to 4
consecutive prefetch requests headed to the *same L3 bank* into a
single request message, cutting request-control traffic by up to 4x.
The responses are still one data message per line. The optimization
only applies when the L3 interleaving granularity exceeds one cache
line (otherwise consecutive lines never share a bank) — the harness
enforces that, matching the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.mem.coherence import CohMsg
from repro.noc.message import CTRL, Packet, control_payload_bits
from repro.noc.network import Network
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats


class BulkGrouper:
    """Batches L2 prefetch GetS messages per destination bank."""

    ADDR_BITS = 48

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        stats: Stats,
        tile: int,
        group_size: int = 4,
        flush_after: int = 8,
    ) -> None:
        self.sim = sim
        self.net = net
        self.stats = stats
        self.tile = tile
        self.group_size = group_size
        self.flush_after = flush_after
        self._pending: Dict[int, List[Tuple[CohMsg, object]]] = {}

    def enqueue(self, home: int, msg: CohMsg, entry) -> None:
        """Queue a prefetch GetS for ``home``; flushes at group_size
        or after ``flush_after`` cycles, whichever comes first."""
        queue = self._pending.setdefault(home, [])
        queue.append((msg, entry))
        if len(queue) >= self.group_size:
            self.flush(home)
        elif len(queue) == 1:
            self.sim.schedule(self.flush_after, self._timeout, home)

    def _timeout(self, home: int) -> None:
        if self._pending.get(home):
            self.flush(home)

    def flush(self, home: int) -> None:
        queue = self._pending.pop(home, None)
        if not queue:
            return
        msgs = [msg for msg, _entry in queue]
        if len(msgs) == 1:
            packet = Packet(
                src=self.tile, dst=home, kind=CTRL,
                payload_bits=control_payload_bits(), dst_port="l3",
                body=msgs[0],
            )
        else:
            bulk = CohMsg(
                op="GetSBulk", addr=msgs[0].addr,
                requester=self.tile, se_info=msgs,
            )
            packet = Packet(
                src=self.tile, dst=home, kind=CTRL,
                payload_bits=(len(msgs) - 1) * self.ADDR_BITS,
                dst_port="l3", body=bulk,
            )
            self.stats.add("l2.bulk_groups")
            self.stats.add("l2.bulk_grouped_requests", len(msgs))
        info = self.net.send(packet)
        for _msg, entry in queue:
            entry.meta["req_flits"] = info.flits / len(queue)

    def flush_all(self) -> None:
        for home in list(self._pending):
            self.flush(home)
