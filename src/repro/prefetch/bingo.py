"""Bingo spatial data prefetcher [Bakhshalipour et al., HPCA'19].

Bingo learns the *footprint* of accesses within a spatial region
(2 kB, Table III) and replays it when the region is re-triggered. Its
key idea is association with multiple event granularities in one
history table: lookups try the long event (PC+Address) first for
accuracy, then fall back to the short event (PC+Offset) for coverage.

Structure:

- **Accumulation table**: regions currently being accessed; records
  the trigger event and the bitmap of lines touched. Evicted
  generations (LRU) are committed to the history table.
- **Pattern history table (PHT)**: bounded LRU map from events to
  footprints, filled at commit under both the long and short events.

On the first access to an untracked region, Bingo predicts: if the
long event hits, prefetch that footprint; else try the short event.
This replays entire footprints at once — the aggressive behaviour
that wins DPC3 but also the over-fetch on irregular workloads the
paper measures in Figure 15.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.mem.addr import LINE_SIZE, line_addr


@dataclass
class Generation:
    """One in-flight region access generation."""

    trigger_pc: int
    trigger_addr: int
    trigger_offset: int
    footprint: set = field(default_factory=set)


class BingoPrefetcher:
    """Spatial footprint prefetcher over fixed-size regions."""

    def __init__(
        self,
        region_bytes: int = 2048,
        pht_entries: int = 1024,
        accumulation_entries: int = 64,
    ) -> None:
        if region_bytes % LINE_SIZE:
            raise ValueError("region must be a multiple of the line size")
        self.region_bytes = region_bytes
        self.lines_per_region = region_bytes // LINE_SIZE
        self.pht_entries = pht_entries
        self.accumulation_entries = accumulation_entries
        self._accum: "OrderedDict[int, Generation]" = OrderedDict()
        self._pht_long: "OrderedDict[Tuple[int, int], frozenset]" = OrderedDict()
        self._pht_short: "OrderedDict[Tuple[int, int], frozenset]" = OrderedDict()
        self.issued = 0
        self.long_hits = 0
        self.short_hits = 0

    # ------------------------------------------------------------------
    def _region_of(self, addr: int) -> int:
        return addr - (addr % self.region_bytes)

    def _offset_of(self, addr: int) -> int:
        return (addr % self.region_bytes) // LINE_SIZE

    def on_access(self, op_id: Optional[int], addr: int, hit: bool) -> List[int]:
        """Train on a demand access; returns line addresses to prefetch."""
        if op_id is None:
            return []
        region = self._region_of(addr)
        offset = self._offset_of(addr)
        gen = self._accum.get(region)
        if gen is not None:
            gen.footprint.add(offset)
            self._accum.move_to_end(region)
            return []
        # Trigger access for a new generation.
        if len(self._accum) >= self.accumulation_entries:
            _, old = self._accum.popitem(last=False)
            self._commit(old)
        gen = Generation(
            trigger_pc=op_id, trigger_addr=line_addr(addr),
            trigger_offset=offset, footprint={offset},
        )
        self._accum[region] = gen
        return self._predict(op_id, addr, region, offset)

    def _predict(self, pc: int, addr: int, region: int, offset: int) -> List[int]:
        footprint = self._pht_long.get((pc, line_addr(addr)))
        if footprint is not None:
            self.long_hits += 1
            self._pht_long.move_to_end((pc, line_addr(addr)))
        else:
            footprint = self._pht_short.get((pc, offset))
            if footprint is None:
                return []
            self.short_hits += 1
            self._pht_short.move_to_end((pc, offset))
        lines = [
            region + off * LINE_SIZE
            for off in sorted(footprint)
            if off != offset
        ]
        self.issued += len(lines)
        return lines

    def _commit(self, gen: Generation) -> None:
        footprint = frozenset(gen.footprint)
        self._store(self._pht_long, (gen.trigger_pc, gen.trigger_addr), footprint)
        self._store(self._pht_short, (gen.trigger_pc, gen.trigger_offset), footprint)

    def _store(self, pht: OrderedDict, key, footprint: frozenset) -> None:
        if key in pht:
            pht.move_to_end(key)
        elif len(pht) >= self.pht_entries:
            pht.popitem(last=False)
        pht[key] = footprint

    def flush_generations(self) -> None:
        """Commit all in-flight generations (end-of-run tidiness)."""
        while self._accum:
            _, gen = self._accum.popitem(last=False)
            self._commit(gen)
