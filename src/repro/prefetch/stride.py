"""Stride prefetcher (reference-prediction-table style).

Table III's baseline: per-PC stride detection with 16 concurrent
streams; degree 8 at L1, 16 at L2, single-cycle request generation.
Each table entry tracks the last address, the detected stride and a
2-bit confidence counter; once confident, it prefetches ``degree``
strides ahead, remembering how far ahead it has already issued so
steady-state traffic is one prefetch per demand access.

The workload layer supplies a stable ``op_id`` per static access site,
which plays the role of the PC.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.mem.addr import LINE_SIZE, line_addr


@dataclass
class StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0
    issued_until: int = 0  # highest address (exclusive) prefetched so far


class StridePrefetcher:
    """Per-PC stride detector with bounded stream table."""

    CONF_MAX = 3
    CONF_THRESHOLD = 2

    def __init__(self, streams: int = 16, degree: int = 8) -> None:
        if streams <= 0 or degree <= 0:
            raise ValueError("streams and degree must be positive")
        self.streams = streams
        self.degree = degree
        self._table: "OrderedDict[int, StrideEntry]" = OrderedDict()
        self.issued = 0

    def on_access(self, op_id: Optional[int], addr: int, hit: bool) -> List[int]:
        """Train on a demand access; returns line addresses to prefetch."""
        if op_id is None:
            return []
        entry = self._table.get(op_id)
        if entry is None:
            if len(self._table) >= self.streams:
                self._table.popitem(last=False)
            self._table[op_id] = StrideEntry(last_addr=addr)
            return []
        self._table.move_to_end(op_id)
        stride = addr - entry.last_addr
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(self.CONF_MAX, entry.confidence + 1)
        else:
            entry.confidence -= 1
            if entry.confidence <= 0:
                entry.stride = stride
                entry.confidence = 1
                entry.issued_until = 0
        entry.last_addr = addr
        if entry.confidence < self.CONF_THRESHOLD or entry.stride == 0:
            return []
        return self._generate(entry, addr)

    def _generate(self, entry: StrideEntry, addr: int) -> List[int]:
        """Prefetch up to ``degree`` strides ahead of ``addr``."""
        lines: List[int] = []
        horizon = addr + entry.stride * self.degree
        start = max(addr + entry.stride, entry.issued_until)
        if entry.stride > 0:
            next_addr = start
            while next_addr <= horizon:
                lines.append(line_addr(next_addr))
                next_addr += entry.stride
            entry.issued_until = next_addr
        else:
            # Negative strides: march downward; issued_until tracks the
            # lowest address fetched (stored negated for uniformity).
            next_addr = addr + entry.stride
            while next_addr >= horizon and next_addr >= 0:
                lines.append(line_addr(next_addr))
                next_addr += entry.stride
        # Dedup lines (small strides revisit the same line).
        seen = []
        for ln in lines:
            if ln not in seen and ln >= 0:
                seen.append(ln)
        self.issued += len(seen)
        return seen
