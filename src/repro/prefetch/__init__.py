"""Prefetchers: stride, Bingo spatial, and bulk request grouping."""

from repro.prefetch.bingo import BingoPrefetcher
from repro.prefetch.bulk import BulkGrouper
from repro.prefetch.stride import StridePrefetcher

__all__ = ["StridePrefetcher", "BingoPrefetcher", "BulkGrouper"]
