"""Stream Floating (HPCA 2021) reproduction.

A pure-Python, discrete-event reproduction of *Stream Floating:
Enabling Proactive and Decentralized Cache Optimizations* (Wang,
Weng, Lowe-Power, Gaur, Nowatzki — HPCA 2021): a tiled-multicore
simulator whose stream engines float decoupled streams into the
shared L3 banks.

Public API tour:

- :func:`repro.system.make_config` — build any of the paper's
  comparison systems (base / stride / bingo / bulk / ss / sf /
  sf_aff / sf_ind / sf_sgc);
- :class:`repro.system.Chip` — assemble and run a chip;
- :func:`repro.workloads.build_programs` — the 12 Table IV
  benchmarks as stream programs;
- :func:`repro.harness.run_once` — one memoized experiment point;
- :mod:`repro.harness.experiments` — every figure of the paper's
  evaluation;
- :class:`repro.energy.EnergyModel` — the McPAT-substitute
  event-energy model.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
