#!/usr/bin/env python
"""Indirect floating on a graph workload (bfs).

BFS's inner loop is ``visited[edge_dst[i]]`` — a gather the paper's
evaluated prefetchers cannot follow. With stream floating, the affine
edge stream is offloaded to the L3 banks together with its chained
indirect stream; the remote SE_L3 computes the gather addresses and
only the 4-byte sublines travel back to the core (SS IV-B).

This example contrasts Bingo (a state-of-the-art spatial prefetcher),
SS (streams without floating) and SF on the in-order core, and breaks
the SF traffic down to show the subline savings.

Run:  python examples/graph_indirect.py
"""

from repro.harness import run_once


def main() -> None:
    base = run_once("bfs", "base", core="io4", scale=16)
    print("bfs on IO4 (16 cores, fast profile)\n")
    print(f"{'system':>7s} {'cycles':>10s} {'speedup':>8s} "
          f"{'flit-hops':>11s} {'vs base':>8s}")
    for system in ("base", "bingo", "ss", "sf"):
        rec = run_once("bfs", system, core="io4", scale=16)
        print(f"{system:>7s} {rec.cycles:>10,} "
              f"{base.cycles / rec.cycles:>8.2f} "
              f"{rec.flit_hops:>11,.0f} "
              f"{rec.flit_hops / base.flit_hops:>8.2f}")

    sf = run_once("bfs", "sf", core="io4", scale=16)
    ind = sf.stats["l3.requests_by_source.float_ind"]
    aff = sf.stats["l3.requests_by_source.float_affine"]
    total = sum(
        sf.stats.get(f"l3.requests_by_source.{s}")
        for s in ("core", "core_stream", "float_affine", "float_ind",
                  "float_conf")
    )
    print(f"\nSF request mix: {ind / total:.0%} indirect floating, "
          f"{aff / total:.0%} affine floating")
    print("Each indirect response is a 4-byte subline (1 flit) instead")
    print("of a 64-byte line (3 flits) — the mechanism behind bfs's")
    print("traffic drop in the paper's Figure 15.")


if __name__ == "__main__":
    main()
