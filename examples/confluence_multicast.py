#!/usr/bin/env python
"""Stream confluence: merging identical streams into multicasts.

In conv3d every core streams the same input feature map; in
particlefilter's resampling phase every core walks the same
cumulative-weight array. The SE_L3's merge unit detects streams with
identical parameters from cores in the same 2x2 tile block, services
the group with one read, and multicasts the response along a shared
X-Y tree (SS IV-C).

This example quantifies the effect: multicast count, flit-hops saved
by shared tree links, and the end-to-end traffic/cycles differences
with confluence disabled (the ``sf_ind`` configuration floats streams
but never merges them).

Run:  python examples/confluence_multicast.py
"""

from repro.harness import run_once


def main() -> None:
    for wl in ("conv3d", "particlefilter"):
        sf = run_once(wl, "sf", scale=16)
        no_conf = run_once(wl, "sf_ind", scale=16)  # floating, no merge
        saved = sf.stats["noc.multicast.saved_flit_hops"]
        print(f"{wl}:")
        print(f"  confluence groups formed : "
              f"{sf.stats['se_l3.confluences']:.0f}")
        print(f"  multicast responses      : "
              f"{sf.stats['se_l3.multicasts']:.0f}")
        print(f"  flit-hops saved by trees : {saved:,.0f}")
        print(f"  traffic vs no-confluence : "
              f"{sf.flit_hops / max(1, no_conf.flit_hops):.2f}x")
        print(f"  cycles  vs no-confluence : "
              f"{sf.cycles / max(1, no_conf.cycles):.2f}x")
        print()
    print("Confluence turns N identical unicast streams into one")
    print("multicast stream — the paper measures this as conv3d's")
    print("dominant request class (Figure 14).")


if __name__ == "__main__":
    main()
