#!/usr/bin/env python
"""Quickstart: build a chip, run a workload, compare systems.

Simulates the hotspot stencil on a 4x4-tile chip under three systems
— no prefetching, the Bingo prefetcher, and stream floating — and
prints cycles, NoC traffic and energy for each. This is the minimal
end-to-end use of the library's public API:

    Chip(make_config(...)).run(build_programs(...))

Run:  python examples/quickstart.py
"""

from repro.energy import EnergyModel
from repro.system import Chip, make_config
from repro.workloads import build_programs


def simulate(system: str) -> None:
    params = make_config(system, core="ooo8", cols=4, rows=4, scale=16)
    chip = Chip(params)
    programs = build_programs("hotspot", chip.num_cores, scale=16)
    result = chip.run(programs)
    energy = EnergyModel().evaluate(result.stats, result.cycles, params)
    traffic = result.noc_flit_hops
    print(f"{system:>6s}: {result.cycles:>9,} cycles   "
          f"{traffic:>12,.0f} flit-hops   {energy.total / 1e6:8.2f} uJ")


def main() -> None:
    print("hotspot on a 4x4 chip (scale-16 fast profile)")
    for system in ("base", "bingo", "sf"):
        simulate(system)
    print("\nExpected shape: 'sf' is fastest, with the least traffic —")
    print("the stream engines float the stencil's row streams to the")
    print("L3 banks, which push data without per-line requests.")


if __name__ == "__main__":
    main()
