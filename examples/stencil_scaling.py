#!/usr/bin/env python
"""Stencil scaling study: where does stream floating pay off?

Runs the hotspot thermal stencil across mesh sizes and compares the
stream-specialized system (SS — streams prefetch but stay cached)
against stream floating (SF — row streams float to the L3 banks and
the SE_L2 serves the shifted north/centre copies from one buffered
stream). Reports the SF/SS speedup, NoC traffic ratio, and the L2
no-reuse eviction fraction that floating eliminates.

This reproduces the mechanism behind the paper's Figure 18: floating
helps most when the working set lives in the L3 and the private L2
would otherwise thrash on pass-through data.

Run:  python examples/stencil_scaling.py
"""

from repro.harness import run_once


def main() -> None:
    print(f"{'mesh':>6s} {'SS cycles':>12s} {'SF cycles':>12s} "
          f"{'SF/SS':>7s} {'traffic':>8s} {'SS noreuse-evict':>17s}")
    for cols, rows in ((2, 2), (4, 4), (4, 8)):
        ss = run_once("hotspot", "ss", cols=cols, rows=rows, scale=16)
        sf = run_once("hotspot", "sf", cols=cols, rows=rows, scale=16)
        evictions = ss.stats["l2.evictions"]
        noreuse = ss.stats["l2.evictions_noreuse"]
        frac = noreuse / evictions if evictions else 0.0
        print(f"{cols}x{rows:<4d} {ss.cycles:>12,} {sf.cycles:>12,} "
              f"{ss.cycles / sf.cycles:>7.2f} "
              f"{sf.flit_hops / max(1, ss.flit_hops):>8.2f} "
              f"{frac:>17.2f}")
    print("\ntraffic = SF flit-hops / SS flit-hops (lower is better).")
    print("Floated rows never enter the private caches, so the no-")
    print("reuse evictions (and their coherence traffic) disappear.")


if __name__ == "__main__":
    main()
