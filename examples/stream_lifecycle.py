#!/usr/bin/env python
"""Watch a floated stream's life: float -> migrate -> ... -> end.

Attaches the event tracer to an SF chip running the mv kernel and
prints the first float/sink/migration/confluence events, then the
per-kind totals. Useful both for understanding the mechanism and for
debugging new workloads: a stream that floats and immediately sinks,
or that migrates every few elements, shows up here at a glance.

Run:  python examples/stream_lifecycle.py
"""

from repro.sim import Tracer
from repro.system import Chip, make_config
from repro.workloads import build_programs


def main() -> None:
    chip = Chip(make_config("sf", core="ooo8", cols=4, rows=4, scale=16))
    tracer = Tracer(chip, kinds=("float", "sink", "migrate", "end"))
    programs = build_programs("mv", chip.num_cores, scale=16)
    result = chip.run(programs)

    print("first 20 stream events:")
    for ev in list(tracer.events)[:20]:
        print(" ", ev)
    print("\nevent totals:")
    print(tracer.summary())
    print(f"\nrun: {result.cycles:,} cycles, "
          f"{result.stats['l3.requests.stream_float']:.0f} SE_L3 requests, "
          f"{result.stats['se_l3.migrations_out']:.0f} migrations")
    print("\nReading it: the matrix stream floats at configuration "
          "(footprint >> L2);\nthe x vector floats from history, then "
          "sinks once its second pass starts\nhitting the private "
          "caches — exactly the paper's float/sink policy (SS IV-D).")


if __name__ == "__main__":
    main()
