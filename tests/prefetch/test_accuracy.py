"""Prefetcher accuracy on the paper's named access shapes.

The paper calls out two failure cases for the baseline prefetchers:
nw's blocked 2-D array accessed in diagonal order defeats the stride
prefetcher, and neither baseline supports the indirection in bfs.
These tests pin the accuracy characteristics on the raw access
sequences, complementing the full-system traffic measurements.
"""

import numpy as np

from repro.prefetch.bingo import BingoPrefetcher
from repro.prefetch.stride import StridePrefetcher


def accuracy(prefetcher, op_id, addresses):
    """Fraction of issued prefetch lines later demanded."""
    demanded = {a >> 6 for a in addresses}
    issued = []
    for addr in addresses:
        issued.extend(prefetcher.on_access(op_id, addr, hit=False))
    if not issued:
        return None
    useful = sum(1 for line in issued if (line >> 6) in demanded)
    return useful / len(issued)


def nw_block_sequence(block=16, row_bytes=4096, nblocks=4):
    """nw's shape: a few consecutive lines, then a jump of a full
    matrix row; blocks visited in diagonal order."""
    addrs = []
    for diag in range(nblocks):
        base = diag * (row_bytes * block + block * 64)  # (i, j=diag-i)
        for r in range(block):
            for line in range(4):
                addrs.append(base + r * row_bytes + line * 64)
    return addrs


def dense_sequence(lines=256):
    return [i * 64 for i in range(lines)]


def gather_sequence(n=512, span_lines=4096, seed=0):
    rng = np.random.default_rng(seed)
    return [int(x) * 64 for x in rng.integers(0, span_lines, n)]


def test_stride_perfect_on_dense():
    acc = accuracy(StridePrefetcher(degree=4), 1, dense_sequence())
    assert acc is not None and acc > 0.95


def test_stride_struggles_on_nw_blocks():
    """The paper: 'nw failed on the stride prefetcher (blocked 2D
    array accessed in diagonal order)' — every 4 lines the stride
    breaks, so confidence keeps collapsing."""
    dense = accuracy(StridePrefetcher(degree=8), 1, dense_sequence())
    pf = StridePrefetcher(degree=8)
    addrs = nw_block_sequence()
    lines = {a >> 6 for a in addrs}
    issued = []
    for a in addrs:
        issued.extend(pf.on_access(1, a, hit=False))
    useful = sum(1 for p in issued if (p >> 6) in lines)
    nw_accuracy = useful / len(issued)
    # Dense streaming: near-perfect. nw's blocked diagonal: mostly
    # junk prefetches (the 4-line runs keep breaking the stride).
    assert dense > 0.9
    assert nw_accuracy < 0.5
    assert len(issued) > useful * 2  # substantial overfetch


def test_neither_baseline_covers_gathers():
    """Random gathers (bfs's visited accesses): stride finds no
    stable stride; Bingo's regions never repeat."""
    seq = gather_sequence()
    stride_acc = accuracy(StridePrefetcher(degree=8), 7, seq)
    bingo = BingoPrefetcher()
    issued = []
    for a in seq:
        issued.extend(bingo.on_access(7, a, hit=False))
    # Few-to-no useful prefetches from either.
    if stride_acc is not None:
        assert stride_acc < 0.3
    demanded = {a >> 6 for a in seq}
    useful = sum(1 for line in issued if (line >> 6) in demanded)
    assert useful <= len(seq) * 0.2


def test_bingo_learns_repeated_footprints():
    """Bingo's strength: a revisited region replays its footprint."""
    bingo = BingoPrefetcher(accumulation_entries=1)
    region = 0x10000
    pattern = [region + off * 64 for off in (0, 3, 7, 12)]
    for a in pattern:
        bingo.on_access(3, a, hit=False)
    bingo.on_access(3, 0x90000, hit=False)  # evict the generation
    out = bingo.on_access(3, region, hit=False)
    assert set(out) == {region + off * 64 for off in (3, 7, 12)}
