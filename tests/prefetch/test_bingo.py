"""Tests for the Bingo spatial prefetcher."""

from repro.prefetch.bingo import BingoPrefetcher


REGION = 2048


def touch_region(pf, pc, region_base, offsets):
    """Access the given line offsets within one region."""
    out = []
    for off in offsets:
        out.append(pf.on_access(pc, region_base + off * 64, hit=False))
    return out


def test_first_generation_learns_no_prediction():
    pf = BingoPrefetcher(accumulation_entries=1)
    out = touch_region(pf, pc=7, region_base=0, offsets=[0, 3, 5])
    assert out == [[], [], []]


def test_long_event_replays_footprint():
    pf = BingoPrefetcher(accumulation_entries=1)
    touch_region(pf, 7, 0, [0, 3, 5])
    # Evict the generation by triggering another region.
    touch_region(pf, 7, 10 * REGION, [0])
    # Re-trigger region 0 with the same pc+addr: long event hit.
    out = pf.on_access(7, 0, hit=False)
    assert sorted(out) == [3 * 64, 5 * 64]
    assert pf.long_hits == 1


def test_short_event_fallback_different_region():
    pf = BingoPrefetcher(accumulation_entries=1)
    touch_region(pf, 7, 0, [2, 4, 6])
    touch_region(pf, 7, 10 * REGION, [0])  # commits region 0
    # New region, same pc and same trigger offset (2): short event.
    out = pf.on_access(7, 20 * REGION + 2 * 64, hit=False)
    assert sorted(out) == [20 * REGION + 4 * 64, 20 * REGION + 6 * 64]
    assert pf.short_hits == 1


def test_trigger_line_excluded_from_prefetch():
    pf = BingoPrefetcher(accumulation_entries=1)
    touch_region(pf, 1, 0, [1, 2])
    touch_region(pf, 1, 10 * REGION, [0])
    out = pf.on_access(1, 64, hit=False)  # trigger offset 1
    assert 64 not in out


def test_unknown_event_no_prefetch():
    pf = BingoPrefetcher()
    assert pf.on_access(9, 123456 * 64, hit=False) == []


def test_footprint_capped_by_region():
    pf = BingoPrefetcher(accumulation_entries=1)
    touch_region(pf, 1, 0, list(range(32)))  # whole region
    touch_region(pf, 1, 10 * REGION, [0])
    out = pf.on_access(1, 0, hit=False)
    assert len(out) == 31  # all lines minus trigger
    assert all(0 <= a < REGION for a in out)


def test_pht_capacity_lru():
    pf = BingoPrefetcher(accumulation_entries=1, pht_entries=2)
    for r in range(4):
        touch_region(pf, r, r * 100 * REGION, [0, 1])
    pf.flush_generations()
    assert len(pf._pht_long) <= 2
    assert len(pf._pht_short) <= 2


def test_flush_generations_commits():
    pf = BingoPrefetcher()
    touch_region(pf, 3, 0, [0, 7])
    pf.flush_generations()
    out = pf.on_access(3, 0, hit=False)
    assert out == [7 * 64]


def test_none_op_id_ignored():
    pf = BingoPrefetcher()
    assert pf.on_access(None, 0, hit=False) == []
