"""Tests for the stride prefetcher."""

from repro.prefetch.stride import StridePrefetcher


def drive(pf, op_id, start, stride, count):
    out = []
    for i in range(count):
        out.append(pf.on_access(op_id, start + i * stride, hit=False))
    return out


def test_no_prefetch_until_confident():
    pf = StridePrefetcher(degree=4)
    results = drive(pf, 1, 0x1000, 64, 3)
    assert results[0] == []  # first touch: allocate
    assert results[1] == []  # stride learned, confidence 1
    assert results[2] != []  # confidence 2: fire


def test_prefetch_addresses_follow_stride():
    pf = StridePrefetcher(degree=4)
    results = drive(pf, 1, 0x1000, 64, 3)
    addr = 0x1000 + 2 * 64
    assert results[2] == [addr + 64 * k for k in range(1, 5)]


def test_steady_state_one_line_per_access():
    pf = StridePrefetcher(degree=4)
    results = drive(pf, 1, 0x0, 64, 10)
    # After the initial burst, each access extends the window by one.
    for lines in results[4:]:
        assert len(lines) == 1


def test_stride_change_resets():
    pf = StridePrefetcher(degree=4)
    drive(pf, 1, 0x1000, 64, 4)  # confidence saturates at 3
    # Break the pattern: confidence decays over mismatching accesses
    # (the prefetcher keeps firing on the old stride briefly, as real
    # RPT designs do), then the new stride trains from scratch.
    for i in range(4):
        pf.on_access(1, 0x90000 + i * 0x3000, hit=False)
    entry = pf._table[1]
    assert entry.stride == 0x3000
    assert entry.confidence < StridePrefetcher.CONF_MAX


def test_negative_stride():
    pf = StridePrefetcher(degree=2)
    out = drive(pf, 1, 0x10000, -64, 4)
    assert any(out)
    fired = [lines for lines in out if lines]
    for lines in fired:
        assert all(a < 0x10000 for a in lines)


def test_large_stride_skips_lines():
    pf = StridePrefetcher(degree=2)
    out = drive(pf, 1, 0x0, 4096, 3)
    assert out[2] == [2 * 4096 + 4096, 2 * 4096 + 2 * 4096]


def test_sub_line_stride_dedups_lines():
    pf = StridePrefetcher(degree=8)
    out = drive(pf, 1, 0x0, 8, 3)
    if out[2]:
        assert len(out[2]) == len(set(out[2]))


def test_table_capacity_evicts_lru():
    pf = StridePrefetcher(streams=2, degree=2)
    drive(pf, 1, 0x1000, 64, 3)
    drive(pf, 2, 0x2000, 64, 3)
    drive(pf, 3, 0x3000, 64, 3)  # evicts op 1
    # Op 1 must retrain from scratch: no prefetch on next access.
    assert pf.on_access(1, 0x1000 + 3 * 64, hit=False) == []


def test_zero_stride_ignored():
    pf = StridePrefetcher()
    pf.on_access(1, 0x1000, hit=False)
    assert pf.on_access(1, 0x1000, hit=False) == []


def test_none_op_id_ignored():
    pf = StridePrefetcher()
    assert pf.on_access(None, 0x1000, hit=False) == []
