"""Tests for the bulk prefetch request grouper."""

from repro.mem.coherence import CohMsg
from repro.mem.mshr import MshrEntry
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.prefetch.bulk import BulkGrouper
from repro.sim import Simulator, Stats


class BankStub:
    def __init__(self):
        self.received = []

    def handle(self, pkt):
        self.received.append(pkt)


def make_env():
    sim = Simulator()
    stats = Stats()
    net = Network(sim, Mesh(2, 2), stats)
    bank = BankStub()
    net.register(1, "l3", bank.handle)
    grouper = BulkGrouper(sim, net, stats, tile=0)
    return sim, stats, net, bank, grouper


def entry_for(addr):
    return MshrEntry(addr=addr, issued_cycle=0)


def test_four_requests_become_one_packet():
    sim, stats, net, bank, grouper = make_env()
    entries = []
    for i in range(4):
        e = entry_for(i * 64)
        entries.append(e)
        grouper.enqueue(1, CohMsg(op="GetS", addr=i * 64, requester=0), e)
    sim.run()
    assert len(bank.received) == 1
    body = bank.received[0].body
    assert body.op == "GetSBulk"
    assert len(body.se_info) == 4
    assert stats["l2.bulk_groups"] == 1
    assert stats["noc.packets.ctrl"] == 1
    # Request flit cost amortized across the group.
    assert entries[0].meta["req_flits"] == 0.25


def test_timeout_flushes_partial_group():
    sim, _, _, bank, grouper = make_env()
    grouper.enqueue(1, CohMsg(op="GetS", addr=0, requester=0), entry_for(0))
    grouper.enqueue(1, CohMsg(op="GetS", addr=64, requester=0), entry_for(64))
    sim.run()
    assert len(bank.received) == 1
    assert bank.received[0].body.op == "GetSBulk"
    assert len(bank.received[0].body.se_info) == 2


def test_single_request_sent_plain():
    sim, _, _, bank, grouper = make_env()
    grouper.enqueue(1, CohMsg(op="GetS", addr=0, requester=0), entry_for(0))
    sim.run()
    assert bank.received[0].body.op == "GetS"


def test_flush_all():
    sim, _, _, bank, grouper = make_env()
    grouper.enqueue(1, CohMsg(op="GetS", addr=0, requester=0), entry_for(0))
    grouper.flush_all()
    sim.run()
    assert len(bank.received) == 1


def test_groups_separated_by_bank():
    sim, _, net, bank, grouper = make_env()
    other = BankStub()
    net.register(2, "l3", other.handle)
    for i in range(4):
        home = 1 if i % 2 == 0 else 2
        grouper.enqueue(home, CohMsg(op="GetS", addr=i * 64, requester=0),
                        entry_for(i * 64))
    sim.run()
    # Two banks, two timeout-flushed groups of 2.
    assert len(bank.received) == 1
    assert len(other.received) == 1
