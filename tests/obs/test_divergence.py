"""Divergence localizer tests: checkpoint bisect, window replay, and
the S5-formula contract with the sanitizer."""

import pytest

from repro.obs.divergence import (
    Divergence,
    TraceRecorder,
    localize,
)


# ----------------------------------------------------------------------
# scripted simulator double (deterministic, reorderable event stream)
# ----------------------------------------------------------------------
def _handler(name):
    def fn():
        pass

    fn.__qualname__ = name
    return fn


class ScriptedSim:
    """Minimal Simulator double: a fixed (cycle, handler) schedule,
    dispatched through ``step`` so a step-hook wrap sees every event
    exactly like on the real backends."""

    def __init__(self, events):
        self._events = [(when, _handler(name)) for when, name in events]
        self._i = 0

    def peek_event(self):
        if self._i < len(self._events):
            return self._events[self._i]
        return None

    def step(self):
        when, fn = self._events[self._i]
        self._i += 1
        fn()
        return self._i < len(self._events)

    def run(self):
        if not self._events:
            return
        while self.step():
            pass


def _variant(events):
    def run(attach):
        sim = ScriptedSim(events)
        recorder = attach(sim)
        sim.run()
        return recorder
    return run


def _schedule(n):
    """n events, non-decreasing cycles, cycling handler names."""
    return [(i // 3, f"Tile.handler_{i % 7}") for i in range(n)]


# ----------------------------------------------------------------------
# recorder
# ----------------------------------------------------------------------
def test_recorder_checkpoints_and_window():
    events = _schedule(1000)
    rec = _variant(events)(lambda sim: TraceRecorder(
        sim, checkpoint_every=256, window=(500, 503)))
    assert rec.events == 1000
    assert len(rec.checkpoints) == 3  # 256, 512, 768
    assert rec.window_events == [
        (i, events[i][0], events[i][1]) for i in (500, 501, 502)
    ]


def test_recorder_rejects_bad_period():
    with pytest.raises(ValueError):
        TraceRecorder(ScriptedSim([]), checkpoint_every=0)


# ----------------------------------------------------------------------
# localization
# ----------------------------------------------------------------------
def test_identical_runs_report_no_divergence():
    events = _schedule(2000)
    assert localize(_variant(events), _variant(list(events)),
                    checkpoint_every=128) is None


def test_injected_reorder_localized_exactly():
    """The acceptance case: two same-cycle events swapped deep in the
    schedule must be pinned to the exact first divergent (cycle,
    event, handler) — not just 'hashes differ'."""
    events_a = _schedule(5000)
    events_b = list(events_a)
    # Indices 2500/2501 share cycle 833 but run different handlers:
    # swapping them is a pure scheduling reorder.
    assert events_b[2500][0] == events_b[2501][0]
    assert events_b[2500][1] != events_b[2501][1]
    events_b[2500], events_b[2501] = events_b[2501], events_b[2500]

    divergence = localize(_variant(events_a), _variant(events_b),
                          checkpoint_every=64)
    assert isinstance(divergence, Divergence)
    assert divergence.index == 2500
    assert divergence.a == (events_a[2500][0], events_a[2500][1])
    assert divergence.b == (events_a[2501][0], events_a[2501][1])
    assert divergence.events_a == divergence.events_b == 5000
    assert divergence.crc_a != divergence.crc_b
    text = divergence.describe()
    assert "index 2500" in text
    assert events_a[2500][1] in text and events_a[2501][1] in text


def test_tail_divergence_when_one_run_is_prefix():
    """Run B appends events past A's end: the first extra event is the
    divergence, with A's leg reported as ended."""
    events_a = _schedule(1000)
    events_b = events_a + [(999, "Tile.extra_0"), (999, "Tile.extra_1")]
    divergence = localize(_variant(events_a), _variant(events_b),
                          checkpoint_every=128)
    assert divergence is not None
    assert divergence.index == 1000
    assert divergence.a is None
    assert divergence.b == (999, "Tile.extra_0")
    assert "<run ended>" in divergence.describe()


def test_divergence_in_first_window():
    events_a = _schedule(400)
    events_b = list(events_a)
    events_b[3] = (events_b[3][0], "Tile.rogue")
    divergence = localize(_variant(events_a), _variant(events_b),
                          checkpoint_every=64)
    assert divergence is not None
    assert divergence.index == 3
    assert divergence.b == (events_a[3][0], "Tile.rogue")


def test_to_dict_round_trip_fields():
    events_a = _schedule(300)
    events_b = list(events_a)
    events_b[100] = (events_b[100][0], "Tile.rogue")
    divergence = localize(_variant(events_a), _variant(events_b),
                          checkpoint_every=32)
    payload = divergence.to_dict()
    assert payload["index"] == 100
    assert payload["b"] == [events_a[100][0], "Tile.rogue"]
    assert payload["checkpoint_every"] == 32


# ----------------------------------------------------------------------
# S5 contract: recorder hash == sanitizer hash on a real run
# ----------------------------------------------------------------------
def test_recorder_matches_sanitizer_s5_hash():
    """The recorder must hash the identical stream the sanitizer's S5
    trace hashes — otherwise its checkpoints would localize a
    *different* divergence than the one the CI gate reported."""
    from repro.system.chip import Chip
    from repro.system.configs import make_config
    from repro.workloads.base import build_programs

    system = make_config("sf", core="ooo8", cols=2, rows=2, scale=8,
                         link_bits=256, l3_interleave=None)
    chip = Chip(system)
    recorder = TraceRecorder(chip.sim, checkpoint_every=4096)
    programs = build_programs("mv", chip.num_cores, scale=8, seed=0)
    result = chip.run(programs)
    stats = result.stats.as_dict()
    assert stats.get("sanitizer.trace_events", 0) > 0
    assert recorder.events == stats["sanitizer.trace_events"]
    assert recorder.crc == stats["sanitizer.trace_hash"]
