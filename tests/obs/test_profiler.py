"""Kernel profiler tests: attribution, ranking, report format."""

import pytest

from repro.obs.profiler import KernelProfiler
from repro.obs.telemetry import ENV_TELEMETRY
from repro.sim import Simulator


def test_attribution_by_qualname():
    profiler = KernelProfiler()

    def fn_a():
        pass

    def fn_b():
        pass

    profiler.record(fn_a, 0.010)
    profiler.record(fn_a, 0.020)
    profiler.record(fn_b, 0.005)
    assert profiler.events == 3
    top = profiler.top(10)
    assert top[0]["callback"].endswith("fn_a")
    assert top[0]["events"] == 2
    assert top[0]["seconds"] == pytest.approx(0.030)
    assert top[0]["us_per_event"] == pytest.approx(15_000, rel=1e-3)
    assert profiler.total_seconds == pytest.approx(0.035)


def test_top_is_bounded_and_sorted():
    profiler = KernelProfiler()
    for i in range(30):
        fn = lambda: None  # noqa: E731
        fn.__qualname__ = f"cb_{i:02}"
        profiler.record(fn, 0.001 * (30 - i))
    top = profiler.top(5)
    assert len(top) == 5
    seconds = [row["seconds"] for row in top]
    assert seconds == sorted(seconds, reverse=True)
    assert top[0]["callback"] == "cb_00"


def test_report_renders_table():
    profiler = KernelProfiler()

    def cb():
        pass

    profiler.record(cb, 0.001)
    text = profiler.report(5)
    assert "kernel profile: 1 events" in text
    assert "cb" in text and "us/event" in text


def test_payload_schema():
    profiler = KernelProfiler()

    def cb():
        pass

    profiler.record(cb, 0.002)
    payload = profiler.payload(3)
    assert set(payload) == {"events", "callbacks", "total_seconds", "top"}
    assert payload["events"] == 1 and payload["callbacks"] == 1
    row = payload["top"][0]
    assert set(row) == {"callback", "events", "seconds", "us_per_event"}


def test_record_inner_subtracts_from_dispatch_sample():
    profiler = KernelProfiler()
    profiler.record_inner("L2Cache.handle", 0.004)

    def drain():
        pass

    drain.__qualname__ = "Network._drain_cycle"
    profiler.record(drain, 0.010)
    assert profiler._acc["L2Cache.handle"] == [1, 0.004]
    # The dispatch sample keeps only its own (non-handler) time...
    assert profiler._acc["Network._drain_cycle"][1] == pytest.approx(0.006)
    # ...so host seconds are counted exactly once.
    assert profiler.total_seconds == pytest.approx(0.010)
    assert profiler.events == 1  # queue dispatches only


def test_record_inner_clamps_dispatch_at_zero():
    # Timer skew can make the nested handler time exceed the
    # enclosing dispatch sample; the dispatch share clamps at zero
    # instead of going negative.
    profiler = KernelProfiler()
    profiler.record_inner("L3Bank.handle", 0.010)

    def drain():
        pass

    drain.__qualname__ = "Network._drain_cycle"
    profiler.record(drain, 0.008)
    assert profiler._acc["Network._drain_cycle"][1] == 0.0
    assert all(slot[1] >= 0 for slot in profiler._acc.values())


def test_lane_cached_deliveries_credit_real_handlers(monkeypatch):
    """Regression: deliveries batched by the NoC lane cache must show
    up under the endpoint handler's __qualname__, not lumped into the
    shared Network dispatch wrapper."""
    from tests.mem.conftest import MiniHierarchy

    monkeypatch.setenv(ENV_TELEMETRY, "profile")
    hier = MiniHierarchy()
    results = []
    for k in range(8):
        hier.read(k % 4, 0x20_0000 + k * 64, results)
    hier.run()
    profiler = hier.sim.telemetry.profiler
    assert results
    names = set(profiler._acc)
    handlers = {n for n in names if n.endswith(".handle")}
    assert handlers, f"no endpoint handlers profiled, saw {sorted(names)}"
    # The per-endpoint timers preserved the component qualnames (no
    # `timed` wrapper names leaked into the profile)...
    assert not any("watch_network" in n or n.endswith(".timed")
                   for n in names)
    # ...and the subtraction never drove a dispatch sample negative.
    assert all(slot[1] >= 0 for slot in profiler._acc.values())


def test_step_hook_profiles_simulation(monkeypatch):
    monkeypatch.setenv(ENV_TELEMETRY, "profile")
    sim = Simulator()
    hits = []

    def tick():
        hits.append(sim.now)
        if len(hits) < 5:
            sim.schedule(3, tick)

    sim.schedule(0, tick)
    sim.run()
    profiler = sim.telemetry.profiler
    assert len(hits) == 5
    assert profiler.events == 5
    [row] = profiler.top(5)
    assert row["callback"].endswith("tick")
    assert row["events"] == 5
