"""Telemetry layer tests: enablement matrix, event bus, hooks.

Mirrors ``tests/sim/test_sanitizer.py``'s enablement coverage: the
layer must be a strict no-op with zero hooks when off, and attach the
requested pillars (and only those) when on.
"""

import pytest

from repro.obs.telemetry import (
    ENV_INTERVAL,
    ENV_TELEMETRY,
    Telemetry,
    TelemetryConfig,
    config_from_env,
    enabled_by_env,
)
from repro.sim import Simulator
from tests.mem.conftest import MiniHierarchy

BASE = 0x20_0000


# ----------------------------------------------------------------------
# enablement matrix
# ----------------------------------------------------------------------
@pytest.mark.no_sanitize
def test_disabled_without_env():
    assert not enabled_by_env()
    sim = Simulator()
    assert sim.telemetry is None
    # Zero-cost off: no step hook (the sanitizer is also off here)...
    assert "step" not in sim.__dict__
    # ...and no component wraps its entry points.
    hier = MiniHierarchy()
    assert hier.net._deliver_at.__qualname__.startswith("Network.")
    assert hier.l1s[0]._miss.__qualname__.startswith("L1Cache.")
    assert hier.l2s[0]._data.__qualname__.startswith("L2Cache.")
    assert hier.banks[0].stream_read.__qualname__.startswith("L3Bank.")
    assert "_miss" not in hier.l1s[0].__dict__


@pytest.mark.no_sanitize
@pytest.mark.parametrize("value", ["", "0", "off", "False", "no"])
def test_off_values(monkeypatch, value):
    monkeypatch.setenv(ENV_TELEMETRY, value)
    assert not enabled_by_env()
    assert config_from_env() is None


@pytest.mark.parametrize("value", ["1", "all", "on", "true"])
def test_all_values_enable_every_pillar(monkeypatch, value):
    monkeypatch.setenv(ENV_TELEMETRY, value)
    config = config_from_env()
    assert config.spans
    assert config.interval > 0
    assert config.profile


def test_pillar_list_parses(monkeypatch):
    monkeypatch.setenv(ENV_TELEMETRY, "spans,profile")
    config = config_from_env()
    assert config.spans and config.profile
    assert config.interval == 0


def test_interval_period_from_env(monkeypatch):
    monkeypatch.setenv(ENV_TELEMETRY, "interval")
    monkeypatch.setenv(ENV_INTERVAL, "2500")
    config = config_from_env()
    assert config.interval == 2500
    assert not config.spans and not config.profile


def test_unknown_pillar_rejected(monkeypatch):
    monkeypatch.setenv(ENV_TELEMETRY, "spans,bogus")
    with pytest.raises(ValueError, match="bogus"):
        config_from_env()


def test_env_attach_installs_hooks(monkeypatch):
    monkeypatch.setenv(ENV_TELEMETRY, "spans")
    hier = MiniHierarchy()
    tel = hier.sim.telemetry
    assert tel is not None
    assert tel.spans is not None
    assert tel.sampler is None and tel.profiler is None
    # spans alone needs no step hook; the sanitizer's is fine.
    results = []
    hier.read(0, BASE, results)
    hier.run()
    assert results
    assert tel.bus_events > 0
    assert tel.spans.opened > 0
    assert tel.spans.closed == tel.spans.opened


def test_step_hook_only_for_interval_or_profile(monkeypatch):
    monkeypatch.setenv(ENV_TELEMETRY, "profile")
    sim = Simulator()
    assert sim.telemetry.profiler is not None
    assert "step" in sim.__dict__


# ----------------------------------------------------------------------
# event bus
# ----------------------------------------------------------------------
@pytest.mark.no_sanitize
def test_publish_reaches_subscribers_in_order():
    sim = Simulator()
    tel = Telemetry(sim, TelemetryConfig())
    seen = []
    tel.subscribe("float", lambda ev: seen.append(("a", ev)))
    tel.subscribe("float", lambda ev: seen.append(("b", ev)))
    tel.publish("float", tile=3, detail="sid 1", sid=1)
    assert [tag for tag, _ in seen] == ["a", "b"]
    ev = seen[0][1]
    assert ev.kind == "float" and ev.tile == 3 and ev.data["sid"] == 1
    assert tel.bus_events == 1


@pytest.mark.no_sanitize
def test_subscribe_unknown_kind_rejected():
    tel = Telemetry(Simulator(), TelemetryConfig())
    with pytest.raises(ValueError, match="unknown telemetry kind"):
        tel.subscribe("nope", lambda ev: None)


@pytest.mark.no_sanitize
def test_streams_alive_gauge_tracks_float_sink_end():
    tel = Telemetry(Simulator(), TelemetryConfig())
    tel.publish("float", tile=0, sid=1)
    tel.publish("float", tile=1, sid=1)
    assert tel.streams_alive == 2
    tel.publish("sink", tile=0, sid=1)
    assert tel.streams_alive == 1
    # end after sink for the same stream is idempotent...
    tel.publish("end", tile=9, requester=0, sid=1)
    assert tel.streams_alive == 1
    # ...and end alone retires the other one.
    tel.publish("end", tile=9, requester=1, sid=1)
    assert tel.streams_alive == 0


@pytest.mark.no_sanitize
def test_watch_is_idempotent():
    hier = MiniHierarchy()
    tel = Telemetry(hier.sim, TelemetryConfig())
    tel.watch_l1(hier.l1s[0])
    wrapped = hier.l1s[0]._miss
    tel.watch_l1(hier.l1s[0])  # second watch must not double-wrap
    assert hier.l1s[0]._miss is wrapped


# ----------------------------------------------------------------------
# wrappers preserve determinism-critical metadata
# ----------------------------------------------------------------------
@pytest.mark.no_sanitize
def test_wrappers_preserve_qualnames(monkeypatch):
    # The sanitizer's S5 determinism trace hashes queue-head
    # __qualname__s; telemetry wrapping must not change them.
    # (no_sanitize: with the sanitizer on, *its* wrappers own some of
    # these names — here we pin telemetry's own behavior.)
    monkeypatch.setenv(ENV_TELEMETRY, "spans")
    hier = MiniHierarchy()
    assert hier.net._deliver_at.__qualname__.startswith("Network.")
    assert hier.l1s[0]._miss.__qualname__.startswith("L1Cache.")
    assert hier.l2s[0]._miss.__qualname__.startswith("L2Cache.")
    assert hier.banks[0]._demand.__qualname__.startswith("L3Bank.")


def test_telemetry_does_not_change_simulation(monkeypatch):
    results = []
    hier = MiniHierarchy()
    for k in range(8):
        hier.read(k % 4, BASE + k * 64, results)
    hier.run()
    plain = (hier.sim.now, list(results))

    monkeypatch.setenv(ENV_TELEMETRY, "all")
    results2 = []
    hier2 = MiniHierarchy()
    for k in range(8):
        hier2.read(k % 4, BASE + k * 64, results2)
    hier2.run()
    assert (hier2.sim.now, results2) == plain
    assert hier2.sim.telemetry.bus_events > 0
