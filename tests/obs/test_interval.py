"""Interval sampler tests: cadence, deltas, derived rates, writers."""

import csv
import json

import pytest

from repro.obs.export import write_intervals
from repro.obs.interval import IntervalSampler
from repro.obs.telemetry import ENV_INTERVAL, ENV_TELEMETRY
from repro.sim.stats import Stats


def test_period_must_be_positive():
    with pytest.raises(ValueError):
        IntervalSampler(0)


def test_samples_deltas_not_totals():
    stats = Stats()
    sampler = IntervalSampler(100)
    sampler.bind(stats, links=8, cores=4)
    stats.add("core.ops", 500)
    stats.add("l3.misses", 5)
    sampler.on_step(100)
    stats.add("core.ops", 300)
    stats.add("l3.misses", 1)
    sampler.on_step(200)
    assert len(sampler.samples) == 2
    first, second = sampler.samples
    assert first["core_ops"] == 500 and second["core_ops"] == 300
    assert first["ipc"] == 5.0 and second["ipc"] == 3.0
    assert first["l3_mpki"] == 10.0
    assert second["l3_mpki"] == pytest.approx(1 / 0.3)


def test_sampler_skips_idle_gaps():
    stats = Stats()
    sampler = IntervalSampler(100)
    sampler.bind(stats, links=1, cores=1)
    sampler.on_step(50)
    assert not sampler.samples  # period not reached yet
    sampler.on_step(1050)  # one event after a long idle stretch
    assert len(sampler.samples) == 1  # no backlog of empty samples
    assert sampler.samples[0]["cycle"] == 1050
    sampler.on_step(1100)
    assert len(sampler.samples) == 2


def test_flush_emits_partial_tail():
    stats = Stats()
    sampler = IntervalSampler(1000)
    sampler.bind(stats, links=1, cores=1)
    stats.add("core.ops", 10)
    sampler.on_step(400)
    assert not sampler.samples
    sampler.flush(400)
    assert len(sampler.samples) == 1
    assert sampler.samples[0]["dcycles"] == 400
    sampler.flush(400)  # idempotent at the same cycle
    assert len(sampler.samples) == 1


def test_noc_util_uses_link_count():
    stats = Stats()
    sampler = IntervalSampler(10)
    sampler.bind(stats, links=4, cores=1)
    stats.add("noc.flit_hops.data", 20)
    sampler.on_step(10)
    assert sampler.samples[0]["noc_util"] == 20 / (4 * 10)


def test_streams_alive_gauge_is_sampled():
    stats = Stats()
    alive = {"n": 3}
    sampler = IntervalSampler(10, alive=lambda: alive["n"])
    sampler.bind(stats, links=1, cores=1)
    sampler.on_step(10)
    alive["n"] = 1
    sampler.on_step(20)
    assert [s["streams_alive"] for s in sampler.samples] == [3, 1]


def test_unbound_sampler_never_samples():
    sampler = IntervalSampler(10)
    sampler.on_step(1000)
    sampler.flush(1000)
    assert sampler.samples == []


def test_zero_cycle_interval_no_division():
    """A sample spanning zero cycles (back-to-back boundaries at the
    same instant) must report zero rates, not divide by zero."""
    stats = Stats()
    sampler = IntervalSampler(100)
    sampler.bind(stats, links=4, cores=2)
    stats.add("core.ops", 50)
    stats.add("noc.flit_hops.data", 10)
    sampler._sample(100)
    stats.add("l3.misses", 3)  # activity but no elapsed cycles
    sampler._sample(100)
    assert len(sampler.samples) == 2
    zero = sampler.samples[1]
    assert zero["dcycles"] == 0
    assert zero["ipc"] == 0.0
    assert zero["noc_util"] == 0.0
    assert zero["l3_mpki"] == 0.0
    assert zero["l3_misses"] == 3


def test_zero_ops_interval_no_division():
    """l3_mpki divides by ops — an interval with misses but no ops
    must come out 0, not raise."""
    stats = Stats()
    sampler = IntervalSampler(100)
    sampler.bind(stats, links=1, cores=1)
    stats.add("l3.misses", 7)
    sampler.on_step(100)
    assert sampler.samples[0]["l3_mpki"] == 0.0
    assert sampler.samples[0]["ipc"] == 0.0
    assert sampler.samples[0]["l3_misses"] == 7


def test_flush_partial_interval_reconciles_totals():
    """The final partial interval carries exactly the tail activity:
    summed deltas across all samples equal the Stats totals."""
    stats = Stats()
    sampler = IntervalSampler(100)
    sampler.bind(stats, links=1, cores=1)
    stats.add("core.ops", 60)
    sampler.on_step(100)
    stats.add("core.ops", 25)
    sampler.flush(140)  # run ends mid-interval
    assert len(sampler.samples) == 2
    assert sampler.samples[1]["dcycles"] == 40
    assert sampler.samples[1]["core_ops"] == 25
    assert sum(s["core_ops"] for s in sampler.samples) == 85


# ----------------------------------------------------------------------
# writers
# ----------------------------------------------------------------------
def _two_samples():
    stats = Stats()
    sampler = IntervalSampler(10)
    sampler.bind(stats, links=2, cores=2)
    stats.add("core.ops", 5)
    sampler.on_step(10)
    stats.add("core.ops", 7)
    sampler.on_step(20)
    return [{"point": "p", **s} for s in sampler.samples]


def test_jsonl_writer(tmp_path):
    path = write_intervals(str(tmp_path / "iv.jsonl"), _two_samples())
    lines = [json.loads(line) for line in open(path)]
    assert len(lines) == 2
    assert lines[0]["point"] == "p"
    assert lines[1]["core_ops"] == 7
    for col in IntervalSampler.columns():
        assert col in lines[0]


def test_csv_writer(tmp_path):
    path = write_intervals(str(tmp_path / "iv.csv"), _two_samples())
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 2
    assert rows[0]["point"] == "p"
    assert float(rows[1]["core_ops"]) == 7


def test_csv_jsonl_field_parity(tmp_path):
    """The CSV and JSONL writers must expose the same fields with the
    same values for the same samples — one schema, two encodings."""
    samples = _two_samples()
    jsonl = write_intervals(str(tmp_path / "iv.jsonl"), samples)
    csv_path = write_intervals(str(tmp_path / "iv.csv"), samples)
    json_rows = [json.loads(line) for line in open(jsonl)]
    with open(csv_path, newline="") as fh:
        reader = csv.DictReader(fh)
        header = reader.fieldnames
        csv_rows = list(reader)
    assert header == ["point"] + IntervalSampler.columns()
    for json_row, csv_row in zip(json_rows, csv_rows):
        assert set(header) <= set(json_row)
        for col in header:
            if col == "point":
                assert json_row[col] == csv_row[col]
            else:
                assert float(csv_row[col]) == pytest.approx(json_row[col])


def test_interval_pillar_end_to_end(monkeypatch):
    """A chip run with the interval pillar on produces samples whose
    totals reconcile with the final Stats."""
    monkeypatch.setenv(ENV_TELEMETRY, "interval")
    monkeypatch.setenv(ENV_INTERVAL, "5000")
    from repro.harness.runner import clear_cache, simulate, run_params

    try:
        record = simulate(run_params(workload="nn", config="base",
                                     cols=2, rows=2, scale=64))
    finally:
        clear_cache()
    assert record.telemetry["interval_samples"] > 1
