"""Span collector tests: mem / elem / stream span assembly."""

import pytest

from repro.obs.spans import SpanCollector
from repro.obs.telemetry import ENV_TELEMETRY, TelemetryConfig
from tests.mem.conftest import MiniHierarchy

BASE = 0x20_0000


@pytest.fixture
def spans_on(monkeypatch):
    monkeypatch.setenv(ENV_TELEMETRY, "spans")


@pytest.fixture(scope="module")
def sf_chip():
    """One telemetry-on sf run shared by the stream-span tests."""
    import os

    from repro.system.chip import Chip
    from repro.system.configs import make_config
    from repro.workloads.base import build_programs

    prev = os.environ.get(ENV_TELEMETRY)
    os.environ[ENV_TELEMETRY] = "spans"
    try:
        system = make_config("sf", core="ooo8", cols=2, rows=2, scale=64)
        chip = Chip(system)
        programs = build_programs("nn", chip.num_cores, scale=64, seed=0)
        chip.run(programs)
        return chip
    finally:
        if prev is None:
            os.environ.pop(ENV_TELEMETRY, None)
        else:
            os.environ[ENV_TELEMETRY] = prev


# ----------------------------------------------------------------------
# mem spans (demand fetch lifecycle)
# ----------------------------------------------------------------------
def test_mem_span_hops_l2_l3_dram(spans_on):
    hier = MiniHierarchy()
    results = []
    hier.read(0, BASE, results)
    hier.run()
    collector = hier.sim.telemetry.spans
    mem = collector.by_kind("mem")
    assert len(mem) == 1
    span = mem[0]
    assert span.closed
    assert span.tile == 0
    hop_names = [h.name for h in span.hops]
    # Cold L3 miss walks the full hierarchy.
    assert hop_names == ["l2_miss", "l3", "dram", "l2_data"]
    cycles = [span.start] + [h.cycle for h in span.hops] + [span.end]
    assert cycles == sorted(cycles)
    assert span.end > span.start


def test_merged_miss_shares_one_span(spans_on):
    hier = MiniHierarchy()
    results = []
    hier.read(0, BASE, results)
    hier.read(0, BASE + 8, results)  # same line: merges into the MSHR
    hier.run()
    collector = hier.sim.telemetry.spans
    assert len(collector.by_kind("mem")) == 1
    assert len(results) == 2


def test_span_cap_counts_drops(spans_on, monkeypatch):
    hier = MiniHierarchy()
    tel = hier.sim.telemetry
    tel.spans.max_spans = 2
    results = []
    for k in range(5):
        hier.read(0, BASE + k * 64, results)
    hier.run()
    assert tel.spans.opened == 2
    assert tel.spans.dropped == 3
    assert len(results) == 5  # dropping spans never drops requests


# ----------------------------------------------------------------------
# elem + stream spans (needs a floating run)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_sf_run_builds_stream_and_elem_spans(sf_chip):
    collector = sf_chip.sim.telemetry.spans
    streams = collector.by_kind("stream")
    assert streams, "sf run floated no streams"
    for span in streams:
        names = [h.name for h in span.hops]
        assert names[0] == "float"
        assert "migrate" in names
        assert names[-1] in ("sink", "end")
        cycles = [h.cycle for h in span.hops]
        assert cycles == sorted(cycles)
        assert span.closed
    elems = collector.by_kind("elem")
    assert elems
    closed = [s for s in elems if s.closed]
    assert closed
    for span in closed[:50]:
        assert [h.name for h in span.hops][0] == "getu"
        assert span.end >= span.start


@pytest.mark.slow
def test_noc_events_capture_arrivals(sf_chip):
    collector = sf_chip.sim.telemetry.spans
    assert collector.noc_events
    for noc in collector.noc_events[:100]:
        assert noc["arrive"] >= noc["depart"]
        assert noc["src"] != noc["dst"] or noc["port"]


# ----------------------------------------------------------------------
# standalone collector API (what the golden export test builds on)
# ----------------------------------------------------------------------
def test_collector_standalone_open_hop_close():
    collector = SpanCollector(None, TelemetryConfig(spans=True))
    key = ("mem", 0, 0x1000)
    collector.open("mem", key, 0, 10, addr=0x1000)
    collector.hop(key, "l2_miss", 14, 0)
    collector.close(key, 40)
    assert collector.opened == collector.closed == 1
    span = collector.spans[0]
    assert span.duration() == 30
    # Reopening a closed key makes a fresh span; hop to a missing key
    # is a no-op.
    collector.hop(("mem", 9, 0x9), "x", 1, 9)
    collector.open("mem", key, 0, 50)
    assert collector.opened == 2
