"""Differential observatory tests: golden report + delta parity with
raw RunRecords + CLI round-trip."""

import json
import os

import pytest

from repro.energy.model import EnergyBreakdown
from repro.harness.runner import RunRecord
from repro.obs.diff import (
    RunArtifacts,
    diff_runs,
    headline_deltas,
    link_flits,
    tile_matrix,
)
from repro.obs.report import render_html, render_markdown, sparkline
from repro.sim.stats import Stats

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_report.md")


# ----------------------------------------------------------------------
# synthetic fixture pair (what the golden file pins)
# ----------------------------------------------------------------------
def _record(config, cycles, overrides, telemetry):
    stats = Stats()
    base = {
        "core.ops": 1000, "l1.misses": 120,
        "l2.hits": 300, "l2.misses": 100,
        "l3.hits": 60, "l3.misses": 40,
        "noc.flit_hops.ctrl": 50, "noc.flit_hops.data": 200,
        "noc.flit_hops.stream": 0,
        "dram.reads": 40, "dram.writes": 4,
        "se_core.floats": 0, "se_core.sinks": 0,
        "se_l3.elements_issued": 0,
    }
    base.update(overrides)
    for name, value in base.items():
        stats.set(name, value)
    energy = EnergyBreakdown(core_dynamic=500.0, l2=100.0, l3=80.0,
                             noc=float(base["noc.flit_hops.data"]),
                             dram=200.0)
    return RunRecord(
        workload="mv", config=config, core="ooo8", cols=2, rows=2,
        scale=8, link_bits=256, l3_interleave=None, seed=0,
        cycles=cycles, stats=stats, energy=energy, telemetry=telemetry,
    )


def _intervals(point, ipcs):
    return [
        {"point": point, "cycle": (i + 1) * 100, "dcycles": 100,
         "ipc": ipc, "noc_util": round(ipc / 10, 3), "l3_mpki": 1.0,
         "streams_alive": 0, "core_ops": int(ipc * 100)}
        for i, ipc in enumerate(ipcs)
    ]


def _stream_trace(point, durations):
    events = []
    for i, dur in enumerate(durations):
        events.append({
            "ph": "X", "pid": 1, "tid": (i % 4) * 4 + 2, "ts": i * 10,
            "dur": dur, "name": f"stream sid {i} #0", "cat": "stream",
            "args": {"sid": i, "key": f"stream/{i % 4}/{i}/0"},
        })
    return events


def synthetic_pair():
    rec_a = _record("base", 2000, {}, telemetry={
        "tile.0.l3_demand": 40, "tile.1.l3_demand": 42,
        "tile.2.l3_demand": 38, "tile.3.l3_demand": 44,
        "link.0>1.flits": 90, "link.1>0.flits": 85,
    })
    rec_b = _record("sf", 1600, {
        "l2.hits": 380, "l2.misses": 60, "l3.hits": 20,
        "l3.misses": 30, "noc.flit_hops.data": 120,
        "noc.flit_hops.stream": 40, "se_core.floats": 6,
        "se_core.sinks": 2, "se_l3.elements_issued": 500,
    }, telemetry={
        "decisions": 10.0, "decisions.float": 6.0,
        "decisions.sink": 2.0, "decisions.migrate": 2.0,
        "tile.0.l3_demand": 30, "tile.1.l3_demand": 28,
        "tile.2.l3_demand": 26, "tile.3.l3_demand": 31,
        "tile.0.getu": 12, "tile.1.getu": 14,
        "tile.2.getu": 11, "tile.3.getu": 13,
        "link.0>1.flits": 60, "link.1>0.flits": 55,
        "link.2>3.flits": 20,
    })
    a = RunArtifacts(record=rec_a, label="base",
                     intervals=_intervals("a", [0.5, 0.4, 0.6, 0.5]),
                     trace_events=_stream_trace("a", [400, 900, 300]))
    b = RunArtifacts(record=rec_b, label="sf",
                     intervals=_intervals("b", [0.7, 0.8, 0.6, 0.9]),
                     trace_events=_stream_trace("b", [1500, 200, 800]))
    return a, b


# ----------------------------------------------------------------------
# golden
# ----------------------------------------------------------------------
def test_golden_report():
    """The Markdown report is pinned byte-for-byte (regenerate with
    `python -m tests.obs.test_diff` after a deliberate format
    change)."""
    a, b = synthetic_pair()
    got = render_markdown(diff_runs(a, b, k=2))
    with open(GOLDEN, encoding="utf-8") as fh:
        want = fh.read()
    assert got == want


def test_report_is_deterministic():
    a, b = synthetic_pair()
    first = render_markdown(diff_runs(a, b, k=2))
    a2, b2 = synthetic_pair()
    second = render_markdown(diff_runs(a2, b2, k=2))
    assert first == second


def test_html_report_wraps_markdown():
    a, b = synthetic_pair()
    html = render_html(diff_runs(a, b, k=2))
    assert html.startswith("<!DOCTYPE html>")
    assert "Run diff: base vs sf" in html
    assert "<table>" in html and "cycles" in html


# ----------------------------------------------------------------------
# computation units
# ----------------------------------------------------------------------
def test_headline_deltas_match_records():
    a, b = synthetic_pair()
    deltas = {d.name: d for d in headline_deltas(a.record, b.record)}
    assert deltas["cycles"].a == 2000 and deltas["cycles"].b == 1600
    assert deltas["cycles"].delta == -400
    assert deltas["cycles"].pct == pytest.approx(-20.0)
    assert deltas["se_core.floats"].pct is None  # 0 baseline
    assert deltas["l2.hit_rate"].a == pytest.approx(300 / 400)
    assert deltas["l2.hit_rate"].b == pytest.approx(380 / 440)


def test_tile_matrix_layout():
    a, _ = synthetic_pair()
    matrix = tile_matrix(a.record, "l3_demand")
    assert matrix == [[40.0, 42.0], [38.0, 44.0]]
    assert tile_matrix(a.record, "getu") == [[0.0, 0.0], [0.0, 0.0]]


def test_link_flits_union():
    a, b = synthetic_pair()
    assert link_flits(a.record) == {"0>1": 90.0, "1>0": 85.0}
    diff = diff_runs(a, b)
    assert ("2>3", 0.0, 20.0) in diff.links


def test_top_streams_sorted_by_duration():
    a, b = synthetic_pair()
    diff = diff_runs(a, b, k=2)
    assert [s["duration"] for s in diff.top_streams_a] == [900, 400]
    assert [s["duration"] for s in diff.top_streams_b] == [1500, 800]


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"
    line = sparkline([0.0, 0.5, 1.0])
    assert line[0] == "▁" and line[-1] == "█" and len(line) == 3


# ----------------------------------------------------------------------
# delta parity against raw RunRecords (real simulation)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_report_deltas_match_raw_records(monkeypatch):
    """Acceptance: a diff of float-on vs float-off runs of a tier-1
    workload reports exactly the numbers recomputed from the raw
    RunRecords — the report is a view, not a second source of
    truth."""
    from repro.harness.runner import clear_cache, run_params, simulate
    from repro.obs.report import _fmt
    from repro.obs.telemetry import ENV_TELEMETRY

    monkeypatch.setenv(ENV_TELEMETRY, "provenance")
    try:
        rec_off = simulate(run_params(workload="mv", config="base",
                                      cols=2, rows=2, scale=8))
        rec_on = simulate(run_params(workload="mv", config="sf",
                                     cols=2, rows=2, scale=8))
    finally:
        clear_cache()
    a = RunArtifacts(record=rec_off, label="float-off")
    b = RunArtifacts(record=rec_on, label="float-on")
    markdown = render_markdown(diff_runs(a, b))

    rows = {}
    in_table = False
    for line in markdown.splitlines():
        if line.startswith("## Headline deltas"):
            in_table = True
            continue
        if in_table and line.startswith("## "):
            break
        if in_table and line.startswith("|") and "---" not in line:
            cells = [c.strip() for c in line.strip("|").split("|")]
            if cells[0] != "stat":
                rows[cells[0]] = cells[1:]

    expected = {
        "cycles": (float(rec_off.cycles), float(rec_on.cycles)),
        "core.ops": (rec_off.stats.get("core.ops"),
                     rec_on.stats.get("core.ops")),
        "l2.hit_rate": (rec_off.l2_hit_rate(), rec_on.l2_hit_rate()),
        "noc.flit_hops": (rec_off.flit_hops, rec_on.flit_hops),
        "se_core.floats": (rec_off.stats.get("se_core.floats"),
                           rec_on.stats.get("se_core.floats")),
        "energy.total_pj": (rec_off.energy.total, rec_on.energy.total),
    }
    for name, (va, vb) in expected.items():
        cell_a, cell_b, cell_delta = rows[name][:3]
        assert cell_a == _fmt(float(va)), name
        assert cell_b == _fmt(float(vb)), name
        assert cell_delta == _fmt(float(vb) - float(va)), name
    # Floating actually happened in the float-on run.
    assert rec_on.stats.get("se_core.floats") > 0
    assert rows["cycles"][2].startswith("-")  # sf is faster

    # Provenance verdicts surfaced in the report.
    assert "## Decision provenance" in markdown
    assert "| float |" in markdown


# ----------------------------------------------------------------------
# CLI round-trip on captured run directories
# ----------------------------------------------------------------------
def test_cli_diff_on_run_dirs(tmp_path):
    from repro.obs.__main__ import main

    a, b = synthetic_pair()
    for artifacts, name in ((a, "runA"), (b, "runB")):
        run_dir = tmp_path / name
        run_dir.mkdir()
        with open(run_dir / "record.json", "w") as fh:
            json.dump(artifacts.record.to_dict(), fh)
        with open(run_dir / "pt.intervals.jsonl", "w") as fh:
            for sample in artifacts.intervals:
                fh.write(json.dumps(sample) + "\n")
        with open(run_dir / "pt.trace.json", "w") as fh:
            json.dump({"traceEvents": artifacts.trace_events}, fh)
    out = tmp_path / "report.md"
    html = tmp_path / "report.html"
    rc = main(["diff", str(tmp_path / "runA"), str(tmp_path / "runB"),
               "--out", str(out), "--html", str(html),
               "--label-a", "base", "--label-b", "sf", "--top", "2"])
    assert rc == 0
    with open(GOLDEN, encoding="utf-8") as fh:
        assert open(out).read() == fh.read()
    assert "Run diff" in open(html).read()


def test_load_rejects_non_run_dir(tmp_path):
    with pytest.raises(FileNotFoundError):
        RunArtifacts.load(str(tmp_path))


def regenerate_golden() -> None:
    a, b = synthetic_pair()
    with open(GOLDEN, "w", encoding="utf-8") as fh:
        fh.write(render_markdown(diff_runs(a, b, k=2)))
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    regenerate_golden()
