"""Cycle-accounting pillar tests: conservation, golden CPI stack,
``--jobs`` byte-stability, fastpath fusion veto, and the bucket
movement the attribution figure exists to show."""

import json
import os

import pytest

from repro.harness.parallel import run_points
from repro.harness.runner import clear_cache, params_key, run_once, run_params
from repro.obs.attribution import BUCKETS
from repro.obs.telemetry import ENV_TELEMETRY
from repro.sim.fastpath import ENV_FASTPATH

GOLDEN_JSON = os.path.join(os.path.dirname(__file__),
                           "golden_attribution.json")
GOLDEN_MD = os.path.join(os.path.dirname(__file__),
                         "golden_attribution.md")

KW = dict(cols=2, rows=2, scale=64)
GOLDEN_POINT = dict(workload="mv", config="sf", **KW)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def _attribution(record):
    """The deterministic attribution subset of a record's telemetry."""
    return {name: value for name, value in sorted(
        (record.telemetry or {}).items())
        if name.startswith(("cpi.", "crit.", "critdom."))}


def _golden_record():
    return run_once(obs="attribution,spans", use_cache=False,
                    **GOLDEN_POINT)


# ----------------------------------------------------------------------
# conservation: every core cycle lands in exactly one bucket
# ----------------------------------------------------------------------
def _chip_run(workload, config, monkeypatch, pillars="attribution",
              fastpath=None, **kw):
    from repro.system.chip import Chip
    from repro.system.configs import make_config
    from repro.workloads.base import build_programs

    monkeypatch.setenv(ENV_TELEMETRY, pillars)
    if fastpath is not None:
        monkeypatch.setenv(ENV_FASTPATH, fastpath)
    kw = dict(KW, **kw)
    scale = kw.pop("scale")
    system = make_config(config, core="ooo8", scale=scale, **kw)
    chip = Chip(system)
    programs = build_programs(workload, chip.num_cores, scale=scale,
                              seed=0)
    chip.run(programs)
    return chip


@pytest.mark.parametrize("workload,config", [
    ("mv", "base"), ("mv", "sf"), ("nn", "sf"), ("bfs", "sf"),
    ("conv3d", "ss"), ("hotspot", "sf"), ("pathfinder", "base"),
])
def test_buckets_sum_to_core_cycles(workload, config, monkeypatch):
    chip = _chip_run(workload, config, monkeypatch)
    accountant = chip.sim.telemetry.attribution
    # finalize() already ran check() once; re-assert per core here so
    # a failure names the tile.
    for tile, ts in sorted(accountant._tiles.items()):
        total = sum(ts.buckets.values())
        finish = chip.tiles[tile].core.finish_time
        assert total == finish, (
            f"tile {tile}: buckets sum {total} != {finish} cycles"
        )
    summary = accountant.summary()
    assert summary["cpi.total_cycles"] == sum(
        summary[f"cpi.{b}"] for b in BUCKETS)
    assert summary["cpi.total_cycles"] > 0
    assert summary["cpi.journeys_dropped"] == 0


def test_conservation_is_asserted_at_finalize(monkeypatch):
    chip = _chip_run("mv", "sf", monkeypatch)
    accountant = chip.sim.telemetry.attribution
    tile = min(accountant._tiles)
    accountant._tiles[tile].buckets["compute"] += 1
    with pytest.raises(AssertionError, match="conservation"):
        accountant.check()


def test_record_carries_cpi_counters():
    record = run_once(obs="attribution", use_cache=False, **GOLDEN_POINT)
    tel = record.telemetry
    for bucket in BUCKETS:
        assert f"cpi.{bucket}" in tel
    assert tel["cpi.total_cycles"] == sum(
        tel[f"cpi.{b}"] for b in BUCKETS)


# ----------------------------------------------------------------------
# golden CPI stack + critical-path profile (byte-stable, jobs-safe)
# ----------------------------------------------------------------------
def _load_golden():
    with open(GOLDEN_JSON, encoding="utf-8") as fh:
        return json.load(fh)


def test_golden_attribution_counters():
    """The full cpi.*/crit.* export for one pinned point, byte-stable
    (regenerate with `python -m tests.obs.test_attribution` after a
    deliberate accounting change)."""
    got = json.dumps(_attribution(_golden_record()), indent=1,
                     sort_keys=True)
    with open(GOLDEN_JSON, encoding="utf-8") as fh:
        assert got == fh.read().rstrip("\n")


def test_golden_attribution_report():
    from repro.obs.report import render_attribution

    got = render_attribution(_golden_record())
    with open(GOLDEN_MD, encoding="utf-8") as fh:
        assert got == fh.read()


def test_attribution_stable_across_jobs():
    """`--jobs 2` must reproduce the serial CPI stack byte-for-byte
    (the golden pins the serial one; satellite of DESIGN.md §15)."""
    points = [dict(GOLDEN_POINT, obs="attribution,spans"),
              dict(workload="mv", config="base", obs="attribution,spans",
                   **KW)]
    records = run_points(points, jobs=2, use_cache=False)
    key = params_key(run_params(**points[0]))
    got = json.dumps(_attribution(records[key]), indent=1, sort_keys=True)
    want = json.dumps(_load_golden(), indent=1, sort_keys=True)
    assert got == want


# ----------------------------------------------------------------------
# the figure's claim: floating moves cycles out of DRAM/NoC waits
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_floating_empties_dram_wait_bucket():
    base = run_once("mv", "base", cols=2, rows=2, scale=16,
                    obs="attribution", use_cache=False)
    sf = run_once("mv", "sf", cols=2, rows=2, scale=16,
                  obs="attribution", use_cache=False)
    assert sf.cycles < base.cycles  # floating wins on mv...
    b, s = base.telemetry, sf.telemetry
    # ...and the accounting shows where: the DRAM-wait bucket empties
    # (demand misses no longer walk to memory; floated streams feed
    # the core from L3/SE instead).
    assert s["cpi.wait_dram"] < 0.2 * b["cpi.wait_dram"]
    assert (b["cpi.wait_dram"] / b["cpi.total_cycles"]
            > s["cpi.wait_dram"] / s["cpi.total_cycles"])


# ----------------------------------------------------------------------
# fastpath fusion veto: telemetry runs are identical either way
# ----------------------------------------------------------------------
def _span_chains(chip):
    return sorted(
        (s.kind, str(s.key), s.start,
         tuple((h.name, h.cycle, h.tile) for h in s.hops), s.end)
        for s in chip.sim.telemetry.spans.spans
    )


@pytest.mark.parametrize("fastpath", ["1", "0"])
def test_fastpath_vetoed_under_telemetry(fastpath, monkeypatch):
    chip = _chip_run("mv", "sf", monkeypatch, pillars="spans,attribution",
                     fastpath=fastpath)
    # Telemetry attach always vetoes handler fusion — REPRO_FASTPATH=1
    # must not change what the accountant observes.
    assert chip.sim.fastpath is False


def test_fastpath_setting_does_not_change_attribution(monkeypatch):
    runs = {}
    for fastpath in ("1", "0"):
        chip = _chip_run("mv", "sf", monkeypatch,
                         pillars="spans,attribution", fastpath=fastpath)
        runs[fastpath] = (
            chip.sim.now,
            _span_chains(chip),
            chip.sim.telemetry.attribution.summary(),
        )
    assert runs["1"] == runs["0"]


# ----------------------------------------------------------------------
# regeneration entry point
# ----------------------------------------------------------------------
def regenerate_golden() -> None:
    from repro.obs.report import render_attribution

    clear_cache()
    record = _golden_record()
    with open(GOLDEN_JSON, "w", encoding="utf-8") as fh:
        json.dump(_attribution(record), fh, indent=1, sort_keys=True)
        fh.write("\n")
    with open(GOLDEN_MD, "w", encoding="utf-8") as fh:
        fh.write(render_attribution(record))
    print(f"wrote {GOLDEN_JSON}\nwrote {GOLDEN_MD}")


if __name__ == "__main__":
    regenerate_golden()
