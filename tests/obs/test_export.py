"""Chrome trace-event export tests: golden file + format validity."""

import json
import os

import pytest

from repro.obs.export import (
    TelemetrySink,
    chrome_trace_events,
    point_slug,
    write_chrome_trace,
)
from repro.obs.spans import SpanCollector
from repro.obs.telemetry import ENV_TELEMETRY, TelemetryConfig

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_trace.json")


def synthetic_collector() -> SpanCollector:
    """A tiny fixed span set (what the golden file pins)."""
    collector = SpanCollector(None, TelemetryConfig(spans=True))
    mem = ("mem", 0, 0x1000)
    collector.open("mem", mem, 0, 10, addr=0x1000, write=False,
                   prefetch=False)
    collector.hop(mem, "l2_miss", 14, 0)
    collector.hop(mem, "l3", 30, 1, detail="GetS")
    collector.hop(mem, "dram", 62, 3, detail="MemRead")
    collector.hop(mem, "l2_data", 150, 0)
    collector.close(mem, 154)
    elem = ("elem", 2, 7, 4)
    collector.open("elem", elem, 2, 100, sid=7, element=4, bank=1,
                   category="float_affine")
    collector.hop(elem, "getu", 100, 1)
    collector.hop(elem, "datau", 141, 2)
    collector.close(elem, 141)
    stream = ("stream", 2, 7, 0)
    collector.open("stream", stream, 2, 0, sid=7, float_elem=0)
    collector.hop(stream, "float", 0, 2)
    collector.hop(stream, "migrate", 90, 1, detail="-> bank 2")
    collector.hop(stream, "sink", 220, 2)
    collector.close(stream, 220)
    still_open = ("mem", 3, 0x2000)
    collector.open("mem", still_open, 3, 200, addr=0x2000, write=True,
                   prefetch=False)
    collector.hop(still_open, "l2_miss", 204, 3)
    collector.noc_events.append({
        "src": 1, "dst": 2, "port": "se_l2", "kind": "data",
        "pid": 42, "depart": 120, "arrive": 141,
    })
    return collector


def test_golden_trace_export():
    """The exporter's output is pinned byte-for-byte by a golden file
    (regenerate with `python -m tests.obs.test_export` after a
    deliberate schema change)."""
    events = chrome_trace_events(synthetic_collector(), pid=1,
                                 point="golden")
    got = json.dumps({"traceEvents": events}, indent=1, sort_keys=True)
    with open(GOLDEN, encoding="utf-8") as fh:
        want = fh.read().rstrip("\n")
    assert got == want


def test_export_is_deterministic():
    a = chrome_trace_events(synthetic_collector(), pid=1, point="x")
    b = chrome_trace_events(synthetic_collector(), pid=1, point="x")
    assert a == b


def test_trace_event_format(tmp_path):
    events = chrome_trace_events(synthetic_collector(), pid=1,
                                 point="fmt")
    path = write_chrome_trace(str(tmp_path / "t.trace.json"), events)
    payload = json.load(open(path))
    assert set(payload) == {"traceEvents", "displayTimeUnit"}
    phs = {"X", "M", "s", "f"}
    for ev in payload["traceEvents"]:
        assert ev["ph"] in phs
        assert isinstance(ev["pid"], int)
        assert isinstance(ev["ts"], int)
        if ev["ph"] == "X":
            assert ev["dur"] >= 1
        if ev["ph"] in ("s", "f"):
            assert "id" in ev
    # Flow arrows come in matched s/f pairs.
    starts = [e["id"] for e in payload["traceEvents"] if e["ph"] == "s"]
    finishes = [e["id"] for e in payload["traceEvents"] if e["ph"] == "f"]
    assert sorted(starts) == sorted(finishes) and starts
    # Open spans are flagged.
    open_spans = [e for e in payload["traceEvents"]
                  if e["ph"] == "X" and e.get("args", {}).get("open")]
    assert len(open_spans) == 1


def test_span_hops_ride_in_args():
    events = chrome_trace_events(synthetic_collector(), pid=1)
    mem = [e for e in events if e.get("cat") == "mem"
           and not e.get("args", {}).get("open")]
    assert len(mem) == 1
    hops = mem[0]["args"]["hops"]
    assert [h[0] for h in hops] == ["l2_miss", "l3", "dram", "l2_data"]
    cycles = [h[1] for h in hops]
    assert cycles == sorted(cycles)


def test_point_slug_is_deterministic():
    params = dict(workload="nn", config="sf", core="ooo8", cols=2,
                  rows=2, scale=64, link_bits=256, l3_interleave=None,
                  seed=0)
    assert point_slug(params) == "nn-sf-ooo8-2x2-s64"
    params["seed"] = 3
    assert point_slug(params).endswith("-seed3")


# ----------------------------------------------------------------------
# sink (CLI aggregation) + a real run's structural validity
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_sink_merges_points_and_validates(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_TELEMETRY, "spans")
    from repro.harness.runner import (
        clear_cache,
        configure_telemetry,
        reset_telemetry,
        simulate,
        run_params,
    )

    sink = TelemetrySink(trace_out=str(tmp_path / "run.trace.json"))
    configure_telemetry(sink)
    try:
        for config in ("base", "sf"):
            simulate(run_params(workload="nn", config=config, cols=2,
                                rows=2, scale=64))
    finally:
        reset_telemetry()
        clear_cache()
    assert sink.points == 2
    [path] = sink.write()
    payload = json.load(open(path))
    evs = payload["traceEvents"]
    names = {e["pid"]: e["args"]["name"] for e in evs
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {1: "nn-base-ooo8-2x2-s64", 2: "nn-sf-ooo8-2x2-s64"}
    # The sf point floats streams: its trace must carry stream spans
    # whose hops run float -> migrate -> sink/end monotonically.
    streams = [e for e in evs if e.get("cat") == "stream"]
    assert streams
    for ev in streams:
        hops = ev["args"]["hops"]
        assert hops[0][0] == "float"
        assert hops[-1][0] in ("sink", "end")
        assert [h[1] for h in hops] == sorted(h[1] for h in hops)


class _SummaryOnlyTelemetry:
    """Stand-in with no live pillars — only a summary() to inspect."""

    spans = None
    sampler = None
    profiler = None
    provenance = None

    def __init__(self, summary):
        self._summary = summary

    def summary(self):
        return dict(self._summary)


def _params():
    return dict(workload="nn", config="sf", core="ooo8", cols=2, rows=2,
                scale=64, link_bits=256, l3_interleave=None, seed=0)


def test_sink_warns_on_nonzero_drop_counters(capsys):
    sink = TelemetrySink()
    sink.collect(_SummaryOnlyTelemetry(
        {"bus_events": 10, "spans_dropped": 3, "cpi.journeys_dropped": 2,
         "noc_dropped": 0}), _params())
    [warning] = sink.drop_warnings
    assert "spans_dropped=3" in warning
    assert "cpi.journeys_dropped=2" in warning
    assert "noc_dropped" not in warning  # zero counters stay quiet
    assert "nn-sf-ooo8-2x2-s64" in warning
    assert "WARNING" in capsys.readouterr().err


def test_sink_quiet_without_drops(capsys):
    sink = TelemetrySink()
    sink.collect(_SummaryOnlyTelemetry(
        {"bus_events": 10, "spans_dropped": 0}), _params())
    assert sink.drop_warnings == []
    assert capsys.readouterr().err == ""


def regenerate_golden() -> None:
    events = chrome_trace_events(synthetic_collector(), pid=1,
                                 point="golden")
    with open(GOLDEN, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events}, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    regenerate_golden()
