"""Decision-provenance pillar tests: ledger mechanics, real-run
verdict recording with input snapshots, export artifacts, and the
zero-cost-off contract."""

import json

import pytest

from repro.obs.export import (
    export_point_artifacts,
    provenance_instant_events,
    write_provenance,
)
from repro.obs.provenance import ProvenanceLedger, ProvenanceRecord
from repro.obs.telemetry import ENV_TELEMETRY, Telemetry, TelemetryConfig
from repro.sim import Simulator


def _telemetry(max_decisions=100_000):
    sim = Simulator()
    return Telemetry(sim, TelemetryConfig(
        provenance=True, max_decisions=max_decisions))


# ----------------------------------------------------------------------
# ledger mechanics
# ----------------------------------------------------------------------
def test_ledger_collects_decision_events():
    tel = _telemetry()
    ledger = tel.provenance
    assert isinstance(ledger, ProvenanceLedger)
    tel.publish("decision", tile=2, verdict="float", sid=7,
                reason="history", inputs={"miss_ratio": 0.9})
    tel.publish("decision", tile=0, verdict="sink", sid=7,
                reason="cache_hits")
    assert len(ledger.records) == 2
    rec = ledger.records[0]
    assert rec.verdict == "float" and rec.sid == 7 and rec.tile == 2
    assert rec.reason == "history"
    assert rec.inputs == {"miss_ratio": 0.9}
    assert ledger.verdict_counts() == {"float": 1, "sink": 1}
    assert [r.verdict for r in ledger.by_verdict("sink")] == ["sink"]


def test_ledger_bounded_with_drop_counter():
    tel = _telemetry(max_decisions=3)
    for i in range(5):
        tel.publish("decision", tile=0, verdict="float", sid=i)
    ledger = tel.provenance
    assert len(ledger.records) == 3
    assert ledger.dropped == 2
    assert ledger.summary()["decisions_dropped"] == 2


def test_ledger_migrate_and_confluence_enrichment():
    tel = _telemetry()
    tel.publish("migrate", tile=1, sid=3, elem=40, to_bank=2, epoch=1,
                credits=5)
    tel.publish("confluence", tile=2, sid=9, size=4)
    ledger = tel.provenance
    migrate, confluence = ledger.records
    assert migrate.verdict == "migrate"
    assert migrate.inputs == {"elem": 40, "to_bank": 2, "epoch": 1,
                              "credits": 5}
    assert confluence.verdict == "confluence"
    assert confluence.inputs == {"group_size": 4}


def test_tile_activity_and_link_accounting():
    tel = _telemetry()
    tel.publish("l3_demand", tile=1, addr=0x100)
    tel.publish("l3_demand", tile=1, addr=0x140)
    tel.publish("dram", tile=0, addr=0x100)
    ledger = tel.provenance
    ledger.record_links([(0, 1), (1, 3)], 4)
    ledger.record_links([(0, 1)], 2)
    summary = ledger.summary()
    assert summary["tile.1.l3_demand"] == 2
    assert summary["tile.0.dram"] == 1
    assert summary["link.0>1.flits"] == 6
    assert summary["link.1>3.flits"] == 4


def test_record_round_trip():
    rec = ProvenanceRecord(cycle=10, tile=3, verdict="float", sid=1,
                           requester=2, reason="history",
                           inputs={"epoch": 0})
    assert ProvenanceRecord.from_dict(rec.to_dict()) == rec


# ----------------------------------------------------------------------
# enablement / zero-cost-off
# ----------------------------------------------------------------------
@pytest.mark.no_sanitize
def test_provenance_off_means_no_ledger(monkeypatch):
    monkeypatch.setenv(ENV_TELEMETRY, "spans,interval")
    sim = Simulator()
    assert sim.telemetry is not None
    assert sim.telemetry.provenance is None


@pytest.mark.no_sanitize
def test_all_enables_provenance(monkeypatch):
    monkeypatch.setenv(ENV_TELEMETRY, "all")
    sim = Simulator()
    assert sim.telemetry.provenance is not None


# ----------------------------------------------------------------------
# real-run verdicts with input snapshots
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sf_telemetry_record():
    import os

    from repro.harness.runner import clear_cache, run_params, simulate

    os.environ[ENV_TELEMETRY] = "provenance"
    try:
        record = simulate(run_params(workload="mv", config="sf",
                                     cols=2, rows=2, scale=8))
    finally:
        os.environ.pop(ENV_TELEMETRY, None)
        clear_cache()
    return record


def test_real_run_records_decisions(sf_telemetry_record):
    tel = sf_telemetry_record.telemetry
    assert tel["decisions"] > 0
    assert tel["decisions.float"] > 0
    assert tel["decisions.migrate"] > 0
    assert tel["decisions.config_installed"] > 0
    # Stream-floating runs float/sink based on history: both verdicts
    # and their tile/link activity must be present.
    assert any(k.startswith("tile.") for k in tel)
    assert any(k.startswith("link.") for k in tel)
    # Counters also ride the stats tree as telemetry.* (RunRecord).
    assert sf_telemetry_record.stats.get("telemetry.decisions") == \
        tel["decisions"]


def test_float_decisions_snapshot_policy_inputs():
    """A float verdict must carry the evidence the policy saw: the
    Table-II history row, pattern class and position."""
    import os

    from repro.sim.kernel import ENV_KERNEL  # noqa: F401  (doc import)
    from repro.system.chip import Chip
    from repro.system.configs import make_config
    from repro.workloads.base import build_programs

    os.environ[ENV_TELEMETRY] = "provenance"
    try:
        system = make_config("sf", core="ooo8", cols=2, rows=2, scale=8,
                             link_bits=256, l3_interleave=None)
        chip = Chip(system)
        programs = build_programs("mv", chip.num_cores, scale=8, seed=0)
        chip.run(programs)
        ledger = chip.sim.telemetry.provenance
    finally:
        os.environ.pop(ENV_TELEMETRY, None)
    floats = ledger.by_verdict("float")
    assert floats
    for rec in floats:
        for field in ("requests", "reuses", "misses", "miss_ratio",
                      "pattern", "length", "next_issue"):
            assert field in rec.inputs, \
                f"float decision missing {field!r}"
        assert 0.0 <= rec.inputs["miss_ratio"] <= 1.0
    # Both float paths leave distinct evidence: configure-time floats
    # (footprint exceeds L2) fire before any requests; history floats
    # carry the Table-II row that crossed the miss-ratio threshold.
    history = [r for r in floats if r.reason == "history"]
    footprint = [r for r in floats if r.reason == "footprint"]
    assert history and footprint
    assert all(r.inputs["requests"] > 0 for r in history)

    # A history float shows the streaming signature over the stream's
    # lifetime OR its current window (windowed requalification: one
    # early warm prefix no longer disqualifies forever).
    def qualifying_ratio(rec):
        lifetime = rec.inputs["miss_ratio"]
        w_requests = rec.inputs.get("w_requests", 0)
        windowed = (
            rec.inputs.get("w_misses", 0) / w_requests if w_requests else 0.0
        )
        return max(lifetime, windowed)

    assert all(qualifying_ratio(r) > 0.5 for r in history)
    assert all(r.inputs["footprint"] is not None for r in footprint)
    sinks = ledger.by_verdict("sink")
    assert sinks and all(r.reason for r in sinks)


def test_revocation_reaches_the_ledger():
    """The smart policy's revocation must land as a ``revoke`` verdict
    carrying the counters that triggered it (the PR acceptance case:
    the tiled stencil's cache-resident re-sweeps)."""
    import os

    from repro.system.chip import Chip
    from repro.system.configs import make_config
    from repro.workloads.base import build_programs

    os.environ[ENV_TELEMETRY] = "provenance"
    try:
        system = make_config("sf_smart", core="ooo8", cols=2, rows=2,
                             scale=16)
        chip = Chip(system)
        programs = build_programs("stencil_tiled", chip.num_cores,
                                  scale=16, seed=0)
        chip.run(programs)
        ledger = chip.sim.telemetry.provenance
    finally:
        os.environ.pop(ENV_TELEMETRY, None)
    revokes = ledger.by_verdict("revoke")
    assert revokes
    for rec in revokes:
        assert rec.reason.startswith("revoke"), rec.reason
        # The snapshot carries the windowed evidence behind the call.
        for field in ("requests", "w_requests", "w_reuses",
                      "consecutive_hits", "policy"):
            assert field in rec.inputs, f"revoke missing {field!r}"
        assert rec.inputs["policy"] == "smart"
    # A revoked float shows up in the summary counters too.
    counts = ledger.verdict_counts()
    assert counts["revoke"] == len(revokes)
    assert counts.get("float", 0) >= len(revokes)


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def _tiny_ledger():
    tel = _telemetry()
    tel.publish("decision", tile=1, verdict="float", sid=4,
                reason="history", inputs={"epoch": 0})
    tel.publish("decision", tile=0, verdict="sink", sid=4,
                reason="alias_store")
    return tel


def test_provenance_jsonl_writer(tmp_path):
    tel = _tiny_ledger()
    path = write_provenance(str(tmp_path / "p.jsonl"),
                            tel.provenance.to_rows("pt"))
    rows = [json.loads(line) for line in open(path)]
    assert [r["verdict"] for r in rows] == ["float", "sink"]
    assert all(r["point"] == "pt" for r in rows)


def test_instant_events_land_on_streams_track():
    tel = _tiny_ledger()
    events = provenance_instant_events(tel.provenance, pid=3, point="pt")
    assert all(e["ph"] == "i" and e["cat"] == "decision" for e in events)
    # streams track is index 2 of 4 per tile.
    assert events[0]["tid"] == 1 * 4 + 2
    assert events[1]["tid"] == 0 * 4 + 2
    assert events[0]["args"]["verdict"] == "float"
    assert events[0]["args"]["reason"] == "history"


def test_point_artifacts_include_provenance(tmp_path):
    tel = _tiny_ledger()
    written = export_point_artifacts(tel, str(tmp_path), "pt")
    assert str(tmp_path / "pt.provenance.jsonl") in written
    rows = [json.loads(line)
            for line in open(tmp_path / "pt.provenance.jsonl")]
    assert len(rows) == 2
