"""Tests for the workload layer: every benchmark builds coherent
stream programs whose addresses stay within their allocations."""

import pytest

from repro.mem.addr import LINE_SIZE
from repro.streams.pattern import AffinePattern, IndirectPattern
from repro.workloads import ALL_WORKLOADS, build_programs, get_workload
from repro.workloads.base import Layout, Workload
from repro.workloads.kernel import chunk_range


class TestChunkRange:
    def test_covers_everything_once(self):
        total, workers = 103, 7
        seen = []
        for w in range(workers):
            seen.extend(chunk_range(total, workers, w))
        assert sorted(seen) == list(range(total))

    def test_balanced(self):
        sizes = [len(chunk_range(100, 8, w)) for w in range(8)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_items(self):
        sizes = [len(chunk_range(3, 8, w)) for w in range(8)]
        assert sum(sizes) == 3


class TestLayout:
    def test_alloc_is_page_aligned_and_disjoint(self):
        layout = Layout()
        a = layout.alloc("a", 100)
        b = layout.alloc("b", 5000)
        c = layout.alloc("c", 64)
        assert a % 4096 == 0
        assert b % 4096 == 0
        assert b >= a + 100
        assert c >= b + 5000
        assert layout.footprint() == 100 + 5000 + 64

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Layout().alloc("x", 0)


def in_range(addr, layout):
    return any(
        base <= addr < base + size
        for base, size in layout.arrays.values()
    )


# Every registered workload — Table IV's 12 plus the extras (the tiled
# stencil revocation case study) — passes the generic battery.
@pytest.mark.parametrize("name", ALL_WORKLOADS + ("stencil_tiled",))
class TestEveryWorkload:
    def test_builds_with_equal_phase_counts(self, name):
        wl = get_workload(name)(num_cores=8, scale=32)
        programs = wl.build()
        assert set(programs) == set(range(8))
        counts = {len(p) for p in programs.values()}
        assert len(counts) == 1

    def test_stream_addresses_within_allocations(self, name):
        wl = get_workload(name)(num_cores=4, scale=32)
        programs = wl.build()
        for program in programs.values():
            for phase in program:
                for spec in phase.stream_specs:
                    pat = spec.pattern
                    probe = [0, len(pat) // 2, len(pat) - 1]
                    for idx in probe:
                        addr = pat.address(idx)
                        assert in_range(addr, wl.layout), (
                            name, phase.name, spec.sid, hex(addr)
                        )

    def test_iterations_are_regeneratable(self, name):
        wl = get_workload(name)(num_cores=4, scale=32)
        programs = wl.build()
        phase = programs[0].phases[0]
        first = sum(1 for _ in phase.iterations())
        second = sum(1 for _ in phase.iterations())
        assert first == second

    def test_ops_reference_configured_streams(self, name):
        wl = get_workload(name)(num_cores=4, scale=32)
        programs = wl.build()
        for program in programs.values():
            for phase in program:
                sids = {s.sid for s in phase.stream_specs}
                kinds = {s.sid: s.kind for s in phase.stream_specs}
                for it in phase.iterations():
                    for op in it.ops:
                        if op[0] == "sload":
                            assert op[1] in sids
                            assert kinds[op[1]] == "load"
                        elif op[0] == "sstore":
                            assert op[1] in sids
                            assert kinds[op[1]] == "store"

    def test_stream_consumption_matches_length(self, name):
        """No phase consumes more elements than a stream has."""
        wl = get_workload(name)(num_cores=4, scale=32)
        programs = wl.build()
        for program in programs.values():
            for phase in program:
                lengths = {s.sid: s.length for s in phase.stream_specs}
                used = {sid: 0 for sid in lengths}
                for it in phase.iterations():
                    for op in it.ops:
                        if op[0] in ("sload", "sstore"):
                            used[op[1]] += 1
                for sid, count in used.items():
                    assert count <= lengths[sid], (name, phase.name, sid)

    def test_deterministic_given_seed(self, name):
        a = get_workload(name)(num_cores=4, scale=32, seed=3)
        b = get_workload(name)(num_cores=4, scale=32, seed=3)
        pa = a.build()[0].phases[0]
        pb = b.build()[0].phases[0]
        ops_a = [it.ops for it in pa.iterations()]
        ops_b = [it.ops for it in pb.iterations()]
        assert ops_a == ops_b


class TestMeta:
    def test_registry_has_all_twelve(self):
        assert len(ALL_WORKLOADS) == 12
        expected = {
            "b+tree", "bfs", "cfd", "conv3d", "hotspot", "hotspot3D",
            "mv", "nn", "nw", "particlefilter", "pathfinder", "srad",
        }
        assert set(ALL_WORKLOADS) == expected

    def test_extras_registered_but_not_in_table_iv_set(self):
        assert get_workload("stencil_tiled").META.stencil
        assert "stencil_tiled" not in ALL_WORKLOADS

    def test_indirect_flags(self):
        assert get_workload("bfs").META.has_indirect
        assert get_workload("cfd").META.has_indirect
        assert not get_workload("mv").META.has_indirect

    def test_confluence_flags(self):
        assert get_workload("conv3d").META.has_confluence
        assert get_workload("particlefilter").META.has_confluence

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_build_programs_convenience(self):
        programs = build_programs("nn", 4, scale=64)
        assert len(programs) == 4


class TestIndirectWorkloads:
    def test_bfs_indirect_addresses_follow_edges(self):
        wl = get_workload("bfs")(num_cores=2, scale=64)
        programs = wl.build()
        phase = programs[0].phases[0]
        ind = [s for s in phase.stream_specs if s.is_indirect][0]
        visited_base, visited_size = wl.layout.arrays["visited"]
        for idx in range(0, min(16, len(ind.pattern))):
            addr = ind.pattern.address(idx)
            assert visited_base <= addr < visited_base + visited_size

    def test_cfd_four_neighbors_per_cell(self):
        wl = get_workload("cfd")(num_cores=2, scale=64)
        programs = wl.build()
        phase = programs[0].phases[0]
        it = next(phase.iterations())
        gathers = [op for op in it.ops if op[0] == "sload" and op[1] == 1]
        assert len(gathers) == 4
