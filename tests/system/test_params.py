"""Tests for system parameters (Table III) and named configs."""

import pytest

from repro.system.configs import CONFIG_NAMES, make_config
from repro.system.params import CORES, IO4, OOO4, OOO8, SystemParams


class TestTable3Defaults:
    def test_mesh_and_noc(self):
        p = SystemParams()
        assert p.num_tiles == 64
        assert p.link_bits == 256
        assert p.router_stages == 5

    def test_cache_sizes(self):
        p = SystemParams()
        assert p.l1_size == 32 * 1024 and p.l1_ways == 8 and p.l1_latency == 2
        assert p.l2_size == 256 * 1024 and p.l2_ways == 16 and p.l2_latency == 16
        assert p.l3_bank_size == 1024 * 1024 and p.l3_latency == 20
        assert p.replacement == "brrip"

    def test_core_presets(self):
        assert IO4.issue_width == 4 and not IO4.out_of_order
        assert OOO4.window == 96 and OOO4.lq == 24
        assert OOO8.issue_width == 8 and OOO8.window == 224 and OOO8.lq == 72
        assert IO4.se_fifo_bytes == 256
        assert OOO4.se_fifo_bytes == 1024
        assert OOO8.se_fifo_bytes == 2048

    def test_stream_engine_sizes(self):
        p = SystemParams()
        assert p.se_l2_buffer_bytes == 16 * 1024
        assert p.se_l3_max_streams == 768  # 12 x 64
        assert p.se_max_streams_per_core == 12


class TestScaling:
    def test_scaled_shrinks_capacities_keeps_latencies(self):
        p = SystemParams().scaled(16)
        assert p.l1_size == 2 * 1024
        assert p.l2_size == 8 * 1024  # extra notch (DESIGN.md)
        assert p.l3_bank_size == 64 * 1024
        assert p.l1_latency == 2 and p.l2_latency == 16
        assert p.core.se_fifo_bytes == 2048  # structural: unscaled

    def test_scale_one_is_identity(self):
        p = SystemParams()
        assert p.scaled(1) is p

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            SystemParams().scaled(3)
        with pytest.raises(ValueError):
            SystemParams().scaled(0)

    def test_floors_respected(self):
        p = SystemParams().scaled(1024)
        assert p.l1_size >= 1024
        assert p.l2_size >= 2048


class TestNamedConfigs:
    def test_all_names_build(self):
        for name in CONFIG_NAMES:
            p = make_config(name, cols=2, rows=2, scale=16)
            assert p.num_tiles == 4

    def test_base_has_nothing(self):
        p = make_config("base")
        assert p.l1_prefetcher is None
        assert not p.streams_enabled and not p.floating_enabled

    def test_bingo_config(self):
        p = make_config("bingo")
        assert p.l1_prefetcher == "bingo"
        assert p.l2_prefetcher == "stride"

    def test_sf_uses_1kb_interleave(self):
        assert make_config("sf").l3_interleave == 1024
        assert make_config("base").l3_interleave == 64

    def test_sf_variants(self):
        aff = make_config("sf_aff")
        assert aff.floating_enabled
        assert not aff.confluence_enabled
        assert not aff.indirect_float_enabled
        ind = make_config("sf_ind")
        assert ind.indirect_float_enabled
        assert not ind.confluence_enabled

    def test_bulk_requires_coarse_interleave(self):
        p = make_config("bulk")
        assert p.bulk_prefetch
        assert p.l3_interleave > 64

    def test_interleave_override(self):
        p = make_config("sf", l3_interleave=4096)
        assert p.l3_interleave == 4096

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_config("hyperspeed")
        with pytest.raises(ValueError):
            make_config("base", core="z80")

    def test_describe(self):
        assert "SF" in make_config("sf").describe()
        assert "base" in make_config("base").describe()
