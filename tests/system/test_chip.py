"""Tests for chip assembly and the phase-barrier run loop."""

import pytest

from repro.system import Chip, make_config
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase


def make_chip(config="base", **kw):
    kw.setdefault("cols", 2)
    kw.setdefault("rows", 2)
    kw.setdefault("scale", 32)
    return Chip(make_config(config, core="ooo4", **kw))


def compute_phase(iters, ops_per_iter=4):
    return KernelPhase(name="c", iterations=lambda: iter([
        Iteration(compute_ops=ops_per_iter, ops=()) for _ in range(iters)
    ]))


class TestAssembly:
    def test_every_tile_fully_built(self):
        chip = make_chip("sf")
        assert len(chip.tiles) == 4
        for tile in chip.tiles:
            assert tile.l1 is not None and tile.l2 is not None
            assert tile.l3 is not None
            assert tile.se_core is not None
            assert tile.se_l2 is not None and tile.se_l3 is not None

    def test_base_has_no_stream_engines(self):
        chip = make_chip("base")
        for tile in chip.tiles:
            assert tile.se_core is None
            assert tile.se_l2 is None and tile.se_l3 is None

    def test_ss_has_core_engine_only(self):
        chip = make_chip("ss")
        for tile in chip.tiles:
            assert tile.se_core is not None
            assert tile.se_l2 is None and tile.se_l3 is None

    def test_prefetchers_wired(self):
        chip = make_chip("bingo")
        from repro.prefetch import BingoPrefetcher, StridePrefetcher
        for tile in chip.tiles:
            assert isinstance(tile.l1.prefetcher, BingoPrefetcher)
            assert isinstance(tile.l2.prefetcher, StridePrefetcher)

    def test_bulk_with_fine_interleave_rejected(self):
        with pytest.raises(ValueError):
            Chip(make_config("bulk", cols=2, rows=2, scale=32,
                             l3_interleave=64))


class TestBarriers:
    def test_phase2_starts_after_slowest_core(self):
        chip = make_chip()
        marks = {}

        def marked_phase(core_id, label, iters):
            def iterations():
                marks.setdefault(label, []).append((core_id, chip.sim.now))
                for _ in range(iters):
                    yield Iteration(compute_ops=4, ops=())
            return KernelPhase(name=label, iterations=iterations)

        programs = {
            0: CoreProgram(phases=[marked_phase(0, "p1", 1000),
                                   marked_phase(0, "p2", 1)]),
            1: CoreProgram(phases=[marked_phase(1, "p1", 1),
                                   marked_phase(1, "p2", 1)]),
        }
        chip.run(programs)
        p1_starts = [t for _c, t in marks["p1"]]
        p2_starts = [t for _c, t in marks["p2"]]
        # Core 1 finished p1 almost immediately, yet its p2 begins
        # only after core 0's long p1 completes.
        assert min(p2_starts) >= 1000 / 4  # core 0's p1 takes ~250 cyc

    def test_cores_with_fewer_phases_idle(self):
        chip = make_chip()
        programs = {
            0: CoreProgram(phases=[compute_phase(10), compute_phase(10)]),
            1: CoreProgram(phases=[compute_phase(10)]),
        }
        result = chip.run(programs)
        assert result.cycles > 0

    def test_unmapped_cores_are_fine(self):
        chip = make_chip()
        result = chip.run({2: CoreProgram(phases=[compute_phase(5)])})
        assert result.per_core_finish[2] > 0
        assert result.per_core_finish[0] == 0

    def test_invalid_core_id_rejected(self):
        chip = make_chip()
        with pytest.raises(ValueError):
            chip.run({99: CoreProgram(phases=[compute_phase(1)])})

    def test_empty_program_map(self):
        chip = make_chip()
        result = chip.run({})
        assert result.cycles == 0


class TestRunResult:
    def test_cycles_is_max_finish(self):
        chip = make_chip()
        programs = {
            0: CoreProgram(phases=[compute_phase(100)]),
            1: CoreProgram(phases=[compute_phase(10)]),
        }
        result = chip.run(programs)
        assert result.cycles == max(result.per_core_finish)

    def test_stats_record_chip_cycles(self):
        chip = make_chip()
        result = chip.run({0: CoreProgram(phases=[compute_phase(10)])})
        assert result.stats["chip.cycles"] == result.cycles
