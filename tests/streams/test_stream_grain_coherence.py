"""Tests for the stream-grain coherence mode (SS V-B).

The paper's alternative to uncached stream data: each SE_L3 tracks
the address ranges its resident streams have fetched (base/bound,
conservatively) and, when another core requests write ownership of a
covered address, invalidates the stream — the requesting core sinks
and re-executes it. Deallocation messages inform visited banks when
a stream ends.
"""

import pytest

from repro.mem.l1 import L1Request
from repro.system import Chip, make_config
from repro.workloads import build_programs
from tests.streams.conftest import StreamRig, dense_spec

BASE = 0x40_0000


def make_sgc_rig():
    rig = StreamRig()
    for se3 in rig.se_l3s:
        se3.stream_grain_coherence = True
    for se2 in rig.se_l2s:
        se2.stream_grain_coherence = True
    return rig


class TestRangeTracking:
    def test_issued_elements_tracked(self):
        rig = make_sgc_rig()
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        rig.run()
        tracked = [se3.ranges for se3 in rig.se_l3s if se3.ranges]
        assert tracked, "no bank tracked the floated stream's range"
        lo, hi = next(iter(tracked[0].values()))
        assert lo >= BASE and hi <= BASE + 256 * 64

    def test_disabled_mode_tracks_nothing(self):
        rig = StreamRig()  # default: uncached scheme
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        rig.run()
        assert all(not se3.ranges for se3 in rig.se_l3s)


class TestInvalidation:
    def test_conflicting_write_sinks_stream(self):
        rig = make_sgc_rig()
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        rig.run()
        assert rig.se_cores[0].streams[0].floating
        # Another tile writes into the fetched range.
        rig.l1s[1].access(L1Request(addr=BASE + 64, is_write=True))
        rig.run()
        assert rig.stats["se_l3.stream_invalidations"] >= 1
        assert rig.stats["se_l2.stream_invs"] >= 1
        assert not rig.se_cores[0].streams[0].floating
        assert rig.se_cores[0].history.entry(0).aliased

    def test_unrelated_write_leaves_stream_alone(self):
        rig = make_sgc_rig()
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        rig.run()
        rig.l1s[1].access(L1Request(addr=0x900_0000, is_write=True))
        rig.run()
        assert rig.stats["se_l3.stream_invalidations"] == 0
        assert rig.se_cores[0].streams[0].floating

    def test_own_write_does_not_self_invalidate(self):
        rig = make_sgc_rig()
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        rig.run()
        rig.l1s[0].access(L1Request(addr=BASE + 64, is_write=True))
        rig.run()
        assert rig.stats["se_l3.stream_invalidations"] == 0

    def test_stream_completes_after_invalidation(self):
        rig = make_sgc_rig()
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        done = rig.consume_all(0, 0, 256)
        rig.sim.run(until=rig.sim.now + 300)
        rig.l1s[1].access(L1Request(addr=BASE + 128, is_write=True))
        rig.run()
        # The sunk stream finishes through the normal cached path.
        assert len(done) == 256


class TestDeallocation:
    def test_end_clears_ranges_everywhere(self):
        rig = make_sgc_rig()
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        rig.consume_all(0, 0, 256)
        rig.run()
        rig.se_cores[0].end([0])
        rig.run()
        assert all(not se3.ranges for se3 in rig.se_l3s)


class TestFullSystem:
    def test_sf_sgc_config_runs_whole_workload(self):
        chip = Chip(make_config("sf_sgc", core="ooo4", cols=2, rows=2,
                                scale=32))
        programs = build_programs("hotspot", chip.num_cores, scale=32)
        result = chip.run(programs)
        assert result.cycles > 0
        # Floating still happened under the alternative coherence.
        assert result.stats["l3.requests.stream_float"] > 0
