"""Unit tests for the L2 stream engine (SE_L2): buffering, credits,
followers, interception, aliasing."""

import pytest

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from tests.streams.conftest import StreamRig, dense_spec

BASE = 0x40_0000


def floated(rig, tile=0, lines=256, sid=0, base=BASE):
    """Configure a stream big enough to float at configure time."""
    rig.se_cores[tile].configure([dense_spec(sid, base, lines)])
    return rig.se_l2s[tile].streams[sid]


class TestFloating:
    def test_float_sends_config_packet(self, rig):
        floated(rig)
        rig.run()
        assert rig.stats["se_l2.floats"] == 1
        assert rig.stats["noc.packets.stream"] >= 1
        assert rig.stats["se_l3.streams_configured"] >= 1

    def test_buffer_capacity_in_elements(self, rig):
        stream = floated(rig)
        # 2048-byte buffer, 64-byte elements, one stream.
        assert stream.capacity == 32

    def test_data_arrives_into_buffer(self, rig):
        stream = floated(rig)
        rig.run()
        assert rig.stats["se_l2.data_arrivals"] > 0
        assert len(stream.ready) > 0

    def test_end_stream_sends_end_packet(self, rig):
        floated(rig)
        rig.run()
        rig.se_cores[0].end([0])
        rig.run()
        assert rig.stats["se_l2.ends"] == 1
        assert rig.stats["se_l3.ends"] + rig.stats["se_l2.end_acks"] >= 1


class TestCredits:
    def test_credits_flow_as_elements_consumed(self, rig):
        floated(rig)
        rig.consume_all(0, 0, 128)
        rig.run()
        assert rig.stats["se_l2.credits_sent"] > 0
        assert rig.stats["se_l3.credits_received"] > 0

    def test_whole_stream_completes_under_flow_control(self, rig):
        floated(rig, lines=200)
        done = rig.consume_all(0, 0, 200)
        rig.run()
        assert len(done) == 200

    def test_credit_batching_is_coarse(self, rig):
        stream = floated(rig)
        rig.consume_all(0, 0, 256)
        rig.run()
        # Credits returned in half-buffer batches: far fewer credit
        # messages than elements.
        assert rig.stats["se_l2.credits_sent"] <= 256 / (stream.capacity // 2)


class TestFollowers:
    def configure_pair(self, rig, delta_lines=4, lines=128):
        """Leader at +delta, follower behind it (same shape). 128
        lines = 8 kB footprint, enough to float past the 4 kB L2."""
        se = rig.se_cores[0]
        leader = dense_spec(0, BASE + delta_lines * 64, lines)
        follower = dense_spec(1, BASE, lines)
        se.configure([leader, follower])
        return se

    def test_follower_registered_not_configured(self, rig):
        self.configure_pair(rig)
        rig.run()
        assert rig.stats["se_l2.followers"] == 1
        # Only the leader went to the SE_L3.
        assert rig.stats["se_l2.floats"] == 1

    def test_follower_elements_served_from_leader(self, rig):
        self.configure_pair(rig, delta_lines=4, lines=128)
        done_leader = rig.consume_all(0, 0, 128)
        done_follower = rig.consume_all(0, 1, 128)
        rig.run()
        assert len(done_leader) == 128
        assert len(done_follower) == 128
        # One float, one fetch of the shared data: arrivals cover the
        # leader's elements once, not twice.
        assert rig.stats["se_l2.floats"] == 1
        assert rig.stats["se_l2.data_arrivals"] <= 140

    def test_far_offset_does_not_follow(self, rig):
        # Offset beyond half the buffer share: separate float.
        self.configure_pair(rig, delta_lines=64, lines=256)
        rig.run()
        assert rig.stats["se_l2.followers"] == 0
        assert rig.stats["se_l2.floats"] == 2

    def test_release_waits_for_followers(self, rig):
        self.configure_pair(rig, delta_lines=4, lines=128)
        stream = rig.se_l2s[0].streams[0]
        # Leader consumes everything; follower consumes nothing.
        rig.consume_all(0, 0, 64)
        rig.run()
        # Elements cannot free past what the follower still needs.
        assert stream.freed_through <= stream.consumed_leader


class TestInterception:
    def test_unknown_stream_bounces_to_memory(self, rig):
        from repro.mem.l2 import L2Request

        results = []
        req = L2Request(addr=BASE, floating=True, stream_id=9, element=0,
                        on_done=results.append)
        rig.se_l2s[0].intercept(req)
        rig.run()
        assert len(results) == 1  # served via the normal path

    def test_pre_float_elements_bounce(self, rig):
        from repro.mem.l2 import L2Request

        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 64)])
        stream = rig.se_l2s[0].streams.get(0)
        if stream is None:  # did not float (small), force a float
            se._float(se.streams[0])
            stream = rig.se_l2s[0].streams[0]
        stream.start_idx = 10
        results = []
        req = L2Request(addr=BASE, floating=True, stream_id=0, element=3,
                        on_done=results.append)
        rig.se_l2s[0].intercept(req)
        rig.run()
        assert len(results) == 1


class TestAliasing:
    def test_dirty_eviction_sinks_overlapping_stream(self, rig):
        stream = floated(rig)
        rig.run()
        # Pick a buffered element's line and report a dirty eviction.
        elem = next(iter(stream.ready))
        addr = stream.spec.pattern.address(elem)
        rig.se_l2s[0].on_dirty_evict(addr)
        assert rig.stats["se_l2.alias_sinks"] == 1
        assert not rig.se_cores[0].streams[0].floating

    def test_unrelated_dirty_eviction_ignored(self, rig):
        floated(rig)
        rig.run()
        rig.se_l2s[0].on_dirty_evict(0x900_0000)
        assert rig.stats["se_l2.alias_sinks"] == 0
