"""Tests for the smart float policy, FloatPlan carrying, revocation,
and the policy-edge bugfixes (negative-scale ranges, child-sid ends,
alias-bit survival). The root conftest enables the S4/S5 sanitizers
for every rig run here."""

import numpy as np
import pytest

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern, IndirectPattern
from repro.streams.plan import CORE, L2, L3, FloatPlan
from tests.streams.conftest import StreamRig, dense_spec

BASE = 0x40_0000


def smart_rig(**kw):
    return StreamRig(float_policy="smart", **kw)


def sweep_spec(sid, base, lines, sweeps):
    """A cache-blocked re-sweep: `lines` cold lines walked `sweeps`
    times (stride-0 outer level) — the revocation-bait shape."""
    return StreamSpec(sid=sid, pattern=AffinePattern(
        base=base, strides=(64, 0), lengths=(lines, sweeps), elem_size=64,
    ))


# ---------------------------------------------------------------------------
# satellite 1: negative-scale indirect ranges
# ---------------------------------------------------------------------------


class TestNegativeScale:
    def make_neg_child(self, rig, n=64, scale=-8):
        idx_pat = AffinePattern(base=BASE, strides=(8,), lengths=(n,),
                                elem_size=8)
        values = np.arange(n, dtype=np.int64)
        parent = StreamSpec(sid=0, pattern=idx_pat)
        child = StreamSpec(sid=1, parent_sid=0, pattern=IndirectPattern(
            base=BASE + 0x10_0000, index_pattern=idx_pat,
            index_array=values, scale=scale, elem_size=8,
        ))
        rig.se_cores[0].configure([parent, child])
        return rig.se_cores[0]

    def test_negative_scale_pattern_valid(self):
        pat = IndirectPattern(
            base=BASE,
            index_pattern=AffinePattern(base=0, strides=(8,), lengths=(4,),
                                        elem_size=8),
            index_array=np.array([0, 1, 2, 3], dtype=np.int64),
            scale=-8, elem_size=8,
        )
        assert pat.address(0) == BASE
        assert pat.address(3) == BASE - 24

    def test_zero_scale_still_rejected(self):
        with pytest.raises(ValueError):
            IndirectPattern(
                base=BASE,
                index_pattern=AffinePattern(base=0, strides=(8,),
                                            lengths=(4,), elem_size=8),
                index_array=np.zeros(4, dtype=np.int64),
                scale=0, elem_size=8,
            )

    def test_range_normalized_lo_below_hi(self, rig):
        se = self.make_neg_child(rig)
        lo, hi = se._range_of(se.streams[1].spec)
        assert lo < hi
        # The descending walk covers base-504 .. base (64 * -8).
        assert lo == BASE + 0x10_0000 - 512
        assert hi == BASE + 0x10_0000

    def test_footprint_positive_with_negative_scale(self, rig):
        se = self.make_neg_child(rig)
        assert se._config_footprint(se.streams[0]) > 0

    def test_store_in_descending_range_flushes(self, rig):
        se = self.make_neg_child(rig)
        rig.run()
        # An address inside the (normalized) child range, within the
        # issued-but-unconsumed window, must alias-flush. Before the
        # fix the inverted (lo > hi) range made this a silent no-op.
        se.notify_store(BASE + 0x10_0000 - 16)
        assert se.history.entry(1).aliased


# ---------------------------------------------------------------------------
# smart configure-time gates
# ---------------------------------------------------------------------------


class TestSmartConfigGates:
    def test_large_footprint_floats(self):
        rig = smart_rig()
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 256)])  # 16 kB > 4 kB L2
        assert se.streams[0].floating
        assert rig.stats["se_core.floats"] == 1

    def test_short_stream_rejected(self):
        rig = smart_rig()
        se = rig.se_cores[0]
        # Big footprint but only 32 elements: a config round-trip
        # never amortizes.
        se.configure([StreamSpec(sid=0, pattern=AffinePattern(
            base=BASE, strides=(256,), lengths=(32,), elem_size=64,
        ))])
        assert not se.streams[0].floating
        assert se.policy.last_reject[0] == "short_stream"

    def test_local_bank_rejected(self):
        rig = smart_rig()  # interleave 256, 4 tiles -> stride 1024 pins
        se = rig.se_cores[0]
        se.configure([StreamSpec(sid=0, pattern=AffinePattern(
            base=BASE, strides=(1024,), lengths=(64,), elem_size=64,
        ))])
        assert not se.streams[0].floating
        assert se.policy.last_reject[0] == "local_bank"

    def test_static_would_float_the_local_stream(self, rig):
        rig.se_cores[0].configure([StreamSpec(sid=0, pattern=AffinePattern(
            base=BASE, strides=(1024,), lengths=(64,), elem_size=64,
        ))])
        assert rig.se_cores[0].streams[0].floating


# ---------------------------------------------------------------------------
# revocation
# ---------------------------------------------------------------------------


class TestRevocation:
    def run_resweep(self, rig, lines=32, sweeps=3):
        se = rig.se_cores[0]
        se.configure([sweep_spec(0, BASE, lines, sweeps)])
        rig.consume_all(0, 0, lines * sweeps)
        rig.run()
        return se

    def test_hit_burst_revokes(self):
        rig = smart_rig()
        se = self.run_resweep(rig)
        # Sweep 1 (32 cold lines) qualifies the float right at the
        # sweep boundary; sweep 2 hits the private caches -> revoked.
        assert rig.stats["se_core.floats"] == 1
        assert rig.stats["se_core.revokes"] == 1
        assert not se.streams[0].floating
        ent = se.history.entry(0)
        assert ent.revokes == 1
        assert ent.cooldown > 0

    def test_static_policy_sinks_instead(self, rig):
        se = self.run_resweep(rig)
        assert rig.stats["se_core.revokes"] == 0
        assert rig.stats["se_core.sinks"] == 1
        assert not se.streams[0].floating

    def test_refloat_after_cooldown_bumps_epoch(self):
        rig = smart_rig()
        se = rig.se_cores[0]
        se.configure([sweep_spec(0, BASE, 32, 5)])  # 160 elements
        rig.consume_all(0, 0, 48)
        rig.run()
        assert rig.stats["se_core.revokes"] == 1
        stream = se.streams[0]
        epoch_before = rig.se_l2s[0]._epochs[0]
        # Cooldown over, and the next window streams cold again.
        ent = se.history.entry(0)
        ent.cooldown = 0
        ent.w_requests = ent.w_misses = 64
        ent.w_reuses = ent.w_stores = 0
        se._maybe_float_from_history(stream)
        assert stream.floating
        assert rig.stats["se_core.floats"] == 2
        assert rig.se_l2s[0]._epochs[0] == epoch_before + 1

    def test_alias_density_revokes(self):
        rig = smart_rig()
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 256)])
        assert se.streams[0].floating
        rig.run()
        # In-range stores far ahead of the window: near-aliases, not
        # window hits. A dense burst revokes the float.
        for k in range(se.policy.REVOKE_ALIAS_DENSITY):
            se.notify_store(BASE + (250 - k) * 64)
        assert rig.stats["se_core.revokes"] == 1
        assert not se.streams[0].floating
        assert se.history.entry(0).cooldown > 0

    def test_alias_bit_survives_sink(self, rig):
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 256)])
        assert se.streams[0].floating
        rig.run()
        # Aliasing store inside the window: sink + sticky alias bit.
        se.notify_store(BASE + 64 * (se.streams[0].freed + 1))
        assert not se.streams[0].floating
        ent = se.history.entry(0)
        assert ent.aliased
        # Even a perfect streaming window must not re-float it.
        ent.requests = ent.misses = 64
        assert not se.history.should_float(0)


# ---------------------------------------------------------------------------
# plans: pure-L2, probation/deferred config, L3-range truncation
# ---------------------------------------------------------------------------


class TestPlans:
    def test_pure_l2_plan_no_remote_config(self):
        rig = smart_rig(plan_enabled=True)
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 64)])  # 4 kB == L2: mid-size
        stream = se.streams[0]
        assert stream.floating
        assert stream.plan is not None
        assert stream.plan.level_at(0) == L2
        assert rig.stats["se_l2.plan_l2_ranges"] == 1
        assert rig.se_l2s[0].streams[0].l3_start is None
        done = rig.consume_all(0, 0, 64)
        rig.run()
        assert len(done) == 64
        assert rig.stats["se_l2.l2_prefetches"] > 0
        # No SE_L3 was ever involved.
        assert rig.stats["se_l2.deferred_configs"] == 0
        assert all(not b.streams for b in rig.se_l3s)
        se.end([0])
        rig.run()

    def test_probation_plan_defers_config(self):
        rig = smart_rig(plan_enabled=True)
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 256)])  # 16 kB: floats
        stream = se.streams[0]
        assert stream.floating
        assert stream.plan is not None
        assert stream.plan.level_at(0) == L2
        assert stream.plan.level_at(255) == L3
        # The L3 range starts past the initial credit grant, so the
        # config is held until the consumer closes in.
        assert rig.stats["se_l2.deferred_configs"] == 1
        assert not rig.se_l2s[0].streams[0].config_sent
        done = rig.consume_all(0, 0, 256)
        rig.run()
        assert len(done) == 256
        assert rig.se_l2s[0].streams[0].config_sent \
            if 0 in rig.se_l2s[0].streams else True
        assert rig.stats["l3.requests.stream_float"] > 0
        se.end([0])
        rig.run()

    def test_plan_l3_range_truncates_at_bank(self):
        rig = StreamRig()
        spec = dense_spec(0, BASE, 128)
        plan = FloatPlan([(0, L3), (64, CORE)])
        rig.se_l2s[0].float_stream(spec, 0, [], plan=plan)
        rig.run()
        lengths = [
            s.length for bank in rig.se_l3s for s in bank.streams.values()
        ]
        assert lengths == [64]
        rig.se_l2s[0].end_stream(0)
        rig.run()
        assert all(not b.streams for b in rig.se_l3s)

    def test_flush_floating_mid_plan(self):
        rig = smart_rig(plan_enabled=True)
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 256)])
        assert se.streams[0].floating
        done = rig.consume_all(0, 0, 256)
        rig.run(max_events=2_000)  # part-way through the stream
        se.flush_floating()
        assert not se.streams[0].floating
        assert se.streams[0].plan is None
        assert rig.stats["se_core.context_flushes"] == 1
        rig.run()
        assert len(done) == 256  # completes privately


# ---------------------------------------------------------------------------
# satellite 3: child-sid end_stream
# ---------------------------------------------------------------------------


class TestChildEnd:
    def configure_indirect(self, rig, n=512):
        idx_pat = AffinePattern(base=BASE, strides=(8,), lengths=(n,),
                                elem_size=8)
        values = np.arange(n, dtype=np.int64)
        parent = StreamSpec(sid=0, pattern=idx_pat)
        child = StreamSpec(sid=1, parent_sid=0, pattern=IndirectPattern(
            base=BASE + 0x10_0000, index_pattern=idx_pat,
            index_array=values, scale=8, elem_size=8,
        ))
        rig.se_cores[0].configure([parent, child])
        return rig.se_cores[0]

    def test_child_ends_before_parent(self, rig):
        se = self.configure_indirect(rig)
        assert se.streams[0].floating
        rig.consume_all(0, 0, 64)
        rig.consume_all(0, 1, 64)
        rig.run()
        # End the child mid-run, then the parent: the child end must
        # detach it at the SE_L2 (and at the bank), not fall through
        # the leader lookup as a silent no-op.
        se.end([1])
        assert rig.stats["se_l2.child_ends"] == 1
        rig.run()
        se.end([0])
        rig.run()
        assert not rig.se_l2s[0].streams
        assert all(not b.streams for b in rig.se_l3s)

    def test_parent_first_keeps_classic_path(self, rig):
        se = self.configure_indirect(rig)
        rig.consume_all(0, 0, 64)
        rig.consume_all(0, 1, 64)
        rig.run()
        se.end([0, 1])  # spec order: leader pop covers the child
        rig.run()
        assert rig.stats["se_l2.child_ends"] == 0
        assert not rig.se_l2s[0].streams
