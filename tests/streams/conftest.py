"""A single-tile-plus-mesh rig for stream engine tests.

Builds a small chip (2x2) directly from components so tests can poke
at individual stream engines while a real network, L3 banks and DRAM
respond underneath.
"""

import pytest

from repro.mem.addr import NucaMap
from repro.mem.dram import DramSystem
from repro.mem.l1 import L1Cache
from repro.mem.l2 import L2Cache
from repro.mem.l3 import L3Bank
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.sim import Simulator, Stats
from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.streams.se_core import SECore
from repro.streams.se_l2 import SEL2
from repro.streams.se_l3 import SEL3


class StreamRig:
    def __init__(self, cols=2, rows=2, interleave=256, l2_size=4096,
                 fifo_bytes=512, buffer_bytes=2048, float_enabled=True,
                 float_policy="static", plan_enabled=False):
        self.sim = Simulator()
        self.stats = Stats()
        self.mesh = Mesh(cols, rows)
        self.net = Network(self.sim, self.mesh, self.stats)
        self.nuca = NucaMap(self.mesh.num_tiles, interleave)
        self.dram = DramSystem(self.sim, self.net, self.stats)
        self.banks, self.l2s, self.l1s = [], [], []
        self.se_l2s, self.se_l3s, self.se_cores = [], [], []
        for tile in range(self.mesh.num_tiles):
            bank = L3Bank(self.sim, self.net, self.stats, tile,
                          size_bytes=32 * 1024, ways=4, dram=self.dram,
                          replacement="lru", nuca=self.nuca)
            l2 = L2Cache(self.sim, self.net, self.stats, tile,
                         size_bytes=l2_size, ways=4, nuca=self.nuca,
                         replacement="lru")
            l1 = L1Cache(self.sim, self.stats, tile, l2,
                         size_bytes=1024, ways=2)
            se_l2 = SEL2(self.sim, self.net, self.stats, tile, l2,
                         self.nuca, buffer_bytes=buffer_bytes)
            se_l3 = SEL3(self.sim, self.net, self.stats, tile, bank,
                         self.nuca, self.mesh)
            se_core = SECore(self.sim, self.stats, tile, l1, se_l2=se_l2,
                             fifo_bytes=fifo_bytes, l2_capacity=l2_size,
                             float_enabled=float_enabled,
                             float_policy=float_policy,
                             plan_enabled=plan_enabled)
            l2.on_stream_reuse = se_core.on_stream_reuse
            self.banks.append(bank)
            self.l2s.append(l2)
            self.l1s.append(l1)
            self.se_l2s.append(se_l2)
            self.se_l3s.append(se_l3)
            self.se_cores.append(se_core)

    def run(self, max_events=3_000_000):
        self.sim.run(max_events=max_events)
        return self.sim.now

    def consume_all(self, tile, sid, count, times=None):
        """Drive ``count`` sequential stream_loads on a stream."""
        se = self.se_cores[tile]
        done = []

        def consume_next():
            if len(done) >= count:
                return
            se.consume(sid, on_ready)

        def on_ready():
            done.append(self.sim.now)
            if times is not None:
                times.append(self.sim.now)
            consume_next()

        consume_next()
        return done


def dense_spec(sid, base, lines, elem=64):
    return StreamSpec(sid=sid, pattern=AffinePattern(
        base=base, strides=(elem,), lengths=(lines,), elem_size=elem,
    ))


@pytest.fixture
def rig():
    return StreamRig()
