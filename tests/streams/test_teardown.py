"""Stream teardown bookkeeping tests (ISSUE 4 satellite).

``se_l3._drop`` / ``_end`` / ``_migrate`` must not leak confluence
group members, range-tracker entries, or credit-ledger state, and a
stale EndStream from a superseded incarnation (a sid that sank and
re-floated) must never kill the newer incarnation — the epoch field
on FloatConfig/Migrate/EndStream/Credit exists for exactly that.
"""

from repro.noc.message import STREAM, Packet
from repro.streams.messages import Credit, EndStream, FloatConfig
from tests.streams.conftest import StreamRig, dense_spec

BASE = 0x40_0000


def send(rig, tile, dst, body, port="se_l3"):
    rig.net.send(Packet(
        src=tile, dst=dst, kind=STREAM, payload_bits=body.bits(),
        dst_port=port, body=body,
    ))


def assert_no_leaks(rig):
    for se3 in rig.se_l3s:
        assert not se3.streams
        assert not se3.pending_credits
        assert not se3.ranges
        for group in se3.groups:
            assert group.members  # no empty husks kept around
    for se2 in rig.se_l2s:
        for stream in se2.streams.values():
            assert not stream.waiters
            assert not stream.child_waiters


def test_end_mid_confluence_prunes_group():
    rig = StreamRig(interleave=1024)
    spec = dense_spec(0, BASE, 128)
    for tile in (0, 1):
        rig.se_l2s[tile].float_stream(spec, 0, [])
    # Let the group form and stream some data, then end one member.
    rig.sim.run(until=rig.sim.now + 400)
    assert rig.stats["se_l3.confluences"] >= 1
    rig.se_l2s[0].end_stream(0)
    rig.run()
    # The dead member is gone from every group; groups of one dissolve.
    for se3 in rig.se_l3s:
        for group in se3.groups:
            assert len(group.members) >= 2
            for member in group.members:
                assert se3.streams.get(member.key) is member


def test_migration_keeps_group_membership_consistent():
    # 256B interleave: every stream migrates repeatedly; a migrated
    # member must never linger in a group at the bank it left.
    rig = StreamRig()
    done = []
    for tile in (0, 1):
        # 128 * 64B = 8 kB > the rig's 4 kB L2: floats at configure.
        rig.se_cores[tile].configure([dense_spec(0, BASE, 128)])
        done.append(rig.consume_all(tile, 0, 128))
    rig.run()
    assert rig.stats["se_l3.migrations_out"] > 0
    assert all(len(d) == 128 for d in done)
    assert_no_leaks(rig)


def test_stale_end_does_not_kill_new_incarnation(rig):
    # Epoch-2 incarnation is resident; an EndStream from the dead
    # epoch-1 incarnation arrives late. It must be acked (so the
    # SE_L2 moves on) without touching the resident stream.
    spec = dense_spec(0, BASE, 4)
    bank = rig.nuca.bank_of(BASE)
    send(rig, 0, bank, FloatConfig(spec=spec, children=[], start_idx=0,
                                   credits=0, requester=0, epoch=2))
    rig.run()
    assert rig.se_l3s[bank].streams.get((0, 0)) is not None
    send(rig, 0, bank, EndStream(requester=0, sid=0, epoch=1))
    rig.run()
    assert rig.stats["se_l3.stale_ends"] == 1
    assert rig.stats["se_l2.end_acks"] == 1
    stream = rig.se_l3s[bank].streams.get((0, 0))
    assert stream is not None and stream.epoch == 2
    # The matching end kills exactly that incarnation.
    send(rig, 0, bank, EndStream(requester=0, sid=0, epoch=2))
    rig.run()
    assert rig.se_l3s[bank].streams.get((0, 0)) is None
    assert rig.stats["se_l3.ends"] == 1


def test_stale_credit_does_not_inflate_new_incarnation(rig):
    spec = dense_spec(0, BASE, 64)
    bank = rig.nuca.bank_of(BASE)
    send(rig, 0, bank, FloatConfig(spec=spec, children=[], start_idx=0,
                                   credits=0, requester=0, epoch=2))
    rig.run()
    send(rig, 0, bank, Credit(requester=0, sid=0, count=8, epoch=1))
    rig.run()
    assert rig.stats["se_l3.stale_credits"] == 1
    assert rig.se_l3s[bank].streams[(0, 0)].credits == 0
    assert rig.stats["se_l3.elements_issued"] == 0


def test_sink_and_refloat_drains_clean(rig):
    # End a partially-streamed sid and immediately re-float it: the
    # old EndStream chases the old incarnation while the new config
    # races it; everything must drain with the new incarnation whole.
    spec = dense_spec(0, BASE, 32)
    se2 = rig.se_l2s[0]
    se2.float_stream(spec, 0, [])
    rig.sim.run(until=rig.sim.now + 300)
    se2.end_stream(0)
    se2.float_stream(spec, 0, [])
    rig.run()
    assert se2.streams[0].epoch == 2
    assert se2.streams[0].ready == set(range(32))
    assert_no_leaks(rig)


def test_check_write_clears_range_and_credit_ledger(rig):
    # Stream-grain coherence mode: a conflicting write invalidates the
    # stream AND forgets its range + parked credits (no ledger leak).
    se3 = rig.se_l3s[0]
    se3.stream_grain_coherence = True
    key = (1, 0)
    se3._track_range(key, BASE, 256)
    se3.pending_credits[key] = (1, 4)
    se3.check_write(BASE + 64, writer=2)
    assert key not in se3.ranges
    assert key not in se3.pending_credits
    rig.run()
    assert rig.stats["se_l3.stream_invalidations"] == 1


def test_flush_floating_clears_all_ledgers(rig):
    se3 = rig.se_l3s[0]
    spec = dense_spec(0, BASE, 4)
    bank = rig.nuca.bank_of(BASE)
    assert bank == 0
    send(rig, 1, 0, FloatConfig(spec=spec, children=[], start_idx=0,
                                credits=0, requester=1, epoch=1))
    rig.run()
    se3.forwarding[(3, 9)] = (1, 1)
    se3.pending_credits[(3, 8)] = (1, 2)
    se3._track_range((1, 0), BASE, 256)
    se3.flush_floating()
    assert not se3.streams
    assert not se3.forwarding
    assert not se3.pending_credits
    assert not se3.ranges
