"""Subline coalescing boundary tests (ISSUE 4 satellite).

Sub-line-sized stream elements (e.g. a 4- or 16-byte index stream)
coalesce into one GetU / one DataU per cache line in
``se_l3._issue_one``; the SE_L2 unpacks the coalesced ``(start, end)``
element range on arrival. These tests pin the boundary behaviour:
ranges that end exactly at a line boundary, elements that must not
coalesce across a line boundary, elements whose own span crosses a
line, and coalescing clipped by the credit bound.
"""

from repro.noc.message import STREAM, Packet
from repro.streams.isa import StreamSpec
from repro.streams.messages import FloatConfig
from repro.streams.pattern import AffinePattern
from tests.streams.conftest import StreamRig

BASE = 0x40_0000  # line- and interleave-aligned


def subline_spec(sid, base, elems, elem=16):
    return StreamSpec(sid=sid, pattern=AffinePattern(
        base=base, strides=(elem,), lengths=(elems,), elem_size=elem,
    ))


def float_direct(rig, tile, spec, credits, start_idx=0):
    """Inject a FloatConfig at the first element's home bank."""
    bank = rig.nuca.bank_of(spec.pattern.address(start_idx))
    body = FloatConfig(spec=spec, children=[], start_idx=start_idx,
                       credits=credits, requester=tile)
    rig.net.send(Packet(
        src=tile, dst=bank, kind=STREAM, payload_bits=body.bits(),
        dst_port="se_l3", body=body,
    ))


def test_range_ending_exactly_at_line_boundary(rig):
    # Four 16-byte elements fill one 64-byte line exactly: a single
    # coalesced GetU/DataU covers (0, 4) and nothing dangles into the
    # next line.
    spec = subline_spec(0, BASE, 4)
    rig.se_l2s[0].float_stream(spec, 0, [])
    rig.run()
    assert rig.stats["se_l3.elements_issued"] == 4
    assert rig.stats["l3.requests.stream_float"] == 1
    assert rig.stats["se_l2.data_arrivals"] == 1
    stream = rig.se_l2s[0].streams[0]
    assert stream.ready == set(range(4))


def test_elements_do_not_coalesce_across_line_boundary(rig):
    # Eight aligned 16-byte elements span two lines: exactly two
    # GetUs — (0, 4) and (4, 8) — never one range across the boundary.
    spec = subline_spec(0, BASE, 8)
    rig.se_l2s[0].float_stream(spec, 0, [])
    rig.run()
    assert rig.stats["se_l3.elements_issued"] == 8
    assert rig.stats["l3.requests.stream_float"] == 2
    assert rig.stats["se_l2.data_arrivals"] == 2
    assert rig.se_l2s[0].streams[0].ready == set(range(8))


def test_unaligned_range_spanning_two_lines(rig):
    # Starting mid-line, the first coalesced range stops at the line
    # boundary: elements 0-1 (line 0), 2-5 (line 1), 6-7 (line 2).
    spec = subline_spec(0, BASE + 32, 8)
    rig.se_l2s[0].float_stream(spec, 0, [])
    rig.run()
    assert rig.stats["se_l3.elements_issued"] == 8
    assert rig.stats["l3.requests.stream_float"] == 3
    assert rig.se_l2s[0].streams[0].ready == set(range(8))


def test_element_spanning_line_boundary(rig):
    # 48-byte elements at 0, 48, 96, 144: element 1 itself straddles
    # the first line boundary. Coalescing keys on the element's start
    # address: lines 0, 0, 1, 2 -> three GetUs.
    spec = subline_spec(0, BASE, 4, elem=48)
    rig.se_l2s[0].float_stream(spec, 0, [])
    rig.run()
    assert rig.stats["se_l3.elements_issued"] == 4
    assert rig.stats["l3.requests.stream_float"] == 3
    assert rig.se_l2s[0].streams[0].ready == set(range(4))


def test_coalescing_clipped_by_credit_bound(rig):
    # Only 2 credits for a 16-element subline stream: the first batch
    # must stop at 2 elements even though 4 share the line.
    float_direct(rig, tile=0, spec=subline_spec(0, BASE, 16), credits=2)
    rig.run()
    assert rig.stats["se_l3.elements_issued"] == 2
    assert rig.stats["l3.requests.stream_float"] == 1


def test_confluence_multicast_unpacks_coalesced_range():
    # Two tiles float the same subline pattern: the confluence group
    # multicasts one coalesced DataU per line and each SE_L2 unpacks
    # the (start, end) range for its own stream.
    rig = StreamRig(interleave=1024)
    spec = subline_spec(0, BASE, 64)
    for tile in (0, 1):
        rig.se_l2s[tile].float_stream(spec, 0, [])
    rig.run()
    assert rig.stats["se_l3.confluences"] >= 1
    assert rig.stats["se_l3.multicasts"] > 0
    for tile in (0, 1):
        assert rig.se_l2s[tile].streams[0].ready == set(range(64))


def test_subline_stream_consumed_end_to_end(rig):
    # Footprint 512 * 16B = 8 kB > the rig's 4 kB L2: floats at
    # configure time. Every element is consumed through the intercept
    # path and far fewer GetUs than elements were needed.
    spec = subline_spec(0, BASE, 512)
    rig.se_cores[0].configure([spec])
    done = rig.consume_all(0, 0, 512)
    rig.run()
    assert len(done) == 512
    assert rig.stats["se_l3.elements_issued"] >= 512
    assert rig.stats["l3.requests.stream_float"] < 512
    assert rig.stats["se_l3.completed"] >= 1
