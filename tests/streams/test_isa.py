"""Tests for ISA encodings — reproduces Table I's sizes."""

import numpy as np
import pytest

from repro.streams.isa import (
    AFFINE_CONFIG_BITS,
    INDIRECT_CONFIG_BITS,
    MigrationPacket,
    StreamSpec,
    config_packet_bits,
)
from repro.streams.pattern import AffinePattern, IndirectPattern


def affine_spec(sid=0, length=16, kind="load"):
    return StreamSpec(
        sid=sid,
        pattern=AffinePattern(base=0, strides=(64,), lengths=(length,), elem_size=64),
        kind=kind,
    )


def indirect_spec(sid=1, parent=0, n=8):
    index = AffinePattern(base=0, strides=(8,), lengths=(n,), elem_size=8)
    return StreamSpec(
        sid=sid,
        pattern=IndirectPattern(
            base=0x1000, index_pattern=index,
            index_array=np.arange(n, dtype=np.int64),
        ),
        parent_sid=parent,
    )


def test_affine_config_is_450_bits():
    """Table I: the total affine configuration is 450 bits, less than
    one 512-bit cache line."""
    assert AFFINE_CONFIG_BITS == 450
    assert AFFINE_CONFIG_BITS < 512


def test_indirect_config_is_60_bits():
    """Table I: each indirect stream appends 60 bits."""
    assert INDIRECT_CONFIG_BITS == 60


def test_config_packet_sums_streams():
    specs = [affine_spec(0), indirect_spec(1, parent=0)]
    assert config_packet_bits(specs) == 450 + 60


def test_spec_kind_validation():
    with pytest.raises(ValueError):
        affine_spec(kind="readwrite")


def test_indirect_requires_parent():
    index = AffinePattern(base=0, strides=(8,), lengths=(4,), elem_size=8)
    pat = IndirectPattern(base=0, index_pattern=index,
                          index_array=np.arange(4, dtype=np.int64))
    with pytest.raises(ValueError):
        StreamSpec(sid=1, pattern=pat)  # missing parent_sid


def test_affine_rejects_parent():
    with pytest.raises(ValueError):
        StreamSpec(
            sid=0,
            pattern=AffinePattern(base=0, strides=(64,), lengths=(4,), elem_size=64),
            parent_sid=3,
        )


def test_spec_length():
    assert affine_spec(length=37).length == 37


def test_migration_packet_bits_exceed_config():
    spec = affine_spec()
    packet = MigrationPacket(spec=spec, next_idx=5, credits=3, requester=0)
    assert packet.bits() > spec.config_bits()
