"""Tests for stream-management message encodings."""

import numpy as np

from repro.streams.isa import StreamSpec
from repro.streams.messages import (
    Credit,
    EndAck,
    EndStream,
    FloatConfig,
    IndFetch,
    Migrate,
    StreamInv,
)
from repro.streams.pattern import AffinePattern, IndirectPattern


def affine(sid=0, lines=16):
    return StreamSpec(sid=sid, pattern=AffinePattern(
        base=0, strides=(64,), lengths=(lines,), elem_size=64,
    ))


def indirect(sid=1, parent=0, n=8):
    index = AffinePattern(base=0, strides=(8,), lengths=(n,), elem_size=8)
    return StreamSpec(sid=sid, parent_sid=parent, pattern=IndirectPattern(
        base=0x1000, index_pattern=index,
        index_array=np.arange(n, dtype=np.int64),
    ))


def test_float_config_bits_match_table1():
    cfg = FloatConfig(spec=affine(), children=[], start_idx=0,
                      credits=8, requester=0)
    assert cfg.bits() == 450
    with_child = FloatConfig(spec=affine(), children=[indirect()],
                             start_idx=0, credits=8, requester=0)
    assert with_child.bits() == 450 + 60


def test_migrate_bigger_than_config():
    cfg = FloatConfig(spec=affine(), children=[], start_idx=0,
                      credits=8, requester=0)
    mig = Migrate(spec=affine(), children=[], next_idx=5, credits=3,
                  requester=0)
    assert mig.bits() > cfg.bits()


def test_small_messages_fit_one_flit():
    """End / ack / credit / inv / indirect-fetch are tiny control
    messages — single-flit at the default 256-bit link (with the
    64-bit header)."""
    for body in (
        EndStream(requester=0, sid=1),
        EndAck(sid=1),
        Credit(requester=0, sid=1, count=16),
        StreamInv(sid=1, addr=0x1234),
        IndFetch(requester=0, sid=1, element=5, addr=0x40, data_bytes=4),
    ):
        assert body.bits() + 64 <= 256, type(body).__name__
