"""Unit tests for the core stream engine (SE_core)."""

import pytest

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from tests.streams.conftest import StreamRig, dense_spec

BASE = 0x40_0000  # maps across banks


class TestConfiguration:
    def test_configure_allocates_fifo_share(self, rig):
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 64), dense_spec(1, BASE + 8192, 64)])
        assert set(se.streams) == {0, 1}
        # 512B FIFO over two 64B-element streams: 4 elements each.
        assert se.streams[0].fifo_elems == 4

    def test_too_many_streams_rejected(self, rig):
        se = rig.se_cores[0]
        specs = [dense_spec(i, BASE + i * 65536, 8) for i in range(13)]
        with pytest.raises(RuntimeError):
            se.configure(specs)

    def test_end_removes_streams(self, rig):
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 8)])
        se.end([0])
        assert 0 not in se.streams
        se.end([0])  # idempotent

    def test_run_ahead_issues_fifo_depth(self, rig):
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 64)])
        # One pump at configure: next_issue == fifo share.
        assert se.streams[0].next_issue == se.streams[0].fifo_elems


class TestConsumption:
    def test_elements_delivered_in_order(self, rig):
        rig.se_cores[0].configure([dense_spec(0, BASE, 16)])
        times = []
        done = rig.consume_all(0, 0, 16, times)
        rig.run()
        assert len(done) == 16
        assert times == sorted(times)

    def test_pipelined_claims_get_distinct_elements(self, rig):
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 8)])
        got = []
        for _ in range(4):  # four overlapping stream_loads
            se.consume(0, lambda: got.append(1))
        rig.run()
        assert len(got) == 4
        assert se.streams[0].claimed == 4

    def test_store_next_advances_addresses(self, rig):
        se = rig.se_cores[0]
        spec = StreamSpec(sid=0, kind="store", pattern=AffinePattern(
            base=BASE, strides=(64,), lengths=(4,), elem_size=64,
        ))
        se.configure([spec])
        assert [se.store_next(0) for _ in range(3)] == [
            BASE, BASE + 64, BASE + 128,
        ]


class TestFloatPolicy:
    def test_large_footprint_floats_at_configure(self, rig):
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 256)])  # 16kB > 4kB L2
        assert se.streams[0].floating
        assert rig.stats["se_core.floats"] == 1

    def test_small_footprint_does_not_float(self, rig):
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 8)])  # 512B < 4kB L2
        assert not se.streams[0].floating

    def test_float_disabled_never_floats(self):
        rig = StreamRig(float_enabled=False)
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 256)])
        assert not se.streams[0].floating

    def test_floated_stream_completes(self, rig):
        rig.se_cores[0].configure([dense_spec(0, BASE, 128)])
        done = rig.consume_all(0, 0, 128)
        rig.run()
        assert len(done) == 128
        assert rig.stats["l3.requests.stream_float"] > 0

    def test_floating_faster_than_not_for_streaming(self):
        def run(enabled):
            rig = StreamRig(float_enabled=enabled)
            rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
            rig.consume_all(0, 0, 256)
            return rig.run()

        assert run(True) < run(False)


class TestAliasing:
    def test_store_into_window_flushes_and_records(self, rig):
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 64)])
        rig.run()
        # Store at an address ahead of consumption, inside the issued
        # window.
        target = BASE + 64  # element 1, issued but unconsumed
        se.notify_store(target)
        assert rig.stats["se_core.alias_flushes"] == 1
        assert se.history.entry(0).aliased

    def test_store_outside_range_ignored(self, rig):
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 64)])
        se.notify_store(0x900_0000)
        assert rig.stats["se_core.alias_flushes"] == 0

    def test_aliased_floating_stream_sinks(self, rig):
        se = rig.se_cores[0]
        se.configure([dense_spec(0, BASE, 256)])
        assert se.streams[0].floating
        rig.run()
        se.notify_store(BASE + 64 * (se.streams[0].freed + 1))
        assert not se.streams[0].floating
        assert rig.stats["se_core.sinks"] == 1


class TestIndirect:
    def make_indirect(self, rig, n=32):
        import numpy as np
        from repro.streams.pattern import IndirectPattern

        idx_pat = AffinePattern(base=BASE, strides=(8,), lengths=(n,),
                                elem_size=8)
        values = np.arange(n, dtype=np.int64)[::-1].copy()
        parent = StreamSpec(sid=0, pattern=idx_pat)
        child = StreamSpec(sid=1, parent_sid=0, pattern=IndirectPattern(
            base=BASE + 0x10_0000, index_pattern=idx_pat,
            index_array=values, scale=8, elem_size=8,
        ))
        rig.se_cores[0].configure([parent, child])
        return parent, child

    def test_child_wired_to_parent(self, rig):
        self.make_indirect(rig)
        se = rig.se_cores[0]
        assert se.streams[1].parent is se.streams[0]
        assert se.streams[0].children == [se.streams[1]]

    def test_indirect_elements_deliver(self, rig):
        self.make_indirect(rig)
        done_parent = rig.consume_all(0, 0, 32)
        done_child = rig.consume_all(0, 1, 32)
        rig.run()
        assert len(done_parent) == 32
        assert len(done_child) == 32
