"""Tests for per-range float plans (FloatPlan)."""

import pytest

from repro.streams.isa import PLAN_POINT_BITS
from repro.streams.plan import CORE, L2, L3, FloatPlan


class TestConstruction:
    def test_empty_plan_is_all_core(self):
        plan = FloatPlan()
        assert plan.level_at(0) == CORE
        assert plan.level_at(10**9) == CORE
        assert plan.first_float_elem() is None
        assert plan.describe() == "core@0"

    def test_points_sort_and_merge(self):
        plan = FloatPlan([(64, L3), (0, L2), (32, L2)])
        # The adjacent L2 runs merge; levels read back per element.
        assert plan.ranges() == [(0, L2), (64, L3)]
        assert plan.level_at(0) == L2
        assert plan.level_at(63) == L2
        assert plan.level_at(64) == L3

    def test_last_writer_wins_per_element(self):
        plan = FloatPlan()
        plan.add_change_point(16, L2)
        plan.add_change_point(16, L3)
        assert plan.level_at(16) == L3

    def test_rejects_bad_points(self):
        plan = FloatPlan()
        with pytest.raises(ValueError):
            plan.add_change_point(-1, L2)
        with pytest.raises(ValueError):
            plan.add_change_point(0, "l4")

    def test_leading_core_run_is_implicit(self):
        plan = FloatPlan([(32, L3)])
        assert plan.level_at(0) == CORE
        assert plan.level_at(31) == CORE
        assert plan.first_float_elem() == 32


class TestQueries:
    def plan(self):
        return FloatPlan([(16, L2), (48, L3), (96, CORE)])

    def test_first_at(self):
        plan = self.plan()
        assert plan.first_at(L2) == 16
        assert plan.first_at(L3) == 48
        assert plan.first_at(CORE) == 0

    def test_run_end(self):
        plan = self.plan()
        assert plan.run_end(16, 1000) == 48
        assert plan.run_end(48, 1000) == 96
        assert plan.run_end(96, 1000) == 1000  # default past the last edge

    def test_next_edge(self):
        plan = self.plan()
        assert plan.next_edge(0) == 16
        assert plan.next_edge(16) == 48
        assert plan.next_edge(96) is None

    def test_ranges_round_trips_to_dict(self):
        plan = self.plan()
        assert plan.to_dict() == {
            "points": [[16, L2], [48, L3], [96, CORE]],
        }
        assert "l2@16" in plan.describe()


class TestDelayUntil:
    def test_delay_into_middle_reanchors(self):
        plan = FloatPlan([(0, L2), (64, L3)])
        plan.delay_until(40)
        # Floating begins at 40 inside the L2 run; the L3 edge stays.
        assert plan.ranges() == [(40, L2), (64, L3)]
        assert plan.first_float_elem() == 40

    def test_delay_past_all_points_keeps_last_level(self):
        plan = FloatPlan([(0, L2), (64, L3)])
        plan.delay_until(100)
        assert plan.ranges() == [(100, L3)]

    def test_delay_within_core_prefix_keeps_plan(self):
        plan = FloatPlan([(32, L3)])
        plan.delay_until(8)
        assert plan.first_float_elem() == 32


class TestEncoding:
    def test_extra_bits_charges_points_beyond_first(self):
        assert FloatPlan().extra_bits() == 0
        assert FloatPlan([(0, L3)]).extra_bits() == 0
        assert FloatPlan([(0, L2), (64, L3)]).extra_bits() == PLAN_POINT_BITS
        assert FloatPlan(
            [(0, L2), (64, L3), (128, CORE)]
        ).extra_bits() == 2 * PLAN_POINT_BITS
