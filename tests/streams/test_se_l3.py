"""Unit tests for the L3 stream engine (SE_L3): issue, migration,
confluence, indirect chaining, credit forwarding."""

import pytest

from repro.streams.isa import StreamSpec
from repro.streams.messages import Credit, EndStream, FloatConfig
from repro.streams.pattern import AffinePattern
from repro.noc.message import STREAM, Packet
from tests.streams.conftest import StreamRig, dense_spec

BASE = 0x40_0000


def float_manual(rig, tile, spec, start_idx=0, credits=16, bank=None):
    """Inject a FloatConfig directly at a bank's SE_L3."""
    if bank is None:
        bank = rig.nuca.bank_of(spec.pattern.address(start_idx))
    body = FloatConfig(spec=spec, children=[], start_idx=start_idx,
                       credits=credits, requester=tile)
    rig.net.send(Packet(
        src=tile, dst=bank, kind=STREAM, payload_bits=body.bits(),
        dst_port="se_l3", body=body,
    ))
    return bank


class TestIssue:
    def test_configured_stream_issues_reads(self, rig):
        spec = dense_spec(0, BASE, 4)  # one interleave chunk (256B)
        # Need an SE_L2 stream to receive; register manually.
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        rig.run()
        assert rig.stats["se_l3.elements_issued"] > 0
        assert rig.stats["l3.requests.stream_float"] > 0

    def test_known_length_completes_silently(self, rig):
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        rig.consume_all(0, 0, 256)
        rig.run()
        assert rig.stats["se_l3.completed"] >= 1
        # No end packets were needed.
        assert rig.stats["se_l3.ends"] == 0
        for se3 in rig.se_l3s:
            assert not se3.streams

    def test_credit_exhaustion_stalls_issue(self, rig):
        spec = dense_spec(0, BASE, 256)
        float_manual(rig, tile=0, spec=spec, credits=3)
        rig.run()
        # Exactly the granted elements were issued.
        assert rig.stats["se_l3.elements_issued"] == 3


class TestMigration:
    def test_stream_migrates_across_chunk_boundary(self, rig):
        # 256B interleave = 4 lines per bank chunk; 256 lines cross
        # many boundaries.
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        rig.consume_all(0, 0, 256)
        rig.run()
        assert rig.stats["se_l3.migrations_out"] > 0
        assert rig.stats["se_l3.migrations_in"] == \
            rig.stats["se_l3.migrations_out"]

    def test_migration_carries_credits(self, rig):
        spec = dense_spec(0, BASE, 8)
        float_manual(rig, tile=0, spec=spec, credits=8)
        rig.run()
        # 8 lines over 4-line chunks: one migration, all 8 issued.
        assert rig.stats["se_l3.elements_issued"] == 8

    def test_late_credit_forwarded_or_held(self, rig):
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        rig.consume_all(0, 0, 256)
        rig.run()
        # All credits eventually reached the stream: it finished.
        assert rig.stats["se_l3.completed"] >= 1
        # No bank kept stale pending credits forever.
        for se3 in rig.se_l3s:
            assert not se3.pending_credits


class TestConfluence:
    # Confluence needs streams to coexist at a bank: use the paper's
    # 1 kB SF interleave (16-line chunks) so laggards catch leaders.
    def make_rig(self):
        return StreamRig(interleave=1024)

    def configure_shared(self, rig, tiles=(0, 1), lines=128):
        spec_pattern = AffinePattern(base=BASE, strides=(64,),
                                     lengths=(lines,), elem_size=64)
        for tile in tiles:
            rig.se_cores[tile].configure([
                StreamSpec(sid=0, pattern=spec_pattern)
            ])

    def test_same_pattern_same_block_merges(self):
        rig = self.make_rig()
        # Tiles 0 and 1 sit in the same 2x2 block of the 2x2 mesh.
        self.configure_shared(rig, tiles=(0, 1))
        rig.consume_all(0, 0, 128)
        rig.consume_all(1, 0, 128)
        rig.run()
        assert rig.stats["se_l3.confluences"] >= 1
        assert rig.stats["se_l3.multicasts"] > 0
        assert rig.stats["l3.requests_by_source.float_conf"] > 0

    def test_multicast_saves_flit_hops(self):
        rig = self.make_rig()
        self.configure_shared(rig, tiles=(0, 1, 2, 3))
        for t in range(4):
            rig.consume_all(t, 0, 128)
        rig.run()
        assert rig.stats["noc.multicast.saved_flit_hops"] > 0

    def test_different_patterns_do_not_merge(self, rig):
        rig.se_cores[0].configure([dense_spec(0, BASE, 128)])
        rig.se_cores[1].configure([dense_spec(0, BASE + 0x10_0000, 128)])
        rig.consume_all(0, 0, 128)
        rig.consume_all(1, 0, 128)
        rig.run()
        assert rig.stats["se_l3.confluences"] == 0

    def test_confluence_disabled(self):
        rig = StreamRig()
        for se3 in rig.se_l3s:
            se3.confluence_enabled = False
        self.configure_shared(rig, tiles=(0, 1))
        rig.consume_all(0, 0, 128)
        rig.consume_all(1, 0, 128)
        rig.run()
        assert rig.stats["se_l3.confluences"] == 0

    def test_same_requester_never_joins_group_twice(self):
        # Two same-shape streams from ONE tile (sids 0 and 1) plus a
        # matching stream from a neighbour: the neighbour's group must
        # hold at most one member per requester tile, or the confluence
        # multicast would carry duplicate destinations (sanitizer S4).
        rig = self.make_rig()
        pattern = AffinePattern(base=BASE, strides=(64,), lengths=(128,),
                                elem_size=64)
        rig.se_cores[0].configure([
            StreamSpec(sid=0, pattern=pattern),
            StreamSpec(sid=1, pattern=pattern),
        ])
        rig.se_cores[1].configure([StreamSpec(sid=0, pattern=pattern)])
        rig.consume_all(0, 0, 128)
        rig.consume_all(0, 1, 128)
        rig.consume_all(1, 0, 128)
        rig.run()
        for se3 in rig.se_l3s:
            for group in se3.groups:
                requesters = [m.requester for m in group.members]
                assert len(requesters) == len(set(requesters))

    def test_group_capped_at_four(self):
        # 4x4 mesh so one 2x2 block holds 4 requesters; a 5th from
        # another block must not join.
        rig = StreamRig(cols=4, rows=4)
        pattern = AffinePattern(base=BASE, strides=(64,), lengths=(128,),
                                elem_size=64)
        # Tiles 0, 1, 4, 5 share block (0,0); tile 2 is in block (1,0).
        for tile in (0, 1, 4, 5, 2):
            rig.se_cores[tile].configure([StreamSpec(sid=0, pattern=pattern)])
        rig.run()
        for se3 in rig.se_l3s:
            for group in se3.groups:
                assert len(group.members) <= 4
                blocks = {
                    rig.mesh.block_of(m.requester) for m in group.members
                }
                assert len(blocks) == 1


class TestEndAndFlush:
    def test_end_for_unknown_stream_acks(self, rig):
        body = EndStream(requester=0, sid=7)
        rig.net.send(Packet(
            src=0, dst=1, kind=STREAM, payload_bits=body.bits(),
            dst_port="se_l3", body=body,
        ))
        rig.run()
        assert rig.stats["se_l2.end_acks"] == 1

    def test_flush_floating_discards_all(self, rig):
        rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
        rig.sim.run(until=rig.sim.now + 200)
        total = sum(len(se3.streams) for se3 in rig.se_l3s)
        assert total >= 1
        for se3 in rig.se_l3s:
            se3.flush_floating()
        assert all(not se3.streams for se3 in rig.se_l3s)
