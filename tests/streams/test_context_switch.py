"""Context-switch behaviour (SS IV-E): stream floating adds no
architectural state; a switch discards all floating streams and the
program continues correctly through the normal paths."""

from tests.streams.conftest import StreamRig, dense_spec

BASE = 0x40_0000


def test_flush_floating_sinks_all_streams(rig):
    rig.se_cores[0].configure([
        dense_spec(0, BASE, 256),
        dense_spec(1, BASE + 0x10_0000, 256),
    ])
    assert all(s.floating for s in rig.se_cores[0].streams.values())
    rig.se_cores[0].flush_floating()
    assert not any(s.floating for s in rig.se_cores[0].streams.values())
    assert rig.stats["se_core.context_flushes"] == 1


def test_program_completes_after_mid_run_flush(rig):
    rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
    done = rig.consume_all(0, 0, 256)
    rig.sim.run(until=rig.sim.now + 400)  # part-way through
    rig.se_cores[0].flush_floating()
    for se3 in rig.se_l3s:
        se3.flush_floating()
    rig.run()
    assert len(done) == 256  # every element still delivered


def test_flush_is_idempotent(rig):
    rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
    rig.se_cores[0].flush_floating()
    rig.se_cores[0].flush_floating()
    assert not any(s.floating for s in rig.se_cores[0].streams.values())


def test_se_l3_flush_clears_everything(rig):
    rig.se_cores[0].configure([dense_spec(0, BASE, 256)])
    rig.sim.run(until=rig.sim.now + 200)
    for se3 in rig.se_l3s:
        se3.flush_floating()
        assert not se3.streams
        assert not se3.forwarding
        assert not se3.ranges


def test_streams_can_refloat_after_flush(rig):
    se = rig.se_cores[0]
    se.configure([dense_spec(0, BASE, 256)])
    se.flush_floating()
    se.end([0])
    # A new phase floats fresh streams as usual.
    se.configure([dense_spec(0, BASE + 0x20_0000, 256)])
    assert se.streams[0].floating
