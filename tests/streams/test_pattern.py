"""Tests for affine and indirect stream patterns."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams.pattern import AffinePattern, IndirectPattern


class TestAffine:
    def test_1d_dense(self):
        pat = AffinePattern(base=0x1000, strides=(8,), lengths=(10,), elem_size=8)
        assert len(pat) == 10
        assert pat.address(0) == 0x1000
        assert pat.address(9) == 0x1000 + 72

    def test_2d_row_major(self):
        # A[i][j] over 4x3: inner j stride 8, outer i stride 64.
        pat = AffinePattern(base=0, strides=(8, 64), lengths=(3, 4))
        addrs = [pat.address(i) for i in range(len(pat))]
        assert addrs == [0, 8, 16, 64, 72, 80, 128, 136, 144, 192, 200, 208]

    def test_3d(self):
        pat = AffinePattern(base=0, strides=(8, 100, 10000), lengths=(2, 3, 2))
        assert len(pat) == 12
        assert pat.address(11) == 8 + 2 * 100 + 1 * 10000

    def test_strided_skips(self):
        pat = AffinePattern(base=0, strides=(128,), lengths=(4,), elem_size=64)
        assert [pat.address(i) for i in range(4)] == [0, 128, 256, 384]

    def test_out_of_range_rejected(self):
        pat = AffinePattern(base=0, strides=(8,), lengths=(4,))
        with pytest.raises(IndexError):
            pat.address(4)
        with pytest.raises(IndexError):
            pat.address(-1)

    def test_footprint_dense(self):
        pat = AffinePattern(base=0, strides=(64,), lengths=(16,), elem_size=64)
        assert pat.footprint_bytes() == 16 * 64

    def test_footprint_negative_stride(self):
        pat = AffinePattern(base=1024, strides=(-64,), lengths=(8,), elem_size=64)
        assert pat.footprint_bytes() == 8 * 64

    def test_lines_dedup(self):
        pat = AffinePattern(base=0, strides=(8,), lengths=(16,), elem_size=8)
        assert pat.lines() == [0, 64]

    def test_same_shape(self):
        a = AffinePattern(base=0, strides=(64,), lengths=(8,), elem_size=64)
        b = AffinePattern(base=0, strides=(64,), lengths=(8,), elem_size=64)
        c = AffinePattern(base=64, strides=(64,), lengths=(8,), elem_size=64)
        assert a.same_shape(b)
        assert not a.same_shape(c)

    def test_validation(self):
        with pytest.raises(ValueError):
            AffinePattern(base=0, strides=(), lengths=())
        with pytest.raises(ValueError):
            AffinePattern(base=0, strides=(8, 8, 8, 8), lengths=(1, 1, 1, 1))
        with pytest.raises(ValueError):
            AffinePattern(base=0, strides=(8,), lengths=(0,))
        with pytest.raises(ValueError):
            AffinePattern(base=0, strides=(8, 8), lengths=(2,))

    @given(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=1, max_value=100),
    )
    def test_1d_address_formula(self, base, stride, length):
        pat = AffinePattern(base=base, strides=(stride,), lengths=(length,))
        for idx in (0, length // 2, length - 1):
            assert pat.address(idx) == base + idx * stride

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50))
    def test_2d_covers_cartesian_product(self, inner, outer):
        pat = AffinePattern(base=0, strides=(1, 1000), lengths=(inner, outer))
        addrs = {pat.address(i) for i in range(len(pat))}
        expected = {j + 1000 * i for i in range(outer) for j in range(inner)}
        assert addrs == expected


class TestIndirect:
    def make(self, values, scale=8, field_offset=0):
        index = AffinePattern(
            base=0x10000, strides=(8,), lengths=(len(values),), elem_size=8,
        )
        return IndirectPattern(
            base=0x200000, index_pattern=index,
            index_array=np.asarray(values, dtype=np.int64),
            scale=scale, field_offset=field_offset,
        )

    def test_addresses_follow_index_array(self):
        pat = self.make([5, 0, 9])
        assert pat.address(0) == 0x200000 + 5 * 8
        assert pat.address(1) == 0x200000
        assert pat.address(2) == 0x200000 + 9 * 8

    def test_field_offset(self):
        pat = self.make([2], scale=16, field_offset=4)
        assert pat.address(0) == 0x200000 + 32 + 4

    def test_length_matches_index_stream(self):
        pat = self.make([1, 2, 3, 4])
        assert len(pat) == 4

    def test_index_value_roundtrip(self):
        values = [7, 3, 1, 0]
        pat = self.make(values)
        for i, v in enumerate(values):
            assert pat.index_value(i) == v

    def test_strided_index_stream(self):
        # Walk every other entry of A.
        index = AffinePattern(base=0, strides=(16,), lengths=(3,), elem_size=8)
        pat = IndirectPattern(
            base=0, index_pattern=index,
            index_array=np.arange(10, dtype=np.int64), scale=8,
        )
        assert [pat.index_value(i) for i in range(3)] == [0, 2, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make([1], scale=0)
