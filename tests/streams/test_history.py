"""Tests for the stream history table (Table II) float policy."""

from repro.streams.history import StreamHistoryTable


def feed_window(table, sid, requests, misses=0, reuses=0):
    """Interleave request/miss/reuse records as the SE_core does."""
    for i in range(requests):
        table.record_request(sid)
        if i < misses:
            table.record_miss(sid)
        if i < reuses:
            table.record_reuse(sid)


def feed(table, sid, requests, misses, reuses=0):
    for _ in range(requests):
        table.record_request(sid)
    for _ in range(misses):
        table.record_miss(sid)
    for _ in range(reuses):
        table.record_reuse(sid)


def test_entry_fields_match_table_ii():
    table = StreamHistoryTable()
    feed(table, 3, requests=5, misses=4, reuses=1)
    ent = table.entry(3)
    assert ent.sid == 3
    assert ent.requests == 5
    assert ent.misses == 4
    assert ent.reuses == 1
    assert ent.aliased is False


def test_no_float_before_min_requests():
    table = StreamHistoryTable(min_requests=32)
    feed(table, 0, requests=31, misses=31)
    assert not table.should_float(0)
    feed(table, 0, requests=1, misses=1)
    assert table.should_float(0)


def test_reuse_blocks_floating():
    table = StreamHistoryTable(min_requests=4)
    feed(table, 0, requests=10, misses=10, reuses=1)
    assert not table.should_float(0)


def test_low_miss_ratio_blocks_floating():
    table = StreamHistoryTable(min_requests=4, miss_ratio_threshold=0.7)
    feed(table, 0, requests=10, misses=3)
    assert not table.should_float(0)


def test_alias_blocks_floating():
    table = StreamHistoryTable(min_requests=4)
    feed(table, 0, requests=10, misses=10)
    table.record_alias(0)
    assert not table.should_float(0)


def test_unknown_stream_never_floats():
    assert not StreamHistoryTable().should_float(42)


def test_reset():
    table = StreamHistoryTable(min_requests=2)
    feed(table, 0, requests=4, misses=4)
    assert table.should_float(0)
    table.reset(0)
    assert not table.should_float(0)
    assert len(table) == 0


def test_miss_ratio():
    table = StreamHistoryTable()
    feed(table, 0, requests=4, misses=1)
    assert table.entry(0).miss_ratio == 0.25
    assert table.entry(9).miss_ratio == 0.0


class TestWindowedPolicy:
    """The windowed counters let a stream requalify after early
    reuse: one warm prefix must not disqualify it forever."""

    def test_early_reuse_then_streaming_requalifies(self):
        table = StreamHistoryTable(min_requests=32, window=64)
        # Warm prefix: 64 requests with reuse — lifetime-disqualified.
        feed_window(table, 0, requests=64, misses=4, reuses=8)
        assert not table.should_float(0)
        # The next window streams cold: windowed counters qualify it
        # even though lifetime reuses stay nonzero.
        feed_window(table, 0, requests=40, misses=40)
        ent = table.entry(0)
        assert ent.reuses > 0  # lifetime memory kept
        assert ent.w_reuses == 0
        assert table.should_float(0)

    def test_reuse_inside_current_window_blocks(self):
        table = StreamHistoryTable(min_requests=32, window=64)
        feed_window(table, 0, requests=40, misses=40, reuses=1)
        assert not table.should_float_windowed(0)

    def test_window_rolls_over(self):
        table = StreamHistoryTable(min_requests=4, window=16)
        feed_window(table, 0, requests=16, misses=16)
        assert table.entry(0).w_requests == 16
        table.record_request(0)
        # A fresh window starts at the configured width.
        assert table.entry(0).w_requests == 1

    def test_cooldown_blocks_both_policies(self):
        table = StreamHistoryTable(min_requests=4)
        feed(table, 0, requests=16, misses=16)
        table.entry(0).cooldown = 8
        assert not table.should_float(0)
        assert not table.should_float_windowed(0)
        feed(table, 0, requests=8, misses=8)
        assert table.entry(0).cooldown == 0
        assert table.should_float(0)

    def test_carryover_reset_preserves_verdict_state(self):
        table = StreamHistoryTable(min_requests=4, window=16)
        feed(table, 0, requests=16, misses=16)
        ent = table.entry(0)
        ent.aliased = True
        ent.cooldown = 100
        ent.revokes = 2
        table.carryover_reset(0)
        ent = table.entry(0)
        assert ent.requests == 0 and ent.w_requests == 0
        assert ent.aliased and ent.revokes == 2
        # The revocation cooldown survives the reset unchanged (the
        # first sink adds no backoff of its own).
        assert ent.cooldown == 100 and ent.sinks == 1

    def test_sink_backoff_escalates(self):
        """The first sink is free (a quick re-float is often right),
        but each repeat sink quadruples the re-qualification cooldown
        (capped at 32 windows) so a stream that keeps re-qualifying
        between sinks cannot thrash float/sink forever."""
        table = StreamHistoryTable(min_requests=4, window=16)
        feed(table, 0, requests=16, misses=16)
        assert table.should_float(0)
        table.carryover_reset(0)
        ent = table.entry(0)
        assert ent.sinks == 1 and ent.cooldown == 0
        # Immediately re-qualifies: one sink does not gate the stream.
        feed(table, 0, requests=8, misses=8)
        assert table.should_float(0)
        for expected in (64, 256, 512, 512):
            table.carryover_reset(0)
            assert table.entry(0).cooldown == expected
            table.entry(0).cooldown = 0  # drain

    def test_range_store_counter(self):
        table = StreamHistoryTable()
        table.record_request(0)
        table.record_range_store(0)
        table.record_range_store(0)
        assert table.entry(0).w_stores == 2
