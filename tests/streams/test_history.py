"""Tests for the stream history table (Table II) float policy."""

from repro.streams.history import StreamHistoryTable


def feed(table, sid, requests, misses, reuses=0):
    for _ in range(requests):
        table.record_request(sid)
    for _ in range(misses):
        table.record_miss(sid)
    for _ in range(reuses):
        table.record_reuse(sid)


def test_entry_fields_match_table_ii():
    table = StreamHistoryTable()
    feed(table, 3, requests=5, misses=4, reuses=1)
    ent = table.entry(3)
    assert ent.sid == 3
    assert ent.requests == 5
    assert ent.misses == 4
    assert ent.reuses == 1
    assert ent.aliased is False


def test_no_float_before_min_requests():
    table = StreamHistoryTable(min_requests=32)
    feed(table, 0, requests=31, misses=31)
    assert not table.should_float(0)
    feed(table, 0, requests=1, misses=1)
    assert table.should_float(0)


def test_reuse_blocks_floating():
    table = StreamHistoryTable(min_requests=4)
    feed(table, 0, requests=10, misses=10, reuses=1)
    assert not table.should_float(0)


def test_low_miss_ratio_blocks_floating():
    table = StreamHistoryTable(min_requests=4, miss_ratio_threshold=0.7)
    feed(table, 0, requests=10, misses=3)
    assert not table.should_float(0)


def test_alias_blocks_floating():
    table = StreamHistoryTable(min_requests=4)
    feed(table, 0, requests=10, misses=10)
    table.record_alias(0)
    assert not table.should_float(0)


def test_unknown_stream_never_floats():
    assert not StreamHistoryTable().should_float(42)


def test_reset():
    table = StreamHistoryTable(min_requests=2)
    feed(table, 0, requests=4, misses=4)
    assert table.should_float(0)
    table.reset(0)
    assert not table.should_float(0)
    assert len(table) == 0


def test_miss_ratio():
    table = StreamHistoryTable()
    feed(table, 0, requests=4, misses=1)
    assert table.entry(0).miss_ratio == 0.25
    assert table.entry(9).miss_ratio == 0.0
