"""Tests for the experiment runner and memoization."""

import pytest

from repro.harness.runner import clear_cache, run_once

KW = dict(cols=2, rows=2, scale=32)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_run_once_produces_record():
    rec = run_once("nn", "base", **KW)
    assert rec.cycles > 0
    assert rec.energy.total > 0
    assert rec.flit_hops > 0
    assert rec.workload == "nn"
    assert rec.config == "base"


def test_memoization_returns_same_object():
    a = run_once("nn", "base", **KW)
    b = run_once("nn", "base", **KW)
    assert a is b


def test_cache_distinguishes_parameters():
    a = run_once("nn", "base", **KW)
    b = run_once("nn", "sf", **KW)
    assert a is not b
    c = run_once("nn", "base", link_bits=128, **KW)
    assert c is not a


def test_use_cache_false_reruns():
    a = run_once("nn", "base", **KW)
    b = run_once("nn", "base", use_cache=False, **KW)
    assert a is not b
    # Deterministic simulation: identical outcome.
    assert a.cycles == b.cycles
    assert a.flit_hops == b.flit_hops


def test_hit_rates_in_range():
    rec = run_once("hotspot", "base", **KW)
    assert 0.0 <= rec.l2_hit_rate() <= 1.0
    assert 0.0 <= rec.l3_hit_rate() <= 1.0


def test_utilization_positive():
    rec = run_once("nn", "base", **KW)
    assert 0.0 < rec.noc_utilization() < 1.0


def test_traffic_breakdown_sums_to_flit_hops():
    rec = run_once("nn", "sf", **KW)
    td = rec.traffic_breakdown()
    assert sum(td.values()) == pytest.approx(rec.flit_hops)
    assert td["stream"] > 0  # floating ran
