"""Tests for the experiment runner and memoization."""

import pytest

from repro.harness.runner import (
    COUNTERS,
    clear_cache,
    run_key,
    run_once,
)

KW = dict(cols=2, rows=2, scale=32)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_run_once_produces_record():
    rec = run_once("nn", "base", **KW)
    assert rec.cycles > 0
    assert rec.energy.total > 0
    assert rec.flit_hops > 0
    assert rec.workload == "nn"
    assert rec.config == "base"


def test_memoization_returns_same_object():
    a = run_once("nn", "base", **KW)
    b = run_once("nn", "base", **KW)
    assert a is b


def test_cache_distinguishes_parameters():
    a = run_once("nn", "base", **KW)
    b = run_once("nn", "sf", **KW)
    assert a is not b
    c = run_once("nn", "base", link_bits=128, **KW)
    assert c is not a


def test_seed_distinguishes_memo_entries():
    """Regression: the memo key used to omit the seed, so seed=1
    silently returned the seed=0 record."""
    a = run_once("nn", "base", seed=0, **KW)
    b = run_once("nn", "base", seed=1, **KW)
    assert a is not b
    assert a.seed == 0 and b.seed == 1
    assert a.key != b.key
    # And the seed=0 entry is still there, undisturbed.
    assert run_once("nn", "base", seed=0, **KW) is a
    assert run_once("nn", "base", seed=1, **KW) is b


def test_run_key_includes_seed():
    base = ("nn", "base", "ooo8", 2, 2, 32, 256, None)
    assert run_key(*base, seed=0) != run_key(*base, seed=1)
    assert run_key(*base) == run_key(*base, seed=0)


def test_disk_cache_hit_across_memo_clears(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    first = run_once("nn", "base", **KW)
    assert COUNTERS.simulated == 1
    clear_cache()  # new "session": memo gone, disk remains
    second = run_once("nn", "base", **KW)
    assert COUNTERS.simulated == 0
    assert COUNTERS.disk_hits == 1
    assert second is not first
    assert second.cycles == first.cycles
    assert second.stats.as_dict() == first.stats.as_dict()
    assert second.energy.total == first.energy.total


def test_disk_cache_distinguishes_seeds(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    a = run_once("nn", "base", seed=0, **KW)
    b = run_once("nn", "base", seed=1, **KW)
    clear_cache()
    a2 = run_once("nn", "base", seed=0, **KW)
    b2 = run_once("nn", "base", seed=1, **KW)
    assert COUNTERS.disk_hits == 2 and COUNTERS.simulated == 0
    assert a2.seed == 0 and b2.seed == 1
    assert a2.stats.as_dict() == a.stats.as_dict()
    assert b2.stats.as_dict() == b.stats.as_dict()


def test_use_cache_false_bypasses_disk(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    run_once("nn", "base", **KW)
    clear_cache()
    run_once("nn", "base", use_cache=False, **KW)
    assert COUNTERS.simulated == 1
    assert COUNTERS.disk_hits == 0


def test_use_cache_false_reruns():
    a = run_once("nn", "base", **KW)
    b = run_once("nn", "base", use_cache=False, **KW)
    assert a is not b
    # Deterministic simulation: identical outcome.
    assert a.cycles == b.cycles
    assert a.flit_hops == b.flit_hops


def test_hit_rates_in_range():
    rec = run_once("hotspot", "base", **KW)
    assert 0.0 <= rec.l2_hit_rate() <= 1.0
    assert 0.0 <= rec.l3_hit_rate() <= 1.0


def test_utilization_positive():
    rec = run_once("nn", "base", **KW)
    assert 0.0 < rec.noc_utilization() < 1.0


def test_traffic_breakdown_sums_to_flit_hops():
    rec = run_once("nn", "sf", **KW)
    td = rec.traffic_breakdown()
    assert sum(td.values()) == pytest.approx(rec.flit_hops)
    assert td["stream"] > 0  # floating ran
