"""Tests for the parallel fan-out layer.

Points are kept tiny (2x2 mesh, scale 64) so the multiprocessing
paths stay cheap even on a single-core CI runner.
"""

import pytest

from repro.harness import parallel
from repro.harness.parallel import resolve_jobs, run_points
from repro.harness.runner import (
    COUNTERS,
    clear_cache,
    params_key,
    run_once,
    run_params,
)

KW = dict(cols=2, rows=2, scale=64)
POINTS = [
    dict(workload="nn", config="base", **KW),
    dict(workload="nn", config="sf", **KW),
    dict(workload="conv3d", config="base", **KW),
]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def snapshot(records):
    return {
        key: (rec.cycles, tuple(sorted(rec.stats.as_dict().items())),
              rec.energy.total)
        for key, rec in records.items()
    }


# ---------------------------------------------------------------------------
# jobs resolution
# ---------------------------------------------------------------------------


def test_resolve_jobs_explicit_wins(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None) == 5


def test_resolve_jobs_default_serial(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_garbage_env_is_serial(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    assert resolve_jobs(None) == 1


def test_resolve_jobs_zero_means_all_cpus():
    assert resolve_jobs(0) >= 1


# ---------------------------------------------------------------------------
# run_points semantics
# ---------------------------------------------------------------------------


def test_run_points_returns_every_point_serial():
    records = run_points(POINTS, jobs=1)
    assert set(records) == {params_key(run_params(**p)) for p in POINTS}
    assert all(rec.cycles > 0 for rec in records.values())
    assert COUNTERS.simulated == len(POINTS)


def test_run_points_dedupes():
    records = run_points(POINTS + POINTS, jobs=1)
    assert len(records) == len(POINTS)
    assert COUNTERS.simulated == len(POINTS)


def test_run_points_warms_the_memo():
    run_points(POINTS, jobs=1)
    before = COUNTERS.simulated
    rec = run_once("nn", "sf", **KW)
    assert COUNTERS.simulated == before  # memo hit, no new simulation
    assert rec.config == "sf"


def test_run_points_reuses_memo_hits():
    run_once("nn", "base", **KW)
    run_points(POINTS, jobs=1)
    assert COUNTERS.memo_hits >= 1
    assert COUNTERS.simulated == len(POINTS)  # only the two misses + first


def test_parallel_matches_serial():
    """--jobs N must produce identical stats to the serial run."""
    serial = snapshot(run_points(POINTS, jobs=1))
    clear_cache()
    par = snapshot(run_points(POINTS, jobs=2))
    assert par == serial


def test_parallel_populates_memo_and_disk(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    run_points(POINTS, jobs=2)
    assert COUNTERS.simulated == len(POINTS)
    clear_cache()
    run_points(POINTS, jobs=2)
    assert COUNTERS.simulated == 0
    assert COUNTERS.disk_hits == len(POINTS)


def test_progress_lines(monkeypatch):
    lines = []
    parallel.set_progress(lines.append)
    try:
        run_points([POINTS[0]], jobs=1)
        run_points([POINTS[0]], jobs=1)
    finally:
        parallel.set_progress(None)
    assert any(line.startswith("[sim ]") for line in lines)
    assert any(line.startswith("[memo]") for line in lines)
    summaries = [l for l in lines if l.startswith("[cache]")]
    assert len(summaries) == 2
    assert "1 simulated" in summaries[0]
    assert "1 memo hits" in summaries[1]
