"""Tests for the per-figure experiment logic (small geometries)."""

import pytest

from repro.harness import experiments, report

# These tests share the runner's memo: experiments over the same
# points reuse each other's simulations, as in a benchmark session.
KW = dict(cols=2, rows=2, scale=32)
WLS = ("nn", "conv3d")


def test_geomean():
    assert experiments.geomean([2, 8]) == pytest.approx(4.0)
    assert experiments.geomean([]) == 0.0
    assert experiments.geomean([0, 4]) == pytest.approx(4.0)


def test_fig2_rows_have_fractions():
    rows = experiments.fig2_motivation(workloads=WLS, **KW)
    assert len(rows) == 2
    for r in rows:
        assert 0.0 <= r.frac_noreuse <= 1.0
        assert r.frac_noreuse_stream <= r.frac_noreuse + 1e-9
        assert 0.0 <= r.frac_traffic_noreuse <= 1.0
    assert report.render_fig2(rows)


def test_fig13_structure():
    data = experiments.fig13_speedup(
        workloads=WLS, cores=("io4",), configs=("base", "sf"), **KW)
    assert set(data) == {"io4"}
    assert set(data["io4"]) == set(WLS)
    cell = data["io4"]["nn"]["base"]
    assert cell.speedup == pytest.approx(1.0)
    assert cell.energy_eff == pytest.approx(1.0)
    assert report.render_fig13(data)


def test_fig14_fractions_sum_to_one():
    data = experiments.fig14_requests(workloads=WLS, **KW)
    for wl, frac in data.items():
        assert sum(frac.values()) == pytest.approx(1.0, abs=1e-6)
    assert report.render_fig14(data)


def test_fig15_base_normalizes_to_one():
    rows = experiments.fig15_traffic(workloads=("nn",), configs=("sf",), **KW)
    base = [r for r in rows if r.config == "base"][0]
    assert base.total == pytest.approx(1.0)
    assert report.render_fig15(rows)


def test_fig16_reference_is_one():
    data = experiments.fig16_linkwidth(workloads=("nn",), widths=(128,), **KW)
    assert data["nn"][("bingo", 128)] == pytest.approx(1.0)


def test_fig17_reference_is_one():
    data = experiments.fig17_interleave(
        workloads=("nn",), granularities=(64,), **KW)
    assert data["nn"][("bingo", 64)] == pytest.approx(1.0)
    assert report.render_sweep(data, "t", "n")


def test_fig18_cells():
    data = experiments.fig18_scaling(
        workloads=("nn",), meshes=((2, 2),), scale=32)
    cell = data["nn"][(2, 2)]
    assert cell.sf_over_ss > 0
    assert report.render_fig18(data)


def test_policy_ablation_rows():
    rows = experiments.fig_policy_ablation(
        workloads=("nn", "stencil_tiled"), **KW)
    assert len(rows) == 2 * len(experiments.ABLATION_CONFIGS)
    by = {(r.workload, r.config): r for r in rows}
    # The static policy never revokes; the smart one revokes the
    # cache-resident tiled stencil it floated on the cold first sweep.
    assert by[("stencil_tiled", "sf")].revokes == 0
    assert by[("stencil_tiled", "sf_smart")].revokes >= 1
    assert by[("stencil_tiled", "sf_plan")].revokes >= 1
    for r in rows:
        assert r.speedup > 0
    assert report.render_policy_ablation(rows)


def test_latency_attribution_rows():
    rows = experiments.fig_latency_attribution(
        workloads=("mv",), configs=("base", "sf"), **KW)
    assert len(rows) == 2
    by = {r.config: r for r in rows}
    assert by["base"].speedup == pytest.approx(1.0)
    for r in rows:
        # The CPI stack rides the record and conserves cycles.
        assert r.cpi and all(v >= 0 for v in r.cpi.values())
        assert sum(r.cpi.values()) > 0
    # Floating drains the DRAM-wait share on the streaming kernel.
    base_total = sum(by["base"].cpi.values())
    sf_total = sum(by["sf"].cpi.values())
    assert (by["sf"].cpi["wait_dram"] / sf_total
            < by["base"].cpi["wait_dram"] / base_total)
    assert report.render_latency_attribution(rows)


def test_fig19_points():
    pts = experiments.fig19_energy_scatter(
        workloads=("nn",), cores=("io4",), configs=("base", "sf"), **KW)
    by = {(p.core, p.config): p for p in pts}
    assert by[("io4", "base")].speedup == pytest.approx(1.0)
    assert by[("io4", "base")].energy == pytest.approx(1.0)
    assert report.render_fig19(pts)
