"""Tests for the content-addressed on-disk run cache."""

import json
import os

import pytest

from repro.energy.model import EnergyBreakdown
from repro.harness.cache import (
    CACHE_SCHEMA,
    RunCache,
    code_fingerprint,
    default_cache_dir,
    params_digest,
)
from repro.harness.runner import (
    RunRecord,
    clear_cache,
    run_once,
    run_params,
)
from repro.sim.stats import Stats

KW = dict(cols=2, rows=2, scale=64)


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_cache()
    yield
    clear_cache()


def make_record(seed=0) -> RunRecord:
    stats = Stats()
    stats.add("l2.hits", 10)
    stats.add("noc.flit_hops.data", 5.5)
    return RunRecord(
        workload="nn", config="sf", core="ooo8", cols=2, rows=2,
        scale=64, link_bits=256, l3_interleave=None, seed=seed,
        cycles=1234, stats=stats,
        energy=EnergyBreakdown(l2=3.0, noc=1.5, dram=7.25),
    )


# ---------------------------------------------------------------------------
# serialization round-trips
# ---------------------------------------------------------------------------


def test_stats_roundtrip():
    s = Stats()
    s.add("a.b", 3)
    s.add("a.c", 0.125)
    restored = Stats.from_dict(json.loads(json.dumps(s.to_dict())))
    assert restored.as_dict() == s.as_dict()


def test_energy_roundtrip():
    bd = EnergyBreakdown(core_dynamic=1.5, l3=2.25, dram=100.0)
    restored = EnergyBreakdown.from_dict(json.loads(json.dumps(bd.to_dict())))
    assert restored == bd
    assert restored.total == bd.total


def test_energy_from_dict_ignores_total():
    # as_dict() includes the derived total; from_dict must not choke.
    bd = EnergyBreakdown(l1=4.0)
    assert EnergyBreakdown.from_dict(bd.as_dict()) == bd


def test_runrecord_roundtrip():
    rec = make_record(seed=3)
    restored = RunRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
    assert restored.key == rec.key
    assert restored.seed == 3
    assert restored.cycles == rec.cycles
    assert restored.stats.as_dict() == rec.stats.as_dict()
    assert restored.energy == rec.energy
    assert restored.flit_hops == rec.flit_hops


def test_real_run_roundtrips_exactly():
    rec = run_once("nn", "base", **KW)
    restored = RunRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
    assert restored.stats.as_dict() == rec.stats.as_dict()
    assert restored.energy.total == rec.energy.total
    assert restored.cycles == rec.cycles


# ---------------------------------------------------------------------------
# digest / keying
# ---------------------------------------------------------------------------


def test_digest_includes_seed():
    fp = code_fingerprint()
    a = params_digest(run_params("nn", "base", seed=0), fp)
    b = params_digest(run_params("nn", "base", seed=1), fp)
    assert a != b


def test_digest_includes_fingerprint():
    params = run_params("nn", "base")
    assert params_digest(params, "aaa") != params_digest(params, "bbb")


def test_fingerprint_is_stable_in_process():
    assert code_fingerprint() == code_fingerprint()


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert default_cache_dir() == str(tmp_path)


# ---------------------------------------------------------------------------
# RunCache get/put semantics
# ---------------------------------------------------------------------------


def test_put_get_roundtrip(tmp_path):
    cache = RunCache(str(tmp_path))
    rec = make_record()
    cache.put(rec.params, rec)
    assert len(cache) == 1
    got = cache.get(rec.params)
    assert got is not None
    assert got.key == rec.key
    assert got.stats.as_dict() == rec.stats.as_dict()
    assert cache.counters.stores == 1
    assert cache.counters.hits == 1


def test_seed_distinguishes_disk_entries(tmp_path):
    cache = RunCache(str(tmp_path))
    a, b = make_record(seed=0), make_record(seed=1)
    cache.put(a.params, a)
    cache.put(b.params, b)
    assert len(cache) == 2
    assert cache.get(a.params).seed == 0
    assert cache.get(b.params).seed == 1


def test_missing_entry_is_a_miss(tmp_path):
    cache = RunCache(str(tmp_path))
    assert cache.get(make_record().params) is None
    assert cache.counters.misses == 1
    assert cache.counters.errors == 0


def test_corrupt_file_is_ignored_not_fatal(tmp_path):
    cache = RunCache(str(tmp_path))
    rec = make_record()
    cache.put(rec.params, rec)
    with open(cache.path_for(rec.params), "w") as fh:
        fh.write("{ not json")
    assert cache.get(rec.params) is None
    assert cache.counters.errors == 1


def test_truncated_payload_is_ignored_not_fatal(tmp_path):
    cache = RunCache(str(tmp_path))
    rec = make_record()
    path = cache.path_for(rec.params)
    os.makedirs(str(tmp_path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump({"schema": CACHE_SCHEMA,
                   "fingerprint": cache.fingerprint}, fh)  # no "record"
    assert cache.get(rec.params) is None
    assert cache.counters.errors == 1


def test_stale_fingerprint_is_ignored(tmp_path):
    old = RunCache(str(tmp_path), fingerprint="old-code")
    rec = make_record()
    old.put(rec.params, rec)
    # Same directory, current code: the entry is stale, not reused.
    # (Different fingerprints also produce different digests, so the
    # lookup misses; a hand-moved file with a mismatched fingerprint
    # inside is likewise rejected.)
    fresh = RunCache(str(tmp_path))
    assert fresh.get(rec.params) is None

    bad = RunCache(str(tmp_path), fingerprint="new-code")
    os.replace(old.path_for(rec.params), bad.path_for(rec.params))
    assert bad.get(rec.params) is None
    assert bad.counters.stale == 1


def test_put_to_unwritable_dir_is_swallowed():
    cache = RunCache("/proc/definitely-not-writable/cache")
    cache.put(make_record().params, make_record())  # must not raise
    assert cache.counters.stores == 0
    assert cache.get(make_record().params) is None
