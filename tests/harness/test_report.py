"""Tests for report rendering (pure formatting, no simulation)."""

from repro.harness.experiments import (
    Fig2Row,
    Fig13Cell,
    Fig15Row,
    Fig18Cell,
    Fig19Point,
)
from repro.harness import report


def test_fig2_render_includes_paper_note_and_mean():
    rows = [
        Fig2Row("mv", 0.9, 0.8, 0.5, 0.2),
        Fig2Row("nn", 0.7, 0.6, 0.4, 0.1),
    ]
    out = report.render_fig2(rows)
    assert "72%" in out  # the paper's number is shown for comparison
    assert "mean" in out
    assert "mv" in out and "nn" in out
    assert "0.80" in out


def test_fig13_render_geomean_row():
    data = {"io4": {
        "mv": {"base": Fig13Cell(1.0, 1.0), "sf": Fig13Cell(2.0, 1.5)},
        "nn": {"base": Fig13Cell(1.0, 1.0), "sf": Fig13Cell(8.0, 3.0)},
    }}
    out = report.render_fig13(data)
    assert "geomean" in out
    assert "4.00" in out  # geomean(2, 8)
    assert "[io4]" in out


def test_fig15_render_per_config_means():
    rows = [
        Fig15Row("mv", "base", 0.3, 0.7, 0.0, 0.1),
        Fig15Row("mv", "sf", 0.1, 0.5, 0.02, 0.05),
    ]
    out = report.render_fig15(rows)
    assert "mean" in out
    assert "util" in out


def test_sweep_render():
    data = {"mv": {("sf", 128): 1.2, ("bingo", 128): 1.0}}
    out = report.render_sweep(data, "Figure 16", "note")
    assert "sf@128" in out
    assert "bingo@128" in out
    assert "geomean" in out


def test_fig18_render():
    data = {"mv": {(4, 4): Fig18Cell(1.3, 0.2, 0.8)}}
    out = report.render_fig18(data)
    assert "4x4" in out
    assert "1.30" in out
    assert "l2 0.20" in out


def test_fig19_render_sorted():
    pts = [
        Fig19Point("ooo8", "sf", 3.0, 2.0),
        Fig19Point("io4", "base", 1.0, 1.0),
    ]
    out = report.render_fig19(pts)
    # Sorted by core then config: io4 row before ooo8.
    assert out.index("io4") < out.index("ooo8")


def test_fmt_digits():
    assert report.fmt(1.23456) == "1.23"
    assert report.fmt(1.23456, 3) == "1.235"


def test_paper_notes_cover_all_figures():
    for fig in ("fig2", "fig13", "fig14", "fig15", "fig16", "fig17",
                "fig18", "fig19"):
        assert fig in report.PAPER_NOTES
        assert "paper" in report.PAPER_NOTES[fig]
