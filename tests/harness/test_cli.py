"""Tests for the ``python -m repro.harness`` CLI."""

import pytest

from repro.harness.__main__ import main


def test_cli_runs_a_small_figure(capsys):
    rc = main([
        "fig2", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "nn",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "nn" in out
    assert "done in" in out


def test_cli_fig14(capsys):
    rc = main([
        "fig14", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "conv3d",
    ])
    assert rc == 0
    assert "Figure 14" in capsys.readouterr().out


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_rejects_unknown_core():
    with pytest.raises(SystemExit):
        main(["fig2", "--core", "pentium"])
