"""Tests for the ``python -m repro.harness`` CLI."""

import pytest

from repro.harness.__main__ import main
from repro.harness.runner import clear_cache


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_cache()
    yield
    clear_cache()


def test_cli_runs_a_small_figure(capsys):
    rc = main([
        "fig2", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "nn",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "nn" in out
    assert "done in" in out


def test_cli_fig14(capsys):
    rc = main([
        "fig14", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "conv3d",
    ])
    assert rc == 0
    assert "Figure 14" in capsys.readouterr().out


def test_cli_parallel_report_matches_serial(tmp_path, capsys):
    """--jobs 4 must render byte-identical report text, and the warm
    disk cache must satisfy the rerun without new simulations."""
    args = [
        "fig13", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "nn", "--cache-dir", str(tmp_path / "cache"),
    ]

    def report_lines(out):
        # Everything except the timing/cache footer is the report.
        return [l for l in out.splitlines() if not l.startswith("[fig13")]

    assert main(args + ["--jobs", "4"]) == 0
    cold = capsys.readouterr().out
    assert "0 disk hits" in cold

    clear_cache()  # simulate a fresh session; only the disk remains
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert report_lines(warm) == report_lines(cold)
    assert "0 simulated" in warm

    clear_cache()
    assert main(args + ["--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert report_lines(serial) == report_lines(cold)


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_rejects_unknown_core():
    with pytest.raises(SystemExit):
        main(["fig2", "--core", "pentium"])
