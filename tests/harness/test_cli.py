"""Tests for the ``python -m repro.harness`` CLI."""

import pytest

from repro.harness.__main__ import main
from repro.harness.runner import clear_cache


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_cache()
    yield
    clear_cache()


def test_cli_runs_a_small_figure(capsys):
    rc = main([
        "fig2", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "nn",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "nn" in out
    assert "done in" in out


def test_cli_fig14(capsys):
    rc = main([
        "fig14", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "conv3d",
    ])
    assert rc == 0
    assert "Figure 14" in capsys.readouterr().out


def test_cli_parallel_report_matches_serial(tmp_path, capsys):
    """--jobs 4 must render byte-identical report text, and the warm
    disk cache must satisfy the rerun without new simulations."""
    args = [
        "fig13", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "nn", "--cache-dir", str(tmp_path / "cache"),
    ]

    def report_lines(out):
        # Everything except the timing/cache footer is the report.
        return [l for l in out.splitlines() if not l.startswith("[fig13")]

    assert main(args + ["--jobs", "4"]) == 0
    cold = capsys.readouterr().out
    assert "0 disk hits" in cold

    clear_cache()  # simulate a fresh session; only the disk remains
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert report_lines(warm) == report_lines(cold)
    assert "0 simulated" in warm

    clear_cache()
    assert main(args + ["--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert report_lines(serial) == report_lines(cold)


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_rejects_unknown_core():
    with pytest.raises(SystemExit):
        main(["fig2", "--core", "pentium"])


# ----------------------------------------------------------------------
# telemetry flags (--trace-out / --interval-stats / --profile)
# ----------------------------------------------------------------------
def test_cli_telemetry_artifacts(tmp_path, capsys):
    """One run with all three pillars produces the three artifacts,
    and restores the telemetry env on the way out."""
    import json
    import os

    from repro.obs.telemetry import ENV_INTERVAL, ENV_TELEMETRY

    trace = tmp_path / "run.trace.json"
    intervals = tmp_path / "run.intervals.jsonl"
    profile = tmp_path / "run.profile.json"
    rc = main([
        "fig2", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "nn", "--no-cache",
        "--trace-out", str(trace),
        "--interval-stats", "5000", "--interval-out", str(intervals),
        "--profile", "--profile-out", str(profile),
    ])
    assert rc == 0
    err = capsys.readouterr().err

    payload = json.load(open(trace))
    events = payload["traceEvents"]
    assert events
    assert {e["ph"] for e in events} <= {"X", "M", "s", "f"}
    assert any(e["ph"] == "X" for e in events)

    lines = [json.loads(line) for line in open(intervals)]
    assert lines
    assert {"point", "cycle", "ipc", "noc_util", "l3_mpki"} <= set(lines[0])

    prof = json.load(open(profile))
    assert prof["points"]
    assert prof["points"][0]["top"]
    assert "== nn-base-ooo8-2x2-s64 ==" in err
    assert "us/event" in err
    for path in (trace, intervals, profile):
        assert f"wrote {path}" in err

    # main() restores the environment for in-process callers.
    assert ENV_TELEMETRY not in os.environ
    assert ENV_INTERVAL not in os.environ


def test_cli_telemetry_parallel_jobs(tmp_path, capsys):
    """Telemetry composes with --jobs N: fan-out workers export
    per-point artifacts that the parent sink merges, so the combined
    trace covers every simulated point and the report text matches a
    serial telemetry run."""
    import json

    trace = tmp_path / "par.trace.json"
    intervals = tmp_path / "par.intervals.jsonl"
    provenance = tmp_path / "par.provenance.jsonl"
    # fig13 enumerates stream-floating configs, so the provenance
    # ledger has float/sink verdicts to merge (fig2 is base-only).
    args = [
        "fig13", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "nn", "mv", "--no-cache",
        "--interval-stats", "5000",
    ]
    rc = main(args + [
        "--jobs", "2",
        "--trace-out", str(trace),
        "--interval-out", str(intervals),
        "--provenance-out", str(provenance),
    ])
    assert rc == 0
    captured = capsys.readouterr()
    assert "forcing --jobs 1" not in captured.err
    assert "merged" in captured.err

    events = json.load(open(trace))["traceEvents"]
    point_names = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    # fig2 enumerates multiple configs per workload; every simulated
    # point must appear as its own trace process, for both workloads.
    assert any(name.startswith("nn-") for name in point_names)
    assert any(name.startswith("mv-") for name in point_names)
    # Merged points keep distinct pids (worker exports all use pid 1).
    pids = {e["pid"] for e in events}
    assert len(pids) == len(point_names)

    interval_points = {
        json.loads(line)["point"] for line in open(intervals)
    }
    assert interval_points == point_names

    rows = [json.loads(line) for line in open(provenance)]
    assert rows
    assert {"cycle", "tile", "verdict", "inputs", "point"} <= set(rows[0])

    # Same run serially: report text is byte-identical.
    clear_cache()
    assert main(args) == 0
    serial_out = capsys.readouterr().out

    def report_lines(out):
        return [l for l in out.splitlines() if not l.startswith("[fig13")]

    assert report_lines(serial_out) == report_lines(captured.out)


def test_cli_telemetry_warns_on_all_cache_hits(tmp_path, capsys):
    """Cached points never simulate, so telemetry has nothing to
    collect — the CLI must say so instead of writing silently empty
    artifacts."""
    base = [
        "fig2", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "nn", "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(base) == 0  # warm the disk cache
    capsys.readouterr()
    clear_cache()
    assert main(base + ["--trace-out", str(tmp_path / "t.trace.json")]) == 0
    assert "no points simulated" in capsys.readouterr().err
