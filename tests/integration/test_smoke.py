"""End-to-end smoke tests: a streaming kernel on small chips across
every named system configuration."""

import pytest

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.system import Chip, make_config
from repro.workloads.kernel import (
    CoreProgram,
    Iteration,
    KernelPhase,
    chunk_range,
)

ARRAY_BASE = 0x10_0000
LINES = 2048  # 128 kB array: 32 kB per core on 2x2, >> scaled 16 kB L2


def stream_sum_program(core_id: int, num_cores: int, lines: int = LINES):
    """Each core sums its contiguous chunk of a shared array."""
    chunk = chunk_range(lines, num_cores, core_id)
    spec = StreamSpec(
        sid=0,
        pattern=AffinePattern(
            base=ARRAY_BASE + chunk.start * 64,
            strides=(64,), lengths=(max(1, len(chunk)),), elem_size=64,
        ),
    )

    def iterations():
        for _ in range(len(chunk)):
            yield Iteration(compute_ops=4, ops=(("sload", 0),))

    return CoreProgram(phases=[
        KernelPhase(name="sum", stream_specs=[spec], iterations=iterations)
    ])


def run_config(name, core="ooo4", lines=LINES):
    chip = Chip(make_config(name, core=core, cols=2, rows=2, scale=16))
    programs = {
        c: stream_sum_program(c, chip.num_cores, lines)
        for c in range(chip.num_cores)
    }
    return chip.run(programs)


@pytest.mark.parametrize("name", ["base", "stride", "bingo", "ss", "sf"])
def test_all_configs_complete(name):
    result = run_config(name)
    assert result.cycles > 0
    # Every line was loaded exactly once per core chunk.
    assert result.stats["core.iterations"] == LINES


def test_sf_floats_streams():
    result = run_config("sf")
    assert result.stats["se_core.floats"] >= 4  # one per core
    assert result.stats["l3.requests.stream_float"] > 0
    assert result.stats["se_l2.data_arrivals"] > 0


def test_ss_uses_stream_requests():
    result = run_config("ss")
    assert result.stats["se_core.requests"] == LINES
    assert result.stats["l3.requests_by_source.core_stream"] > 0


def test_sf_reduces_traffic_vs_prefetchers():
    base = run_config("stride")
    sf = run_config("sf")
    assert sf.noc_flit_hops < base.noc_flit_hops


def test_sf_faster_than_base_inorder():
    base = run_config("base", core="io4")
    sf = run_config("sf", core="io4")
    assert sf.cycles < base.cycles


def test_ss_helps_inorder_core():
    base = run_config("base", core="io4")
    ss = run_config("ss", core="io4")
    assert ss.cycles < base.cycles


def test_prefetcher_helps_base():
    base = run_config("base", core="ooo4")
    stride = run_config("stride", core="ooo4")
    assert stride.cycles < base.cycles


def test_bulk_config_runs():
    result = run_config("bulk")
    assert result.cycles > 0
    assert result.stats["l2.bulk_groups"] > 0
