"""Scheduler-equivalence suite: calendar queue vs heap reference.

The calendar queue replaced the heap as the default backend on the
promise of *bit-identical* semantics (DESIGN.md §10). This suite holds
it to that: for each tier-1 workload point, a run under each backend
must produce the same sanitizer determinism hash (the S5 CRC over
every (cycle, event) pair), the same cycle count, and the same full
stats dict. Any ordering divergence — a bucket consumed out of FIFO
order, an overflow event migrating late — shows up here first.

On a hash mismatch the suite does not stop at "CRCs differ": it runs
the two-pass divergence localizer (repro.obs.divergence) and fails
with the exact first divergent (cycle, event, handler).
"""

import pytest

from repro.harness.runner import run_once
from repro.sim.kernel import ENV_KERNEL

POINTS = [
    ("mv", "sf"),        # affine streams, floating on
    ("mv", "base"),      # no stream engine at all
    ("conv3d", "sf"),    # multi-level affine patterns
    ("bfs", "sf"),       # indirect streams + confluence traffic
]


def _run(monkeypatch, backend, workload, config):
    monkeypatch.setenv(ENV_KERNEL, backend)
    rec = run_once(workload, config, scale=8, use_cache=False)
    stats = rec.stats.as_dict()
    assert stats.get("sanitizer.trace_events", 0) > 0
    return stats


@pytest.mark.parametrize("workload,config", POINTS)
def test_backends_equivalent(monkeypatch, workload, config):
    heap = _run(monkeypatch, "heap", workload, config)
    cal = _run(monkeypatch, "calendar", workload, config)
    if cal["sanitizer.trace_hash"] != heap["sanitizer.trace_hash"]:
        from repro.obs.divergence import localize_backends

        divergence = localize_backends(workload, config, scale=8)
        detail = (divergence.describe() if divergence is not None
                  else "localizer found no event-stream divergence "
                       "(hash inputs differ elsewhere)")
        pytest.fail(
            f"S5 hash mismatch between heap and calendar backends "
            f"on {workload}/{config}: {detail}")
    assert cal["sanitizer.trace_events"] == heap["sanitizer.trace_events"]
    assert cal["chip.cycles"] == heap["chip.cycles"]
    assert cal == heap
