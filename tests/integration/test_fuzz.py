"""Property-based fuzzing of the full chip.

Hypothesis generates small random programs — mixes of plain loads,
stores, and streams with random shapes — and runs them on the
stream-floating system. Whatever the mix, the run must terminate, the
caches must stay coherent, and no transaction may leak. This shakes
out protocol corner cases (aliasing stores into stream windows,
overlapping streams, tiny streams that never float, stores racing
floats) that the curated workloads don't produce.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.system import Chip, make_config
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase

from tests.integration.test_invariants import check_coherence

REGION = 0x100_0000
REGION_BYTES = 1 << 20


@st.composite
def stream_specs(draw, sid):
    base = REGION + draw(st.integers(0, 512)) * 64
    lines = draw(st.integers(1, 96))
    stride = draw(st.sampled_from([64, 128, 256]))
    kind = draw(st.sampled_from(["load", "load", "load", "store"]))
    return StreamSpec(sid=sid, kind=kind, pattern=AffinePattern(
        base=base, strides=(stride,), lengths=(lines,), elem_size=64,
    ))


@st.composite
def programs(draw):
    n_streams = draw(st.integers(0, 3))
    specs = [draw(stream_specs(sid)) for sid in range(n_streams)]
    n_iters = draw(st.integers(1, 40))
    ops_menu = []
    for spec in specs:
        ops_menu.append(("sload", spec.sid) if spec.kind == "load"
                        else ("sstore", spec.sid))
    iters = []
    consumed = {s.sid: 0 for s in specs}
    for i in range(n_iters):
        ops = []
        for op in ops_menu:
            sid = op[1]
            spec = specs[sid]
            if consumed[sid] < spec.length:
                ops.append(op)
                consumed[sid] += 1
        if draw(st.booleans()):
            addr = REGION + draw(st.integers(0, 2048)) * 64
            if draw(st.booleans()):
                ops.append(("load", addr, 99))
            else:
                ops.append(("store", addr, 98))  # may alias streams!
        iters.append(Iteration(compute_ops=draw(st.integers(1, 8)),
                               ops=tuple(ops)))
    return CoreProgram(phases=[KernelPhase(
        name="fuzz", stream_specs=specs, iterations=lambda it=iters: iter(it),
    )])


def run_fuzz_case(progs, config):
    chip = Chip(make_config(config, core="ooo4", cols=2, rows=2, scale=32))
    mapping = {i % chip.num_cores: p for i, p in enumerate(progs)}
    result = chip.run(mapping)
    assert result.cycles >= 0
    check_coherence(chip)
    for tile in chip.tiles:
        assert len(tile.l1.mshr) == 0
        assert len(tile.l2.mshr) == 0
        assert len(tile.l3.mshr) == 0
    # Stats sanity: no negative counters.
    for name, value in result.stats.items():
        assert value >= 0, name


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(programs(), min_size=1, max_size=4), st.booleans())
def test_random_programs_terminate_coherently(progs, sgc):
    run_fuzz_case(progs, "sf_sgc" if sgc else "sf")


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(programs(), min_size=1, max_size=4), st.booleans())
def test_random_programs_smart_policy(progs, plan):
    """The adaptive policy (with and without per-range plans) under
    the same protocol fuzz: revocations, pure-L2 ranges and deferred
    configs must not leak transactions or break coherence."""
    run_fuzz_case(progs, "sf_plan" if plan else "sf_smart")
