"""End-to-end checks that the same stream program means the same
thing on every system — the binary-compatibility property the
decoupled-stream ISA provides (SS III-A).

Whatever the system (Base lowering, SS prefetching, SF floating), a
program must touch the same addresses the same number of times; only
*when* and *through which mechanism* differs.
"""

import pytest

from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.system import Chip, make_config
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase

BASE_ADDR = 0x200_0000
LINES = 192


def program():
    spec = StreamSpec(sid=0, pattern=AffinePattern(
        base=BASE_ADDR, strides=(64,), lengths=(LINES,), elem_size=64,
    ))
    out = StreamSpec(sid=1, kind="store", pattern=AffinePattern(
        base=BASE_ADDR + 0x100_0000, strides=(64,), lengths=(LINES,),
        elem_size=64,
    ))

    def iterations():
        for _ in range(LINES):
            yield Iteration(compute_ops=4, ops=(("sload", 0), ("sstore", 1)))

    return CoreProgram(phases=[KernelPhase(
        name="copy", stream_specs=[spec, out], iterations=iterations,
    )])


def run(config):
    chip = Chip(make_config(config, core="ooo4", cols=2, rows=2, scale=32))
    result = chip.run({0: program()})
    return chip, result


@pytest.mark.parametrize("config", ["base", "stride", "ss", "sf"])
def test_iteration_and_store_counts_identical(config):
    _, result = run(config)
    assert result.stats["core.iterations"] == LINES
    assert result.stats["core.stores"] == LINES


@pytest.mark.parametrize("config", ["base", "ss", "sf"])
def test_every_source_line_fetched_exactly_once(config):
    """No duplicate fetches and no skips: the source array's lines
    reach the chip exactly once from DRAM (no prefetcher overfetch in
    these configs)."""
    _, result = run(config)
    # Source + destination (write-allocate) lines.
    assert result.stats["dram.reads"] == 2 * LINES


def test_sf_moves_the_same_data_with_fewer_messages():
    _, base = run("base")
    _, sf = run("sf")
    base_ctrl = base.stats["noc.flits.ctrl"]
    sf_ctrl = sf.stats["noc.flits.ctrl"]
    assert sf_ctrl < base_ctrl
    # Data flit volume is essentially unchanged (same bytes move).
    assert sf.stats["noc.flits.data"] == pytest.approx(
        base.stats["noc.flits.data"], rel=0.1,
    )


def test_store_addresses_follow_pattern_on_all_systems():
    """The store stream writes the same destination lines under SE
    and fallback lowering."""
    chip_base, _ = run("base")
    chip_sf, _ = run("sf")
    dst_first = BASE_ADDR + 0x100_0000
    for chip in (chip_base, chip_sf):
        bank = chip.nuca.bank_of(dst_first)
        line = chip.tiles[bank].l3.array.lookup(dst_first, touch=False)
        dir_ent = chip.tiles[bank].l3.dir.peek(dst_first)
        # The line exists somewhere on chip: L3 copy or a tracked owner.
        assert line is not None or dir_ent is not None
