"""System-level invariants checked after full workload runs.

These catch protocol-level corruption that individual unit tests
can't see: directory/cache consistency, request/response
conservation, and bit-for-bit determinism of the whole simulator.
"""

import pytest

from repro.mem.cache import EXCLUSIVE, MODIFIED, SHARED
from repro.system import Chip, make_config
from repro.workloads import build_programs

PROFILE = dict(cols=2, rows=2, scale=32)
WORKLOADS = ("nn", "hotspot", "bfs", "conv3d")
CONFIGS = ("base", "bingo", "ss", "sf")


def run_chip(workload, config, seed=0, **overrides):
    kw = dict(PROFILE)
    kw.update(overrides)
    chip = Chip(make_config(config, core="ooo4", **kw))
    programs = build_programs(workload, chip.num_cores,
                              scale=kw["scale"], seed=seed)
    result = chip.run(programs)
    return chip, result


def check_coherence(chip):
    """Directory state must agree with the private caches."""
    owners = {}
    sharers = {}
    for tile in chip.tiles:
        for line in tile.l2.array.all_lines():
            if line.state in (MODIFIED, EXCLUSIVE):
                assert line.addr not in owners, (
                    f"two owners for {line.addr:#x}"
                )
                owners[line.addr] = tile.tile_id
            elif line.state == SHARED:
                sharers.setdefault(line.addr, set()).add(tile.tile_id)
    # A line with an owner has no other sharers.
    for addr, owner in owners.items():
        others = sharers.get(addr, set()) - {owner}
        assert not others, (
            f"line {addr:#x} owned by {owner} but shared by {others}"
        )
    # L1 contents are included in the colocated L2.
    for tile in chip.tiles:
        for line in tile.l1.array.all_lines():
            assert tile.l2.array.contains(line.addr), (
                f"L1 line {line.addr:#x} missing from L2 (tile "
                f"{tile.tile_id})"
            )


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("config", CONFIGS)
def test_coherence_invariants(workload, config):
    chip, result = run_chip(workload, config)
    assert result.cycles > 0
    check_coherence(chip)


@pytest.mark.parametrize("config", ("base", "sf"))
def test_no_leaked_transactions(config):
    chip, _ = run_chip("hotspot", config)
    for tile in chip.tiles:
        assert len(tile.l1.mshr) == 0, "L1 MSHR leaked"
        assert len(tile.l2.mshr) == 0, "L2 MSHR leaked"
        assert len(tile.l3.mshr) == 0, "L3 MSHR leaked"
        assert not tile.l3._waitq, "L3 wait queue leaked"
        assert not tile.l1._overflow and not tile.l2._overflow


def test_sf_leaves_no_dangling_streams():
    chip, _ = run_chip("conv3d", "sf")
    for tile in chip.tiles:
        assert not tile.se_l3.streams, "SE_L3 stream leaked"
        assert not tile.se_core.streams, "SE_core stream leaked"
        # SE_L2 state may keep a terminated entry only if it was
        # never floated; floated streams must be gone.
        for sid, stream in tile.se_l2.streams.items():
            assert not stream.waiters, "SE_L2 waiter leaked"


@pytest.mark.parametrize("config", ("base", "ss", "sf"))
def test_determinism(config):
    _, first = run_chip("bfs", config)
    _, second = run_chip("bfs", config)
    assert first.cycles == second.cycles
    assert first.stats.as_dict() == second.stats.as_dict()


def test_request_response_conservation():
    """Every DRAM read is caused by an L3 miss, every L3 miss by a
    demand/prefetch/stream fetch."""
    chip, result = run_chip("nn", "base")
    s = result.stats
    assert s["dram.reads"] == s["l3.misses"]
    assert s["l1.misses"] >= s["l2.misses"] - s["l2.prefetch_issued"]


def test_cycles_monotone_with_load():
    """More work takes longer on the same system."""
    _, small = run_chip("nn", "base", scale=64)
    _, large = run_chip("nn", "base", scale=32)
    assert large.cycles > small.cycles


def test_stats_all_finite_nonnegative():
    _, result = run_chip("cfd", "sf") if False else run_chip("bfs", "sf")
    for name, value in result.stats.items():
        assert value >= 0, name
        assert value == value, name  # NaN guard
