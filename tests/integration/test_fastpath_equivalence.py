"""Fast-path equivalence suite: fused handlers vs the plain kernel.

The handler fast paths (DESIGN.md §12) fuse uncontended event chains
into synchronous calls, intern hot counters, and recycle messages —
all on the promise that *only* the Python-call count changes, never
the model. This suite holds them to it: for every tier-1 workload
point, a run with ``REPRO_FASTPATH=0`` (every callback through the
event queue, no pooling) and a default run (fusion + pooling on) must
produce the same cycle count, the same logical-event count, and the
same full architectural stats dict, key for key.

The suite runs without the sanitizer (``no_sanitize``): fusion changes
the *kernel event stream* (fused callbacks never enter the queue), so
the S5 trace hash legitimately differs between the modes — the hash is
re-pinned deliberately in BENCH_kernel.json, while this suite proves
the architectural results did not move. Running sanitizer-free also
lets the default run exercise message pooling, which observers veto.
"""

import pytest

from repro.sim.fastpath import ENV_FASTPATH
from repro.system import Chip, make_config
from repro.workloads.base import build_programs

# Every tier-1 workload, at the kernel-equivalence suite's geometry.
POINTS = [
    ("mv", "sf"),          # affine streams, floating on
    ("mv", "base"),        # no stream engine at all
    ("conv3d", "sf"),      # multi-level affine patterns
    ("bfs", "sf"),         # indirect streams + confluence traffic
    ("pathfinder", "sf"),  # migrating affine streams
    ("hotspot", "sf"),     # multi-array stencil streams
]
GEOMETRY = dict(core="ooo8", cols=4, rows=4, scale=8)


def _run(monkeypatch, workload, config, fastpath):
    monkeypatch.setenv(ENV_FASTPATH, fastpath)
    chip = Chip(make_config(config, **GEOMETRY))
    programs = build_programs(
        workload, chip.num_cores, scale=GEOMETRY["scale"], seed=0,
    )
    result = chip.run(programs)
    return {
        "cycles": result.cycles,
        "events": chip.sim.events_executed,
        "inlined": chip.sim.events_inlined,
        "stats": chip.stats.as_dict(),
    }


@pytest.mark.no_sanitize
@pytest.mark.parametrize("workload,config", POINTS)
def test_fastpath_equivalent(monkeypatch, workload, config):
    off = _run(monkeypatch, workload, config, "0")
    on = _run(monkeypatch, workload, config, "1")
    assert on["cycles"] == off["cycles"]
    # count_inlined_events() credit: fused callbacks must keep
    # events_executed counting logical events, not kernel dispatches.
    assert on["events"] == off["events"]
    # Fusion actually engaged (beyond the always-on NoC drain batching
    # both modes share).
    assert on["inlined"] > off["inlined"]
    # Architectural results are byte-identical, key for key.
    assert on["stats"] == off["stats"]
