"""Unit tests for the core timing models."""

import pytest

from repro.mem.addr import NucaMap
from repro.mem.dram import DramSystem
from repro.mem.l1 import L1Cache
from repro.mem.l2 import L2Cache
from repro.mem.l3 import L3Bank
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.cpu.core import Core
from repro.sim import Simulator, Stats
from repro.streams.isa import StreamSpec
from repro.streams.pattern import AffinePattern
from repro.system.params import IO4, OOO8
from repro.workloads.kernel import CoreProgram, Iteration, KernelPhase


class CoreRig:
    def __init__(self, params=OOO8):
        self.sim = Simulator()
        self.stats = Stats()
        mesh = Mesh(2, 2)
        self.net = Network(self.sim, mesh, self.stats)
        nuca = NucaMap(4, 64)
        dram = DramSystem(self.sim, self.net, self.stats)
        self.banks = [
            L3Bank(self.sim, self.net, self.stats, t, size_bytes=16 * 1024,
                   ways=4, dram=dram, replacement="lru", nuca=nuca)
            for t in range(4)
        ]
        self.l2 = L2Cache(self.sim, self.net, self.stats, 0,
                          size_bytes=4096, ways=4, nuca=nuca,
                          replacement="lru")
        self.l1 = L1Cache(self.sim, self.stats, 0, self.l2,
                          size_bytes=1024, ways=2)
        self.core = Core(self.sim, self.stats, 0, self.l1, params)

    def run_program(self, program):
        finished = []
        # Run each phase with an inline barrier.
        for phase in program:
            self.core.run_phase(phase, lambda: finished.append(self.sim.now))
            self.sim.run(max_events=1_000_000)
        return finished


def phase_of(iters, specs=()):
    return KernelPhase(name="p", stream_specs=list(specs),
                       iterations=lambda: iter(iters))


def test_compute_only_phase_finishes():
    rig = CoreRig()
    iters = [Iteration(compute_ops=8, ops=()) for _ in range(10)]
    finished = rig.run_program(CoreProgram(phases=[phase_of(iters)]))
    assert len(finished) == 1
    assert rig.stats["core.iterations"] == 10


def test_empty_phase_finishes_immediately():
    rig = CoreRig()
    finished = rig.run_program(CoreProgram(phases=[phase_of([])]))
    assert len(finished) == 1


def test_loads_execute_and_count():
    rig = CoreRig()
    iters = [Iteration(compute_ops=1, ops=(("load", i * 64, 1),))
             for i in range(8)]
    rig.run_program(CoreProgram(phases=[phase_of(iters)]))
    assert rig.stats["core.loads"] == 8
    assert rig.stats["l1.misses"] == 8


def test_stores_drain_through_store_buffer():
    rig = CoreRig()
    iters = [Iteration(compute_ops=1, ops=(("store", i * 64, 2),))
             for i in range(80)]  # more than the 56-entry SQ
    finished = rig.run_program(CoreProgram(phases=[phase_of(iters)]))
    assert len(finished) == 1
    assert rig.stats["core.stores"] == 80


def test_ooo_overlaps_inorder_does_not():
    def run(params):
        rig = CoreRig(params)
        iters = [Iteration(compute_ops=2, ops=(("load", i * 4096, 3),))
                 for i in range(32)]
        rig.run_program(CoreProgram(phases=[phase_of(iters)]))
        return rig.sim.now

    assert run(OOO8) < run(IO4)


def test_multiple_phases_run_in_sequence():
    rig = CoreRig()
    p1 = phase_of([Iteration(compute_ops=4, ops=()) for _ in range(4)])
    p2 = phase_of([Iteration(compute_ops=4, ops=()) for _ in range(4)])
    finished = rig.run_program(CoreProgram(phases=[p1, p2]))
    assert len(finished) == 2
    assert finished[0] <= finished[1]


def test_fallback_lowering_of_stream_ops():
    """Without an SE, sload/sstore lower to plain accesses."""
    rig = CoreRig()
    spec = StreamSpec(sid=0, pattern=AffinePattern(
        base=0x8000, strides=(64,), lengths=(8,), elem_size=64,
    ))
    store = StreamSpec(sid=1, kind="store", pattern=AffinePattern(
        base=0x20000, strides=(64,), lengths=(8,), elem_size=64,
    ))
    iters = [Iteration(compute_ops=2, ops=(("sload", 0), ("sstore", 1)))
             for _ in range(8)]
    finished = rig.run_program(CoreProgram(
        phases=[phase_of(iters, specs=[spec, store])]
    ))
    assert len(finished) == 1
    assert rig.stats["core.loads"] == 8
    assert rig.stats["core.stores"] == 8
    # The lowered loads walked the pattern: 8 distinct lines fetched.
    assert rig.stats["l1.misses"] >= 8


def test_unknown_op_rejected():
    rig = CoreRig()
    iters = [Iteration(compute_ops=1, ops=(("bogus",),))]
    with pytest.raises(ValueError):
        rig.run_program(CoreProgram(phases=[phase_of(iters)]))


def test_iteration_window_respects_lq():
    """A burst of load-heavy iterations can't exceed the LQ much."""
    rig = CoreRig(IO4)  # lq = 4
    iters = [Iteration(compute_ops=1, ops=(("load", i * 64, 5),))
             for i in range(16)]
    max_seen = []

    orig = rig.core._plain_load

    def spy(state, addr, op_id, stream_id=None):
        orig(state, addr, op_id, stream_id=stream_id)
        max_seen.append(rig.core._outstanding_loads)

    rig.core._plain_load = spy
    rig.run_program(CoreProgram(phases=[phase_of(iters)]))
    # Bounded by the instruction window (10 // 2 ops = 5 iterations);
    # the LQ check throttles dispatch once loads are outstanding.
    assert max(max_seen) <= 6
