"""Tests for the event-energy model."""

import pytest

from repro.energy import EnergyModel, EnergyParams
from repro.sim import Stats
from repro.system.params import SystemParams, IO4, OOO8
from dataclasses import replace


def stats_with(**counters):
    s = Stats()
    for name, value in counters.items():
        s.set(name.replace("__", "."), value)
    return s


def test_empty_stats_only_static():
    model = EnergyModel()
    bd = model.evaluate(Stats(), cycles=1000, system=SystemParams())
    assert bd.core_dynamic == 0
    assert bd.core_static > 0
    assert bd.total == bd.core_static


def test_component_attribution():
    model = EnergyModel(EnergyParams())
    s = stats_with(
        core__ops=100, l1__hits=10, l1__misses=5, l2__hits=3,
        l2__misses=2, l3__hits=1, l3__misses=1, dram__reads=4,
        dram__writes=1,
    )
    s.set("noc.flit_hops.data", 20)
    s.set("noc.flits.data", 5)
    bd = model.evaluate(s, cycles=10, system=SystemParams())
    p = EnergyParams()
    assert bd.l1 == 15 * p.l1_access
    assert bd.l2 == 5 * p.l2_access
    assert bd.dram == 5 * p.dram_access
    assert bd.noc == 25 * p.noc_flit_hop
    assert bd.core_dynamic == 100 * p.op_ooo8


def test_ooo_costs_more_per_op_than_inorder():
    model = EnergyModel()
    s = stats_with(core__ops=1000)
    io = model.evaluate(s, 100, replace(SystemParams(), core=IO4))
    ooo = model.evaluate(s, 100, replace(SystemParams(), core=OOO8))
    assert ooo.core_dynamic > io.core_dynamic
    assert ooo.core_static > io.core_static


def test_static_scales_with_cycles_and_tiles():
    model = EnergyModel()
    small = model.evaluate(Stats(), 100, replace(SystemParams(), cols=2, rows=2))
    big = model.evaluate(Stats(), 100, replace(SystemParams(), cols=4, rows=4))
    assert big.core_static == 4 * small.core_static
    longer = model.evaluate(Stats(), 200, replace(SystemParams(), cols=2, rows=2))
    assert longer.core_static == 2 * small.core_static


def test_stream_engine_energy_counted():
    model = EnergyModel()
    s = stats_with(se_core__requests=10)
    s.set("se_l3.elements_issued", 10)
    bd = model.evaluate(s, 10, SystemParams())
    assert bd.stream_engines == 20 * EnergyParams().se_op


def test_breakdown_total_and_dict():
    model = EnergyModel()
    s = stats_with(core__ops=10, dram__reads=1)
    bd = model.evaluate(s, 10, SystemParams())
    d = bd.as_dict()
    assert d["total"] == pytest.approx(bd.total)
    assert bd.total == pytest.approx(sum(
        v for k, v in d.items() if k != "total"
    ))


def test_efficiency_inverse_of_total():
    model = EnergyModel()
    s = stats_with(core__ops=100)
    bd = model.evaluate(s, 10, SystemParams())
    assert model.efficiency(s, 10, SystemParams()) == pytest.approx(1 / bd.total)
