"""Tests for the set-associative cache array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import EXCLUSIVE, INVALID, MODIFIED, SHARED, CacheArray


def make_cache(size=1024, ways=2, replacement="lru"):
    return CacheArray(size, ways, replacement=replacement)


def test_miss_then_hit():
    c = make_cache()
    assert c.lookup(0x40) is None
    line, evicted = c.fill(0x40, SHARED, now=5)
    assert evicted is None
    assert line.addr == 0x40
    assert line.state == SHARED
    assert line.fill_cycle == 5
    hit = c.lookup(0x7F)  # same line
    assert hit is line


def test_fill_duplicate_rejected():
    c = make_cache()
    c.fill(0x40, SHARED)
    with pytest.raises(ValueError):
        c.fill(0x40, SHARED)


def test_eviction_returns_victim_copy():
    c = make_cache(size=256, ways=2)  # 2 sets
    sets = c.num_sets
    stride = sets * 64
    # Fill both ways of set 0, then a third line evicts the LRU one.
    first, _ = c.fill(0x0, SHARED)
    first.uses = 3
    c.fill(stride, SHARED)
    _, evicted = c.fill(2 * stride, SHARED)
    assert evicted is not None
    assert evicted.addr == 0x0
    assert evicted.uses == 3  # metadata preserved on the copy
    assert c.lookup(0x0) is None


def test_dirty_and_metadata_reset_on_fill():
    c = make_cache()
    line, _ = c.fill(0x80, MODIFIED, prefetched=True, stream_id=7, fill_flits=3)
    line.dirty = True
    line.uses = 5
    c.invalidate(0x80)
    line2, _ = c.fill(0x80, SHARED)
    assert line2.dirty is False
    assert line2.uses == 0
    assert line2.prefetched is False
    assert line2.stream_id is None
    assert line2.fill_flits == 0


def test_invalidate_returns_copy():
    c = make_cache()
    line, _ = c.fill(0xC0, EXCLUSIVE)
    line.dirty = True
    dropped = c.invalidate(0xC0)
    assert dropped.dirty is True
    assert dropped.state == EXCLUSIVE
    assert not c.contains(0xC0)
    assert c.invalidate(0xC0) is None


def test_set_mapping_isolated():
    c = make_cache(size=512, ways=2)  # 4 sets
    # Lines in different sets never evict each other.
    for i in range(4):
        c.fill(i * 64, SHARED)
    assert c.occupancy() == 4
    for i in range(4):
        assert c.contains(i * 64)


def test_lru_order_respected():
    c = make_cache(size=256, ways=2)
    sets = c.num_sets
    stride = sets * 64
    c.fill(0, SHARED)
    c.fill(stride, SHARED)
    c.lookup(0)  # refresh line 0
    _, evicted = c.fill(2 * stride, SHARED)
    assert evicted.addr == stride


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        CacheArray(1000, 3)
    with pytest.raises(ValueError):
        CacheArray(64 * 3 * 2, 2)  # 3 sets: not a power of two


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
def test_occupancy_never_exceeds_capacity(line_numbers):
    c = CacheArray(4096, 4, replacement="brrip")
    capacity = 4096 // 64
    for n in line_numbers:
        addr = n * 64
        if not c.contains(addr):
            c.fill(addr, SHARED)
        assert c.occupancy() <= capacity
    # Internal index consistent with the arrays.
    assert c.occupancy() == len(c.all_lines())


@given(st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=200))
def test_lookup_matches_fill_history(line_numbers):
    """A line is present iff it was filled and not evicted since."""
    c = CacheArray(2048, 2)
    present = set()
    for n in line_numbers:
        addr = n * 64
        if c.contains(addr):
            assert addr in present
            c.lookup(addr)
        else:
            _, evicted = c.fill(addr, SHARED)
            present.add(addr)
            if evicted is not None:
                present.discard(evicted.addr)
    for addr in present:
        assert c.contains(addr)
