"""Tests for the two-level TLB model."""

from repro.mem.addr import PAGE_SIZE
from repro.mem.tlb import Tlb


def test_miss_then_hit_latencies():
    tlb = Tlb(entries=4, hit_latency=1, miss_latency=20)
    assert tlb.translate(0x1000) == 21  # cold miss pays the walk
    assert tlb.translate(0x1FFF) == 1  # same page now hits
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_lru_eviction():
    tlb = Tlb(entries=2, hit_latency=1, miss_latency=10)
    tlb.translate(0 * PAGE_SIZE)
    tlb.translate(1 * PAGE_SIZE)
    tlb.translate(0 * PAGE_SIZE)  # refresh page 0
    tlb.translate(2 * PAGE_SIZE)  # evicts page 1
    assert 0 * PAGE_SIZE in tlb
    assert 1 * PAGE_SIZE not in tlb
    assert 2 * PAGE_SIZE in tlb


def test_two_level_hierarchy():
    l2 = Tlb(entries=16, hit_latency=8, miss_latency=50)
    l1 = Tlb(entries=2, hit_latency=1, backing=l2)
    # Cold: L1 miss -> L2 miss -> walk.
    assert l1.translate(0x5000) == 1 + 8 + 50
    # Evict page 5 from tiny L1, keep it in L2.
    l1.translate(0x6000)
    l1.translate(0x7000)
    assert 0x5000 not in l1
    # L1 miss but L2 hit: cheaper than the walk.
    assert l1.translate(0x5000) == 1 + 8


def test_flush():
    tlb = Tlb(entries=4)
    tlb.translate(0x1000)
    tlb.flush()
    assert 0x1000 not in tlb


def test_rejects_zero_entries():
    import pytest

    with pytest.raises(ValueError):
        Tlb(entries=0)
