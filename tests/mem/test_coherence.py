"""Tests for directory bookkeeping and protocol message metadata."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.coherence import DATA_OPS, CohMsg, DirEntry, Directory


class TestCohMsg:
    def test_data_ops_carry_data(self):
        for op in ("Data", "DataU", "PutM", "DownData", "MemWrite", "MemData"):
            assert CohMsg(op=op, addr=0, requester=0).carries_data

    def test_control_ops_do_not(self):
        for op in ("GetS", "GetX", "GetU", "PutS", "Inv", "InvAck",
                   "FwdGetS", "MemRead"):
            assert not CohMsg(op=op, addr=0, requester=0).carries_data

    def test_default_source_is_core(self):
        assert CohMsg(op="GetS", addr=0, requester=0).source == "core"

    def test_subline_annotation(self):
        msg = CohMsg(op="DataU", addr=0, requester=0, data_bytes=4)
        assert msg.data_bytes == 4


class TestDirectory:
    def test_entry_created_on_demand(self):
        d = Directory()
        ent = d.entry(0x40)
        assert ent.idle
        assert len(d) == 1

    def test_peek_does_not_create(self):
        d = Directory()
        assert d.peek(0x40) is None
        assert len(d) == 0

    def test_add_sharer_clears_same_owner(self):
        d = Directory()
        d.set_owner(0x40, 3)
        d.add_sharer(0x40, 3)
        ent = d.peek(0x40)
        assert ent.owner is None
        assert ent.sharers == {3}

    def test_set_owner_clears_sharers(self):
        d = Directory()
        d.add_sharer(0x40, 1)
        d.add_sharer(0x40, 2)
        d.set_owner(0x40, 5)
        ent = d.peek(0x40)
        assert ent.owner == 5
        assert not ent.sharers

    def test_remove_cleans_empty_entries(self):
        d = Directory()
        d.add_sharer(0x40, 1)
        d.remove(0x40, 1)
        assert d.peek(0x40) is None
        assert len(d) == 0

    def test_remove_unknown_is_noop(self):
        d = Directory()
        d.remove(0x40, 1)
        assert len(d) == 0

    def test_clear_returns_entry(self):
        d = Directory()
        d.add_sharer(0x80, 2)
        ent = d.clear(0x80)
        assert ent.sharers == {2}
        assert d.peek(0x80) is None
        assert d.clear(0x80) is None

    def test_line_granularity(self):
        d = Directory()
        d.add_sharer(0x47, 1)  # same line as 0x40
        assert d.peek(0x40).sharers == {1}

    @given(st.lists(
        st.tuples(
            st.sampled_from(["share", "own", "remove"]),
            st.integers(min_value=0, max_value=7),  # tile
            st.integers(min_value=0, max_value=3),  # line
        ),
        max_size=100,
    ))
    def test_owner_sharer_exclusive(self, ops):
        """At any point a line's owner is never also a sharer."""
        d = Directory()
        for op, tile, line in ops:
            addr = line * 64
            if op == "share":
                d.add_sharer(addr, tile)
            elif op == "own":
                d.set_owner(addr, tile)
            else:
                d.remove(addr, tile)
            ent = d.peek(addr)
            if ent is not None and ent.owner is not None:
                assert ent.owner not in ent.sharers
