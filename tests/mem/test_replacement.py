"""Tests for LRU and Bimodal RRIP replacement."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mem.replacement import BrripPolicy, LruPolicy, make_policy


class TestLru:
    def test_prefers_invalid_ways(self):
        lru = LruPolicy(4)
        assert lru.victim([True, False, True, True]) == 1

    def test_evicts_least_recent(self):
        lru = LruPolicy(4)
        for way in range(4):
            lru.on_fill(way)
        lru.on_hit(0)  # 1 now oldest
        assert lru.victim([True] * 4) == 1

    def test_hit_refreshes(self):
        lru = LruPolicy(2)
        lru.on_fill(0)
        lru.on_fill(1)
        lru.on_hit(0)
        assert lru.victim([True, True]) == 1


class TestBrrip:
    def test_prefers_invalid_ways(self):
        pol = BrripPolicy(4)
        assert pol.victim([True, True, False, True]) == 2

    def test_distant_insertion_is_default_victim(self):
        # With p=0 every fill is distant (RRPV 3) and evictable at once.
        pol = BrripPolicy(2, p=0.0)
        pol.on_fill(0)
        pol.on_fill(1)
        pol.on_hit(0)
        assert pol.victim([True, True]) == 1

    def test_hit_protects_line(self):
        pol = BrripPolicy(2, p=0.0)
        pol.on_fill(0)
        pol.on_fill(1)
        pol.on_hit(0)
        pol.on_hit(1)
        # Both protected: aging must still find a victim.
        victim = pol.victim([True, True])
        assert victim in (0, 1)

    def test_long_insertion_with_p_one(self):
        pol = BrripPolicy(2, p=1.0)
        pol.on_fill(0)  # RRPV 2
        pol.on_fill(1)  # RRPV 2
        # Aging makes both 3; way 0 picked first deterministically.
        assert pol.victim([True, True]) == 0

    def test_deterministic_given_seed(self):
        a = BrripPolicy(8, p=0.5, seed=42)
        b = BrripPolicy(8, p=0.5, seed=42)
        for way in range(8):
            a.on_fill(way)
            b.on_fill(way)
        assert a._rrpv == b._rrpv

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=200))
    def test_victim_always_valid_way(self, hits):
        pol = BrripPolicy(8, p=0.03, seed=1)
        for way in range(8):
            pol.on_fill(way)
        for way in hits:
            pol.on_hit(way)
        assert 0 <= pol.victim([True] * 8) < 8


def test_factory():
    assert isinstance(make_policy("lru", 4), LruPolicy)
    assert isinstance(make_policy("brrip", 4), BrripPolicy)


def test_factory_rejects_unknown():
    import pytest

    with pytest.raises(ValueError):
        make_policy("plru", 4)
