"""Regression tests: a full MSHR file stalls/parks requests instead of
crashing the run (ISSUE 4 satellite — every ``MshrFile.allocate`` call
site must be guarded by a full check).

Each test shrinks one level's MSHR file far below the number of
outstanding misses the workload generates, then checks that every
request still completes and the files drain.
"""

from repro.mem.addr import line_addr
from tests.mem.conftest import MiniHierarchy

BASE = 0x10_0000
LINE = 64


def distinct_lines(n, stride_lines=1):
    return [BASE + i * stride_lines * LINE for i in range(n)]


def test_l1_mshr_full_parks_demand_reads():
    hier = MiniHierarchy(l1_mshrs=2)
    results = []
    for addr in distinct_lines(12):
        hier.read(0, addr, results)
    hier.run()
    assert len(results) == 12
    assert len(hier.l1s[0].mshr) == 0
    assert not hier.l1s[0]._overflow


def test_l1_mshr_full_parks_demand_writes():
    hier = MiniHierarchy(l1_mshrs=2)
    results = []
    for addr in distinct_lines(10):
        hier.write(0, addr, results)
    hier.run()
    assert len(results) == 10
    # Every parked store eventually got write permission.
    for addr in distinct_lines(10):
        line = hier.l1s[0].array.lookup(line_addr(addr))
        if line is not None:
            assert line.writable


def test_l1_parked_request_served_from_array_after_fill():
    # Two requests to the SAME line while the file is full: the second
    # parks in the overflow list and must be served from the array once
    # the first fill lands (not re-missed into a duplicate allocate).
    hier = MiniHierarchy(l1_mshrs=1)
    results = []
    hier.read(0, BASE, results)          # occupies the only MSHR
    hier.read(0, BASE + LINE, results)   # parks (file full)
    hier.read(0, BASE + LINE, results)   # parks behind it, same line
    hier.run()
    assert len(results) == 3
    assert len(hier.l1s[0].mshr) == 0


def test_l2_mshr_full_parks_demand_misses():
    hier = MiniHierarchy(l1_mshrs=8, l2_mshrs=2)
    results = []
    for addr in distinct_lines(12):
        hier.read(0, addr, results)
    hier.run()
    assert len(results) == 12
    assert len(hier.l2s[0].mshr) == 0
    assert not hier.l2s[0]._overflow


def test_l3_mshr_full_queues_requests():
    # All addresses map to bank 0 (64B interleave, 4 banks: stride by
    # 4 lines); four tiles each fire several misses at it while the
    # bank has a single MSHR.
    hier = MiniHierarchy(l3_mshrs=1)
    results = []
    n = 0
    for tile in range(4):
        for k in range(4):
            hier.read(tile, BASE + (tile * 4 + k) * 4 * LINE, results)
            n += 1
    hier.run()
    assert len(results) == n
    assert hier.stats["l3.mshr_full_waits"] > 0
    for bank in hier.banks:
        assert len(bank.mshr) == 0
        assert not bank._waitq


def test_l3_mshr_full_queues_owner_forwards():
    # Forwarding to an M/E owner also allocates an MSHR: make tile 0
    # own several lines of bank 0, then have other tiles read them
    # through the single-entry bank MSHR.
    hier = MiniHierarchy(l3_mshrs=1)
    warm = []
    addrs = [BASE + k * 4 * LINE for k in range(4)]
    for addr in addrs:
        hier.write(0, addr, warm)
    hier.run()
    assert len(warm) == len(addrs)
    results = []
    for tile in (1, 2, 3):
        for addr in addrs:
            hier.read(tile, addr, results)
    hier.run()
    assert len(results) == 3 * len(addrs)
    for bank in hier.banks:
        assert len(bank.mshr) == 0
        assert not bank._waitq
