"""A miniature multi-tile memory hierarchy for protocol tests.

Builds a 2x2 mesh with four tiles, each with an L1 + L2, four L3 banks
(one per tile) and DRAM controllers at the corners — enough to
exercise every protocol path without the full chip assembly.
"""

import pytest

from repro.mem.addr import NucaMap
from repro.mem.dram import DramSystem
from repro.mem.l1 import L1Cache
from repro.mem.l2 import L2Cache
from repro.mem.l3 import L3Bank
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.sim import Simulator, Stats


class MiniHierarchy:
    def __init__(self, cols=2, rows=2, interleave=64, l2_size=4096,
                 l3_size=16 * 1024, l1_size=1024,
                 l1_mshrs=8, l2_mshrs=16, l3_mshrs=16):
        self.sim = Simulator()
        self.stats = Stats()
        self.mesh = Mesh(cols, rows)
        self.net = Network(self.sim, self.mesh, self.stats)
        self.nuca = NucaMap(self.mesh.num_tiles, interleave)
        self.dram = DramSystem(self.sim, self.net, self.stats)
        self.banks = []
        self.l2s = []
        self.l1s = []
        for tile in range(self.mesh.num_tiles):
            bank = L3Bank(
                self.sim, self.net, self.stats, tile,
                size_bytes=l3_size, ways=4, dram=self.dram,
                replacement="lru", nuca=self.nuca, mshrs=l3_mshrs,
            )
            self.banks.append(bank)
            l2 = L2Cache(
                self.sim, self.net, self.stats, tile,
                size_bytes=l2_size, ways=4, nuca=self.nuca,
                replacement="lru", mshrs=l2_mshrs,
            )
            self.l2s.append(l2)
            self.l1s.append(L1Cache(
                self.sim, self.stats, tile, l2,
                size_bytes=l1_size, ways=2, mshrs=l1_mshrs,
            ))

    def read(self, tile, addr, results=None):
        """Issue a demand read from ``tile``; appends completion time
        to ``results`` (if given) when done."""
        from repro.mem.l1 import L1Request

        def done():
            if results is not None:
                results.append(self.sim.now)

        self.l1s[tile].access(L1Request(addr=addr, on_done=done))

    def write(self, tile, addr, results=None):
        from repro.mem.l1 import L1Request

        def done():
            if results is not None:
                results.append(self.sim.now)

        self.l1s[tile].access(L1Request(addr=addr, is_write=True, on_done=done))

    def run(self):
        self.sim.run(max_events=2_000_000)
        return self.sim.now


@pytest.fixture
def hier():
    return MiniHierarchy()
