"""End-to-end protocol tests over the miniature 2x2 hierarchy."""

import pytest

from repro.mem.cache import EXCLUSIVE, MODIFIED, SHARED
from repro.mem.coherence import CohMsg
from tests.mem.conftest import MiniHierarchy


class TestDemandPath:
    def test_cold_read_reaches_dram_and_fills_everything(self, hier):
        results = []
        hier.read(0, 0x0, results)  # addr 0 homes at bank 0 (local)
        hier.run()
        assert len(results) == 1
        assert hier.stats["l1.misses"] == 1
        assert hier.stats["l2.misses"] == 1
        assert hier.stats["l3.misses"] == 1
        assert hier.stats["dram.reads"] == 1
        assert hier.l1s[0].array.contains(0x0)
        assert hier.l2s[0].array.contains(0x0)
        assert hier.banks[0].array.contains(0x0)
        # DRAM round trip dominates: >= 100 cycles.
        assert results[0] >= 100

    def test_second_read_hits_l1(self, hier):
        results = []
        hier.read(0, 0x0, results)
        hier.run()
        hier.read(0, 0x20, results)  # same line
        hier.run()
        assert hier.stats["l1.hits"] == 1
        assert results[1] - results[0] <= 5

    def test_read_to_remote_bank_crosses_noc(self, hier):
        results = []
        hier.read(0, 0x40 * 3, results)  # line 3 homes at bank 3
        hier.run()
        assert hier.stats["noc.packets.ctrl"] >= 2  # GetS + MemRead
        assert hier.stats["noc.packets.data"] >= 2  # MemData + Data
        assert hier.banks[3].array.contains(0x40 * 3)
        assert not hier.banks[0].array.contains(0x40 * 3)

    def test_l3_hit_after_other_core_fetch(self, hier):
        hier.read(0, 0x0)
        hier.read(1, 0x0)  # downgrade: bank gets a copy via DownData
        hier.run()
        dram_before = hier.stats["dram.reads"]
        hier.read(2, 0x0)  # no owner now: plain LLC hit
        hier.run()
        assert hier.stats["dram.reads"] == dram_before
        assert hier.stats["l3.hits"] >= 1


class TestMesiStates:
    def test_first_reader_gets_exclusive(self, hier):
        hier.read(0, 0x0)
        hier.run()
        line = hier.l2s[0].array.lookup(0x0, touch=False)
        assert line.state == EXCLUSIVE
        assert hier.banks[0].dir.peek(0x0).owner == 0

    def test_second_reader_downgrades_owner_to_shared(self, hier):
        hier.read(0, 0x0)
        hier.run()
        hier.read(1, 0x0)
        hier.run()
        assert hier.l2s[0].array.lookup(0x0, touch=False).state == SHARED
        assert hier.l2s[1].array.lookup(0x0, touch=False).state == SHARED
        ent = hier.banks[0].dir.peek(0x0)
        assert ent.owner is None
        assert ent.sharers == {0, 1}
        assert hier.stats["l3.forwards"] == 1

    def test_write_gets_modified_and_invalidates_sharers(self, hier):
        hier.read(0, 0x0)
        hier.run()
        hier.read(1, 0x0)
        hier.run()
        hier.write(2, 0x0)
        hier.run()
        assert hier.l2s[2].array.lookup(0x0, touch=False).state == MODIFIED
        assert not hier.l2s[0].array.contains(0x0)
        assert not hier.l2s[1].array.contains(0x0)
        ent = hier.banks[0].dir.peek(0x0)
        assert ent.owner == 2
        assert hier.stats["l3.invalidations"] == 2

    def test_write_hit_on_exclusive_is_silent(self, hier):
        hier.read(0, 0x0)
        hier.run()
        ctrl_before = hier.stats["noc.packets.ctrl"]
        hier.write(0, 0x0)
        hier.run()
        # E->M upgrade is silent: no new coherence traffic; the dirty
        # data sits in the (writable) L1.
        assert hier.stats["noc.packets.ctrl"] == ctrl_before
        assert hier.l1s[0].array.lookup(0x0, touch=False).dirty

    def test_write_hit_on_shared_upgrades(self, hier):
        hier.read(0, 0x0)
        hier.read(1, 0x0)
        hier.run()
        hier.write(0, 0x0)
        hier.run()
        line = hier.l2s[0].array.lookup(0x0, touch=False)
        assert line.state == MODIFIED
        assert not hier.l2s[1].array.contains(0x0)

    def test_read_after_remote_write_forwards_dirty_data(self, hier):
        hier.write(0, 0x0)
        hier.run()
        hier.read(1, 0x0)
        hier.run()
        # Owner downgraded, bank has the dirty copy.
        assert hier.l2s[0].array.lookup(0x0, touch=False).state == SHARED
        bank_line = hier.banks[0].array.lookup(0x0, touch=False)
        assert bank_line.dirty
        assert hier.stats["l3.forwards"] >= 1


class TestEvictions:
    def test_clean_eviction_sends_puts(self, hier):
        # L2 is 4kB/4-way in the fixture: 16 sets. Fill one set (stride
        # 16 lines) beyond capacity.
        stride = 16 * 64
        for i in range(5):
            hier.read(0, i * stride)
        hier.run()
        assert hier.stats["l2.evictions"] == 1
        assert hier.stats["l3.puts"] == 1
        # Evicted line no longer a sharer/owner at its bank.
        assert hier.banks[0].dir.peek(0x0) is None
        # Back-invalidation kept L1 consistent.
        assert not hier.l1s[0].array.contains(0x0)

    def test_dirty_eviction_sends_putm(self, hier):
        stride = 16 * 64
        hier.write(0, 0x0)
        hier.run()
        for i in range(1, 5):
            hier.read(0, i * stride)
        hier.run()
        assert hier.stats["l3.putm"] == 1
        assert hier.stats["l2.put_acks"] == 1
        bank_line = hier.banks[0].array.lookup(0x0, touch=False)
        assert bank_line is not None and bank_line.dirty

    def test_noreuse_classification(self, hier):
        stride = 16 * 64
        # Line 0 is reused (two separate L2 accesses), others are not.
        hier.read(0, 0x0)
        hier.run()
        hier.l1s[0].invalidate(0x0)  # force the next read back to L2
        hier.read(0, 0x0)
        hier.run()
        for i in range(1, 6):
            hier.read(0, i * stride)
        hier.run()
        assert hier.stats["l2.evictions"] == 2
        assert hier.stats["l2.evictions_noreuse"] == 1
        assert hier.stats["l2.noreuse_flits.data"] > 0
        assert hier.stats["l2.noreuse_flits.ctrl"] > 0


class TestGetU:
    def _get_u(self, hier, bank_tile, addr, requester):
        got = []
        hier.net.register(requester, "se_l2", lambda pkt: got.append(pkt))
        bank = hier.banks[bank_tile]
        bank.stream_read(
            addr, requester,
            on_ready=lambda msg: bank.send_data_u(requester, msg),
        )
        hier.run()
        return got

    def test_getu_does_not_update_directory(self, hier):
        got = self._get_u(hier, 0, 0x0, requester=1)
        assert len(got) == 1
        assert got[0].body.op == "DataU"
        # No sharer recorded, but the line is now cached in L3.
        assert hier.banks[0].dir.peek(0x0) is None
        assert hier.banks[0].array.contains(0x0)
        assert not hier.l2s[1].array.contains(0x0)

    def test_getu_served_from_m_owner_without_state_change(self, hier):
        hier.write(1, 0x0)
        hier.run()
        got = self._get_u(hier, 0, 0x0, requester=2)
        assert len(got) == 1
        # Owner keeps M state (Fig 12c).
        assert hier.l2s[1].array.lookup(0x0, touch=False).state == MODIFIED
        assert hier.banks[0].dir.peek(0x0).owner == 1


class TestConcurrency:
    def test_concurrent_reads_same_line_merge(self, hier):
        results = []
        hier.read(0, 0x0, results)
        hier.read(0, 0x10, results)  # same line, merged in L1 MSHR
        hier.run()
        assert len(results) == 2
        assert hier.stats["dram.reads"] == 1

    def test_concurrent_reads_from_different_tiles_serialize_at_bank(self, hier):
        results = []
        hier.read(0, 0x0, results)
        hier.read(1, 0x0, results)
        hier.read(2, 0x0, results)
        hier.run()
        assert len(results) == 3
        assert hier.stats["dram.reads"] == 1  # bank MSHR merged them

    def test_many_independent_lines(self, hier):
        results = []
        for i in range(32):
            hier.read(i % 4, i * 64, results)
        hier.run()
        assert len(results) == 32
        assert hier.stats["dram.reads"] == 32
