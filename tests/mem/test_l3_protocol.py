"""L3 bank protocol edge cases over the mini hierarchy."""

import pytest

from repro.mem.cache import MODIFIED, SHARED
from repro.mem.coherence import CohMsg
from repro.noc.message import CTRL, Packet
from tests.mem.conftest import MiniHierarchy


@pytest.fixture
def hier():
    return MiniHierarchy()


class TestFwdMiss:
    def test_stale_owner_recovers_via_fwdmiss(self, hier):
        # Make tile 1 owner, then evict the line from its L2 so the
        # directory's owner entry goes stale, then read from tile 2.
        hier.write(1, 0x0)
        hier.run()
        hier.l2s[1].array.invalidate(0x0)  # silently lose the line
        hier.l1s[1].invalidate(0x0)
        hier.read(2, 0x0)
        hier.run()
        assert hier.stats["l3.fwd_misses"] >= 1
        assert hier.l2s[2].array.contains(0x0)

    def test_queued_requests_replay_after_fwdmiss(self, hier):
        hier.write(1, 0x0)
        hier.run()
        hier.l2s[1].array.invalidate(0x0)
        hier.l1s[1].invalidate(0x0)
        results = []
        hier.read(2, 0x0, results)
        hier.read(3, 0x0, results)
        hier.run()
        assert len(results) == 2


class TestBackInvalidation:
    def fill_bank_set(self, hier, tile=0):
        """Evict an L3 line that tile 0 shares (tiny 16kB 4-way bank:
        64 sets after bank-local indexing)."""
        hier.read(tile, 0x0)
        hier.run()
        # Lines mapping to the same bank (4 banks, 64B interleave) and
        # same bank-local set: stride = 4 banks * 64 sets * 64B.
        stride = 4 * (16 * 1024 // (4 * 64)) * 64
        for i in range(1, 6):
            hier.read(tile, i * stride)
            hier.run()

    def test_llc_eviction_back_invalidates_sharers(self, hier):
        self.fill_bank_set(hier)
        assert hier.stats["l3.back_invalidations"] >= 1
        assert hier.stats["l3.evictions"] >= 1

    def test_dirty_llc_victim_written_to_dram(self, hier):
        hier.write(0, 0x0)
        hier.run()
        hier.read(1, 0x0)  # downgrade: bank copy becomes dirty
        hier.run()
        self.fill_bank_set(hier, tile=2)
        if hier.stats["l3.evictions"] >= 1 and not hier.banks[0].array.contains(0x0):
            assert hier.stats["dram.writes"] >= 1


class TestBulkAtBank:
    def test_bulk_unpacks_to_individual_requests(self, hier):
        # Absorb the data responses (raw protocol injection, no L2
        # transaction state behind it).
        hier.net._handlers[(1, "l2")] = lambda pkt: None
        msgs = [
            CohMsg(op="GetS", addr=i * 64 * 4, requester=1)  # bank 0 lines
            for i in range(0, 16, 4)
        ]
        bulk = CohMsg(op="GetSBulk", addr=msgs[0].addr, requester=1,
                      se_info=msgs)
        hier.net.send(Packet(
            src=1, dst=0, kind=CTRL, payload_bits=192, dst_port="l3",
            body=bulk,
        ))
        hier.run()
        assert hier.stats["l3.requests.gets"] == len(msgs)
        assert hier.stats["l3.misses"] == len(msgs)


class TestWaitQueue:
    def test_mshr_pressure_parks_and_drains(self, hier):
        # Inject more concurrent distinct-line reads at one bank than
        # it has MSHRs (raw injection bypasses the L1/L2 throttles).
        hier.net._handlers[(1, "l2")] = lambda pkt: None
        mshrs = hier.banks[0].mshr.capacity
        n = mshrs * 3
        for i in range(n):
            hier.net.send(Packet(
                src=1, dst=0, kind=CTRL, payload_bits=0, dst_port="l3",
                body=CohMsg(op="GetS", addr=i * 4 * 64, requester=1),
            ))
        hier.run()
        assert hier.stats["l3.mshr_full_waits"] > 0
        assert hier.stats["l3.misses"] == n
        assert not hier.banks[0]._waitq
        assert len(hier.banks[0].mshr) == 0


class TestGetUMisc:
    def test_remote_getu_without_se_answers_directly(self, hier):
        got = []
        hier.net.register(2, "se_l2", lambda pkt: got.append(pkt))
        hier.net.send(Packet(
            src=2, dst=0, kind=CTRL, payload_bits=0, dst_port="l3",
            body=CohMsg(op="GetU", addr=0x0, requester=2, data_bytes=8),
        ))
        hier.run()
        assert len(got) == 1
        assert got[0].body.op == "DataU"
        assert got[0].body.data_bytes == 8

    def test_getu_after_llc_hit_no_dram(self, hier):
        hier.read(3, 0x0)
        hier.read(1, 0x0)  # bank now holds the line (downgrade)
        hier.run()
        before = hier.stats["dram.reads"]
        got = []
        hier.net.register(2, "se_l2", lambda pkt: got.append(pkt))
        hier.net.send(Packet(
            src=2, dst=0, kind=CTRL, payload_bits=0, dst_port="l3",
            body=CohMsg(op="GetU", addr=0x0, requester=2),
        ))
        hier.run()
        assert got
        assert hier.stats["dram.reads"] == before
