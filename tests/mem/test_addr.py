"""Tests for address arithmetic and NUCA interleaving."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.addr import (
    LINE_SIZE,
    PAGE_SIZE,
    NucaMap,
    line_addr,
    line_index,
    line_offset,
    lines_covered,
    page_addr,
    same_line,
    same_page,
)


def test_line_alignment():
    assert line_addr(0x1234) == 0x1200
    assert line_offset(0x1234) == 0x34
    assert line_index(0x1240) == 0x49


def test_page_alignment():
    assert page_addr(0x12345) == 0x12000


def test_same_line_and_page():
    assert same_line(0x100, 0x13F)
    assert not same_line(0x100, 0x140)
    assert same_page(0x1000, 0x1FFF)
    assert not same_page(0x1000, 0x2000)


def test_lines_covered_spanning():
    # 8 bytes at the very end of a line touch two lines.
    covered = lines_covered(LINE_SIZE - 4, 8)
    assert list(covered) == [0, 1]
    assert list(lines_covered(0, LINE_SIZE)) == [0]


def test_lines_covered_rejects_empty():
    with pytest.raises(ValueError):
        lines_covered(0, 0)


@given(st.integers(min_value=0, max_value=2**48 - 1))
def test_line_addr_idempotent(addr):
    assert line_addr(line_addr(addr)) == line_addr(addr)
    assert line_addr(addr) <= addr < line_addr(addr) + LINE_SIZE


class TestNucaMap:
    def test_round_robin_at_line_grain(self):
        nuca = NucaMap(num_banks=4, interleave=64)
        banks = [nuca.bank_of(i * 64) for i in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_coarse_interleave(self):
        nuca = NucaMap(num_banks=4, interleave=1024)
        assert nuca.bank_of(0) == nuca.bank_of(1023)
        assert nuca.bank_of(1024) == 1
        assert nuca.chunk_base(1500) == 1024
        assert nuca.chunk_end(1500) == 2048

    def test_same_bank(self):
        nuca = NucaMap(num_banks=16, interleave=256)
        assert nuca.same_bank(0, 255)
        assert not nuca.same_bank(0, 256)

    def test_rejects_sub_line_interleave(self):
        with pytest.raises(ValueError):
            NucaMap(num_banks=4, interleave=32)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            NucaMap(num_banks=4, interleave=192)

    @given(
        st.integers(min_value=0, max_value=2**40),
        st.sampled_from([64, 256, 1024, 4096]),
    )
    def test_banks_in_range(self, addr, interleave):
        nuca = NucaMap(num_banks=16, interleave=interleave)
        assert 0 <= nuca.bank_of(addr) < 16

    @given(st.integers(min_value=0, max_value=2**40))
    def test_chunk_contains_addr(self, addr):
        nuca = NucaMap(num_banks=8, interleave=1024)
        assert nuca.chunk_base(addr) <= addr < nuca.chunk_end(addr)
