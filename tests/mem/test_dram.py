"""Tests for the DRAM controllers."""

import pytest

from repro.mem.coherence import CohMsg
from repro.mem.dram import DramSystem
from repro.noc.message import CTRL, Packet
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.sim import Simulator, Stats


def make_system(cols=4, rows=4, latency=100, cycles_per_line=40):
    sim = Simulator()
    stats = Stats()
    net = Network(sim, Mesh(cols, rows), stats)
    dram = DramSystem(sim, net, stats, access_latency=latency,
                      cycles_per_line=cycles_per_line)
    return sim, stats, net, dram


def read(sim, net, dram, addr, src=5, replies=None):
    net.send(Packet(
        src=src, dst=dram.controller_tile(addr), kind=CTRL,
        payload_bits=0, dst_port="dram",
        body=CohMsg(op="MemRead", addr=addr, requester=src),
    ))


def test_four_corner_controllers():
    _, _, _, dram = make_system()
    tiles = {c.tile for c in dram.controllers}
    assert tiles == {0, 3, 12, 15}


def test_page_interleaved_mapping():
    _, _, _, dram = make_system()
    # Lines within a page share a controller; consecutive pages rotate.
    assert dram.controller_tile(0x0) == dram.controller_tile(0xFC0)
    pages = {dram.controller_tile(p << 12) for p in range(4)}
    assert len(pages) == 4


def test_read_latency_and_response():
    sim, stats, net, dram = make_system()
    got = []
    net.register(5, "l3", lambda pkt: got.append((sim.now, pkt)))
    read(sim, net, dram, 0x0)
    sim.run()
    assert stats["dram.reads"] == 1
    assert len(got) == 1
    when, pkt = got[0]
    assert pkt.body.op == "MemData"
    assert when >= 100  # at least the access latency


def test_bandwidth_serializes_back_to_back_reads():
    sim, stats, net, dram = make_system(latency=100, cycles_per_line=40)
    got = []
    net.register(5, "l3", lambda pkt: got.append(sim.now))
    for i in range(4):
        read(sim, net, dram, i * 64)  # same page -> same controller
    sim.run()
    assert len(got) == 4
    # Responses spaced by the 40-cycle line service time.
    deltas = [b - a for a, b in zip(got, got[1:])]
    assert all(d >= 40 for d in deltas)


def test_different_controllers_run_in_parallel():
    sim, stats, net, dram = make_system()
    got = []
    net.register(5, "l3", lambda pkt: got.append(sim.now))
    for p in range(4):  # four pages -> four controllers
        read(sim, net, dram, p << 12)
    sim.run()
    # All four complete within a controller's single-read window of
    # each other (no serialization across controllers; NoC distances
    # differ per corner).
    assert max(got) - min(got) < 40 + 60


def test_write_absorbed_no_response():
    sim, stats, net, dram = make_system()
    net.register(5, "l3", lambda pkt: (_ for _ in ()).throw(AssertionError))
    net.send(Packet(
        src=5, dst=dram.controller_tile(0), kind=CTRL, payload_bits=512,
        dst_port="dram",
        body=CohMsg(op="MemWrite", addr=0, requester=5),
    ))
    sim.run()
    assert stats["dram.writes"] == 1


def test_unknown_op_rejected():
    sim, stats, net, dram = make_system()
    net.send(Packet(
        src=5, dst=0, kind=CTRL, payload_bits=0, dst_port="dram",
        body=CohMsg(op="GetS", addr=0, requester=5),
    ))
    with pytest.raises(ValueError):
        sim.run()
