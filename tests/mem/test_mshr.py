"""Tests for the MSHR file."""

import pytest

from repro.mem.mshr import MshrFile


def test_allocate_and_lookup_by_line():
    m = MshrFile(4)
    entry = m.allocate(0x1234, now=10)
    assert entry.addr == 0x1200
    assert entry.issued_cycle == 10
    # Any address in the same line finds the entry.
    assert m.lookup(0x1210) is entry
    assert m.lookup(0x1300) is None


def test_merge_waiters():
    m = MshrFile(2)
    entry = m.allocate(0x40, now=0)
    results = []
    entry.waiters.append(results.append)
    entry.waiters.append(results.append)
    released = m.release(0x40)
    for waiter in released.waiters:
        waiter("data")
    assert results == ["data", "data"]


def test_capacity_enforced():
    m = MshrFile(1)
    m.allocate(0x0, now=0)
    assert m.full
    with pytest.raises(RuntimeError):
        m.allocate(0x40, now=0)
    m.release(0x0)
    assert not m.full
    m.allocate(0x40, now=0)


def test_duplicate_allocation_rejected():
    m = MshrFile(4)
    m.allocate(0x80, now=0)
    with pytest.raises(ValueError):
        m.allocate(0xA0, now=0)  # same line


def test_release_unknown_raises():
    m = MshrFile(4)
    with pytest.raises(KeyError):
        m.release(0x40)


def test_outstanding_listing():
    m = MshrFile(4)
    m.allocate(0x100, now=0)
    m.allocate(0x40, now=0)
    assert m.outstanding() == [0x40, 0x100]
    assert len(m) == 2


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        MshrFile(0)
