"""Tests for the event tracer."""

import pytest

from repro.sim.trace import TraceEvent, Tracer
from repro.system import Chip, make_config
from repro.workloads import build_programs


def traced_run(kinds=None, workload="hotspot", config="sf"):
    chip = Chip(make_config(config, core="ooo4", cols=2, rows=2, scale=32))
    tracer = Tracer(chip, kinds=kinds)
    programs = build_programs(workload, chip.num_cores, scale=32)
    chip.run(programs)
    return tracer


def test_records_floats_and_migrations():
    tracer = traced_run(kinds=("float", "migrate"))
    assert tracer.of_kind("float"), "no floats traced"
    assert tracer.of_kind("migrate"), "no migrations traced"
    # Kinds filter respected.
    assert not tracer.of_kind("credit")


def test_all_kinds_by_default():
    tracer = traced_run()
    kinds = {ev.kind for ev in tracer.events}
    assert "float" in kinds
    assert "credit" in kinds or "migrate" in kinds


def test_events_are_time_ordered():
    tracer = traced_run(kinds=("float", "sink", "migrate", "end"))
    cycles = [ev.cycle for ev in tracer.events]
    assert cycles == sorted(cycles)


def test_capacity_bounds_buffer():
    chip = Chip(make_config("sf", core="ooo4", cols=2, rows=2, scale=32))
    tracer = Tracer(chip, capacity=10)
    programs = build_programs("hotspot", chip.num_cores, scale=32)
    chip.run(programs)
    assert len(tracer.events) <= 10


def test_summary_and_str():
    tracer = traced_run(kinds=("float",))
    text = tracer.summary()
    assert "float" in text
    ev = tracer.events[0]
    assert "float" in str(ev)
    assert str(ev.tile) in str(ev)


def test_unknown_kind_rejected():
    chip = Chip(make_config("sf", core="ooo4", cols=2, rows=2, scale=32))
    with pytest.raises(ValueError):
        Tracer(chip, kinds=("teleport",))


def test_tracing_does_not_change_results():
    def run(with_tracer):
        chip = Chip(make_config("sf", core="ooo4", cols=2, rows=2, scale=32))
        if with_tracer:
            Tracer(chip)
        programs = build_programs("hotspot", chip.num_cores, scale=32)
        return chip.run(programs).cycles

    assert run(True) == run(False)
