"""Tests for the runtime invariant sanitizer (ISSUE 4 tentpole).

The autouse fixture in the root ``conftest.py`` sets
``REPRO_SANITIZE=1`` for every test, so most of the suite exercises
the checkers implicitly; these tests pin the enablement matrix, the
``SanitizerError`` structure, violation detection, and the S5
determinism trace (including across ``--jobs`` worker fan-out).
"""

import os

import pytest

from repro.harness.parallel import run_points
from repro.harness.runner import clear_cache, run_once
from repro.sim import Simulator
from repro.sim.sanitizer import ENV_SANITIZE, SanitizerError, enabled_by_env
from tests.mem.conftest import MiniHierarchy

BASE = 0x20_0000


def clean_hierarchy():
    hier = MiniHierarchy()
    results = []
    for tile in range(4):
        for k in range(6):
            hier.read(tile, BASE + (tile * 6 + k) * 64, results)
    hier.write(0, BASE, results)
    hier.run()
    assert len(results) == 25
    return hier


# ----------------------------------------------------------------------
# enablement matrix
# ----------------------------------------------------------------------
@pytest.mark.no_sanitize
def test_disabled_without_env():
    assert not enabled_by_env()
    sim = Simulator()
    assert sim.sanitizer is None
    # Zero-cost off: the step hook is never installed...
    assert "step" not in sim.__dict__
    # ...and no component wraps its entry points.
    hier = MiniHierarchy()
    assert hier.net._deliver_at.__qualname__.startswith("Network.")


@pytest.mark.no_sanitize
@pytest.mark.parametrize("value", ["", "0", "off", "False", "no"])
def test_off_values(monkeypatch, value):
    monkeypatch.setenv(ENV_SANITIZE, value)
    assert not enabled_by_env()


def test_enabled_by_fixture():
    # The tier-1 autouse fixture turns the sanitizer on.
    assert enabled_by_env()
    sim = Simulator()
    assert sim.sanitizer is not None
    assert "step" in sim.__dict__


def test_clean_run_passes_final_check():
    hier = clean_hierarchy()
    san = hier.sim.sanitizer
    san.final_check()
    assert san.violations == 0
    assert san.trace_events > 0
    assert san.trace_hash != 0


# ----------------------------------------------------------------------
# violation reporting
# ----------------------------------------------------------------------
def test_leaked_mshr_raises_structured_error():
    hier = clean_hierarchy()
    hier.l1s[0].mshr.allocate(0x9000, now=hier.sim.now)
    with pytest.raises(SanitizerError) as exc:
        hier.sim.sanitizer.final_check()
    err = exc.value
    assert err.check == "S2"
    assert err.cycle == hier.sim.now
    assert err.tile == 0
    assert err.obj == [0x9000]
    assert str(err).startswith(f"[S2] cycle {hier.sim.now} tile 0:")
    assert hier.sim.sanitizer.violations == 1


def test_rogue_l2_line_fails_directory_check():
    from repro.mem.cache import MODIFIED

    hier = clean_hierarchy()
    # Forge an L2 line the home directory knows nothing about.
    hier.l2s[3].array.fill(0x77_0000, MODIFIED, now=hier.sim.now)
    with pytest.raises(SanitizerError) as exc:
        hier.sim.sanitizer.final_check()
    assert exc.value.check == "S1"
    assert exc.value.tile == 3


def test_second_writer_detected_at_delivery():
    from repro.mem.cache import MODIFIED

    hier = clean_hierarchy()
    results = []
    hier.write(1, BASE + 0x8000, results)
    hier.run()
    base = BASE + 0x8000
    assert hier.l2s[1].array.lookup(base, touch=False).state == MODIFIED
    # A second M copy appears out of thin air: the next coherence
    # delivery touching that line must trip S1.
    hier.l2s[2].array.fill(base, MODIFIED, now=hier.sim.now)
    hier.read(3, base, results)
    with pytest.raises(SanitizerError) as exc:
        hier.run()
    assert exc.value.check == "S1"
    assert "multiple M/E owners" in str(exc.value)


# ----------------------------------------------------------------------
# S5: determinism trace
# ----------------------------------------------------------------------
def test_trace_hash_reproducible_across_runs():
    a = clean_hierarchy().sim.sanitizer
    b = clean_hierarchy().sim.sanitizer
    assert a.trace_events == b.trace_events
    assert a.trace_hash == b.trace_hash


def test_trace_hash_tracks_the_workload():
    a = clean_hierarchy().sim.sanitizer
    hier = MiniHierarchy()
    results = []
    hier.read(0, BASE, results)
    hier.run()
    b = hier.sim.sanitizer
    assert a.trace_events != b.trace_events


def test_chip_reports_trace_hash_stat():
    record = run_once("nn", "sf", cols=2, rows=2, scale=64,
                      use_cache=False)
    assert record.stats["sanitizer.violations"] == 0
    assert record.stats["sanitizer.trace_events"] > 0
    assert record.stats["sanitizer.trace_hash"] != 0


def test_trace_hash_identical_across_jobs():
    # The S5 check proper: the same simulation points produce the
    # same (cycle, event-name) trace whether simulated serially or in
    # forked worker processes.
    points = [
        dict(workload="nn", config="base", cols=2, rows=2, scale=64),
        dict(workload="nn", config="sf", cols=2, rows=2, scale=64),
    ]
    serial = run_points(points, jobs=1, use_cache=False)
    clear_cache()
    fanned = run_points(points, jobs=2, use_cache=False)
    clear_cache()
    assert serial.keys() == fanned.keys()
    for key in serial:
        assert serial[key].stats["sanitizer.trace_events"] > 0
        assert (serial[key].stats["sanitizer.trace_hash"]
                == fanned[key].stats["sanitizer.trace_hash"])
        assert (serial[key].stats["sanitizer.trace_events"]
                == fanned[key].stats["sanitizer.trace_events"])


# ----------------------------------------------------------------------
# harness flag
# ----------------------------------------------------------------------
@pytest.mark.no_sanitize
def test_cli_sanitize_flag_sets_and_restores_env(capsys):
    from repro.harness.__main__ import main

    assert os.environ.get(ENV_SANITIZE) is None
    clear_cache()
    rc = main([
        "fig2", "--cols", "2", "--rows", "2", "--scale", "64",
        "--workloads", "nn", "--no-cache", "--sanitize",
    ])
    clear_cache()
    assert rc == 0
    assert "Figure 2" in capsys.readouterr().out
    # main() restored the environment on the way out.
    assert os.environ.get(ENV_SANITIZE) is None
