"""Tests for the statistics tree."""

from repro.sim import Histogram, Stats


def test_add_and_get():
    s = Stats()
    s.add("noc.flits.data", 3)
    s.add("noc.flits.data", 2)
    assert s["noc.flits.data"] == 5
    assert s["missing"] == 0
    assert s.get("missing", 7) == 7


def test_group_strips_prefix():
    s = Stats()
    s.add("noc.flits.data", 4)
    s.add("noc.flits.ctrl", 1)
    s.add("l2.hits", 9)
    assert s.group("noc.flits") == {"data": 4, "ctrl": 1}
    assert s.total("noc.flits") == 5


def test_group_requires_dot_boundary():
    s = Stats()
    s.add("l2.hits", 1)
    s.add("l2x.hits", 1)
    assert s.group("l2") == {"hits": 1}


def test_merge_adds_counters():
    a, b = Stats(), Stats()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 3)
    a.merge(b)
    assert a["x"] == 3
    assert a["y"] == 3


def test_maximize():
    s = Stats()
    s.maximize("peak", 5)
    s.maximize("peak", 3)
    assert s["peak"] == 5


def test_set_overwrites():
    s = Stats()
    s.add("v", 10)
    s.set("v", 2)
    assert s["v"] == 2


def test_dump_lists_sorted():
    s = Stats()
    s.add("b", 1)
    s.add("a", 2)
    lines = s.dump().splitlines()
    assert lines[0].startswith("a")
    assert lines[1].startswith("b")


def test_histogram_basics():
    h = Histogram(bucket_size=10)
    for v in (1, 5, 12, 99):
        h.record(v)
    assert h.count == 4
    assert h.mean == (1 + 5 + 12 + 99) / 4
    assert h.min == 1
    assert h.max == 99
    assert h.buckets() == [(0, 2), (10, 1), (90, 1)]


def test_histogram_empty_mean_is_zero():
    assert Histogram().mean == 0.0


def test_histogram_empty_min_max_are_finite():
    """Regression: an empty histogram read min/max as ±inf, which
    poisoned means/report lines and is not JSON-serializable."""
    import json
    import math

    h = Histogram()
    assert h.min == 0.0
    assert h.max == 0.0
    assert math.isfinite(h.min) and math.isfinite(h.max)
    # JSON round-trips (json.dumps(inf) emits the non-standard
    # `Infinity`, rejected by strict parsers).
    assert json.loads(json.dumps({"min": h.min, "max": h.max}))


def test_histogram_min_max_track_after_records():
    h = Histogram()
    h.record(7)
    assert (h.min, h.max) == (7, 7)
    h.record(3)
    h.record(40)
    assert (h.min, h.max) == (3, 40)


def test_stats_to_from_dict_roundtrip():
    s = Stats()
    s.add("noc.flits.data", 12)
    s.set("l2.hits", 0.5)
    restored = Stats.from_dict(s.to_dict())
    assert restored.as_dict() == s.as_dict()
    assert restored["noc.flits.data"] == 12
    # The restored object is independent and still a working Stats.
    restored.add("noc.flits.data", 1)
    assert s["noc.flits.data"] == 12
