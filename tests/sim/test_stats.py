"""Tests for the statistics tree."""

import pytest

from repro.sim import Histogram, Stats


def test_add_and_get():
    s = Stats()
    s.add("noc.flits.data", 3)
    s.add("noc.flits.data", 2)
    assert s["noc.flits.data"] == 5
    assert s["missing"] == 0
    assert s.get("missing", 7) == 7


def test_group_strips_prefix():
    s = Stats()
    s.add("noc.flits.data", 4)
    s.add("noc.flits.ctrl", 1)
    s.add("l2.hits", 9)
    assert s.group("noc.flits") == {"data": 4, "ctrl": 1}
    assert s.total("noc.flits") == 5


def test_group_requires_dot_boundary():
    s = Stats()
    s.add("l2.hits", 1)
    s.add("l2x.hits", 1)
    assert s.group("l2") == {"hits": 1}


def test_merge_adds_counters():
    a, b = Stats(), Stats()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 3)
    a.merge(b)
    assert a["x"] == 3
    assert a["y"] == 3


def test_maximize():
    s = Stats()
    s.maximize("peak", 5)
    s.maximize("peak", 3)
    assert s["peak"] == 5


def test_set_overwrites():
    s = Stats()
    s.add("v", 10)
    s.set("v", 2)
    assert s["v"] == 2


def test_dump_lists_sorted():
    s = Stats()
    s.add("b", 1)
    s.add("a", 2)
    lines = s.dump().splitlines()
    assert lines[0].startswith("a")
    assert lines[1].startswith("b")


def test_histogram_basics():
    h = Histogram(bucket_size=10)
    for v in (1, 5, 12, 99):
        h.record(v)
    assert h.count == 4
    assert h.mean == (1 + 5 + 12 + 99) / 4
    assert h.min == 1
    assert h.max == 99
    assert h.buckets() == [(0, 2), (10, 1), (90, 1)]


def test_histogram_empty_mean_is_zero():
    assert Histogram().mean == 0.0


def test_histogram_empty_min_max_are_finite():
    """Regression: an empty histogram read min/max as ±inf, which
    poisoned means/report lines and is not JSON-serializable."""
    import json
    import math

    h = Histogram()
    assert h.min == 0.0
    assert h.max == 0.0
    assert math.isfinite(h.min) and math.isfinite(h.max)
    # JSON round-trips (json.dumps(inf) emits the non-standard
    # `Infinity`, rejected by strict parsers).
    assert json.loads(json.dumps({"min": h.min, "max": h.max}))


def test_histogram_min_max_track_after_records():
    h = Histogram()
    h.record(7)
    assert (h.min, h.max) == (7, 7)
    h.record(3)
    h.record(40)
    assert (h.min, h.max) == (3, 40)


def test_stats_to_from_dict_roundtrip():
    s = Stats()
    s.add("noc.flits.data", 12)
    s.set("l2.hits", 0.5)
    restored = Stats.from_dict(s.to_dict())
    assert restored.as_dict() == s.as_dict()
    assert restored["noc.flits.data"] == 12
    # The restored object is independent and still a working Stats.
    restored.add("noc.flits.data", 1)
    assert s["noc.flits.data"] == 12


def test_maximize_records_first_negative_value():
    """Regression: the defaultdict backing store materialized a 0 on
    the comparison read, so a first *negative* maximize was lost
    (e.g. a slack/credit watermark that starts below zero)."""
    s = Stats()
    s.maximize("slack.min_headroom", -7)
    assert "slack.min_headroom" in s
    assert s["slack.min_headroom"] == -7
    s.maximize("slack.min_headroom", -9)
    assert s["slack.min_headroom"] == -7
    s.maximize("slack.min_headroom", 2)
    assert s["slack.min_headroom"] == 2


def test_reads_have_no_side_effects():
    """get / [] / contains / maximize must never insert keys."""
    s = Stats()
    assert s["phantom"] == 0
    assert s.get("phantom") == 0
    assert "phantom" not in s
    assert s.as_dict() == {}


def test_histogram_percentile():
    h = Histogram(bucket_size=10)
    for v in range(100):  # 0..99, one per value
        h.record(v)
    assert h.percentile(0) == 0
    assert h.percentile(50) == 49  # upper edge of the 40..49 bucket
    assert h.percentile(100) == 99
    # Small p lands in the first bucket.
    assert h.percentile(1) == 9
    with pytest.raises(ValueError):
        h.percentile(101)
    with pytest.raises(ValueError):
        h.percentile(-1)


def test_histogram_percentile_clamps_to_recorded_range():
    h = Histogram(bucket_size=100)
    h.record(3)
    h.record(5)
    # Bucket upper edge is 99, but no recorded value exceeds 5.
    assert h.percentile(99) == 5
    assert h.percentile(0) == 3


def test_histogram_percentile_empty_is_zero():
    assert Histogram().percentile(50) == 0.0


def test_histogram_dict_roundtrip():
    h = Histogram(bucket_size=8)
    for v in (1, 7, 9, 63, 64):
        h.record(v)
    restored = Histogram.from_dict(h.to_dict())
    assert restored.bucket_size == h.bucket_size
    assert restored.count == h.count
    assert restored.sum == h.sum
    assert (restored.min, restored.max) == (h.min, h.max)
    assert restored.buckets() == h.buckets()
    assert restored.percentile(50) == h.percentile(50)
    # JSON-safe: survives an actual dumps/loads cycle.
    import json

    again = Histogram.from_dict(json.loads(json.dumps(h.to_dict())))
    assert again.buckets() == h.buckets()


def test_histogram_empty_dict_roundtrip():
    restored = Histogram.from_dict(Histogram().to_dict())
    assert restored.count == 0
    assert restored.min == 0.0 and restored.max == 0.0
    assert restored.percentile(50) == 0.0
