"""Backend-level tests for the two scheduler implementations.

Every test here runs against both the calendar queue (the default)
and the single-heap reference (``REPRO_KERNEL=heap``): the backends
must be observably identical, and the regression tests for the two
historical kernel bugs — ``run(until=N)`` leaving ``now`` behind on
queue drain, and ``schedule_at`` silently truncating fractional times
— must hold on each.

Tests marked ``no_sanitize`` additionally exercise the inline
``_run_fast`` loop (the tier-1 default attaches the sanitizer's step
hook, which routes ``run()`` through the hooked dispatcher instead).
"""

import pytest

from repro.sim import Simulator
from repro.sim.kernel import (
    CalendarSimulator,
    ENV_KERNEL,
    HeapSimulator,
    kernel_from_env,
)


@pytest.fixture(params=["calendar", "heap"])
def backend(request, monkeypatch):
    monkeypatch.setenv(ENV_KERNEL, request.param)
    return request.param


@pytest.fixture
def sim(backend):
    return Simulator()


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
def test_env_selects_backend(backend, sim):
    expected = HeapSimulator if backend == "heap" else CalendarSimulator
    assert type(sim) is expected


def test_unknown_kernel_env_rejected(monkeypatch):
    monkeypatch.setenv(ENV_KERNEL, "fibonacci")
    with pytest.raises(ValueError, match="fibonacci"):
        kernel_from_env()


def test_default_is_calendar(monkeypatch):
    monkeypatch.delenv(ENV_KERNEL, raising=False)
    assert kernel_from_env() == "calendar"


# ----------------------------------------------------------------------
# regression: run(until=N) must advance now to N when the queue drains
# ----------------------------------------------------------------------
def test_run_until_advances_now_past_drained_queue(sim):
    fired = []
    sim.schedule(3, fired.append, "only")
    assert sim.run(until=10) == 10
    assert fired == ["only"]
    assert sim.now == 10  # historically stuck at 3


def test_run_until_on_empty_queue_advances_now(sim):
    assert sim.run(until=7) == 7
    assert sim.now == 7


@pytest.mark.no_sanitize
def test_run_until_advances_now_fast_path(sim):
    # Same regression against the inline loop (no step hook attached).
    assert "step" not in sim.__dict__
    sim.schedule(2, lambda: None)
    sim.run(until=25)
    assert sim.now == 25
    # Scheduling relative to the advanced time must land correctly.
    fired = []
    sim.schedule(5, fired.append, "next")
    sim.run()
    assert fired == ["next"]
    assert sim.now == 30


# ----------------------------------------------------------------------
# regression: fractional schedule times are rejected, never truncated
# ----------------------------------------------------------------------
def test_schedule_at_fractional_rejected(sim):
    sim.schedule(10, lambda: None)
    sim.run()
    assert sim.now == 10
    with pytest.raises(ValueError, match="whole cycle"):
        sim.schedule_at(10.7, lambda: None)


def test_schedule_at_fractional_below_now_rejected_as_fractional(sim):
    """int(10.4) == 10 would slip past a truncate-after-compare guard;
    the coercion must reject the fraction before the past-check."""
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError, match="whole cycle"):
        sim.schedule_at(10.4, lambda: None)


def test_schedule_at_integral_float_accepted(sim):
    fired = []
    sim.schedule_at(6.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [6]
    assert sim.now == 6


def test_schedule_fractional_delay_rejected(sim):
    with pytest.raises(ValueError, match="whole number"):
        sim.schedule(0.5, lambda: None)


def test_schedule_integral_float_delay_accepted(sim):
    fired = []
    sim.schedule(4.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [4]


# ----------------------------------------------------------------------
# shared ordering semantics
# ----------------------------------------------------------------------
def test_fifo_within_cycle(sim):
    order = []
    for tag in range(8):
        sim.schedule(5, order.append, tag)
    sim.run()
    assert order == list(range(8))


@pytest.mark.no_sanitize
def test_zero_delay_fifo_fast_path(sim):
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0, order.append, "inner")

    sim.schedule(1, outer)
    sim.schedule(1, order.append, "peer")
    sim.run()
    assert order == ["outer", "peer", "inner"]


def test_events_pending_and_executed(sim):
    sim.schedule(1, lambda: None)
    sim.schedule(5000, lambda: None)  # calendar: overflow heap
    assert sim.events_pending == 2
    sim.run()
    assert sim.events_pending == 0
    assert sim.events_executed == 2


def test_count_inlined_events(sim):
    sim.schedule(1, sim.count_inlined_events, 3)
    sim.run()
    assert sim.events_executed == 4  # one dispatch + three credited


# ----------------------------------------------------------------------
# calendar-specific mechanics
# ----------------------------------------------------------------------
@pytest.fixture
def cal(monkeypatch):
    monkeypatch.setenv(ENV_KERNEL, "calendar")
    return Simulator()


def test_calendar_bucket_wraparound(cal):
    """Events exactly RING cycles apart share a bucket index; the
    earlier one must run and clear before the later becomes visible."""
    ring = cal.RING
    order = []
    cal.schedule_at(10, order.append, "first")
    cal.schedule_at(10 + ring, order.append, "wrapped")  # same bucket
    cal.schedule_at(10 + 2 * ring, order.append, "wrapped-again")
    cal.run()
    assert order == ["first", "wrapped", "wrapped-again"]
    assert cal.now == 10 + 2 * ring


def test_calendar_overflow_migration_preserves_fifo(cal):
    """A far-future event (scheduled first, via the overflow heap)
    must still run before a same-cycle event inserted directly into
    the ring after the window reached that cycle."""
    target = cal.RING * 2 + 5
    order = []
    cal.schedule_at(target, order.append, "overflow-first")
    # Advance the window so `target` migrates into the ring...
    cal.schedule(cal.RING + 10, lambda: None)
    cal.run(until=cal.RING + 10)
    # ...then insert directly at the same cycle.
    cal.schedule_at(target, order.append, "direct-second")
    cal.run()
    assert order == ["overflow-first", "direct-second"]


def test_calendar_far_future_goes_to_overflow(cal):
    cal.schedule(cal.RING + 100, lambda: None)
    assert len(cal._overflow) == 1
    assert cal._ring_count == 0
    cal.run()
    assert cal.events_executed == 1


def test_calendar_dense_reschedule_storm(cal):
    """Self-rescheduling actors across bucket wraparound boundaries:
    event counts and final time must match the heap reference."""
    horizon = cal.RING * 3 + 17
    ticks = []

    def tick(period):
        ticks.append(cal.now)
        cal.schedule(period, tick, period)

    for i in range(5):
        cal.schedule(i, tick, 1 + i)
    cal.run(until=horizon)
    assert cal.now == horizon
    assert ticks == sorted(ticks)
    expected = sum(
        len(range(i, horizon + 1, 1 + i)) for i in range(5)
    )
    assert len(ticks) == expected


def test_calendar_step_matches_run_order(monkeypatch):
    monkeypatch.setenv(ENV_KERNEL, "calendar")
    run_order = []
    sim = Simulator()
    for d, tag in ((3, "a"), (3, "b"), (1, "c"), (5000, "z")):
        sim.schedule(d, run_order.append, tag)
    sim.run()

    step_order = []
    sim2 = Simulator()
    for d, tag in ((3, "a"), (3, "b"), (1, "c"), (5000, "z")):
        sim2.schedule(d, step_order.append, tag)
    while sim2.step():
        pass
    assert step_order == run_order == ["c", "a", "b", "z"]
    assert sim2.now == sim.now == 5000
