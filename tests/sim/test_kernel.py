"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator


def test_runs_events_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(10, order.append, "b")
    sim.schedule(5, order.append, "a")
    sim.schedule(20, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 20


def test_same_cycle_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(7, order.append, tag)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_events_scheduled_from_events():
    sim = Simulator()
    seen = []

    def first():
        seen.append(("first", sim.now))
        sim.schedule(3, second)

    def second():
        seen.append(("second", sim.now))

    sim.schedule(2, first)
    sim.run()
    assert seen == [("first", 2), ("second", 5)]


def test_zero_delay_runs_after_earlier_same_cycle_events():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0, order.append, "inner")

    sim.schedule(1, outer)
    sim.schedule(1, order.append, "peer")
    sim.run()
    assert order == ["outer", "peer", "inner"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_run_until_leaves_future_events_queued():
    sim = Simulator()
    fired = []
    sim.schedule(5, fired.append, "early")
    sim.schedule(50, fired.append, "late")
    sim.run(until=10)
    assert fired == ["early"]
    assert sim.now == 10
    assert sim.events_pending == 1
    sim.run()
    assert fired == ["early", "late"]


def test_run_max_events_bound():
    sim = Simulator()
    count = []

    def reschedule():
        count.append(1)
        sim.schedule(1, reschedule)

    sim.schedule(0, reschedule)
    sim.run(max_events=100)
    assert len(count) == 100


def test_step_and_peek():
    sim = Simulator()
    assert sim.peek_time() is None
    assert sim.step() is False
    sim.schedule(4, lambda: None)
    assert sim.peek_time() == 4
    assert sim.step() is True
    assert sim.now == 4
    assert sim.events_executed == 1
