"""Tests for the wormhole network model."""

import pytest

from repro.noc.message import CTRL, DATA, STREAM, Packet, data_payload_bits
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.sim import Simulator, Stats


def make_net(cols=4, rows=4, link_bits=256):
    sim = Simulator()
    stats = Stats()
    net = Network(sim, Mesh(cols, rows), stats, link_bits=link_bits)
    return sim, stats, net


class TestFlits:
    def test_control_is_one_flit(self):
        pkt = Packet(src=0, dst=1, kind=CTRL, payload_bits=0, dst_port="x")
        assert pkt.flits(256) == 1

    def test_cache_line_flits_by_width(self):
        pkt = Packet(
            src=0, dst=1, kind=DATA,
            payload_bits=data_payload_bits(64), dst_port="x",
        )
        assert pkt.flits(128) == 5  # (64 + 512) / 128 = 4.5 -> 5
        assert pkt.flits(256) == 3
        assert pkt.flits(512) == 2

    def test_subline_fewer_flits(self):
        pkt = Packet(
            src=0, dst=1, kind=DATA,
            payload_bits=data_payload_bits(8), dst_port="x",
        )
        assert pkt.flits(256) == 1

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, kind="bogus", payload_bits=0, dst_port="x")


class TestDelivery:
    def test_unicast_latency_and_stats(self):
        sim, stats, net = make_net()
        got = []
        net.register(3, "l3", lambda pkt: got.append((sim.now, pkt)))
        pkt = Packet(src=0, dst=3, kind=CTRL, payload_bits=0, dst_port="l3")
        info = net.send(pkt)
        assert info.hops == 3
        assert info.flits == 1
        sim.run()
        # 3 hops x 6 cycles/hop + (1 flit - 1) serialization = 18.
        assert got[0][0] == 18
        assert stats["noc.packets.ctrl"] == 1
        assert stats["noc.flit_hops.ctrl"] == 3

    def test_local_delivery_zero_hops(self):
        sim, stats, net = make_net()
        got = []
        net.register(5, "l3", lambda pkt: got.append(sim.now))
        pkt = Packet(src=5, dst=5, kind=CTRL, payload_bits=0, dst_port="l3")
        info = net.send(pkt)
        assert info.hops == 0
        sim.run()
        assert got and got[0] >= 1
        assert stats["noc.flit_hops.ctrl"] == 0
        assert stats["noc.flits.ctrl"] == 1

    def test_serialization_adds_latency(self):
        sim, _, net = make_net(link_bits=128)
        got = []
        net.register(1, "l2", lambda pkt: got.append(sim.now))
        pkt = Packet(
            src=0, dst=1, kind=DATA,
            payload_bits=data_payload_bits(64), dst_port="l2",
        )
        assert pkt.flits(128) == 5
        net.send(pkt)
        sim.run()
        # 1 hop x 6 + 4 extra flit cycles = 10.
        assert got[0] == 10

    def test_contention_queues_second_packet(self):
        sim, _, net = make_net()
        arrivals = []
        net.register(1, "l2", lambda pkt: arrivals.append(sim.now))
        big = Packet(
            src=0, dst=1, kind=DATA,
            payload_bits=data_payload_bits(64), dst_port="l2",
        )
        net.send(big)  # occupies link (0,1) for 3 cycles
        net.send(Packet(src=0, dst=1, kind=CTRL, payload_bits=0, dst_port="l2"))
        sim.run()
        first, second = arrivals
        # Second packet departs only after the first's 3 flits.
        assert second >= 3 + 6

    def test_missing_handler_raises(self):
        sim, _, net = make_net()
        with pytest.raises(KeyError):
            net.send(Packet(src=0, dst=1, kind=CTRL, payload_bits=0, dst_port="nope"))


class TestMulticast:
    def test_shared_prefix_counted_once(self):
        sim, stats, net = make_net()
        got = []
        net.register(3, "se_l2", lambda pkt: got.append((3, sim.now)))
        net.register(7, "se_l2", lambda pkt: got.append((7, sim.now)))
        info = net.multicast(
            src=0, dsts=[3, 7], kind=DATA,
            payload_bits=data_payload_bits(64), dst_port="se_l2",
        )
        sim.run()
        assert len(got) == 2
        # Tree links: 3 shared + 1 branch = 4; unicast would use 7.
        assert info.hops == 4
        assert stats["noc.flit_hops.data"] == 4 * 3
        assert stats["noc.multicast.saved_flit_hops"] == (7 - 4) * 3

    def test_multicast_to_single_dst_matches_unicast_hops(self):
        sim, stats, net = make_net()
        net.register(2, "se_l2", lambda pkt: None)
        info = net.multicast(
            src=0, dsts=[2], kind=CTRL, payload_bits=0, dst_port="se_l2",
        )
        assert info.hops == 2

    def test_empty_multicast_rejected(self):
        _, _, net = make_net()
        with pytest.raises(ValueError):
            net.multicast(src=0, dsts=[], kind=CTRL, payload_bits=0, dst_port="x")


def test_utilization():
    sim, stats, net = make_net(cols=2, rows=2)
    net.register(1, "l2", lambda pkt: None)
    net.send(Packet(src=0, dst=1, kind=CTRL, payload_bits=0, dst_port="l2"))
    sim.run()
    # 1 flit-hop over 8 links x 10 cycles.
    assert net.utilization(10) == pytest.approx(1 / 80)
    assert net.utilization(0) == 0.0
