"""Tests for NoC packet encoding and flit math."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.message import (
    CTRL,
    DATA,
    HEADER_BITS,
    STREAM,
    TRAFFIC_CLASSES,
    Packet,
    control_payload_bits,
    data_payload_bits,
)


def test_traffic_classes():
    assert set(TRAFFIC_CLASSES) == {CTRL, DATA, STREAM}


def test_header_bits():
    assert HEADER_BITS == 64


def test_payload_helpers():
    assert data_payload_bits(64) == 512
    assert data_payload_bits(4) == 32
    assert control_payload_bits() == 0
    assert control_payload_bits(6) == 48


def test_packet_ids_unique():
    a = Packet(src=0, dst=1, kind=CTRL, payload_bits=0, dst_port="x")
    b = Packet(src=0, dst=1, kind=CTRL, payload_bits=0, dst_port="x")
    assert a.pid != b.pid


def test_minimum_one_flit():
    pkt = Packet(src=0, dst=1, kind=CTRL, payload_bits=0, dst_port="x")
    assert pkt.flits(4096) == 1


def test_stream_config_flits():
    # A 450-bit stream config (Table I) plus header: 3 flits at 256b.
    pkt = Packet(src=0, dst=1, kind=STREAM, payload_bits=450, dst_port="x")
    assert pkt.flits(256) == 3
    assert pkt.flits(512) == 2


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, kind=CTRL, payload_bits=-1, dst_port="x")


@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from([64, 128, 256, 512]),
)
def test_flits_cover_payload_exactly(payload, width):
    pkt = Packet(src=0, dst=1, kind=DATA, payload_bits=payload, dst_port="x")
    flits = pkt.flits(width)
    total = payload + HEADER_BITS
    assert flits * width >= total
    assert (flits - 1) * width < total or flits == 1


@given(st.integers(min_value=1, max_value=64))
def test_subline_monotone(data_bytes):
    """Bigger payloads never take fewer flits."""
    small = Packet(src=0, dst=1, kind=DATA,
                   payload_bits=data_payload_bits(data_bytes), dst_port="x")
    full = Packet(src=0, dst=1, kind=DATA,
                  payload_bits=data_payload_bits(64), dst_port="x")
    assert small.flits(256) <= full.flits(256)
