"""Tests for the mesh topology and X-Y routing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.topology import Mesh


def test_coords_roundtrip():
    mesh = Mesh(4, 2)
    assert mesh.coords(0) == (0, 0)
    assert mesh.coords(5) == (1, 1)
    assert mesh.tile_at(1, 1) == 5


def test_hops_manhattan():
    mesh = Mesh(8, 8)
    assert mesh.hops(0, 0) == 0
    assert mesh.hops(0, 7) == 7
    assert mesh.hops(0, 63) == 14


def test_route_x_then_y():
    mesh = Mesh(4, 4)
    # From (0,0) to (2,1): x first (0->1->2), then y (row 0 -> row 1).
    route = mesh.route(0, 6)
    assert route == [(0, 1), (1, 2), (2, 6)]


def test_route_negative_directions():
    mesh = Mesh(4, 4)
    route = mesh.route(15, 0)  # (3,3) -> (0,0)
    assert route == [(15, 14), (14, 13), (13, 12), (12, 8), (8, 4), (4, 0)]


def test_route_empty_for_self():
    mesh = Mesh(4, 4)
    assert mesh.route(5, 5) == []


def test_num_links():
    # 2x2 mesh: 4 horizontal + 4 vertical unidirectional links.
    assert Mesh(2, 2).num_links == 8
    # 8x8: 2*7*8 + 2*7*8 = 224.
    assert Mesh(8, 8).num_links == 224


def test_corners():
    mesh = Mesh(8, 8)
    assert mesh.corners() == [0, 7, 56, 63]


def test_block_of():
    mesh = Mesh(8, 8)
    assert mesh.block_of(0) == (0, 0)
    assert mesh.block_of(9) == (0, 0)  # (1,1)
    assert mesh.block_of(2) == (1, 0)
    assert mesh.block_of(63) == (3, 3)


def test_multicast_tree_shares_prefix():
    mesh = Mesh(4, 4)
    routes = mesh.multicast_tree(0, [3, 7])  # (3,0) and (3,1)
    links = Mesh.unique_links(routes)
    # Unicast would be 3 + 4 = 7 link traversals; shared prefix of 3.
    assert len(links) == 4
    assert routes[3] == [(0, 1), (1, 2), (2, 3)]
    assert routes[7] == [(0, 1), (1, 2), (2, 3), (3, 7)]


def test_out_of_range_rejected():
    mesh = Mesh(2, 2)
    with pytest.raises(ValueError):
        mesh.coords(4)
    with pytest.raises(ValueError):
        mesh.tile_at(2, 0)
    with pytest.raises(ValueError):
        Mesh(0, 4)


@given(
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=0, max_value=63),
)
def test_route_length_equals_hops(src, dst):
    mesh = Mesh(8, 8)
    route = mesh.route(src, dst)
    assert len(route) == mesh.hops(src, dst)
    # Route is connected and ends at dst.
    here = src
    for a, b in route:
        assert a == here
        assert mesh.hops(a, b) == 1
        here = b
    assert here == dst


@given(
    st.integers(min_value=0, max_value=15),
    st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=4),
)
def test_multicast_tree_never_worse_than_unicast(src, dsts):
    mesh = Mesh(4, 4)
    routes = mesh.multicast_tree(src, dsts)
    unique = Mesh.unique_links(routes)
    total_unicast = sum(len(r) for r in routes.values())
    assert len(unique) <= total_unicast
