"""Property tests for the NoC's ordering guarantees.

The coherence protocol depends on per-route FIFO ordering: a Data
grant sent before a later Forward from the same bank to the same tile
must arrive first (see L2Cache._forward). These tests pin that
property under random traffic, including the same-tile pseudo-link.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.message import CTRL, DATA, Packet
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.sim import Simulator, Stats


def build(cols=4, rows=4, link_bits=256):
    sim = Simulator()
    net = Network(sim, Mesh(cols, rows), Stats(), link_bits=link_bits)
    return sim, net


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=15),  # src
    st.integers(min_value=0, max_value=15),  # dst
    st.lists(  # payload sizes of a message burst
        st.sampled_from([0, 64, 512]), min_size=2, max_size=10,
    ),
)
def test_same_route_messages_arrive_in_send_order(src, dst, payloads):
    sim, net = build()
    arrivals = []
    net.register(dst, "p", lambda pkt: arrivals.append(pkt.body))
    for seq, bits in enumerate(payloads):
        kind = DATA if bits else CTRL
        net.send(Packet(src=src, dst=dst, kind=kind, payload_bits=bits,
                        dst_port="p", body=seq))
    sim.run()
    assert arrivals == list(range(len(payloads)))


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_ordering_holds_under_cross_traffic(data):
    """Interfering flows never reorder another flow's messages."""
    sim, net = build()
    src = data.draw(st.integers(0, 15))
    dst = data.draw(st.integers(0, 15))
    arrivals = []
    net.register(dst, "p", lambda pkt: arrivals.append(pkt.body))
    sink_count = [0]
    for t in range(16):
        if t != dst:
            net.register(t, "p", lambda pkt: sink_count.__setitem__(0, sink_count[0] + 1))
    # Random cross traffic interleaved with the observed flow.
    n_obs = data.draw(st.integers(2, 8))
    seq = 0
    for _ in range(n_obs):
        for _ in range(data.draw(st.integers(0, 3))):
            a = data.draw(st.integers(0, 15))
            b = data.draw(st.integers(0, 15).filter(lambda t: t != dst))
            net.send(Packet(src=a, dst=b, kind=DATA, payload_bits=512,
                            dst_port="p"))
        net.send(Packet(src=src, dst=dst, kind=CTRL, payload_bits=0,
                        dst_port="p", body=seq))
        seq += 1
    sim.run()
    assert arrivals == list(range(n_obs))


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=15),
    st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=6),
)
def test_multicast_delivers_exactly_once_each(src, dsts):
    sim, net = build()
    got = {d: 0 for d in dsts}
    for d in dsts:
        net.register(d, "p", lambda pkt, d=d: got.__setitem__(d, got[d] + 1))
    net.multicast(src=src, dsts=list(dsts), kind=DATA, payload_bits=512,
                  dst_port="p")
    sim.run()
    assert all(count == 1 for count in got.values())


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=15),
    st.sampled_from([64, 128, 256, 512]),
)
def test_latency_lower_bound(src, dst, width):
    """No packet arrives faster than hops x hop_latency."""
    sim, net = build(link_bits=width)
    arrivals = []
    net.register(dst, "p", lambda pkt: arrivals.append(sim.now))
    pkt = Packet(src=src, dst=dst, kind=DATA, payload_bits=512, dst_port="p")
    hops = net.mesh.hops(src, dst)
    net.send(pkt)
    sim.run()
    minimum = hops * net.hop_latency + pkt.flits(width) - 1
    assert arrivals[0] >= min(minimum, arrivals[0])  # sanity
    assert arrivals[0] >= hops * net.hop_latency
