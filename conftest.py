"""Repo-wide pytest configuration.

The tier-1 suite runs with the runtime invariant sanitizer enabled
(DESIGN.md §7): every :class:`~repro.sim.kernel.Simulator` constructed
during a test attaches checkers, so protocol bugs fail the offending
test at the cycle they happen. Perf-sensitive tests (the benchmark
figures) opt out with the ``no_sanitize`` marker.
"""

import pytest

from repro.sim.sanitizer import ENV_SANITIZE


def pytest_addoption(parser):
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="benchmark runs attach the telemetry kernel profiler "
             "(sanitizer stays off; see benchmarks/conftest.py)",
    )


@pytest.fixture(autouse=True)
def _sanitize_by_default(request, monkeypatch):
    """Enable REPRO_SANITIZE for every test unless marked no_sanitize."""
    if request.node.get_closest_marker("no_sanitize"):
        monkeypatch.delenv(ENV_SANITIZE, raising=False)
    else:
        monkeypatch.setenv(ENV_SANITIZE, "1")
