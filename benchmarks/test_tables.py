"""Tables I-IV: the paper's non-figure artifacts, regenerated.

- Table I: stream configuration packet sizes (450-bit affine, +60 per
  indirect stream; under one cache line).
- Table II: stream history table fields.
- Table III: system parameters (the defaults of SystemParams).
- Table IV: workload dataset parameters (full-size and the scaled
  profile actually simulated).
"""

import numpy as np

from repro.streams.history import HistoryEntry
from repro.streams.isa import (
    AFFINE_CONFIG_BITS,
    AFFINE_FIELDS,
    INDIRECT_CONFIG_BITS,
    INDIRECT_FIELDS,
)
from repro.system.params import CORES, SystemParams
from repro.workloads import ALL_WORKLOADS, get_workload

from conftest import emit, run_figure


def test_table1_config_encoding(benchmark):
    def build():
        lines = ["Table I: stream configuration packet"]
        for field, bits in AFFINE_FIELDS.items():
            lines.append(f"  affine.{field:8s} {bits:4d} bits")
        lines.append(f"  affine total   {AFFINE_CONFIG_BITS} bits "
                     f"(paper: 450, < one 512-bit line)")
        for field, bits in INDIRECT_FIELDS.items():
            lines.append(f"  indirect.{field:6s} {bits:4d} bits")
        lines.append(f"  indirect total {INDIRECT_CONFIG_BITS} bits (paper: 60)")
        return "\n".join(lines)

    text = run_figure(benchmark, build)
    emit("table1_config", text)
    assert AFFINE_CONFIG_BITS == 450
    assert AFFINE_CONFIG_BITS < 512
    assert INDIRECT_CONFIG_BITS == 60


def test_table2_history_fields(benchmark):
    def build():
        ent = HistoryEntry(sid=0)
        fields = sorted(vars(ent))
        return "Table II: stream history table fields: " + ", ".join(fields)

    text = run_figure(benchmark, build)
    emit("table2_history", text)
    ent = HistoryEntry(sid=0)
    for field in ("sid", "requests", "reuses", "misses", "aliased"):
        assert hasattr(ent, field)


def test_table3_system_params(benchmark):
    def build():
        p = SystemParams()
        lines = ["Table III: default system parameters (paper values)"]
        lines.append(f"  mesh              {p.cols}x{p.rows}")
        lines.append(f"  link              {p.link_bits}-bit, "
                     f"{p.router_stages}-stage router")
        lines.append(f"  L1D               {p.l1_size // 1024}kB/"
                     f"{p.l1_ways}-way, {p.l1_latency}-cycle")
        lines.append(f"  L2                {p.l2_size // 1024}kB/"
                     f"{p.l2_ways}-way, {p.l2_latency}-cycle")
        lines.append(f"  L3 bank           {p.l3_bank_size // 1024}kB/"
                     f"{p.l3_ways}-way, {p.l3_latency}-cycle, "
                     f"{p.l3_interleave}B interleave, {p.replacement}")
        lines.append(f"  SE_L2 buffer      {p.se_l2_buffer_bytes // 1024}kB")
        lines.append(f"  SE_L3 streams     {p.se_l3_max_streams}")
        for name, core in CORES.items():
            lines.append(
                f"  {name:6s} width={core.issue_width} window={core.window} "
                f"LQ={core.lq} SQ={core.sq} FIFO={core.se_fifo_bytes}B"
            )
        return "\n".join(lines)

    text = run_figure(benchmark, build)
    emit("table3_params", text)
    p = SystemParams()
    assert (p.cols, p.rows) == (8, 8)
    assert p.l2_size == 256 * 1024
    assert p.l3_bank_size == 1024 * 1024
    assert p.se_l2_buffer_bytes == 16 * 1024
    assert p.se_l3_max_streams == 768
    assert CORES["io4"].se_fifo_bytes == 256
    assert CORES["ooo8"].se_fifo_bytes == 2048


def test_table4_datasets(benchmark):
    def build():
        lines = ["Table IV: workload datasets (paper / simulated scale 16)"]
        for name in ALL_WORKLOADS:
            cls = get_workload(name)
            wl = cls(num_cores=16, scale=16)
            wl.build()
            footprint = wl.layout.footprint()
            lines.append(
                f"  {name:15s} paper: {cls.META.table_iv:35s} "
                f"scaled footprint: {footprint // 1024} kB"
            )
        return "\n".join(lines)

    text = run_figure(benchmark, build)
    emit("table4_datasets", text)
    # Every workload builds, and scaled footprints sit in the regime
    # the paper targets: bigger than the scaled private L2 (8 kB).
    for name in ALL_WORKLOADS:
        wl = get_workload(name)(num_cores=16, scale=16)
        wl.build()
        assert wl.layout.footprint() > 8 * 1024, name
