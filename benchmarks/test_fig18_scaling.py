"""Figure 18: core scaling — SF's speedup over SS as the mesh grows.

Paper: SF over SS holds or improves with core count (1.30x at 4x4 to
1.32x at 8x8), with the largest gains where the working set fits the
L3 but the private L2 hit rate is low (floating relieves NoC pressure
and saves L2 capacity); DRAM-bound workloads (mv at 4x8) gain little.
"""

from repro.harness import experiments, report
from repro.harness.experiments import geomean

from conftest import PROFILE, emit, run_figure

MESHES = ((2, 2), (4, 4), (4, 8))


def test_fig18_scaling(benchmark):
    data = run_figure(
        benchmark,
        lambda: experiments.fig18_scaling(
            meshes=MESHES, scale=PROFILE["scale"],
        ),
    )
    emit("fig18_scaling", report.render_fig18(data))

    gm = {
        mesh: geomean([cells[mesh].sf_over_ss for cells in data.values()])
        for mesh in MESHES
    }
    # SF beats SS at the paper-like sizes, and the advantage grows
    # from small meshes (the paper: 1.30x @4x4 -> 1.32x @8x8; tiny
    # 4-core meshes have little NoC for floating to save).
    assert gm[(4, 4)] > 1.0, gm
    assert gm[(4, 8)] > 1.0, gm
    assert gm[(4, 4)] > gm[(2, 2)] * 0.95, gm
