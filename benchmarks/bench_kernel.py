#!/usr/bin/env python
"""Kernel benchmark: dispatch throughput + end-to-end figure points.

Writes ``BENCH_kernel.json`` at the repo root (or ``--out``). The
committed copy is the performance baseline CI's bench-smoke job diffs
against: the S5 determinism hash per figure point must match exactly,
and events/sec must not regress by more than 20%.

Two measurement sections:

``kernel_stress``
    Pure scheduler throughput (events/sec) for each backend — a storm
    of self-rescheduling actors, no simulation model attached — at
    several queue depths. This isolates what the calendar queue
    replaced: heap push/pop is O(log n) against the ring's O(1), so
    the ratio grows with depth (~2.3x shallow, >3x at 32k actors).

``figure_points``
    Full fast-profile (4x4, scale 16) simulation points. Each point
    runs twice: a *hash pass* with the sanitizer attached (recording
    the S5 trace hash that pins determinism across kernel changes)
    and a *perf pass* without it (wall-clock, events executed,
    events/sec — the numbers a simulation user actually sees).

``seed_baseline`` embeds the pre-PR numbers (heap kernel, pre-slot-
array memory system) measured on the same machine class, so the JSON
carries its own reference: ``speedup_vs_seed`` per point.

``trajectory`` accumulates across runs instead of being overwritten:
each invocation appends one entry (git SHA + date + per-point
events/sec + trace hash), so the committed JSON records how kernel
performance moved PR over PR rather than only its latest value.

On a ``--check`` S5 hash mismatch the script doesn't stop at "hashes
differ": it runs the two-pass divergence localizer between the heap
and calendar backends on each mismatching point and writes
``DIVERGENCE_kernel.json`` naming the first divergent (cycle, event,
handler) — or recording that the backends agree, which means the
hash change is semantic (a handler/model change) rather than a
scheduling bug.

Usage::

    python benchmarks/bench_kernel.py            # full run
    python benchmarks/bench_kernel.py --quick    # CI smoke subset
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_kernel.json")

# Fast-profile geometry (benchmarks/conftest.py PROFILE).
PROFILE = dict(cols=4, rows=4, scale=16)

# Named geometry variants: "<workload>/<config>@<variant>" points run
# with these overrides instead of PROFILE. The 8x8 point makes the
# paper's full 64-core mesh a routine benchmark geometry.
GEOMETRY_OVERRIDES = {
    "mv/sf@8x8": dict(cols=8, rows=8, scale=4),
}

# Pre-PR reference: the seed commit (telemetry-layer PR) measured on
# the *current* machine with the sanitizer off on the same profile —
# interleaved A/B medians against HEAD, since wall-clock on this host
# class wanders ±10-15% between processes. ``calls_per_event`` is the
# cProfile total-call count divided by logical events (deterministic,
# so a single pass suffices).
SEED_BASELINE = {
    "mv/sf": {"wall_s": 0.921, "events": 84145, "events_per_s": 91325,
              "calls_per_event": 43.5},
    "mv/base": {"wall_s": 1.173, "events": 86225, "events_per_s": 73503,
                "calls_per_event": 42.0},
    "conv3d/sf": {"wall_s": 0.445, "events": 48657, "events_per_s": 109418,
                  "calls_per_event": 38.3},
    "bfs/sf": {"wall_s": 6.866, "events": 555791, "events_per_s": 80942,
               "calls_per_event": 40.8},
    "pathfinder/sf": {"wall_s": 4.807, "events": 279205,
                      "events_per_s": 58084, "calls_per_event": 45.9},
    "hotspot/sf": {"wall_s": 4.807, "events": 332147,
                   "events_per_s": 69092, "calls_per_event": 47.3},
    "mv/sf@8x8": {"wall_s": 22.284, "events": 1351351,
                  "events_per_s": 60641, "calls_per_event": 52.5},
}

# stencil_tiled/sf_smart exercises the adaptive policy's revocation
# path (float -> revoke -> cooldown) end to end; it has no entry in
# SEED_BASELINE (the workload postdates the seed), so only its S5
# hash and events/sec gate in CI.
FULL_POINTS = ["mv/sf", "mv/base", "conv3d/sf", "bfs/sf",
               "pathfinder/sf", "hotspot/sf", "mv/sf@8x8",
               "stencil_tiled/sf_smart"]
QUICK_POINTS = ["mv/sf", "conv3d/sf", "mv/sf@8x8",
                "stencil_tiled/sf_smart"]

STRESS_DEPTHS_FULL = [64, 1024, 8192, 32768]
STRESS_DEPTHS_QUICK = [64, 1024]


# ----------------------------------------------------------------------
# section 1: raw scheduler throughput
# ----------------------------------------------------------------------
def stress_backend(backend: str, n_actors: int, target_events: int) -> Dict:
    """Self-rescheduling actor storm; returns events/sec for one
    backend. The horizon is sized so every depth runs a comparable
    number of events."""
    os.environ["REPRO_KERNEL"] = backend
    from repro.sim.kernel import Simulator

    sim = Simulator()

    def tick(period: int) -> None:
        sim.schedule(period, tick, period)

    for i in range(n_actors):
        sim.schedule(i % 7, tick, 1 + (i % 5))
    # Each cycle runs ~n_actors * mean(1/period) events.
    per_cycle = sum(1.0 / (1 + (i % 5)) for i in range(n_actors))
    horizon = max(64, int(target_events / per_cycle))
    t0 = time.perf_counter()
    sim.run(until=horizon)
    wall = time.perf_counter() - t0
    return {
        "backend": backend,
        "actors": n_actors,
        "events": sim.events_executed,
        "wall_s": round(wall, 4),
        "events_per_s": int(sim.events_executed / wall),
    }


def run_stress(depths: List[int], target_events: int) -> List[Dict]:
    rows = []
    for depth in depths:
        heap = stress_backend("heap", depth, target_events)
        cal = stress_backend("calendar", depth, target_events)
        rows.append({
            "actors": depth,
            "heap_events_per_s": heap["events_per_s"],
            "calendar_events_per_s": cal["events_per_s"],
            "ratio": round(cal["events_per_s"] / heap["events_per_s"], 3),
            "events": cal["events"],
        })
    return rows


# ----------------------------------------------------------------------
# section 2: end-to-end figure points
# ----------------------------------------------------------------------
def _build_chip(workload: str, config: str, params: Dict):
    """Fresh chip + programs for one measurement pass (a Chip cannot
    be re-run)."""
    from repro.system.chip import Chip
    from repro.system.configs import make_config
    from repro.workloads.base import build_programs

    system = make_config(
        config, core=params["core"], cols=params["cols"],
        rows=params["rows"], scale=params["scale"],
        link_bits=params["link_bits"],
        l3_interleave=params["l3_interleave"],
    )
    chip = Chip(system)
    programs = build_programs(
        workload, chip.num_cores, scale=params["scale"],
        seed=params["seed"],
    )
    return chip, programs


def run_point(name: str, hash_pass: bool, calls_pass: bool = True) -> Dict:
    """One figure-point simulation; returns timing + determinism info.

    Up to three separate simulations per point:

    - *hash pass* (sanitizer on): records the S5 trace hash that pins
      determinism across kernel changes. Separate because the
      sanitizer's step hook bypasses the kernel's inline run loop, so
      timing with it attached would measure the checker.
    - *perf pass* (sanitizer off): wall-clock, events, events/sec.
    - *calls pass* (cProfile): total Python calls / logical event —
      the handler-layer overhead metric the fast-path work drives
      down. Deterministic, so one pass suffices; kept out of the perf
      pass because profiling costs ~2-3x wall-clock.
    """
    from repro.harness.runner import run_params, simulate

    base_name, _, variant = name.partition("@")
    workload, config = base_name.split("/")
    profile = dict(PROFILE, **GEOMETRY_OVERRIDES[name]) if variant else PROFILE

    os.environ.pop("REPRO_KERNEL", None)  # default backend (calendar)
    params = run_params(workload, config, **profile)

    trace_hash: Optional[int] = None
    trace_events: Optional[int] = None
    if hash_pass:
        os.environ["REPRO_SANITIZE"] = "1"
        rec = simulate(params)
        trace_hash = int(rec.stats.get("sanitizer.trace_hash"))
        trace_events = int(rec.stats.get("sanitizer.trace_events"))
        assert rec.stats.get("sanitizer.violations", 0) == 0

    os.environ["REPRO_SANITIZE"] = "0"
    # Time via the chip directly: the harness's RunRecord drops the
    # simulator, and events_executed lives there.
    chip, programs = _build_chip(workload, config, params)
    t0 = time.perf_counter()
    result = chip.run(programs)
    wall = time.perf_counter() - t0
    events = chip.sim.events_executed
    point = {
        "name": name,
        "workload": workload,
        "config": config,
        "profile": profile,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": int(events / wall),
        "cycles": result.cycles,
    }
    if calls_pass:
        import cProfile
        import pstats

        chip, programs = _build_chip(workload, config, params)
        prof = cProfile.Profile()
        prof.enable()
        chip.run(programs)
        prof.disable()
        total_calls = pstats.Stats(prof).total_calls
        point["total_calls"] = total_calls
        point["calls_per_event"] = round(
            total_calls / chip.sim.events_executed, 2
        )
    if trace_hash is not None:
        point["trace_hash"] = trace_hash
        point["trace_events"] = trace_events
    seed = SEED_BASELINE.get(name)
    if seed is not None:
        point["seed_events_per_s"] = seed["events_per_s"]
        point["speedup_vs_seed"] = round(
            point["events_per_s"] / seed["events_per_s"], 3
        )
        if "calls_per_event" in point and "calls_per_event" in seed:
            point["seed_calls_per_event"] = seed["calls_per_event"]
            point["calls_ratio_vs_seed"] = round(
                point["calls_per_event"] / seed["calls_per_event"], 3
            )
    return point


# ----------------------------------------------------------------------
# trajectory bookkeeping
# ----------------------------------------------------------------------
def git_sha() -> str:
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def trajectory_entry(figure_points: List[Dict], quick: bool) -> Dict:
    return {
        "git_sha": git_sha(),
        "date": time.strftime("%Y-%m-%d"),
        "quick": quick,
        "points": {
            p.get("name", f"{p['workload']}/{p['config']}"): {
                key: p[key]
                for key in ("events_per_s", "wall_s", "calls_per_event",
                            "trace_hash")
                if key in p
            }
            for p in figure_points
        },
    }


def append_trajectory(out_path: str, entry: Dict) -> List[Dict]:
    """Load the existing benchmark JSON's trajectory (if any) and
    append this run. Re-runs at the same SHA with the same quick flag
    replace their previous entry instead of duplicating it."""
    trajectory: List[Dict] = []
    if os.path.exists(out_path):
        try:
            with open(out_path) as fh:
                trajectory = json.load(fh).get("trajectory", [])
        except (json.JSONDecodeError, OSError):
            trajectory = []
    trajectory = [
        e for e in trajectory
        if not (e.get("git_sha") == entry["git_sha"]
                and e.get("quick") == entry["quick"])
    ]
    trajectory.append(entry)
    return trajectory


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke subset: fewer points, fewer depths")
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help="output JSON path (default: repo-root "
                         "BENCH_kernel.json)")
    ap.add_argument("--no-hash", action="store_true",
                    help="skip the sanitizer hash passes (perf only)")
    ap.add_argument("--check", metavar="BASELINE",
                    help="compare against a committed BENCH_kernel.json: "
                         "fail on any S5 trace-hash mismatch or a >20%% "
                         "events/sec regression on a shared figure point")
    args = ap.parse_args(argv)

    points = QUICK_POINTS if args.quick else FULL_POINTS
    depths = STRESS_DEPTHS_QUICK if args.quick else STRESS_DEPTHS_FULL
    target = 300_000 if args.quick else 2_000_000

    print(f"kernel stress ({len(depths)} depths)...")
    stress = run_stress(depths, target)
    for row in stress:
        print(f"  actors={row['actors']:>6}: heap={row['heap_events_per_s']:>9,} "
              f"calendar={row['calendar_events_per_s']:>9,} ev/s "
              f"({row['ratio']}x)")

    figure_points = []
    for name in points:
        print(f"figure point {name}...")
        point = run_point(name, hash_pass=not args.no_hash)
        figure_points.append(point)
        extra = (f"  {point['speedup_vs_seed']}x vs seed"
                 if "speedup_vs_seed" in point else "")
        calls = (f", {point['calls_per_event']} calls/event"
                 if "calls_per_event" in point else "")
        print(f"  {point['wall_s']}s, {point['events']:,} events, "
              f"{point['events_per_s']:,} ev/s{calls}{extra}")

    out = {
        "profile": PROFILE,
        "quick": args.quick,
        "kernel": "calendar",
        "kernel_stress": stress,
        "figure_points": figure_points,
        "seed_baseline": SEED_BASELINE,
        "trajectory": append_trajectory(
            args.out, trajectory_entry(figure_points, args.quick)),
    }
    with open(args.out, "w") as fh:
        json.dump(out, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        divergence_out = os.path.join(
            os.path.dirname(os.path.abspath(args.out)),
            "DIVERGENCE_kernel.json")
        return check_against(args.check, figure_points, divergence_out)
    return 0


REGRESSION_TOLERANCE = 0.20  # fail if events/sec drops more than this
# calls/event is deterministic (no wall-clock noise), so its gate is
# tighter: >15% more Python calls per logical event than the committed
# baseline fails the smoke job.
CALLS_TOLERANCE = 0.15


def localize_mismatches(mismatched: List[Dict], out_path: str) -> None:
    """Run the divergence localizer for each hash-mismatched point and
    write the findings as a CI artifact."""
    from repro.obs.divergence import localize_backends

    findings = []
    for entry in mismatched:
        name = f"{entry['workload']}/{entry['config']}"
        print(f"  [check] localizing {name} (heap vs calendar)...")
        divergence = localize_backends(
            entry["workload"], entry["config"],
            **entry.get("profile", PROFILE))
        if divergence is None:
            note = ("backends agree: the hash change is semantic "
                    "(handler/model change), not a scheduling bug")
            print(f"  [check] {name}: {note}")
            findings.append({"point": name, "backend_divergence": None,
                             "note": note, **entry["hashes"]})
        else:
            print(f"  [check] {name}: {divergence.describe()}")
            findings.append({
                "point": name,
                "backend_divergence": divergence.to_dict(),
                "note": divergence.describe(), **entry["hashes"],
            })
    with open(out_path, "w") as fh:
        json.dump({"mismatches": findings}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"  [check] wrote {out_path}")


def check_against(
    baseline_path: str,
    figure_points: List[Dict],
    divergence_out: Optional[str] = None,
) -> int:
    """CI gate: the S5 hash per shared point must match the committed
    baseline exactly (determinism is not a tolerance band), and
    events/sec must be within REGRESSION_TOLERANCE of it.  Hash
    mismatches trigger the divergence localizer (see module
    docstring)."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base_points = {
        p.get("name", f"{p['workload']}/{p['config']}"): p
        for p in baseline.get("figure_points", [])
    }
    failures = []
    mismatched: List[Dict] = []
    for point in figure_points:
        name = point.get("name", f"{point['workload']}/{point['config']}")
        base = base_points.get(name)
        if base is None:
            print(f"  [check] {name}: not in baseline, skipped")
            continue
        if "trace_hash" in point and "trace_hash" in base:
            if point["trace_hash"] != base["trace_hash"]:
                failures.append(
                    f"{name}: S5 trace hash {point['trace_hash']} != "
                    f"baseline {base['trace_hash']} (determinism broken)"
                )
                mismatched.append({
                    "workload": point["workload"],
                    "config": point["config"],
                    "profile": point.get("profile", PROFILE),
                    "hashes": {
                        "current_hash": point["trace_hash"],
                        "baseline_hash": base["trace_hash"],
                    },
                })
            elif point.get("trace_events") != base.get("trace_events"):
                failures.append(
                    f"{name}: trace events {point.get('trace_events')} != "
                    f"baseline {base.get('trace_events')}"
                )
        floor = base["events_per_s"] * (1 - REGRESSION_TOLERANCE)
        if point["events_per_s"] < floor:
            failures.append(
                f"{name}: {point['events_per_s']:,} ev/s is >"
                f"{int(REGRESSION_TOLERANCE * 100)}% below baseline "
                f"{base['events_per_s']:,}"
            )
        else:
            print(f"  [check] {name}: hash ok, "
                  f"{point['events_per_s']:,} ev/s vs baseline "
                  f"{base['events_per_s']:,} (floor {int(floor):,})")
        if "calls_per_event" in point and "calls_per_event" in base:
            ceiling = base["calls_per_event"] * (1 + CALLS_TOLERANCE)
            if point["calls_per_event"] > ceiling:
                failures.append(
                    f"{name}: {point['calls_per_event']} calls/event is >"
                    f"{int(CALLS_TOLERANCE * 100)}% above baseline "
                    f"{base['calls_per_event']} (handler-layer bloat)"
                )
    if mismatched and divergence_out:
        localize_mismatches(mismatched, divergence_out)
    if failures:
        for f in failures:
            print(f"  [check] FAIL {f}", file=sys.stderr)
        return 1
    print("  [check] all points pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
