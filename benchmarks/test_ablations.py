"""Ablations of the stream-floating design choices (DESIGN.md).

Each ablation disables one mechanism of the full SF design and
measures what it costs, on the workloads that exercise it:

- **confluence off** (``sf_ind``): conv3d / particlefilter lose the
  multicast merging of their shared streams (SS IV-C);
- **indirect floating off** (``sf_aff``): bfs / cfd fall back to
  core-chained gathers (SS IV-B);
- **coarse NUCA interleave** (the paper's 1 kB SF default vs 64 B):
  constant migration vs hotspot avoidance (SS VII-E);
- **float policy** (static Table II vs the adaptive policy vs
  adaptive + per-range plans): the adaptive policy must revoke the
  tiled stencil's bad float and stay within noise of static on the
  Table IV set (DESIGN.md SS13).
"""

from repro.harness.experiments import fig_policy_ablation, geomean
from repro.harness.report import render_policy_ablation
from repro.harness.runner import run_once

from conftest import PROFILE, emit, run_figure


def test_ablation_confluence(benchmark):
    def experiment():
        rows = []
        for wl in ("conv3d", "particlefilter"):
            full = run_once(wl, "sf", **PROFILE)
            no_conf = run_once(wl, "sf_ind", **PROFILE)
            rows.append((wl, full, no_conf))
        return rows

    rows = run_figure(benchmark, experiment)
    lines = ["Ablation: stream confluence (sf vs sf without merging)"]
    for wl, full, no_conf in rows:
        lines.append(
            f"  {wl:15s} traffic x{full.flit_hops / no_conf.flit_hops:.2f} "
            f"cycles x{full.cycles / no_conf.cycles:.2f} "
            f"multicasts {full.stats['se_l3.multicasts']:.0f}"
        )
    emit("ablation_confluence", "\n".join(lines))
    for wl, full, no_conf in rows:
        # Confluence never adds traffic, and actually merges streams.
        assert full.stats["se_l3.confluences"] > 0, wl
        assert full.flit_hops <= no_conf.flit_hops * 1.02, wl
    # conv3d's shared input makes merging clearly profitable.
    conv = rows[0]
    assert conv[1].flit_hops < conv[2].flit_hops * 0.95


def test_ablation_indirect(benchmark):
    def experiment():
        rows = []
        for wl in ("bfs", "cfd"):
            full = run_once(wl, "sf_ind", **PROFILE)  # indirect, no conf
            aff_only = run_once(wl, "sf_aff", **PROFILE)
            rows.append((wl, full, aff_only))
        return rows

    rows = run_figure(benchmark, experiment)
    lines = ["Ablation: indirect floating (sf_ind vs affine-only)"]
    for wl, full, aff in rows:
        lines.append(
            f"  {wl:15s} traffic x{full.flit_hops / aff.flit_hops:.2f} "
            f"cycles x{full.cycles / aff.cycles:.2f} "
            f"ind_requests {full.stats['l3.requests_by_source.float_ind']:.0f}"
        )
    emit("ablation_indirect", "\n".join(lines))
    bfs_full, bfs_aff = rows[0][1], rows[0][2]
    # bfs: indirect floating issues gather requests at the banks and
    # cuts traffic via subline transfers (paper Figure 15).
    assert bfs_full.stats["l3.requests_by_source.float_ind"] > 0
    assert bfs_full.flit_hops < bfs_aff.flit_hops
    assert bfs_full.cycles <= bfs_aff.cycles * 1.05


def test_ablation_interleave_migrations(benchmark):
    def experiment():
        fine = run_once("nn", "sf", l3_interleave=64, **PROFILE)
        coarse = run_once("nn", "sf", l3_interleave=1024, **PROFILE)
        return fine, coarse

    fine, coarse = run_figure(benchmark, experiment)
    lines = [
        "Ablation: NUCA interleave for floated streams (64B vs 1kB)",
        f"  64B : cycles {fine.cycles:,} migrations "
        f"{fine.stats['se_l3.migrations_out']:.0f} stream-flit-hops "
        f"{fine.stats['noc.flit_hops.stream']:.0f}",
        f"  1kB : cycles {coarse.cycles:,} migrations "
        f"{coarse.stats['se_l3.migrations_out']:.0f} stream-flit-hops "
        f"{coarse.stats['noc.flit_hops.stream']:.0f}",
    ]
    emit("ablation_interleave", "\n".join(lines))
    # Fine interleaving migrates an order of magnitude more (paper:
    # 16x more chunk boundaries) and pays more stream-mgmt traffic.
    assert fine.stats["se_l3.migrations_out"] > \
        4 * coarse.stats["se_l3.migrations_out"]
    assert fine.stats["noc.flit_hops.stream"] > \
        coarse.stats["noc.flit_hops.stream"]


def test_ablation_float_policy(benchmark):
    def experiment():
        return fig_policy_ablation(**PROFILE)

    rows = run_figure(benchmark, experiment)
    emit("ablation_policy", render_policy_ablation(rows))

    by = {(r.workload, r.config): r for r in rows}
    # Static Table II has no revocation machinery; the adaptive policy
    # revokes the tiled stencil's float once its re-sweeps start
    # hitting the private caches.
    assert by[("stencil_tiled", "sf")].revokes == 0
    assert by[("stencil_tiled", "sf_smart")].revokes >= 1
    assert by[("stencil_tiled", "sf_plan")].revokes >= 1
    # The streaming Table IV set keeps floating under the adaptive
    # policy (no wholesale disqualification)...
    table_iv = sorted({r.workload for r in rows} - {"stencil_tiled"})
    floats_smart = sum(by[(wl, "sf_smart")].floats for wl in table_iv)
    assert floats_smart > 0
    # ...and stays within noise of the static policy's speedups.
    for cfg in ("sf_smart", "sf_plan"):
        gm_static = geomean([by[(wl, "sf")].speedup for wl in table_iv])
        gm_cfg = geomean([by[(wl, cfg)].speedup for wl in table_iv])
        assert gm_cfg >= gm_static * 0.9, (cfg, gm_cfg, gm_static)
