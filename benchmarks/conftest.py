"""Shared benchmark configuration.

All benchmarks run the fast profile (4x4 mesh, capacity scale 16 —
DESIGN.md SS6) and share the harness's run memo, so figures that
reuse the same simulation points (e.g. Figure 13's SF rows feeding
Figure 14) never re-simulate.  They additionally share the harness's
persistent disk cache (``benchmarks/.runcache`` unless
``REPRO_CACHE_DIR`` overrides it), so a *rerun* of the full suite
performs zero new simulations; set ``REPRO_JOBS=N`` to fan the
remaining misses out over N worker processes.

Every benchmark is marked ``slow``: the tier-1 gate is ``pytest
tests/`` (the default testpaths), and the full suite is ``pytest
tests/ benchmarks/``; ``-m "not slow"`` deselects the figures
anywhere.

Each benchmark writes its rendered report (measured values next to
the paper's) under ``benchmarks/out/`` and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces every figure.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

# Persist simulation results across benchmark sessions (the harness
# only touches the disk cache when REPRO_CACHE_DIR is set).
os.environ.setdefault(
    "REPRO_CACHE_DIR", os.path.join(os.path.dirname(__file__), ".runcache")
)

# Fast-profile geometry shared by all figures.
PROFILE = dict(cols=4, rows=4, scale=16)


def pytest_collection_modifyitems(items):
    """Benchmarks are the slow tier; keep `-m "not slow"` meaningful.

    They also opt out of the runtime invariant sanitizer (DESIGN.md
    §7): figure timings must reflect the simulator's real cost, and
    the tier-1 suite already runs every workload with it enabled.
    """
    for item in items:
        item.add_marker(pytest.mark.slow)
        item.add_marker(pytest.mark.no_sanitize)


@pytest.fixture(scope="session")
def profile():
    return dict(PROFILE)


def emit(name: str, text: str) -> None:
    """Print a figure's report and save it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)


def run_figure(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
