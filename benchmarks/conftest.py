"""Shared benchmark configuration.

All benchmarks run the fast profile (4x4 mesh, capacity scale 16 —
DESIGN.md SS6) and share the harness's run memo, so figures that
reuse the same simulation points (e.g. Figure 13's SF rows feeding
Figure 14) never re-simulate.  They additionally share the harness's
persistent disk cache (``benchmarks/.runcache`` unless
``REPRO_CACHE_DIR`` overrides it), so a *rerun* of the full suite
performs zero new simulations; set ``REPRO_JOBS=N`` to fan the
remaining misses out over N worker processes.

Every benchmark is marked ``slow``: the tier-1 gate is ``pytest
tests/`` (the default testpaths), and the full suite is ``pytest
tests/ benchmarks/``; ``-m "not slow"`` deselects the figures
anywhere.

Each benchmark writes its rendered report (measured values next to
the paper's) under ``benchmarks/out/`` and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces every figure.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

# Persist simulation results across benchmark sessions (the harness
# only touches the disk cache when REPRO_CACHE_DIR is set).
os.environ.setdefault(
    "REPRO_CACHE_DIR", os.path.join(os.path.dirname(__file__), ".runcache")
)

# Fast-profile geometry shared by all figures.
PROFILE = dict(cols=4, rows=4, scale=16)


def pytest_collection_modifyitems(items):
    """Benchmarks are the slow tier; keep `-m "not slow"` meaningful.

    They also opt out of the runtime invariant sanitizer (DESIGN.md
    §7): figure timings must reflect the simulator's real cost, and
    the tier-1 suite already runs every workload with it enabled.
    """
    for item in items:
        item.add_marker(pytest.mark.slow)
        item.add_marker(pytest.mark.no_sanitize)


# Telemetry summary counters are the only telemetry state that may
# reach a RunRecord (and hence the persistent run cache). All of them
# are deterministic event/sample counts; host wall-clock must never
# appear here or cached results would differ run to run.
_DETERMINISTIC_TELEMETRY_KEYS = {
    "telemetry.bus_events",
    "telemetry.spans_opened",
    "telemetry.spans_closed",
    "telemetry.spans_dropped",
    "telemetry.noc_events",
    "telemetry.noc_dropped",
    "telemetry.interval_samples",
    "telemetry.profiled_events",
}


@pytest.fixture(autouse=True)
def _bench_profile_mode(request, monkeypatch):
    """``pytest benchmarks/ --profile``: attach the telemetry kernel
    profiler to every simulation in the run (sanitizer stays off —
    the ``no_sanitize`` marker above already guarantees that), so
    slow figures can be attributed to event types without rerunning
    under cProfile. Without the flag, telemetry stays detached and
    timings measure the bare simulator.
    """
    if request.config.getoption("--profile"):
        monkeypatch.setenv("REPRO_TELEMETRY", "profile")
    else:
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    yield
    # Either way, host time must never leak into cached run records:
    # the run cache is keyed on simulation parameters only, so a
    # wall-clock-derived stat would go stale (and poison baseline
    # diffs) silently. Telemetry publishes only deterministic counts.
    from repro.harness import runner

    for record in runner._MEMO.values():
        for key, value in record.stats.as_dict().items():
            if key.startswith("telemetry."):
                assert key in _DETERMINISTIC_TELEMETRY_KEYS, (
                    f"unexpected telemetry stat {key!r} in a cached run "
                    "record — is it host-time derived?"
                )
                assert value == int(value), (
                    f"{key} = {value!r} is not an integral count; "
                    "host time must not reach the run cache"
                )


@pytest.fixture(scope="session")
def profile():
    return dict(PROFILE)


def emit(name: str, text: str) -> None:
    """Print a figure's report and save it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)


def run_figure(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
