"""Figure 17: sensitivity to NUCA interleaving granularity.

Paper: SF performs best at 1 kB interleaving (few migrations, still
no bank hotspots); at 64 B streams migrate constantly (12% stream
control traffic) but SF still cuts total traffic 22%. Bingo prefers
fine interleaving; at 4 kB it drops to ~0.93x of its 64 B self on
hotspot-prone workloads (e.g. mv).
"""

from repro.harness import experiments, report
from repro.harness.experiments import geomean
from repro.harness.runner import run_once

from conftest import PROFILE, emit, run_figure


def test_fig17_interleave(benchmark):
    data = run_figure(
        benchmark, lambda: experiments.fig17_interleave(**PROFILE)
    )
    emit("fig17_interleave", report.render_sweep(
        data, "Figure 17 (NUCA interleave, vs bingo@64B)",
        report.PAPER_NOTES["fig17"],
    ))

    gm = {
        key: geomean([cells[key] for cells in data.values()])
        for key in next(iter(data.values()))
    }
    # SF beats Bingo at its preferred (1kB) granularity.
    assert gm[("sf", 1024)] > gm[("bingo", 64)]
    # SF at coarse granularity is at least as good as SF at 64B
    # (fewer migrations, paper's motivation for the 1kB default).
    assert gm[("sf", 1024)] >= gm[("sf", 64)] * 0.97
    # Fine interleaving makes streams migrate constantly: visible
    # stream-management traffic, yet SF-64B still reduces traffic.
    wl = "hotspot"
    sf64 = run_once(wl, "sf", l3_interleave=64, **PROFILE)
    base = run_once(wl, "base", **PROFILE)
    assert sf64.stats["se_l3.migrations_out"] > 0
    assert sf64.flit_hops < base.flit_hops
