"""Figure 15: NoC traffic breakdown (control / data / stream
management) and average network utilization, normalized to Base.

Paper: Bingo *increases* traffic by 34% (aggressive inaccurate
prefetch); SS is roughly traffic-neutral; bulk prefetch trims ~6%;
affine floating alone cuts 30%; full SF cuts 36% and drops average
utilization from 35% (Bingo) to 25%. Stream-management messages
(config/migrate/end/credit) cost only ~2%.
"""

from repro.harness import experiments, report

from conftest import PROFILE, emit, run_figure


def mean_total(rows, config):
    sel = [r for r in rows if r.config == config]
    return sum(r.total for r in sel) / len(sel)


def test_fig15_traffic(benchmark):
    rows = run_figure(
        benchmark, lambda: experiments.fig15_traffic(**PROFILE)
    )
    emit("fig15_traffic", report.render_fig15(rows))

    base = mean_total(rows, "base")
    bingo = mean_total(rows, "bingo")
    ss = mean_total(rows, "ss")
    bulk = mean_total(rows, "bulk")
    stride = mean_total(rows, "stride")
    sf_aff = mean_total(rows, "sf_aff")
    sf = mean_total(rows, "sf")
    assert abs(base - 1.0) < 1e-6
    # Prefetchers add traffic; streams are accurate (SS ~neutral).
    assert bingo > 1.05
    assert 0.9 < ss < 1.1
    # Bulk prefetch trims the stride prefetcher's *request* traffic
    # (its data placement differs: bulk requires coarser interleave).
    mean_ctrl = lambda cfg: sum(
        r.ctrl for r in rows if r.config == cfg
    ) / sum(1 for r in rows if r.config == cfg)
    assert mean_ctrl("bulk") < mean_ctrl("stride") * 1.02
    # Floating fundamentally reduces traffic; full SF at least as good
    # as affine-only on average.
    assert sf_aff < 0.95
    assert sf < 0.95
    # Stream-management overhead is small (paper ~2%).
    sf_rows = [r for r in rows if r.config == "sf"]
    stream_share = sum(r.stream for r in sf_rows) / len(sf_rows)
    assert stream_share < 0.10
    # Utilization: SF below Bingo.
    util = lambda cfg: sum(
        r.utilization for r in rows if r.config == cfg
    ) / sum(1 for r in rows if r.config == cfg)
    assert util("sf") < util("bingo")
