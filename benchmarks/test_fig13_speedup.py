"""Figure 13: overall speedup and energy efficiency across cores.

Paper (vs the same core's no-prefetch Base, geomean of 12 workloads):
SF improves IO4/OOO4/OOO8 by 3.20x/~2.4x/~2.3x, with SS slightly
below the best prefetcher on IO4 (limited 256 B FIFO) and slightly
above it on OOO cores; SF beats SS by 64%/37%/31%.

We assert the *orderings* and relative placements, not the absolute
factors (our substrate is a simplified simulator at scaled size).
"""

from repro.harness import experiments, report
from repro.harness.experiments import geomean

from conftest import PROFILE, emit, run_figure


def test_fig13_speedup_and_energy(benchmark):
    data = run_figure(
        benchmark, lambda: experiments.fig13_speedup(**PROFILE)
    )
    emit("fig13_speedup", report.render_fig13(data))

    gm = {
        core: {
            cfg: geomean([cells[cfg].speedup for cells in wl_map.values()])
            for cfg in experiments.FIG13_CONFIGS
        }
        for core, wl_map in data.items()
    }
    gme = {
        core: {
            cfg: geomean([cells[cfg].energy_eff for cells in wl_map.values()])
            for cfg in experiments.FIG13_CONFIGS
        }
        for core, wl_map in data.items()
    }
    for core in gm:
        # SF is the best system on every core type...
        for other in ("base", "stride", "bingo", "ss"):
            assert gm[core]["sf"] > gm[core][other], (core, other, gm[core])
        # ...and the most energy efficient.
        for other in ("base", "stride", "bingo"):
            assert gme[core]["sf"] > gme[core][other], (core, other)
        # Prefetchers and streams beat the no-prefetch Base.
        assert gm[core]["bingo"] > 1.0
        assert gm[core]["ss"] >= 1.0
    # The in-order core gains the most from floating (paper: 3.2x
    # IO4 vs ~2.3x OOO8 over Base; +64% vs +31% over SS).
    assert gm["io4"]["sf"] > gm["ooo8"]["sf"]
    assert gm["io4"]["sf"] / gm["io4"]["ss"] > gm["ooo8"]["sf"] / gm["ooo8"]["ss"]
