"""Figure 2: motivation — cache lines evicted without reuse and the
NoC traffic spent caching them.

Paper: 72% of L2 evictions are clean-and-unreused (63% of all
evictions attributable to stream accesses); caching no-reuse data
costs 50% of total NoC flits, 20% being control messages.
"""

from repro.harness import experiments, report

from conftest import PROFILE, emit, run_figure


def test_fig2_motivation(benchmark):
    rows = run_figure(
        benchmark, lambda: experiments.fig2_motivation(**PROFILE)
    )
    emit("fig02_motivation", report.render_fig2(rows))

    n = len(rows)
    mean_noreuse = sum(r.frac_noreuse for r in rows) / n
    mean_stream = sum(r.frac_noreuse_stream for r in rows) / n
    mean_traffic = sum(r.frac_traffic_noreuse for r in rows) / n
    mean_ctrl = sum(r.frac_traffic_ctrl for r in rows) / n
    # Shape: a large majority of evictions are never reused, streams
    # cover most of them, and the no-reuse traffic share is large with
    # a meaningful control component (paper: 72%/63%/50%/20%).
    assert mean_noreuse > 0.5
    assert mean_stream > 0.5 * mean_noreuse
    assert 0.25 < mean_traffic < 0.8
    assert mean_ctrl > 0.08
